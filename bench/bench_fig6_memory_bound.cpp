/**
 * @file
 * Figure 6: memory-bound analysis — where backend memory stalls
 * resolve (L1 / L2 / LLC+DRAM), per workload and ABI, plus the cache
 * and TLB miss-rate movements of §4.7 that cause them.
 */

#include <cstdio>

#include "common.hpp"
#include "support/table.hpp"

using namespace cheri;

int
main()
{
    bench::printHeader(
        "Figure 6 - memory-bound analysis (cache vs DRAM)",
        "Stall attribution by servicing level + the §4.7 miss-rate "
        "movements driving it.");

    bench::Sweep sweep;

    AsciiTable table({"benchmark", "abi", "L1 bound", "L2 bound",
                      "ExtMem bound", "L1D MR", "L2 MR", "DTLB walk/1k"});
    for (const auto &row : sweep.rows()) {
        for (abi::Abi a : abi::kAllAbis) {
            const auto &run = row.run(a);
            if (!run.ok())
                continue;
            table.beginRow();
            table.cell(row.workload->info().name);
            table.cell(std::string(abi::abiName(a)));
            table.cell(run.topdownTruth.l1Bound, 3);
            table.cell(run.topdownTruth.l2Bound, 3);
            table.cell(run.topdownTruth.extMemBound, 3);
            table.cell(run.metrics.l1dMissRate, 4);
            table.cell(run.metrics.l2MissRate, 4);
            table.cell(run.metrics.dtlbWpki, 3);
        }
    }
    std::printf("%s\n", table.render().c_str());

    // §4.7 spot checks.
    u32 dtlb_up = 0, rows = 0;
    for (const auto &row : sweep.rows()) {
        const auto &hyb = row.run(abi::Abi::Hybrid);
        const auto &pc = row.run(abi::Abi::Purecap);
        if (!hyb.ok() || !pc.ok())
            continue;
        ++rows;
        if (pc.metrics.dtlbWpki > hyb.metrics.dtlbWpki * 1.05)
            ++dtlb_up;
    }
    std::printf("Workloads with >5%% more DTLB walks per kilo-inst under "
                "purecap: %u / %u\n(paper §4.7: most stable, a few rise "
                "sharply — xalancbmk, leela, nab)\n",
                dtlb_up, rows);
    return 0;
}
