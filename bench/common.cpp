#include "common.hpp"

#include <cstdio>

#include "support/logging.hpp"
#include "support/table.hpp"

namespace cheri::bench {

double
SweepRow::seconds(abi::Abi a) const
{
    const AbiRun &r = run(a);
    return r.ok() ? r.result->seconds : -1.0;
}

double
SweepRow::slowdown(abi::Abi a) const
{
    const double hybrid = seconds(abi::Abi::Hybrid);
    const double mine = seconds(a);
    if (hybrid <= 0 || mine < 0)
        return -1.0;
    return mine / hybrid;
}

Sweep::Sweep(const std::vector<std::string> &names, workloads::Scale scale)
    : pool_(workloads::allWorkloads())
{
    std::vector<const workloads::Workload *> selected;
    if (names.empty()) {
        for (const auto &w : pool_)
            selected.push_back(w.get());
    } else {
        for (const auto &name : names) {
            const auto *w = workloads::findWorkload(pool_, name);
            CHERI_ASSERT(w, "unknown workload '", name, "'");
            selected.push_back(w);
        }
    }

    for (const auto *w : selected) {
        SweepRow row;
        row.workload = w;
        for (abi::Abi a : abi::kAllAbis) {
            AbiRun &run = row.runs[static_cast<int>(a)];
            run.result = workloads::runWorkload(*w, a, scale);
            if (run.result) {
                run.metrics = analysis::DerivedMetrics::compute(
                    run.result->counts);
                run.topdownTruth =
                    analysis::TopDown::fromModelTruth(run.result->counts);
                run.topdownPaper = analysis::TopDown::fromPaperFormulas(
                    run.result->counts);
            }
        }
        rows_.push_back(std::move(row));
        std::fprintf(stderr, "  [sweep] %s done\n",
                     w->info().name.c_str());
    }
}

const SweepRow *
Sweep::find(const std::string &name) const
{
    for (const auto &row : rows_)
        if (row.workload->info().name == name)
            return &row;
    return nullptr;
}

std::string
fmtOrNa(double value, int precision)
{
    if (value < 0)
        return "NA";
    return formatFixed(value, precision);
}

void
printHeader(const std::string &artifact, const std::string &note)
{
    std::printf("================================================================\n");
    std::printf("cheriperf reproduction: %s\n", artifact.c_str());
    std::printf("%s\n", note.c_str());
    std::printf("================================================================\n\n");
}

} // namespace cheri::bench
