#include "common.hpp"

#include <cstdio>

#include "support/logging.hpp"
#include "support/table.hpp"

namespace cheri::bench {

const AbiRun &
SweepRow::run(abi::Abi a) const
{
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        if (scenarios[i].abi == a && scenarios[i].allocator.isDefault())
            return runs[i];
    // Non-default-only sweep: the first allocator stands in.
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        if (scenarios[i].abi == a)
            return runs[i];
    CHERI_FATAL("sweep row for '", workload->info().name,
                "' has no cell under ", abi::abiName(a));
}

const AbiRun *
SweepRow::run(abi::Abi a, const alloc::AllocatorConfig &allocator) const
{
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        if (scenarios[i].abi == a && scenarios[i].allocator == allocator)
            return &runs[i];
    return nullptr;
}

double
SweepRow::seconds(abi::Abi a) const
{
    const AbiRun &r = run(a);
    return r.ok() ? r.result->seconds : -1.0;
}

double
SweepRow::slowdown(abi::Abi a) const
{
    const double hybrid = seconds(abi::Abi::Hybrid);
    const double mine = seconds(a);
    if (hybrid <= 0 || mine < 0)
        return -1.0;
    return mine / hybrid;
}

Sweep::Sweep(SweepOptions options) : pool_(workloads::allWorkloads())
{
    std::vector<const workloads::Workload *> selected;
    if (options.names.empty()) {
        for (const auto &w : pool_)
            selected.push_back(w.get());
    } else {
        for (const auto &name : options.names) {
            const auto *w = workloads::findWorkload(pool_, name);
            CHERI_ASSERT(w, "unknown workload '", name, "'");
            selected.push_back(w);
        }
    }

    const std::vector<alloc::AllocatorConfig> allocators =
        options.allocators.empty()
            ? std::vector<alloc::AllocatorConfig>{alloc::AllocatorConfig{}}
            : options.allocators;

    runner::ExperimentPlan plan;
    for (const auto *w : selected)
        plan.addScenarioSweep(w->info().name, options.scale,
                              options.seed, allocators);

    runner::RunnerOptions run_options;
    run_options.jobs = options.jobs;
    run_options.cache = options.cache;
    run_options.progress = true;
    auto outcome = runner::runPlan(plan, run_options);
    stats_ = outcome.stats;

    // Cells are name-major, allocator-major, ABI-minor
    // (addScenarioSweep order); fold each workload's grid back into
    // one presentation row.
    std::size_t cell = 0;
    for (const auto *w : selected) {
        SweepRow row;
        row.workload = w;
        for (const alloc::AllocatorConfig &allocator : allocators) {
            for (abi::Abi a : abi::kAllAbis) {
                runner::RunResult &result = outcome.results[cell++];
                CHERI_ASSERT(result.request.workload ==
                                     w->info().name &&
                                 result.request.abi == a &&
                                 result.request.allocator == allocator,
                             "runner returned cells out of plan order");
                AbiRun run;
                run.result = std::move(result.sim);
                run.metrics = result.metrics;
                run.topdownTruth = result.topdownTruth;
                run.topdownPaper = result.topdownPaper;
                row.scenarios.push_back(SweepScenario{a, allocator});
                row.runs.push_back(std::move(run));
            }
        }
        rows_.push_back(std::move(row));
    }
    std::fprintf(stderr, "  [sweep] %s\n", stats_.summary().c_str());
}

Sweep::Sweep(const std::vector<std::string> &names,
             workloads::Scale scale)
    : Sweep(SweepOptions{.names = names, .scale = scale})
{
}

const SweepRow *
Sweep::find(const std::string &name) const
{
    for (const auto &row : rows_)
        if (row.workload->info().name == name)
            return &row;
    return nullptr;
}

std::string
fmtOrNa(double value, int precision)
{
    if (value < 0)
        return "NA";
    return formatFixed(value, precision);
}

void
printHeader(const std::string &artifact, const std::string &note)
{
    std::printf("================================================================\n");
    std::printf("cheriperf reproduction: %s\n", artifact.c_str());
    std::printf("%s\n", note.c_str());
    std::printf("================================================================\n\n");
}

} // namespace cheri::bench
