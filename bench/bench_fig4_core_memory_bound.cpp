/**
 * @file
 * Figure 4: percentage of cycles bound on the core vs the memory
 * system, per workload and ABI — the backend drill-down that shows
 * purecap shifting work towards core-bound (extra capability DP ops,
 * store-queue pressure) while staying memory-bound where footprints
 * blow up.
 */

#include <cstdio>

#include "common.hpp"
#include "support/table.hpp"

using namespace cheri;

int
main()
{
    bench::printHeader(
        "Figure 4 - core-bound vs memory-bound cycles",
        "Fractions of cycles; per workload and ABI (model stall "
        "attribution).");

    bench::Sweep sweep;

    AsciiTable table({"benchmark", "abi", "memory bound", "core bound",
                      "backend total"});
    u32 core_shift = 0, rows = 0;
    for (const auto &row : sweep.rows()) {
        for (abi::Abi a : abi::kAllAbis) {
            const auto &run = row.run(a);
            if (!run.ok())
                continue;
            table.beginRow();
            table.cell(row.workload->info().name);
            table.cell(std::string(abi::abiName(a)));
            table.cell(run.topdownTruth.memoryBound, 3);
            table.cell(run.topdownTruth.coreBound, 3);
            table.cell(run.topdownTruth.memoryBound +
                           run.topdownTruth.coreBound,
                       3);
        }
        const auto &hyb = row.run(abi::Abi::Hybrid);
        const auto &pc = row.run(abi::Abi::Purecap);
        if (hyb.ok() && pc.ok()) {
            ++rows;
            if (pc.topdownTruth.coreBound > hyb.topdownTruth.coreBound)
                ++core_shift;
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Workloads whose core-bound share RISES under purecap: "
                "%u / %u\n(paper §4.6: capability manipulation inflates "
                "core-side work almost universally)\n",
                core_shift, rows);
    return 0;
}
