/**
 * @file
 * Figure 1: overall execution performance of all 20 workloads under
 * the three ABIs, normalized to hybrid. The paper-reported slowdowns
 * are printed alongside for the workloads Tables 3/4 quantify.
 */

#include <cstdio>

#include "common.hpp"
#include "support/table.hpp"

using namespace cheri;

int
main()
{
    bench::printHeader(
        "Figure 1 - overall execution performance (normalized to hybrid)",
        "Bars of Fig. 1 as rows; 'NA' marks the paper's QuickJS "
        "benchmark-ABI security exception.");

    bench::Sweep sweep;

    AsciiTable table({"benchmark", "hybrid", "benchmark-abi", "purecap",
                      "paper bench-abi", "paper purecap"});
    double worst = 0;
    std::string worst_name;
    for (const auto &row : sweep.rows()) {
        const auto &info = row.workload->info();
        table.beginRow();
        table.cell(info.name);
        table.cell("1.000");
        table.cell(bench::fmtOrNa(row.slowdown(abi::Abi::Benchmark)));
        table.cell(bench::fmtOrNa(row.slowdown(abi::Abi::Purecap)));
        const bool has_paper = info.paperTimeHybrid > 0;
        table.cell(has_paper && info.paperTimeBenchmark > 0
                       ? formatFixed(info.paperTimeBenchmark /
                                         info.paperTimeHybrid,
                                     3)
                       : (has_paper ? "NA" : "-"));
        table.cell(has_paper ? formatFixed(info.paperTimePurecap /
                                               info.paperTimeHybrid,
                                           3)
                             : "-");
        const double pc = row.slowdown(abi::Abi::Purecap);
        if (pc > worst) {
            worst = pc;
            worst_name = info.name;
        }
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Purecap overhead range: 0%% .. %.0f%% (worst: %s)\n",
                (worst - 1.0) * 100.0, worst_name.c_str());
    std::printf("Paper finding reproduced: overheads range from negligible "
                "(lbm / LLaMA.matmul even speed up)\nto severe on "
                "pointer-intensive workloads; the benchmark ABI recovers a "
                "large share for the\nPCC-stall-dominated SPEC benchmarks.\n");
    return 0;
}
