/**
 * @file
 * google-benchmark micro-benchmarks of the simulator substrates
 * themselves: capability compression round-trips, cache and TLB
 * lookups, branch prediction, store-queue pushes, and end-to-end
 * dynamic-op issue throughput. These bound how large a workload the
 * framework can replay per wall-clock second.
 */

#include <benchmark/benchmark.h>

#include "abi/lowering.hpp"
#include "cap/capability.hpp"
#include "mem/cache.hpp"
#include "mem/tlb.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"
#include "uarch/branch_predictor.hpp"

using namespace cheri;

namespace {

void
BM_CapabilitySetBounds(benchmark::State &state)
{
    const auto root = cap::Capability::root();
    Xoshiro256StarStar rng(1);
    for (auto _ : state) {
        const u64 base = rng.nextBelow(1ULL << 40);
        const u64 len = 1 + rng.nextBelow(1ULL << 20);
        auto derived = root.withAddress(base).setBounds(len);
        benchmark::DoNotOptimize(derived);
    }
}
BENCHMARK(BM_CapabilitySetBounds);

void
BM_CapabilityPackUnpack(benchmark::State &state)
{
    const auto capability =
        cap::Capability::dataRegion(0x1000, 0x2000).add(64);
    for (auto _ : state) {
        const auto packed = capability.pack();
        auto restored = cap::Capability::unpack(packed, true);
        benchmark::DoNotOptimize(restored);
    }
}
BENCHMARK(BM_CapabilityPackUnpack);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::SetAssocCache cache({64 * kKiB, 4, 64});
    Xoshiro256StarStar rng(2);
    const u64 span = static_cast<u64>(state.range(0)) * kKiB;
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(rng.nextBelow(span), false));
}
BENCHMARK(BM_CacheAccess)->Arg(32)->Arg(256)->Arg(4096);

void
BM_TlbAccess(benchmark::State &state)
{
    mem::Tlb tlb({1280, 5, 4096});
    Xoshiro256StarStar rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            tlb.access(rng.nextBelow(64 * kMiB)));
}
BENCHMARK(BM_TlbAccess);

void
BM_BranchPredictor(benchmark::State &state)
{
    uarch::BranchPredictor predictor({});
    Xoshiro256StarStar rng(4);
    for (auto _ : state) {
        const auto op = uarch::DynOp::condBranch(
            0x1000 + (rng.next() & 0xfff) * 4, rng.chance(0.7), 0x2000);
        benchmark::DoNotOptimize(predictor.resolve(op));
    }
}
BENCHMARK(BM_BranchPredictor);

void
BM_DynOpIssue(benchmark::State &state)
{
    // End-to-end issue throughput through lowering + pipeline + memory.
    const auto config = sim::MachineConfig::forAbi(abi::Abi::Purecap);
    sim::Machine machine(config);
    abi::CodeMap code(abi::Abi::Purecap);
    const u32 func = code.addFunction(0, 400);
    abi::DynLowering lowering(abi::Abi::Purecap, machine.pipeline(), code);
    lowering.enterFunction(func);
    Xoshiro256StarStar rng(5);
    u64 ops = 0;
    for (auto _ : state) {
        lowering.loopBegin();
        lowering.alu(2);
        lowering.loadPointer(0x4000'0000 + (rng.next() & 0xffff0));
        lowering.store(0x4100'0000 + (rng.next() & 0xffff0), 8);
        lowering.branch(rng.chance(0.9));
        ops += 5;
    }
    state.SetItemsProcessed(static_cast<s64>(ops));
}
BENCHMARK(BM_DynOpIssue);

} // namespace

BENCHMARK_MAIN();
