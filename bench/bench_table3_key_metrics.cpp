/**
 * @file
 * Table 3: aggregated key performance metrics for the 12
 * representative benchmarks, three rows per metric (hybrid /
 * benchmark / purecap), including the CHERI-specific capability
 * densities, traffic share and tag overhead.
 */

#include <cstdio>

#include "common.hpp"
#include "support/table.hpp"

using namespace cheri;

namespace {

struct MetricRow
{
    const char *label;
    double (*get)(const bench::AbiRun &);
    int precision;
};

double
secondsOf(const bench::AbiRun &run)
{
    return run.ok() ? run.result->seconds : -1;
}

const MetricRow kRows[] = {
    {"Execution Time (model s)", secondsOf, 4},
    {"IPC", [](const bench::AbiRun &r) { return r.ok() ? r.metrics.ipc : -1; }, 3},
    {"Branch Pred. MR (%)",
     [](const bench::AbiRun &r) {
         return r.ok() ? r.metrics.branchMissRate * 100 : -1;
     },
     2},
    {"L1I Cache MR (%)",
     [](const bench::AbiRun &r) {
         return r.ok() ? r.metrics.l1iMissRate * 100 : -1;
     },
     2},
    {"L1D Cache MR (%)",
     [](const bench::AbiRun &r) {
         return r.ok() ? r.metrics.l1dMissRate * 100 : -1;
     },
     2},
    {"L2D Cache MR (%)",
     [](const bench::AbiRun &r) {
         return r.ok() ? r.metrics.l2MissRate * 100 : -1;
     },
     2},
    {"LLC Read MR (%)",
     [](const bench::AbiRun &r) {
         return r.ok() ? r.metrics.llcReadMissRate * 100 : -1;
     },
     2},
    {"Capability Load Density (%)",
     [](const bench::AbiRun &r) {
         return r.ok() ? r.metrics.capLoadDensity * 100 : -1;
     },
     2},
    {"Capability Store Density (%)",
     [](const bench::AbiRun &r) {
         return r.ok() ? r.metrics.capStoreDensity * 100 : -1;
     },
     2},
    {"Capability Traffic Share (%)",
     [](const bench::AbiRun &r) {
         return r.ok() ? r.metrics.capTrafficShare * 100 : -1;
     },
     2},
    {"Capability Tag Overhead (%)",
     [](const bench::AbiRun &r) {
         return r.ok() ? r.metrics.capTagOverhead * 100 : -1;
     },
     2},
};

} // namespace

int
main()
{
    bench::printHeader(
        "Table 3 - aggregated key performance metrics",
        "Rows per metric: hybrid / benchmark / purecap (the paper's cell "
        "stacking), for the 12 representative benchmarks.");

    bench::Sweep sweep(bench::SweepOptions{.names = workloads::table3Names()});

    for (const auto &row : sweep.rows()) {
        std::printf("--- %s (%s)\n", row.workload->info().name.c_str(),
                    row.workload->info().description.c_str());
        AsciiTable table({"metric", "hybrid", "benchmark", "purecap"});
        for (const auto &metric : kRows) {
            table.beginRow();
            table.cell(std::string(metric.label));
            for (abi::Abi a : {abi::Abi::Hybrid, abi::Abi::Benchmark,
                               abi::Abi::Purecap})
                table.cell(bench::fmtOrNa(metric.get(row.run(a)),
                                          metric.precision));
        }
        std::printf("%s\n", table.render().c_str());
    }

    std::printf(
        "Shape checks vs paper Table 3:\n"
        " - capability load/store densities: ~0%% under hybrid, large "
        "under the capability ABIs\n   for pointer-dense workloads "
        "(omnetpp/xalancbmk/QuickJS/SQLite);\n"
        " - LLC read miss rates stay very high (>80-90%%) everywhere;\n"
        " - QuickJS benchmark-ABI column reads NA (in-address-space "
        "security exception).\n");
    return 0;
}
