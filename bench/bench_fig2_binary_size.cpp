/**
 * @file
 * Figure 2: distribution of program-section sizes across benchmarks,
 * normalized to hybrid — including the headline effects: ~85x
 * .rela.dyn growth, ~-19% .rodata, ~+10% .text, ~+5% total.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "binsize/sections.hpp"
#include "common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workloads/registry.hpp"

using namespace cheri;

int
main()
{
    bench::printHeader(
        "Figure 2 - program section sizes (normalized to hybrid)",
        "Per-section size factor purecap/hybrid for every workload "
        "binary profile; median column reproduces Fig. 2's labels.");

    const auto pool = workloads::allWorkloads();

    std::map<std::string, std::vector<double>> factors;
    std::vector<double> totals;
    for (const auto &w : pool) {
        const auto norm = binsize::normalizedToHybrid(w->info().binary,
                                                      abi::Abi::Purecap);
        for (const auto &[section, factor] : norm) {
            if (section == "total")
                totals.push_back(factor);
            else if (factor > 0)
                factors[section].push_back(factor);
        }
    }

    struct PaperRef
    {
        const char *section;
        const char *paper;
    };
    const PaperRef kPaper[] = {
        {".text", "~1.10"},        {".rodata", "~0.81"},
        {".data", "grows w/ ptrs"}, {".bss", "~1.10"},
        {".rela.dyn", "~85x"},     {".got", "~2.0"},
        {".data.rel.ro", "new section"},
        {".note.cheri", "new section"},
        {".debug", "~1.05"},       {".others", "~1.08"},
    };

    AsciiTable table({"section", "median factor", "min", "max",
                      "paper (Fig. 2)"});
    for (const auto &ref : kPaper) {
        const auto it = factors.find(ref.section);
        table.beginRow();
        table.cell(std::string(ref.section));
        if (it == factors.end() || it->second.empty()) {
            table.cell("(absent in hybrid)");
            table.cell("-");
            table.cell("-");
        } else {
            auto &xs = it->second;
            table.cell(median(xs), 2);
            table.cell(*std::min_element(xs.begin(), xs.end()), 2);
            table.cell(*std::max_element(xs.begin(), xs.end()), 2);
        }
        table.cell(std::string(ref.paper));
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Total binary growth purecap/hybrid: median %.3f "
                "(paper: ~1.05)\n\n",
                median(totals));

    // Absolute sizes for one example binary, all three ABIs.
    const auto &profile = pool.front()->info().binary;
    AsciiTable abs_table({"section", "hybrid (B)", "benchmark (B)",
                          "purecap (B)"});
    const auto hybrid =
        binsize::computeSections(profile, abi::Abi::Hybrid);
    const auto benchmark =
        binsize::computeSections(profile, abi::Abi::Benchmark);
    const auto purecap =
        binsize::computeSections(profile, abi::Abi::Purecap);
    for (const auto &section : binsize::sectionNames()) {
        abs_table.beginRow();
        abs_table.cell(section);
        abs_table.cell(static_cast<unsigned long long>(hybrid.get(section)));
        abs_table.cell(
            static_cast<unsigned long long>(benchmark.get(section)));
        abs_table.cell(
            static_cast<unsigned long long>(purecap.get(section)));
    }
    std::printf("Example absolute layout (%s):\n%s\n", profile.name.c_str(),
                abs_table.render().c_str());
    return 0;
}
