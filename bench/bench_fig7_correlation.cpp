/**
 * @file
 * Figure 7: performance-correlation matrices (hybrid vs purecap) —
 * Pearson correlations of key metrics across the workload population,
 * and the strongly-coupled pairs that appear under purecap.
 */

#include <cstdio>

#include "analysis/correlation.hpp"
#include "common.hpp"

using namespace cheri;

int
main()
{
    bench::printHeader(
        "Figure 7 - performance correlation matrix (hybrid vs purecap)",
        "Pearson correlation of Table 1 metrics across all workloads, "
        "one matrix per ABI.");

    bench::Sweep sweep;

    const std::vector<std::string> kMetrics = {
        "IPC",          "L1D_MPKI",        "L2_MPKI",
        "DTLB_WPKI",    "ITLB_WPKI",       "BranchMR",
        "CapLoadDensity", "CapStoreDensity", "MemoryIntensity",
    };

    for (abi::Abi a : {abi::Abi::Hybrid, abi::Abi::Purecap}) {
        std::vector<analysis::DerivedMetrics> samples;
        for (const auto &row : sweep.rows())
            if (row.run(a).ok())
                samples.push_back(row.run(a).metrics);

        const auto matrix = analysis::correlateMetrics(samples, kMetrics);
        std::printf("--- %s ABI (n=%zu workloads)\n%s\n", abi::abiName(a),
                    samples.size(), matrix.render().c_str());

        std::printf("Strong pairs (|r| >= 0.7):\n");
        for (const auto &pair : matrix.strongPairs(0.7))
            std::printf("  %-18s <-> %-18s  r = %+.2f\n", pair.a.c_str(),
                        pair.b.c_str(), pair.r);
        std::printf("\n");
    }

    std::printf(
        "Shape check vs paper Fig. 7: under purecap the capability-access "
        "metrics become strongly\ncoupled to the cache/TLB refill metrics "
        "(near-zero coupling under hybrid, where capability\ndensity is "
        "~0 everywhere).\n");
    return 0;
}
