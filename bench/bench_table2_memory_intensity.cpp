/**
 * @file
 * Table 2: instruction-mix-based memory-intensity (MI) values and the
 * compute / balanced / memory-centric classification.
 */

#include <cstdio>

#include "analysis/intensity.hpp"
#include "common.hpp"
#include "support/table.hpp"

using namespace cheri;

int
main()
{
    bench::printHeader(
        "Table 2 - benchmark memory intensity values",
        "MI = (LD_SPEC + ST_SPEC) / (DP_SPEC + ASE_SPEC + VFP_SPEC), "
        "hybrid ABI, vs the paper's values.");

    bench::Sweep sweep;

    AsciiTable table({"benchmark", "MI (model)", "MI (paper)", "class",
                      "class match"});
    u32 matches = 0, classified = 0;
    for (const auto &row : sweep.rows()) {
        const auto &info = row.workload->info();
        if (info.paperMi == 0)
            continue;
        const double mi =
            row.run(abi::Abi::Hybrid).metrics.memoryIntensity;
        const auto cls = analysis::classifyIntensity(mi);
        const auto paper_cls = analysis::classifyIntensity(info.paperMi);
        ++classified;
        const bool match = cls == paper_cls;
        matches += match ? 1 : 0;
        table.beginRow();
        table.cell(info.name);
        table.cell(mi, 3);
        table.cell(info.paperMi, 3);
        table.cell(std::string(analysis::intensityClassName(cls)));
        table.cell(std::string(match ? "yes" : "NO"));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Intensity class agreement with the paper: %u / %u\n",
                matches, classified);
    return 0;
}
