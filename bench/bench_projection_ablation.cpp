/**
 * @file
 * Projection / ablation study: the paper's closing claim is that
 * "modest microarchitectural improvements could significantly reduce
 * these costs". The model runs the claim directly: the purecap builds
 * of the three worst-hit workloads are re-simulated with Morello's
 * prototype artefacts individually repaired (capability-aware branch
 * predictor, capability-sized store queue, both), plus two controls.
 */

#include <cstdio>

#include "analysis/projection.hpp"
#include "common.hpp"
#include "support/table.hpp"

using namespace cheri;

int
main()
{
    bench::printHeader(
        "Projection - 'modest microarchitectural improvements'",
        "Purecap re-simulated with prototype artefacts repaired; "
        "speedups are vs the unmodified purecap baseline.");

    const std::vector<std::string> targets = {
        "520.omnetpp_r", "523.xalancbmk_r", "QuickJS", "SQLite",
    };

    for (const auto &name : targets) {
        // Every ablation cell goes through the cached runner, so the
        // shared purecap baseline only ever simulates once per cache.
        const auto simulate = [&](const sim::MachineConfig &config) {
            runner::RunRequest request;
            request.workload = name;
            request.abi = abi::Abi::Purecap;
            request.scale = workloads::Scale::Small;
            request.config = config;
            return *runner::run(request, runner::RunnerOptions{}).sim;
        };

        const auto hybrid = runner::run({.workload = name,
                                         .abi = abi::Abi::Hybrid})
                                .sim;
        const auto baseline =
            sim::MachineConfig::forAbi(abi::Abi::Purecap);
        const auto rows = analysis::runProjections(simulate, baseline);

        AsciiTable table({"scenario", "model s", "speedup vs purecap",
                          "residual overhead vs hybrid"});
        for (const auto &row : rows) {
            table.beginRow();
            table.cell(row.scenario);
            table.cell(row.seconds, 4);
            table.cell(row.speedupVsBaseline, 3);
            table.cell(formatPercent(
                           row.seconds / hybrid->seconds - 1.0, 1) +
                       "%");
        }
        std::printf("--- %s\n%s\n", name.c_str(), table.render().c_str());
    }

    std::printf(
        "Shape check: the cap-aware predictor recovers most of what the "
        "purecap-benchmark ABI\nrecovers in software; combined with "
        "capability-sized store-queue entries the residual\npurecap "
        "overhead shrinks substantially — supporting the paper's "
        "projection.\n");
    return 0;
}
