/**
 * @file
 * Projection / ablation study: the paper's closing claim is that
 * "modest microarchitectural improvements could significantly reduce
 * these costs". The model runs the claim directly: the purecap builds
 * of the three worst-hit workloads are re-simulated with Morello's
 * prototype artefacts individually repaired (capability-aware branch
 * predictor, capability-sized store queue, both), plus two controls.
 */

#include <cstdio>

#include "analysis/projection.hpp"
#include "common.hpp"
#include "support/table.hpp"

using namespace cheri;

int
main()
{
    bench::printHeader(
        "Projection - 'modest microarchitectural improvements'",
        "Purecap re-simulated with prototype artefacts repaired; "
        "speedups are vs the unmodified purecap baseline.");

    auto pool = workloads::allWorkloads();
    const std::vector<std::string> targets = {
        "520.omnetpp_r", "523.xalancbmk_r", "QuickJS", "SQLite",
    };

    for (const auto &name : targets) {
        const auto *workload = workloads::findWorkload(pool, name);

        const auto runner = [&](const sim::MachineConfig &config) {
            auto result =
                workloads::runWorkload(*workload, abi::Abi::Purecap,
                                       workloads::Scale::Small, &config);
            return *result;
        };

        const auto hybrid = workloads::runWorkload(
            *workload, abi::Abi::Hybrid, workloads::Scale::Small);
        const auto baseline =
            sim::MachineConfig::forAbi(abi::Abi::Purecap);
        const auto rows = analysis::runProjections(runner, baseline);

        AsciiTable table({"scenario", "model s", "speedup vs purecap",
                          "residual overhead vs hybrid"});
        for (const auto &row : rows) {
            table.beginRow();
            table.cell(row.scenario);
            table.cell(row.seconds, 4);
            table.cell(row.speedupVsBaseline, 3);
            table.cell(formatPercent(
                           row.seconds / hybrid->seconds - 1.0, 1) +
                       "%");
        }
        std::printf("--- %s\n%s\n", name.c_str(), table.render().c_str());
    }

    std::printf(
        "Shape check: the cap-aware predictor recovers most of what the "
        "purecap-benchmark ABI\nrecovers in software; combined with "
        "capability-sized store-queue entries the residual\npurecap "
        "overhead shrinks substantially — supporting the paper's "
        "projection.\n");
    return 0;
}
