/**
 * @file
 * Shared plumbing for the per-table/per-figure benchmark harnesses:
 * run the workload sweep across ABIs once and expose the results plus
 * small formatting helpers.
 */

#ifndef CHERI_BENCH_COMMON_HPP
#define CHERI_BENCH_COMMON_HPP

#include <optional>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "analysis/topdown.hpp"
#include "workloads/registry.hpp"

namespace cheri::bench {

struct AbiRun
{
    std::optional<sim::SimResult> result;
    analysis::DerivedMetrics metrics{};
    analysis::TopDown topdownTruth{};
    analysis::TopDown topdownPaper{};

    bool ok() const { return result.has_value(); }
};

struct SweepRow
{
    const workloads::Workload *workload = nullptr;
    AbiRun runs[3]; //!< Indexed by static_cast<int>(Abi).

    const AbiRun &run(abi::Abi a) const
    {
        return runs[static_cast<int>(a)];
    }

    /** Simulated seconds under @p a; negative when NA. */
    double seconds(abi::Abi a) const;

    /** seconds(a) / seconds(hybrid); negative when NA. */
    double slowdown(abi::Abi a) const;
};

class Sweep
{
  public:
    /**
     * Run every named workload under all three ABIs.
     * @param names Empty = all 20 workloads.
     */
    explicit Sweep(const std::vector<std::string> &names = {},
                   workloads::Scale scale = workloads::Scale::Small);

    const std::vector<SweepRow> &rows() const { return rows_; }
    const SweepRow *find(const std::string &name) const;

  private:
    std::vector<std::unique_ptr<workloads::Workload>> pool_;
    std::vector<SweepRow> rows_;
};

/** "1.234" or "NA". */
std::string fmtOrNa(double value, int precision = 3);

/** Print a standard header for a reproduction harness. */
void printHeader(const std::string &artifact, const std::string &note);

} // namespace cheri::bench

#endif // CHERI_BENCH_COMMON_HPP
