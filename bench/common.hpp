/**
 * @file
 * Shared plumbing for the per-table/per-figure benchmark harnesses:
 * run the workload sweep across ABIs once — through the parallel,
 * cached experiment runner — and expose the results plus small
 * formatting helpers.
 */

#ifndef CHERI_BENCH_COMMON_HPP
#define CHERI_BENCH_COMMON_HPP

#include <optional>
#include <string>
#include <vector>

#include "runner/runner.hpp"
#include "workloads/registry.hpp"

namespace cheri::bench {

struct AbiRun
{
    std::optional<sim::SimResult> result;
    analysis::DerivedMetrics metrics{};
    analysis::TopDown topdownTruth{};
    analysis::TopDown topdownPaper{};

    bool ok() const { return result.has_value(); }
};

/** One point of a row's scenario grid: an (abi, allocator) pair. */
struct SweepScenario
{
    abi::Abi abi = abi::Abi::Purecap;
    alloc::AllocatorConfig allocator{};
};

/**
 * One workload's results over the scenario grid. The grid is
 * allocator-major, ABI-minor in plan order; the classic three-ABI
 * harnesses keep using run(abi), which resolves to the
 * default-allocator cell.
 */
struct SweepRow
{
    const workloads::Workload *workload = nullptr;
    std::vector<SweepScenario> scenarios;
    std::vector<AbiRun> runs; //!< Parallel to scenarios.

    /**
     * The default-allocator cell under @p a (every pre-axis caller's
     * meaning). Falls back to the row's first cell with that ABI when
     * the sweep ran without the default allocator; asserts on a grid
     * with no such ABI at all.
     */
    const AbiRun &run(abi::Abi a) const;

    /** The exact (abi, allocator) cell, or nullptr when absent. */
    const AbiRun *run(abi::Abi a,
                      const alloc::AllocatorConfig &allocator) const;

    /** Simulated seconds under @p a; negative when NA. */
    double seconds(abi::Abi a) const;

    /** seconds(a) / seconds(hybrid); negative when NA. */
    double slowdown(abi::Abi a) const;
};

struct SweepOptions
{
    std::vector<std::string> names; //!< Empty = all 20 workloads.
    workloads::Scale scale = workloads::Scale::Small;
    u64 seed = 42;

    /** Allocator axis values; empty = just the default allocator. */
    std::vector<alloc::AllocatorConfig> allocators{};

    u32 jobs = 0;      //!< Runner pool width; 0 = hardware threads.
    bool cache = true; //!< Replay unchanged cells from the cache.
};

/**
 * The standard three-ABI sweep, rebuilt as a thin adapter over
 * runner::runPlan(): cells execute on the runner's thread pool and
 * unchanged cells replay from the result cache, but rows are always
 * in plan (presentation) order.
 */
class Sweep
{
  public:
    explicit Sweep(SweepOptions options = {});

    /** Convenience: named workloads at a scale, runner defaults. */
    explicit Sweep(const std::vector<std::string> &names,
                   workloads::Scale scale = workloads::Scale::Small);

    const std::vector<SweepRow> &rows() const { return rows_; }
    const SweepRow *find(const std::string &name) const;

    /** Runner accounting for the sweep (cache hits, wall time...). */
    const runner::PlanStats &stats() const { return stats_; }

  private:
    std::vector<std::unique_ptr<workloads::Workload>> pool_;
    std::vector<SweepRow> rows_;
    runner::PlanStats stats_;
};

/** "1.234" or "NA". */
std::string fmtOrNa(double value, int precision = 3);

/** Print a standard header for a reproduction harness. */
void printHeader(const std::string &artifact, const std::string &note);

} // namespace cheri::bench

#endif // CHERI_BENCH_COMMON_HPP
