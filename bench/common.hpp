/**
 * @file
 * Shared plumbing for the per-table/per-figure benchmark harnesses:
 * run the workload sweep across ABIs once — through the parallel,
 * cached experiment runner — and expose the results plus small
 * formatting helpers.
 */

#ifndef CHERI_BENCH_COMMON_HPP
#define CHERI_BENCH_COMMON_HPP

#include <optional>
#include <string>
#include <vector>

#include "runner/runner.hpp"
#include "workloads/registry.hpp"

namespace cheri::bench {

struct AbiRun
{
    std::optional<sim::SimResult> result;
    analysis::DerivedMetrics metrics{};
    analysis::TopDown topdownTruth{};
    analysis::TopDown topdownPaper{};

    bool ok() const { return result.has_value(); }
};

struct SweepRow
{
    const workloads::Workload *workload = nullptr;
    AbiRun runs[abi::kAllAbis.size()]; //!< Indexed by static_cast<int>(Abi).

    // The runs[] array is indexed by the Abi enumerator value; this
    // pins the enumerator order and count the indexing relies on.
    static_assert(abi::kAllAbis.size() == 3 &&
                      static_cast<int>(abi::Abi::Hybrid) == 0 &&
                      static_cast<int>(abi::Abi::Purecap) == 1 &&
                      static_cast<int>(abi::Abi::Benchmark) == 2,
                  "SweepRow::runs indexing assumes the Hybrid/Purecap/"
                  "Benchmark enumerator order — update runs[] and every "
                  "static_cast<int>(Abi) index together");

    const AbiRun &run(abi::Abi a) const
    {
        return runs[static_cast<int>(a)];
    }

    /** Simulated seconds under @p a; negative when NA. */
    double seconds(abi::Abi a) const;

    /** seconds(a) / seconds(hybrid); negative when NA. */
    double slowdown(abi::Abi a) const;
};

struct SweepOptions
{
    std::vector<std::string> names; //!< Empty = all 20 workloads.
    workloads::Scale scale = workloads::Scale::Small;
    u64 seed = 42;

    u32 jobs = 0;      //!< Runner pool width; 0 = hardware threads.
    bool cache = true; //!< Replay unchanged cells from the cache.
};

/**
 * The standard three-ABI sweep, rebuilt as a thin adapter over
 * runner::runPlan(): cells execute on the runner's thread pool and
 * unchanged cells replay from the result cache, but rows are always
 * in plan (presentation) order.
 */
class Sweep
{
  public:
    explicit Sweep(SweepOptions options = {});

    /** Convenience: named workloads at a scale, runner defaults. */
    explicit Sweep(const std::vector<std::string> &names,
                   workloads::Scale scale = workloads::Scale::Small);

    const std::vector<SweepRow> &rows() const { return rows_; }
    const SweepRow *find(const std::string &name) const;

    /** Runner accounting for the sweep (cache hits, wall time...). */
    const runner::PlanStats &stats() const { return stats_; }

  private:
    std::vector<std::unique_ptr<workloads::Workload>> pool_;
    std::vector<SweepRow> rows_;
    runner::PlanStats stats_;
};

/** "1.234" or "NA". */
std::string fmtOrNa(double value, int precision = 3);

/** Print a standard header for a reproduction harness. */
void printHeader(const std::string &artifact, const std::string &note);

} // namespace cheri::bench

#endif // CHERI_BENCH_COMMON_HPP
