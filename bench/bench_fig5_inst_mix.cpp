/**
 * @file
 * Figure 5: distribution of speculative instruction-mix ratios by
 * ABI. Reproduces §4.6's quantitative claims: DP_SPEC share rises
 * substantially under purecap while LD/ST shares stay comparatively
 * stable.
 */

#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "pmu/events.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace cheri;

namespace {

double
share(const pmu::EventCounts &counts, pmu::Event event)
{
    const double total =
        counts.getF(pmu::Event::LdSpec) + counts.getF(pmu::Event::StSpec) +
        counts.getF(pmu::Event::DpSpec) +
        counts.getF(pmu::Event::AseSpec) +
        counts.getF(pmu::Event::VfpSpec) +
        counts.getF(pmu::Event::BrImmedSpec) +
        counts.getF(pmu::Event::BrIndirectSpec) +
        counts.getF(pmu::Event::BrReturnSpec);
    return total > 0 ? counts.getF(event) / total : 0.0;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 5 - speculative instruction-mix ratios by ABI",
        "Shares of the *_SPEC categories; delta columns quantify the "
        "purecap shift.");

    bench::Sweep sweep;

    const struct
    {
        pmu::Event event;
        const char *label;
    } kCats[] = {
        {pmu::Event::DpSpec, "DP_SPEC"},
        {pmu::Event::LdSpec, "LD_SPEC"},
        {pmu::Event::StSpec, "ST_SPEC"},
        {pmu::Event::AseSpec, "ASE_SPEC"},
        {pmu::Event::VfpSpec, "VFP_SPEC"},
        {pmu::Event::BrImmedSpec, "BR_IMMED_SPEC"},
        {pmu::Event::BrIndirectSpec, "BR_INDIRECT_SPEC"},
        {pmu::Event::BrReturnSpec, "BR_RETURN_SPEC"},
    };

    AsciiTable table({"benchmark", "category", "hybrid %", "purecap %",
                      "delta pp"});
    std::vector<double> dp_delta, ld_delta, st_delta, dp_growth;
    for (const auto &row : sweep.rows()) {
        const auto &hyb = row.run(abi::Abi::Hybrid);
        const auto &pc = row.run(abi::Abi::Purecap);
        if (!hyb.ok() || !pc.ok())
            continue;
        dp_growth.push_back(
            pc.result->counts.getF(pmu::Event::DpSpec) /
                hyb.result->counts.getF(pmu::Event::DpSpec) -
            1.0);
        for (const auto &cat : kCats) {
            const double h = share(hyb.result->counts, cat.event) * 100;
            const double p = share(pc.result->counts, cat.event) * 100;
            table.beginRow();
            table.cell(row.workload->info().name);
            table.cell(std::string(cat.label));
            table.cell(h, 2);
            table.cell(p, 2);
            table.cell(p - h, 2);
            if (cat.event == pmu::Event::DpSpec)
                dp_delta.push_back(p - h);
            if (cat.event == pmu::Event::LdSpec)
                ld_delta.push_back(p - h);
            if (cat.event == pmu::Event::StSpec)
                st_delta.push_back(p - h);
        }
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("DP_SPEC count growth under purecap: %.1f%% .. %.1f%% "
                "(paper: DP increases of 5.21%% .. 29.31%%)\n",
                *std::min_element(dp_growth.begin(), dp_growth.end()) *
                    100,
                *std::max_element(dp_growth.begin(), dp_growth.end()) *
                    100);
    std::printf("DP_SPEC share change: %.2f .. %.2f pp\n",
                *std::min_element(dp_delta.begin(), dp_delta.end()),
                *std::max_element(dp_delta.begin(), dp_delta.end()));
    std::printf("LD_SPEC share stdev across deltas: %.2f pp, ST_SPEC: "
                "%.2f pp (paper: 2.01 / 1.47 pp — 'relatively stable')\n",
                stdev(ld_delta), stdev(st_delta));
    return 0;
}
