/**
 * @file
 * Table 1: the PMU event / derived-metric catalog, validated live —
 * plus a demonstration of the §3.2 measurement methodology itself:
 * the six-counter PMU forces event-group multiplexing over repeated
 * runs (pmcstat style), and determinism keeps the merge exact
 * (the paper's <1% variance).
 */

#include <cstdio>

#include "common.hpp"
#include "pmu/pmu.hpp"
#include "support/table.hpp"

using namespace cheri;

int
main()
{
    bench::printHeader(
        "Table 1 - key PMU events, derived metrics, and the pmcstat "
        "multiplexing methodology",
        "Catalog + a live multi-run collection on 519.lbm_r.");

    // 1. The event catalog.
    AsciiTable catalog({"event", "architectural", "description"});
    for (std::size_t i = 0; i < pmu::kNumEvents; ++i) {
        const auto event = static_cast<pmu::Event>(i);
        catalog.beginRow();
        catalog.cell(std::string(pmu::eventName(event)));
        catalog.cell(std::string(pmu::isArchitectural(event) ? "yes"
                                                             : "model"));
        catalog.cell(std::string(pmu::eventDescription(event)));
    }
    std::printf("%s\n", catalog.render().c_str());

    // 2. pmcstat-style multiplexed collection.
    const auto events = pmu::PmcSession::paperEventSet();
    const auto groups = pmu::PmcSession::schedule(events);
    std::printf("Requested events: %zu -> %zu groups of <= %zu counters "
                "-> %zu workload runs\n(paper: nine runs per benchmark "
                "for its larger set)\n\n",
                events.size(), groups.size(), pmu::kNumSlots,
                groups.size());

    const runner::RunRequest lbm{.workload = "519.lbm_r",
                                 .abi = abi::Abi::Purecap,
                                 .scale = workloads::Scale::Tiny};

    pmu::PmcSession session;
    const auto collected = session.collect(
        events, [&] { return runner::run(lbm).sim->counts; });

    // 3. Validate the merge against a single full-visibility run.
    const auto direct = runner::run(lbm).sim;
    u64 mismatches = 0;
    for (const auto event : events)
        if (collected.get(event) != direct->counts.get(event))
            ++mismatches;

    AsciiTable sample({"event", "multiplexed", "direct"});
    for (const auto event :
         {pmu::Event::CpuCycles, pmu::Event::InstRetired,
          pmu::Event::L1dCacheRefill, pmu::Event::CapMemAccessRd,
          pmu::Event::MemAccessRdCtag}) {
        sample.beginRow();
        sample.cell(std::string(pmu::eventName(event)));
        sample.cell(static_cast<unsigned long long>(collected.get(event)));
        sample.cell(static_cast<unsigned long long>(
            direct->counts.get(event)));
    }
    std::printf("%s\n", sample.render().c_str());
    std::printf("Multiplexed-vs-direct mismatches: %llu of %zu events "
                "(deterministic replay => exact merge; run-to-run "
                "variance 0%%, paper <1%%)\n",
                static_cast<unsigned long long>(mismatches),
                events.size());

    // 4. Derived metrics on the merged counts (Table 1 formulas).
    const auto metrics =
        analysis::DerivedMetrics::compute(collected.toEventCounts());
    std::printf("\nDerived from the merged counts: IPC=%.3f CPI=%.3f "
                "L1D_MR=%.4f CapLoadDensity=%.4f MI=%.3f\n",
                metrics.ipc, metrics.cpi, metrics.l1dMissRate,
                metrics.capLoadDensity, metrics.memoryIntensity);
    return 0;
}
