/**
 * @file
 * Table 4 + Figure 3: hierarchical top-down breakdown for the six
 * drill-down workloads — Retiring / Bad Speculation / Frontend /
 * Backend at the top, Memory (L1 / L2 / ExtMem) vs Core below.
 * Printed twice: with the paper's architectural-event formulas and
 * with the model's ground-truth slot accounting.
 */

#include <cstdio>

#include "common.hpp"
#include "support/table.hpp"

using namespace cheri;

namespace {

void
printBreakdown(const char *title, const bench::SweepRow &row,
               bool model_truth)
{
    AsciiTable table({"quantity", "hybrid", "benchmark", "purecap"});

    auto add = [&](const char *label, auto get) {
        table.beginRow();
        table.cell(std::string(label));
        for (abi::Abi a : {abi::Abi::Hybrid, abi::Abi::Benchmark,
                           abi::Abi::Purecap}) {
            const bench::AbiRun &run = row.run(a);
            table.cell(run.ok() ? formatFixed(get(run), 3)
                                : std::string("NA"));
        }
    };

    auto td = [model_truth](const bench::AbiRun &r) -> const analysis::TopDown & {
        return model_truth ? r.topdownTruth : r.topdownPaper;
    };

    add("Speedup vs hybrid", [&](const bench::AbiRun &r) {
        const double h = row.seconds(abi::Abi::Hybrid);
        return h / r.result->seconds;
    });
    add("IPC", [](const bench::AbiRun &r) { return r.metrics.ipc; });
    add("Retiring", [&](const bench::AbiRun &r) { return td(r).retiring; });
    add("Bad Spec",
        [&](const bench::AbiRun &r) { return td(r).badSpeculation; });
    add("Frontend Bound",
        [&](const bench::AbiRun &r) { return td(r).frontendBound; });
    add("Backend Bound",
        [&](const bench::AbiRun &r) { return td(r).backendBound; });
    add("+ Memory Bound",
        [&](const bench::AbiRun &r) { return td(r).memoryBound; });
    add("--- L1 Bound",
        [&](const bench::AbiRun &r) { return td(r).l1Bound; });
    add("--- L2 Bound",
        [&](const bench::AbiRun &r) { return td(r).l2Bound; });
    add("--- ExtMem Bound",
        [&](const bench::AbiRun &r) { return td(r).extMemBound; });
    add("+ Core Bound",
        [&](const bench::AbiRun &r) { return td(r).coreBound; });
    add("(PCC stall share)",
        [&](const bench::AbiRun &r) { return td(r).pccStallShare; });

    std::printf("--- %s [%s]\n%s\n", row.workload->info().name.c_str(),
                title, table.render().c_str());
}

} // namespace

int
main()
{
    bench::printHeader(
        "Table 4 / Figure 3 - top-down breakdown (6 selected workloads)",
        "Per workload: the paper's approximation formulas and the model's "
        "exact slot accounting.");

    bench::Sweep sweep(bench::SweepOptions{.names = workloads::table4Names()});

    for (const auto &row : sweep.rows()) {
        printBreakdown("paper formulas (architectural events)", row,
                       false);
        printBreakdown("model ground truth (slot accounting)", row, true);
    }

    std::printf(
        "Shape checks vs paper Table 4 / Fig. 3:\n"
        " - memory-intensive workloads (omnetpp, SQLite, QuickJS): backend "
        "bound rises under purecap;\n"
        " - 519.lbm_r: purecap slightly FASTER, memory-bound share drops "
        "(layout de-aliasing);\n"
        " - PCC stall share is nonzero only under purecap (zero under the "
        "benchmark ABI by design).\n");
    return 0;
}
