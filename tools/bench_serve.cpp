/**
 * @file
 * bench_serve — the CI harness for the experiment service.
 *
 * Drives an in-process ExperimentService (no sockets: this measures
 * the queue/dedup/worker machinery, not loopback TCP) with the tier-1
 * table-4 sweep submitted as per-workload jobs, each duplicated 4×,
 * and emits BENCH_serve.json: jobs/sec, the dedup hit rate, p50/p99
 * queue latency, and serve_efficiency — direct runner wall time over
 * service wall time for the same unique cells, the "how much does the
 * daemon machinery cost" ratio.
 *
 * With --baseline the harness gates like bench_throughput: the
 * wall-clock metric gated is the RATIO (serve_efficiency — host speed
 * cancels), and the deterministic counter (dedup_hit_rate — fixed by
 * the submission pattern: 4× duplication ⇒ 0.75) is gated directly.
 * jobs/sec and the latency percentiles are informational.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/runner.hpp"
#include "serve/service.hpp"
#include "workloads/registry.hpp"

namespace cheri {
namespace {

struct Options
{
    workloads::Scale scale = workloads::Scale::Small;
    u32 workers = 0; //!< 0 = hardware threads.
    u64 seed = 42;
    u32 duplicates = 4; //!< Submissions per distinct job.
    std::string out = "BENCH_serve.json";
    std::string baseline;
    double tolerance = 0.10;
};

[[noreturn]] void
usage(int status)
{
    std::fprintf(
        stderr,
        "usage: bench_serve [options]\n"
        "  --scale tiny|small|ref   cell scale (default small)\n"
        "  --workers N              service workers (default: "
        "hardware)\n"
        "  --seed N                 sweep seed (default 42)\n"
        "  --duplicates N           submissions per job (default 4)\n"
        "  --out FILE               JSON output (default "
        "BENCH_serve.json)\n"
        "  --baseline FILE          gate against a prior JSON\n"
        "  --tolerance FRAC         allowed relative drop "
        "(default 0.10)\n");
    std::exit(status);
}

const char *
scaleName(workloads::Scale scale)
{
    switch (scale) {
      case workloads::Scale::Tiny: return "tiny";
      case workloads::Scale::Small: return "small";
      case workloads::Scale::Ref: return "ref";
    }
    return "?";
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct ServeMeasure
{
    double wall_seconds = 0;
    u64 jobs = 0;
    u64 cells_submitted = 0;
    u64 unique_cells = 0;
    u64 simulated = 0;
    double dedup_hit_rate = 0;
    double jobs_per_sec = 0;
    double p50 = 0;
    double p99 = 0;
};

/**
 * The service pass: one job per table-4 workload (all three ABIs),
 * every job submitted `duplicates` times before the workers start —
 * guaranteed in-flight overlap, so the dedup rate is exact and
 * deterministic: 1 - 1/duplicates.
 */
ServeMeasure
runService(const Options &opt)
{
    serve::ServiceConfig config;
    config.workers = opt.workers;
    config.cache = false; // measure dedup + workers, not the disk
    config.autostart = false;
    serve::ExperimentService service(config);

    std::vector<serve::JobSpec> specs;
    for (const auto &name : workloads::table4Names()) {
        serve::JobSpec spec;
        spec.workload = name;
        spec.scale = scaleName(opt.scale);
        spec.seed = opt.seed;
        specs.push_back(std::move(spec));
    }

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::string> ids;
    for (u32 dup = 0; dup < std::max<u32>(1, opt.duplicates); ++dup)
        for (const auto &spec : specs) {
            std::string id;
            std::string error;
            if (service.submit(spec, &id, &error) !=
                serve::SubmitStatus::Accepted) {
                std::fprintf(stderr, "bench_serve: submit failed: %s\n",
                             error.c_str());
                std::exit(2);
            }
            ids.push_back(std::move(id));
        }
    service.start();
    for (const auto &id : ids)
        if (!service.waitResult(id)) {
            std::fprintf(stderr, "bench_serve: job %s vanished\n",
                         id.c_str());
            std::exit(2);
        }
    ServeMeasure m;
    m.wall_seconds = secondsSince(start);
    const auto stats = service.stats();
    m.jobs = stats.jobsSubmitted;
    m.cells_submitted = stats.cellsSubmitted;
    m.unique_cells = stats.uniqueCells;
    m.simulated = stats.simulated;
    m.dedup_hit_rate =
        stats.cellsSubmitted
            ? static_cast<double>(stats.inflightDedup +
                                  stats.memoHits + stats.cacheHits) /
                  static_cast<double>(stats.cellsSubmitted)
            : 0;
    m.jobs_per_sec = m.wall_seconds > 0
                         ? static_cast<double>(m.jobs) / m.wall_seconds
                         : 0;
    m.p50 = stats.queueLatencyP50;
    m.p99 = stats.queueLatencyP99;
    return m;
}

/** The same unique cells straight through runPlan — the denominator. */
double
runDirect(const Options &opt)
{
    runner::ExperimentPlan plan;
    for (const auto &name : workloads::table4Names())
        for (abi::Abi abi : abi::kAllAbis) {
            runner::RunRequest request;
            request.workload = name;
            request.abi = abi;
            request.scale = opt.scale;
            request.seed = opt.seed;
            plan.add(request);
        }
    runner::RunnerOptions ropt;
    ropt.jobs = opt.workers;
    ropt.cache = false;
    const auto start = std::chrono::steady_clock::now();
    runner::runPlan(plan, ropt);
    return secondsSince(start);
}

void
writeJson(const Options &opt, const ServeMeasure &serve,
          double direct_wall, double efficiency)
{
    std::FILE *f = std::fopen(opt.out.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_serve: cannot write %s\n",
                     opt.out.c_str());
        std::exit(2);
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": 1,\n");
    std::fprintf(f, "  \"scale\": \"%s\",\n", scaleName(opt.scale));
    std::fprintf(f, "  \"duplicates\": %u,\n", opt.duplicates);
    std::fprintf(f, "  \"jobs\": %llu,\n",
                 static_cast<unsigned long long>(serve.jobs));
    std::fprintf(f, "  \"cells_submitted\": %llu,\n",
                 static_cast<unsigned long long>(serve.cells_submitted));
    std::fprintf(f, "  \"unique_cells\": %llu,\n",
                 static_cast<unsigned long long>(serve.unique_cells));
    std::fprintf(f, "  \"simulated\": %llu,\n",
                 static_cast<unsigned long long>(serve.simulated));
    std::fprintf(f, "  \"service_wall_seconds\": %.6f,\n",
                 serve.wall_seconds);
    std::fprintf(f, "  \"direct_wall_seconds\": %.6f,\n", direct_wall);
    std::fprintf(f, "  \"jobs_per_sec\": %.3f,\n", serve.jobs_per_sec);
    std::fprintf(f, "  \"queue_latency_p50_s\": %.6f,\n", serve.p50);
    std::fprintf(f, "  \"queue_latency_p99_s\": %.6f,\n", serve.p99);
    std::fprintf(f, "  \"dedup_hit_rate\": %.6f,\n",
                 serve.dedup_hit_rate);
    std::fprintf(f, "  \"serve_efficiency\": %.4f\n", efficiency);
    std::fprintf(f, "}\n");
    std::fclose(f);
}

double
jsonField(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = text.find(needle);
    if (pos == std::string::npos) {
        std::fprintf(stderr, "bench_serve: baseline lacks key '%s'\n",
                     key.c_str());
        std::exit(2);
    }
    return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

bool
regressed(const char *name, double current, double base,
          double tolerance)
{
    if (base <= 0)
        return false;
    const double floor = base * (1.0 - tolerance);
    const bool bad = current < floor;
    std::fprintf(stderr, "  %-24s %12.4f  baseline %12.4f  %s\n", name,
                 current, base, bad ? "REGRESSED" : "ok");
    return bad;
}

int
checkBaseline(const Options &opt, const ServeMeasure &serve,
              double efficiency)
{
    std::ifstream in(opt.baseline);
    if (!in) {
        std::fprintf(stderr, "bench_serve: cannot read baseline %s\n",
                     opt.baseline.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    std::fprintf(stderr, "baseline gate (tolerance %.0f%%):\n",
                 opt.tolerance * 100);
    bool bad = false;
    // Ratio gate: direct/service on the same host, so machine speed
    // cancels and only real service overhead can drag it down.
    bad |= regressed("serve_efficiency", efficiency,
                     jsonField(text, "serve_efficiency"),
                     opt.tolerance);
    // Deterministic: the submission pattern fixes this exactly; any
    // drop means dedup (memo/in-flight matching) broke.
    bad |= regressed("dedup_hit_rate", serve.dedup_hit_rate,
                     jsonField(text, "dedup_hit_rate"), opt.tolerance);
    return bad ? 1 : 0;
}

int
benchMain(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                usage(2);
            }
            return argv[++i];
        };
        if (arg == "--scale") {
            const std::string s = next();
            if (s == "tiny")
                opt.scale = workloads::Scale::Tiny;
            else if (s == "small")
                opt.scale = workloads::Scale::Small;
            else if (s == "ref")
                opt.scale = workloads::Scale::Ref;
            else
                usage(2);
        } else if (arg == "--workers") {
            opt.workers = static_cast<u32>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--duplicates") {
            opt.duplicates = static_cast<u32>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg == "--out") {
            opt.out = next();
        } else if (arg == "--baseline") {
            opt.baseline = next();
        } else if (arg == "--tolerance") {
            opt.tolerance = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(2);
        }
    }

    std::fprintf(stderr,
                 "bench_serve: table4 jobs x%u duplicates, scale %s\n",
                 opt.duplicates, scaleName(opt.scale));

    const ServeMeasure serve = runService(opt);
    std::fprintf(stderr,
                 "  service: %8.3f s  %llu jobs (%llu cells, %llu "
                 "unique, %llu simulated)\n",
                 serve.wall_seconds,
                 static_cast<unsigned long long>(serve.jobs),
                 static_cast<unsigned long long>(serve.cells_submitted),
                 static_cast<unsigned long long>(serve.unique_cells),
                 static_cast<unsigned long long>(serve.simulated));

    const double direct = runDirect(opt);
    const double efficiency =
        serve.wall_seconds > 0 ? direct / serve.wall_seconds : 0;
    std::fprintf(stderr,
                 "  direct : %8.3f s  -> efficiency %.3f, dedup "
                 "%.3f, %.1f jobs/s, queue p50 %.4fs p99 %.4fs\n",
                 direct, efficiency, serve.dedup_hit_rate,
                 serve.jobs_per_sec, serve.p50, serve.p99);

    writeJson(opt, serve, direct, efficiency);
    std::fprintf(stderr, "wrote %s\n", opt.out.c_str());

    if (!opt.baseline.empty())
        return checkBaseline(opt, serve, efficiency);
    return 0;
}

} // namespace
} // namespace cheri

int
main(int argc, char **argv)
{
    return cheri::benchMain(argc, argv);
}
