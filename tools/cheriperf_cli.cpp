/**
 * @file
 * cheriperf — the command-line driver.
 *
 * Run any workload proxy under any ABI with any microarchitectural
 * knob, and inspect the results the way the paper does: derived
 * metrics, the top-down hierarchy, or raw PMU event counts. run and
 * sweep construct runner::RunRequest cells and execute them through
 * the parallel, cached experiment runner.
 *
 *   cheriperf list
 *   cheriperf run --workload 520.omnetpp_r --abi purecap [options]
 *   cheriperf sweep [--workload QuickJS | --set table3] [options]
 *   cheriperf corun <w1[@abi]> [w2[@abi] ...] [--cores N] [options]
 *   cheriperf trace <workload> --abi purecap --epoch 50000 --out t.jsonl
 *   cheriperf autotune --seed 1 --budget 32 [--knobs a,b] [--csv]
 *   cheriperf verify --seed 1 --iters 100000 --suite cap|mem|invariants
 *   cheriperf events
 *   cheriperf knobs
 *   cheriperf clear-cache
 *
 * Options for run/sweep:
 *   --scale tiny|small|ref     problem size (default small)
 *   --seed N                   workload RNG seed (default 42)
 *   --cap-aware-bp             capability-aware branch predictor
 *   --wide-sq                  capability-sized store-queue entries
 *   --tag-latency N            extra cycles per capability access
 *   --l1d-kib N                L1D capacity
 *   --jobs N                   runner threads (default: hardware)
 *   --cores N                  sweep: N-way homogeneous self-co-run
 *                              per cell; corun: SoC core count
 *                              (default: the number of lanes)
 *   --no-cache                 always re-simulate (skip result cache)
 *   --cache-dir PATH           result cache location
 *   --set table3|table4|all    sweep workload set (default all)
 *   --raw                      print raw PMU events too
 *   --csv                      machine-readable output
 *   --approx[=N]               sampled sweep mode: simulate 1-in-N
 *                              epochs (default 10), extrapolate totals,
 *                              report per-metric error bars
 *   --allocators a,b,c         sweep/submit: allocator-axis values
 *                              (freelist|bump|sizeclass, each with an
 *                              optional +revoke suffix); the CSV gains
 *                              an allocator column after abi
 *   --set alloc.<key>=<value>  allocator knobs for a single cell:
 *                              alloc.strategy, alloc.revoke,
 *                              alloc.quarantine_kib
 *   --axis                     sweep: list experiment axes and exit
 *   --trace=LIST               comma-list of observability sinks:
 *                              epochs[:N] (epoch JSONL, N insts per
 *                              epoch) and profile (simulator
 *                              self-profile + hot-path telemetry on
 *                              stderr)
 *
 * Deprecated aliases (one-line migration hint on stderr):
 *   --emit-epochs  -> --trace=epochs
 *   --epoch N      -> --trace=epochs:N   (still primary for `trace`)
 *   --profile      -> --trace=profile
 *
 * Tracing (trace command, or sweep --trace=epochs):
 *   --epoch N                  retired insts per epoch (default 100000)
 *   --out PATH                 JSONL destination (trace: stdout when
 *                              omitted; sweep: epochs.jsonl)
 *
 * Verification (verify command):
 *   --seed N --iters M --jobs N --suite cap|mem|invariants|all
 *   --replay "cap base=0x... ..."   re-run one shrunk repro line
 *   --corpus-dir PATH          write shrunk failures as .repro files
 *   --inject-representability-bug   harness-level negative test
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "alloc/policy.hpp"
#include "analysis/metrics.hpp"
#include "analysis/topdown.hpp"
#include "runner/runner.hpp"
#include "serve/client.hpp"
#include "serve/render.hpp"
#include "serve/server.hpp"
#include "support/fmt.hpp"
#include "support/serialize.hpp"
#include "support/table.hpp"
#include "support/telemetry.hpp"
#include "trace/jsonl.hpp"
#include "trace/profile.hpp"
#include "tune/frontier.hpp"
#include "tune/knobs.hpp"
#include "tune/tuner.hpp"
#include "verify/verify.hpp"
#include "workloads/registry.hpp"

using namespace cheri;

namespace {

struct Options
{
    std::string command;
    std::string workload;
    std::vector<std::string> lane_specs; //!< corun positionals.
    std::string set;
    std::string abi = "purecap";
    workloads::Scale scale = workloads::Scale::Small;
    u64 seed = 42;
    bool cap_aware_bp = false;
    bool wide_sq = false;
    u64 tag_latency = 0;
    u64 l1d_kib = 64;
    u64 jobs = 0;
    u64 cores = 0; //!< 0 = default (1 for sweep, #lanes for corun).
    bool cache = true;
    std::string cache_dir;
    bool raw = false;
    bool csv = false;
    u64 epoch_insts = 100'000;
    std::string out;
    bool emit_epochs = false;
    bool profile = false;
    bool approx = false;
    u64 approx_rate = 10;
    bool fast_path = true;   //!< Hidden escape hatch (--no-fastpath).
    bool block_cache = true; //!< Hidden escape hatch (--no-blockcache).

    // Allocator axis (sweep/submit) and --set alloc.* knobs.
    std::string allocators; //!< --allocators comma list; "" = axis off.
    alloc::AllocatorConfig alloc_base{}; //!< --set alloc.* base config.
    bool alloc_quarantine_set = false; //!< alloc.quarantine_kib given:
                                       //!< also retunes --allocators
                                       //!< values that revoke.
    bool axis_listing = false;         //!< sweep --axis.

    // Machine knobs (--set name=value), validated at parse time and
    // applied to every cell's MachineConfig after the legacy flags.
    std::vector<std::pair<std::string, std::string>> machine_knobs;

    // autotune command.
    u64 budget = 32;        //!< --budget: max probes.
    std::string tune_knobs; //!< --knobs comma list ("" = all tunable).
    std::string trace_out;  //!< --trace-out: search trace file.

    // serve / submit commands.
    u64 port = 0;
    std::string port_file;
    u64 workers = 0;
    u64 queue_depth = 4096;
    s64 priority = 0;
    bool stream = false;
    bool abi_set = false; //!< --abi given explicitly (submit default
                          //!< is otherwise the full ABI sweep).

    // verify command.
    u64 iters = 100'000;
    std::string suite = "all";
    std::string replay;
    std::string corpus_dir;
    bool inject_bug = false;
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: cheriperf "
        "<list|events|knobs|run|sweep|corun|trace|autotune|verify|"
        "serve|submit|clear-cache> [options]\n"
        "  run/sweep options:\n"
        "    --workload NAME   (required for run; see 'cheriperf list')\n"
        "    --abi hybrid|purecap|benchmark   (run only)\n"
        "    --set table3|table4|all   (sweep only; default all)\n"
        "    --scale tiny|small|ref   --seed N\n"
        "    --cap-aware-bp  --wide-sq  --tag-latency N  --l1d-kib N\n"
        "    --jobs N  --cores N  --no-cache  --cache-dir PATH\n"
        "    --raw  --csv  --approx[=N]  --trace=epochs[:N],profile\n"
        "    --allocators a,b,c   (sweep/submit: allocator axis; adds\n"
        "    an allocator CSV column; see 'cheriperf sweep --axis')\n"
        "    --set alloc.strategy=S | alloc.revoke=on|off |\n"
        "    alloc.quarantine_kib=N   (allocator knobs for one cell)\n"
        "    --set <knob>=<value>   (machine knobs, e.g. --set\n"
        "    mem.l1d_kib=128; see 'cheriperf knobs' for the registry)\n"
        "    --axis   (sweep only: list experiment axes and exit)\n"
        "  autotune options (design-space search; DESIGN.md §10):\n"
        "    --seed N     search seed (candidate sampling)\n"
        "    --budget N   max probes, candidate x rung (default 32)\n"
        "    --knobs a,b  searchable knobs (default: every knob with\n"
        "    a menu; see 'cheriperf knobs')\n"
        "    --csv        frontier CSV only on stdout (default: the\n"
        "    search trace followed by the frontier CSV)\n"
        "    --trace-out PATH   also write the search trace to PATH\n"
        "    plus --scale/--jobs/--no-cache/--cache-dir\n"
        "  corun <w1[@abi]> [w2[@abi] ...] options:\n"
        "    --cores N (default #lanes; extra cores replicate lanes\n"
        "    round-robin)  --abi NAME (default for bare lanes)\n"
        "    plus run/trace options; a single lane degrades to the\n"
        "    equivalent single-core run (same cache fingerprint)\n"
        "  trace <workload> options:\n"
        "    --abi NAME  --epoch N  --out PATH  (plus run options)\n"
        "  sweep tracing:\n"
        "    --emit-epochs  --epoch N  --out PATH (default epochs.jsonl)\n"
        "  serve options (experiment daemon; see README):\n"
        "    --port P (0 = ephemeral)  --port-file PATH\n"
        "    --workers N  --queue-depth N  --no-cache\n"
        "    --cache-dir PATH\n"
        "  submit options (daemon client; sweep selection flags plus):\n"
        "    --port P | --port-file PATH  --priority N  --stream\n"
        "  verify options:\n"
        "    --seed N  --iters M  --jobs N\n"
        "    --suite cap|mem|invariants|all   (default all)\n"
        "    --replay LINE  --corpus-dir PATH  --cache-dir PATH\n"
        "    --inject-representability-bug   (negative self-test)\n");
    std::exit(code);
}

/**
 * Apply one --trace list entry: "epochs", "epochs:N" or "profile".
 * The consolidated spelling of the deprecated --emit-epochs /
 * --epoch / --profile trio.
 */
void
applyTraceItem(Options &opt, const std::string &item)
{
    if (item == "profile") {
        opt.profile = true;
        return;
    }
    if (item == "epochs" || item.rfind("epochs:", 0) == 0) {
        opt.emit_epochs = true;
        if (const auto colon = item.find(':');
            colon != std::string::npos) {
            const auto n = parseU64(item.substr(colon + 1));
            if (!n || *n == 0) {
                std::fprintf(stderr,
                             "--trace=epochs:N expects a positive "
                             "count, got '%s'\n",
                             item.c_str());
                usage(1);
            }
            opt.epoch_insts = *n;
        }
        return;
    }
    std::fprintf(stderr,
                 "unknown --trace item '%s' (expected "
                 "epochs[:N] or profile)\n",
                 item.c_str());
    usage(1);
}

void
applyTraceList(Options &opt, const std::string &list)
{
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string item =
            list.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (item.empty()) {
            std::fprintf(stderr, "empty --trace item in '%s'\n",
                         list.c_str());
            usage(1);
        }
        applyTraceItem(opt, item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
}

/**
 * Apply one `--set alloc.<key>=<value>` knob to the base allocator
 * config. Unknown axis values exit 2 with a did-you-mean suggestion
 * (the allocator-axis contract, same as the daemon's 400).
 */
void
applyAllocKnob(Options &opt, const std::string &item)
{
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
        std::fprintf(stderr,
                     "--set alloc.* expects alloc.<key>=<value>, got "
                     "'%s'\n",
                     item.c_str());
        usage(1);
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "alloc.strategy") {
        const auto config = alloc::parseAllocator(value);
        if (!config || config->revoke) {
            std::fprintf(stderr,
                         "unknown allocator strategy '%s' (did you "
                         "mean '%s'?)\n",
                         value.c_str(),
                         alloc::closestAllocatorName(value).c_str());
            std::exit(2);
        }
        opt.alloc_base.strategy = config->strategy;
    } else if (key == "alloc.revoke") {
        if (value == "on" || value == "true" || value == "1") {
            opt.alloc_base.revoke = true;
        } else if (value == "off" || value == "false" ||
                   value == "0") {
            opt.alloc_base.revoke = false;
        } else {
            std::fprintf(stderr,
                         "alloc.revoke expects on|off, got '%s'\n",
                         value.c_str());
            usage(1);
        }
    } else if (key == "alloc.quarantine_kib") {
        const auto n = parseU64(value);
        if (!n || *n == 0) {
            std::fprintf(stderr,
                         "alloc.quarantine_kib expects a positive "
                         "KiB count, got '%s'\n",
                         value.c_str());
            usage(1);
        }
        opt.alloc_base.quarantine_kib = *n;
        opt.alloc_quarantine_set = true;
    } else {
        std::fprintf(stderr,
                     "unknown --set alloc key '%s' (expected "
                     "alloc.strategy, alloc.revoke or "
                     "alloc.quarantine_kib)\n",
                     key.c_str());
        usage(1);
    }
}

Options
parse(int argc, char **argv)
{
    if (argc < 2)
        usage(1);
    Options opt;
    opt.command = argv[1];

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                usage(1);
            }
            return argv[++i];
        };
        if (arg == "--workload") {
            opt.workload = next();
        } else if (arg == "--abi") {
            opt.abi = next();
            opt.abi_set = true;
        } else if (arg == "--set") {
            // `--set table3` selects the workload set; values spelled
            // `alloc.<key>=<value>` are allocator-axis knobs; any
            // other `name=value` is a machine knob from the registry.
            const std::string value = next();
            if (value.rfind("alloc.", 0) == 0) {
                applyAllocKnob(opt, value);
            } else if (const auto eq = value.find('=');
                       eq != std::string::npos) {
                const std::string name = value.substr(0, eq);
                const std::string text = value.substr(eq + 1);
                // Validate eagerly so typos die before any cell runs,
                // with the registry's did-you-mean suggestion.
                sim::MachineConfig probe;
                std::string error;
                if (!tune::applyKnob(probe, name, text, &error)) {
                    std::fprintf(stderr, "%s\n", error.c_str());
                    std::exit(2);
                }
                opt.machine_knobs.emplace_back(name, text);
            } else {
                opt.set = value;
            }
        } else if (arg == "--budget") {
            const std::string s = next();
            const auto n = parseU64(s);
            if (!n || *n == 0) {
                std::fprintf(stderr,
                             "--budget expects a positive probe "
                             "count, got '%s'\n",
                             s.c_str());
                usage(1);
            }
            opt.budget = *n;
        } else if (arg == "--knobs") {
            opt.tune_knobs = next();
        } else if (arg == "--trace-out") {
            opt.trace_out = next();
        } else if (arg == "--allocators") {
            opt.allocators = next();
        } else if (arg == "--axis") {
            opt.axis_listing = true;
        } else if (arg == "--scale") {
            const std::string s = next();
            if (s == "tiny")
                opt.scale = workloads::Scale::Tiny;
            else if (s == "small")
                opt.scale = workloads::Scale::Small;
            else if (s == "ref")
                opt.scale = workloads::Scale::Ref;
            else
                usage(1);
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--cap-aware-bp") {
            opt.cap_aware_bp = true;
        } else if (arg == "--wide-sq") {
            opt.wide_sq = true;
        } else if (arg == "--tag-latency") {
            opt.tag_latency = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--l1d-kib") {
            opt.l1d_kib = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--jobs") {
            const std::string s = next();
            const auto n = parseU64(s);
            if (!n) {
                std::fprintf(stderr, "--jobs expects a number, got '%s'\n",
                             s.c_str());
                usage(1);
            }
            opt.jobs = static_cast<u32>(*n);
        } else if (arg == "--cores") {
            const std::string s = next();
            const auto n = parseU64(s);
            if (!n || *n == 0) {
                std::fprintf(stderr,
                             "--cores expects a positive count, got "
                             "'%s'\n",
                             s.c_str());
                usage(1);
            }
            opt.cores = *n;
        } else if (arg == "--no-cache") {
            opt.cache = false;
        } else if (arg == "--cache-dir") {
            opt.cache_dir = next();
        } else if (arg == "--raw") {
            opt.raw = true;
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--trace") {
            applyTraceList(opt, next());
        } else if (arg.rfind("--trace=", 0) == 0) {
            applyTraceList(opt, arg.substr(8));
        } else if (arg == "--approx") {
            opt.approx = true;
        } else if (arg.rfind("--approx=", 0) == 0) {
            const auto n = parseU64(arg.substr(9));
            if (!n || *n == 0) {
                std::fprintf(stderr,
                             "--approx=N expects a positive sampling "
                             "rate, got '%s'\n",
                             arg.c_str());
                usage(1);
            }
            opt.approx = true;
            opt.approx_rate = *n;
        } else if (arg == "--no-fastpath") {
            opt.fast_path = false;
        } else if (arg == "--no-blockcache") {
            opt.block_cache = false;
        } else if (arg == "--port") {
            const std::string s = next();
            const auto n = parseU64(s);
            if (!n || *n > 65535) {
                std::fprintf(stderr,
                             "--port expects 0..65535, got '%s'\n",
                             s.c_str());
                usage(1);
            }
            opt.port = *n;
        } else if (arg == "--port-file") {
            opt.port_file = next();
        } else if (arg == "--workers") {
            const std::string s = next();
            const auto n = parseU64(s);
            if (!n) {
                std::fprintf(stderr,
                             "--workers expects a number, got '%s'\n",
                             s.c_str());
                usage(1);
            }
            opt.workers = *n;
        } else if (arg == "--queue-depth") {
            const std::string s = next();
            const auto n = parseU64(s);
            if (!n || *n == 0) {
                std::fprintf(stderr,
                             "--queue-depth expects a positive count, "
                             "got '%s'\n",
                             s.c_str());
                usage(1);
            }
            opt.queue_depth = *n;
        } else if (arg == "--priority") {
            opt.priority = std::strtoll(next().c_str(), nullptr, 0);
        } else if (arg == "--stream") {
            opt.stream = true;
        } else if (arg == "--epoch") {
            const std::string s = next();
            const auto n = parseU64(s);
            if (!n || *n == 0) {
                std::fprintf(stderr,
                             "--epoch expects a positive count, got "
                             "'%s'\n",
                             s.c_str());
                usage(1);
            }
            opt.epoch_insts = *n;
            if (opt.command != "trace")
                std::fprintf(stderr,
                             "note: --epoch is deprecated; use "
                             "--trace=epochs:%llu\n",
                             static_cast<unsigned long long>(*n));
        } else if (arg == "--out") {
            opt.out = next();
        } else if (arg == "--iters") {
            const std::string s = next();
            const auto n = parseU64(s);
            if (!n || *n == 0) {
                std::fprintf(stderr,
                             "--iters expects a positive count, got "
                             "'%s'\n",
                             s.c_str());
                usage(1);
            }
            opt.iters = *n;
        } else if (arg == "--suite") {
            opt.suite = next();
        } else if (arg == "--replay") {
            opt.replay = next();
        } else if (arg == "--corpus-dir") {
            opt.corpus_dir = next();
        } else if (arg == "--inject-representability-bug") {
            opt.inject_bug = true;
        } else if (arg == "--emit-epochs") {
            opt.emit_epochs = true;
            std::fprintf(stderr, "note: --emit-epochs is deprecated; "
                                 "use --trace=epochs\n");
        } else if (arg == "--profile") {
            opt.profile = true;
            std::fprintf(stderr, "note: --profile is deprecated; use "
                                 "--trace=profile\n");
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg.rfind("--", 0) != 0 && opt.command == "trace" &&
                   opt.workload.empty()) {
            // `cheriperf trace <workload>` takes the workload
            // positionally.
            opt.workload = arg;
        } else if (arg.rfind("--", 0) != 0 && opt.command == "corun") {
            // `cheriperf corun <w1[@abi]> <w2[@abi]> ...` takes its
            // lanes positionally.
            opt.lane_specs.push_back(arg);
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(1);
        }
    }

    if (opt.approx && opt.emit_epochs) {
        std::fprintf(stderr,
                     "--approx and --trace=epochs are mutually "
                     "exclusive (both need the pipeline's epoch "
                     "slot)\n");
        usage(1);
    }
    if (opt.approx &&
        (opt.command == "corun" || opt.command == "trace")) {
        std::fprintf(stderr, "--approx only applies to run/sweep\n");
        usage(1);
    }
    if (!opt.allocators.empty() && opt.command != "sweep" &&
        opt.command != "submit") {
        std::fprintf(stderr,
                     "--allocators only applies to sweep/submit (use "
                     "--set alloc.strategy=... for one cell)\n");
        usage(1);
    }
    if (opt.axis_listing && opt.command != "sweep") {
        std::fprintf(stderr, "--axis only applies to sweep\n");
        usage(1);
    }
    return opt;
}

abi::Abi
parseAbi(const std::string &name)
{
    for (abi::Abi a : abi::kAllAbis)
        if (name == abi::abiName(a))
            return a;
    std::fprintf(stderr, "unknown ABI '%s'\n", name.c_str());
    usage(1);
}

/** One experiment cell from the CLI's flags. */
runner::RunRequest
requestFor(const Options &opt, const std::string &workload, abi::Abi abi)
{
    runner::RunRequest request;
    request.workload = workload;
    request.abi = abi;
    request.scale = opt.scale;
    request.seed = opt.seed;
    // Default-constructed alloc_base keeps the cell's pre-axis
    // identity; --set alloc.* knobs change it (and the fingerprint).
    request.allocator = opt.alloc_base;

    auto config = sim::MachineConfig::forAbi(abi);
    config.pipe.bp.cap_aware = opt.cap_aware_bp;
    config.pipe.sq.wide_entries = opt.wide_sq;
    config.mem.tag_extra_latency = opt.tag_latency;
    config.mem.l1d.size_bytes = opt.l1d_kib * kKiB;
    // Bit-identical acceleration escape hatches; not part of the
    // cell's fingerprint (the equivalence suite proves both settings
    // agree).
    config.mem.fast_path = opt.fast_path;
    config.block_cache = opt.block_cache;
    // Registry knobs (--set name=value) win over the legacy flags
    // above; values were validated at parse time, so failure here
    // cannot happen.
    for (const auto &[name, value] : opt.machine_knobs) {
        std::string error;
        if (!tune::applyKnob(config, name, value, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            std::exit(2);
        }
    }
    request.config = config;

    if (opt.approx) {
        request.approx.enabled = true;
        request.approx.rate = opt.approx_rate;
        request.approx.epoch_insts = opt.epoch_insts;
    }
    return request;
}

runner::RunnerOptions
runnerOptions(const Options &opt)
{
    runner::RunnerOptions options;
    options.jobs = static_cast<u32>(opt.jobs);
    options.cache = opt.cache;
    options.cache_dir = opt.cache_dir;
    options.progress = !opt.csv;
    return options;
}

void
printRawEvents(const Options &opt, const pmu::EventCounts &counts)
{
    for (std::size_t i = 0; i < pmu::kNumEvents; ++i) {
        const auto event = static_cast<pmu::Event>(i);
        std::printf("%s%s,%llu\n", opt.csv ? "" : "  ",
                    pmu::eventName(event),
                    static_cast<unsigned long long>(counts.get(event)));
    }
}

void
printResult(const Options &opt, const runner::RunResult &run)
{
    const abi::Abi abi = run.request.abi;
    const sim::SimResult &result = *run.sim;
    const analysis::DerivedMetrics &metrics = run.metrics;
    const analysis::TopDown &td = run.topdownTruth;

    if (opt.csv) {
        std::printf("abi,%s\n", abi::abiName(abi));
        std::printf("instructions,%llu\ncycles,%llu\nseconds,%s\n",
                    static_cast<unsigned long long>(result.instructions),
                    static_cast<unsigned long long>(result.cycles),
                    fmt::seconds(result.seconds).c_str());
        for (const auto &field : analysis::allMetricFields())
            std::printf("%s,%s\n", field.name.c_str(),
                        fmt::metric(metrics.*(field.member)).c_str());
        if (run.approx) {
            const auto &a = *run.approx;
            std::printf("approx_rate,%llu\napprox_epochs_sampled,%llu\n"
                        "approx_epochs_total,%llu\napprox_scale,%s\n",
                        static_cast<unsigned long long>(a.report.rate),
                        static_cast<unsigned long long>(
                            a.report.epochsSampled),
                        static_cast<unsigned long long>(
                            a.report.epochsTotal),
                        fmt::metric(a.report.scale).c_str());
            for (const auto &field : analysis::allMetricFields())
                std::printf(
                    "%s_err,%s\n", field.name.c_str(),
                    fmt::metric(a.stderr_.*(field.member)).c_str());
        }
    } else {
        std::printf("--- %s\n", abi::abiName(abi));
        std::printf("  instructions %llu  cycles %llu  IPC %.3f  model "
                    "time %.4f s%s\n",
                    static_cast<unsigned long long>(result.instructions),
                    static_cast<unsigned long long>(result.cycles),
                    result.ipc(), result.seconds,
                    run.cacheHit ? "  [cached]" : "");
        std::printf("  top-down: retiring %.3f  bad-spec %.3f  frontend "
                    "%.3f  backend %.3f\n",
                    td.retiring, td.badSpeculation, td.frontendBound,
                    td.backendBound);
        std::printf("            memory-bound %.3f (L1 %.3f / L2 %.3f / "
                    "ext %.3f)  core-bound %.3f  pcc %.3f\n",
                    td.memoryBound, td.l1Bound, td.l2Bound,
                    td.extMemBound, td.coreBound, td.pccStallShare);
        std::printf("  caches: L1I MR %.2f%%  L1D MR %.2f%%  L2 MR "
                    "%.2f%%  LLC-rd MR %.2f%%\n",
                    metrics.l1iMissRate * 100, metrics.l1dMissRate * 100,
                    metrics.l2MissRate * 100,
                    metrics.llcReadMissRate * 100);
        std::printf("  cheri:  cap-load %.2f%%  cap-store %.2f%%  "
                    "traffic %.2f%%  tag %.2f%%\n",
                    metrics.capLoadDensity * 100,
                    metrics.capStoreDensity * 100,
                    metrics.capTrafficShare * 100,
                    metrics.capTagOverhead * 100);
        std::printf("  branch MR %.2f%%  MI %.3f\n",
                    metrics.branchMissRate * 100, metrics.memoryIntensity);
        if (run.approx) {
            const auto &a = run.approx->report;
            std::printf("  approx: 1-in-%llu epochs sampled (%llu/%llu,"
                        " %.1f%% of insts), totals x%.2f, ipc +/- "
                        "%.4f\n",
                        static_cast<unsigned long long>(a.rate),
                        static_cast<unsigned long long>(a.epochsSampled),
                        static_cast<unsigned long long>(a.epochsTotal),
                        a.totalInsts
                            ? 100.0 * static_cast<double>(a.sampledInsts) /
                                  static_cast<double>(a.totalInsts)
                            : 0.0,
                        a.scale, run.approx->stderr_.ipc);
        }
    }

    if (opt.raw)
        printRawEvents(opt, result.counts);
}

/** Write @p text to @p path, or to stdout when @p path is empty. */
bool
writeTextOut(const std::string &path, const std::string &text)
{
    if (path.empty()) {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

int
cmdList()
{
    AsciiTable table({"name", "suite", "MI (paper)", "description"});
    for (const auto &w : workloads::allWorkloads()) {
        const auto &info = w->info();
        table.beginRow();
        table.cell(info.name);
        table.cell(info.suite);
        table.cell(info.paperMi > 0 ? formatFixed(info.paperMi, 3) : "-");
        table.cell(info.description);
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdEvents()
{
    for (std::size_t i = 0; i < pmu::kNumEvents; ++i) {
        const auto event = static_cast<pmu::Event>(i);
        std::printf("%-22s %-5s %s\n", pmu::eventName(event),
                    pmu::isArchitectural(event) ? "arch" : "model",
                    pmu::eventDescription(event));
    }
    return 0;
}

int
cmdRun(const Options &opt)
{
    if (opt.workload.empty()) {
        std::fprintf(stderr, "--workload is required\n");
        usage(1);
    }
    const auto request = requestFor(opt, opt.workload, parseAbi(opt.abi));
    runner::ExperimentPlan plan;
    plan.add(request);
    const auto outcome = runner::runPlan(plan, runnerOptions(opt));

    const auto &run = outcome.results.front();
    if (!run.ok()) {
        std::printf("--- %s\n  NA (in-address-space security "
                    "exception; see paper appendix)\n",
                    abi::abiName(run.request.abi));
    } else {
        printResult(opt, run);
    }
    std::fprintf(stderr, "[cheriperf] %s\n",
                 outcome.stats.summary().c_str());
    return 0;
}

int
cmdTrace(const Options &opt)
{
    if (opt.workload.empty()) {
        std::fprintf(stderr,
                     "usage: cheriperf trace <workload> [options]\n");
        usage(1);
    }
    auto request = requestFor(opt, opt.workload, parseAbi(opt.abi));
    request.trace.enabled = true;
    request.trace.epoch_insts = opt.epoch_insts;

    runner::ExperimentPlan plan;
    plan.add(request);
    auto options = runnerOptions(opt);
    options.progress = false; // keep stdout/stderr quiet around JSONL
    const auto outcome = runner::runPlan(plan, options);

    const auto &run = outcome.results.front();
    if (!run.ok()) {
        std::fprintf(stderr,
                     "[cheriperf] %s/%s faulted; trace covers the "
                     "epochs retired before the fault\n",
                     run.request.workload.c_str(),
                     abi::abiName(run.request.abi));
    }
    const std::string text =
        trace::seriesToJsonl(run.epochs, run.request.workload,
                             abi::abiName(run.request.abi),
                             run.request.seed);
    if (!writeTextOut(opt.out, text))
        return 1;
    std::fprintf(stderr, "[cheriperf] %zu epochs (%llu insts each)%s%s\n",
                 run.epochs.size(),
                 static_cast<unsigned long long>(opt.epoch_insts),
                 opt.out.empty() ? "" : " -> ",
                 opt.out.c_str());
    return run.ok() ? 0 : 2;
}

/**
 * Parse the --allocators comma list into axis values. Unknown names
 * exit 2 with a did-you-mean suggestion. An `alloc.quarantine_kib`
 * knob retunes every revoking value in the list.
 */
std::vector<alloc::AllocatorConfig>
parseAllocatorList(const Options &opt)
{
    std::vector<alloc::AllocatorConfig> out;
    const std::string &list = opt.allocators;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string name = list.substr(start, comma - start);
        const auto config = alloc::parseAllocator(name);
        if (!config) {
            std::fprintf(stderr,
                         "unknown allocator '%s' (did you mean "
                         "'%s'?)\n",
                         name.c_str(),
                         alloc::closestAllocatorName(name).c_str());
            std::exit(2);
        }
        out.push_back(*config);
        if (opt.alloc_quarantine_set && out.back().revoke)
            out.back().quarantine_kib = opt.alloc_base.quarantine_kib;
        start = comma + 1;
    }
    return out;
}

/** `sweep --axis`: list every experiment axis and its values. */
int
cmdSweepAxis()
{
    std::printf("experiment axes (sweep expands the cross product):\n");
    std::printf("  abi        ");
    for (std::size_t i = 0; i < abi::kAllAbis.size(); ++i)
        std::printf("%s%s", i ? ", " : "",
                    abi::abiName(abi::kAllAbis[i]));
    std::printf("   (always swept)\n");
    std::printf("  allocator  ");
    const auto &names = alloc::knownAllocatorNames();
    for (std::size_t i = 0; i < names.size(); ++i)
        std::printf("%s%s", i ? ", " : "", names[i].c_str());
    std::printf("\n             (--allocators a,b,c; default: "
                "freelist alone, no extra CSV column)\n");
    std::printf("  scale      tiny, small, ref   (--scale, one per "
                "sweep)\n");
    std::printf("knobs (--set alloc.<key>=<value>):\n");
    std::printf("  alloc.strategy        freelist|bump|sizeclass\n");
    std::printf("  alloc.revoke          on|off\n");
    std::printf("  alloc.quarantine_kib  N   (sweep trigger; revoking "
                "allocators only)\n");
    std::printf("machine knobs (--set <name>=<value>): %zu registered; "
                "see 'cheriperf knobs'\n",
                tune::knobRegistry().size());
    return 0;
}

/** `cheriperf knobs`: the machine-knob registry as a table. */
int
cmdKnobs()
{
    std::printf("machine knobs (--set <name>=<value>; * = autotune "
                "searches it):\n");
    for (const tune::Knob &knob : tune::knobRegistry()) {
        std::string menu;
        for (double value : knob.menu) {
            if (!menu.empty())
                menu += ",";
            menu += tune::renderKnobValue(knob, value);
        }
        std::printf("  %c %-26s %-7s default %-8s %s%s\n",
                    knob.menu.empty() ? ' ' : '*', knob.name,
                    knob.kind == tune::KnobKind::Bool     ? "bool"
                    : knob.kind == tune::KnobKind::Double ? "double"
                                                          : "int",
                    tune::renderKnobValue(knob, knob.baseline).c_str(),
                    knob.description,
                    knob.fingerprint ? "" : " [non-fingerprint]");
        if (!menu.empty())
            std::printf("      menu: %s\n", menu.c_str());
    }
    return 0;
}

/**
 * `cheriperf autotune`: the deterministic design-space search
 * (DESIGN.md §10). stdout carries only deterministic bytes — the
 * search trace and the frontier CSV (CSV alone under --csv) — while
 * cache-dependent statistics go to stderr, so output is
 * byte-identical across --jobs values and cache states.
 */
int
cmdAutotune(const Options &opt)
{
    tune::TuneOptions options;
    options.seed = opt.seed;
    options.budget = opt.budget;
    options.scale = opt.scale;
    options.runner = runnerOptions(opt);
    options.runner.progress = false;
    if (!opt.tune_knobs.empty()) {
        const std::string &list = opt.tune_knobs;
        std::size_t start = 0;
        while (start <= list.size()) {
            std::size_t comma = list.find(',', start);
            if (comma == std::string::npos)
                comma = list.size();
            if (comma > start)
                options.knobs.push_back(
                    list.substr(start, comma - start));
            start = comma + 1;
        }
    }

    tune::TuneOutcome outcome;
    std::string error;
    if (!tune::autotune(options, &outcome, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }

    const std::string csv = tune::frontierCsv(outcome);
    std::string out;
    if (!opt.csv)
        out += outcome.trace;
    out += csv;
    std::fwrite(out.data(), 1, out.size(), stdout);
    if (!opt.trace_out.empty() &&
        !writeTextOut(opt.trace_out, outcome.trace))
        return 1;

    const tune::TuneStats &stats = outcome.stats;
    std::fprintf(stderr,
                 "[cheriperf] autotune: %llu probes, %llu cells, %llu "
                 "cache hits / %llu simulated, %llu generations, hit "
                 "rate %s%%, %s frontier points, %.3fs wall\n",
                 static_cast<unsigned long long>(stats.probes),
                 static_cast<unsigned long long>(stats.cells),
                 static_cast<unsigned long long>(stats.cacheHits),
                 static_cast<unsigned long long>(stats.simulated),
                 static_cast<unsigned long long>(stats.generations),
                 fmt::fixed(stats.hitRate() * 100, 1).c_str(),
                 std::to_string(outcome.frontier.size()).c_str(),
                 stats.wallSeconds);
    return 0;
}

/** The sweep's workload selection: --workload wins, then --set. */
std::vector<std::string>
sweepSelection(const Options &opt)
{
    if (!opt.workload.empty())
        return {opt.workload};
    if (opt.set.empty() || opt.set == "all") {
        std::vector<std::string> names;
        for (const auto &w : workloads::allWorkloads())
            names.push_back(w->info().name);
        return names;
    }
    if (opt.set == "table3")
        return workloads::table3Names();
    if (opt.set == "table4")
        return workloads::table4Names();
    std::fprintf(stderr, "unknown --set '%s'\n", opt.set.c_str());
    usage(1);
}

int
cmdSweep(const Options &opt)
{
    if (opt.axis_listing)
        return cmdSweepAxis();

    // The allocator axis: --allocators activates it (extra CSV
    // column); otherwise the single --set alloc.* base config runs,
    // which defaults to the pre-axis allocator.
    const bool alloc_axis = !opt.allocators.empty();
    const std::vector<alloc::AllocatorConfig> axis =
        alloc_axis ? parseAllocatorList(opt)
                   : std::vector<alloc::AllocatorConfig>{opt.alloc_base};

    runner::ExperimentPlan plan;
    for (const auto &name : sweepSelection(opt))
        for (const alloc::AllocatorConfig &allocator : axis)
            for (abi::Abi a : abi::kAllAbis) {
                auto request = requestFor(opt, name, a);
                request.allocator = allocator;
                if (opt.cores >= 2) {
                    // Homogeneous self-co-run: N copies of the cell's
                    // (workload, abi) sharing one uncore. workload/abi
                    // stay set so the CSV schema and find() still work.
                    request.lanes.assign(
                        static_cast<std::size_t>(opt.cores),
                        runner::Lane{name, a});
                }
                if (opt.emit_epochs) {
                    request.trace.enabled = true;
                    request.trace.epoch_insts = opt.epoch_insts;
                }
                plan.add(request);
            }

    const auto outcome = runner::runPlan(plan, runnerOptions(opt));

    if (opt.emit_epochs) {
        // Concatenate every cell's epochs in plan order; the result is
        // byte-identical for any --jobs value. Co-run cells emit one
        // core_id-tagged stream per lane, in lane order.
        std::string text;
        for (const auto &run : outcome.results) {
            if (run.request.corun()) {
                for (std::size_t i = 0; i < run.lanes.size(); ++i)
                    text += trace::seriesToJsonl(
                        run.lanes[i].epochs,
                        run.lanes[i].lane.workload,
                        abi::abiName(run.lanes[i].lane.abi),
                        run.request.seed, static_cast<u32>(i));
            } else {
                text += trace::seriesToJsonl(
                    run.epochs, run.request.workload,
                    abi::abiName(run.request.abi), run.request.seed);
            }
        }
        const std::string path =
            opt.out.empty() ? "epochs.jsonl" : opt.out;
        if (!writeTextOut(path, text))
            return 1;
        std::fprintf(stderr, "[cheriperf] epoch trace -> %s\n",
                     path.c_str());
    }

    if (opt.csv) {
        // One flat CSV row per cell, byte-identical for any --jobs.
        // The layout (including the --approx error-bar block) lives
        // in serve::sweepCsv, shared verbatim with the experiment
        // daemon — that sharing IS the served-response determinism
        // contract, so the bytes here are also the daemon's bytes.
        const std::string csv =
            serve::sweepCsv(outcome.results, opt.approx, alloc_axis);
        std::fwrite(csv.data(), 1, csv.size(), stdout);
    } else {
        std::string current;
        for (const auto &run : outcome.results) {
            std::string group = run.request.workload;
            if (alloc_axis) {
                group += " [";
                group += alloc::allocatorName(run.request.allocator);
                group += ']';
            }
            if (group != current) {
                current = group;
                std::printf("=== %s\n", current.c_str());
            }
            if (!run.ok()) {
                std::printf("--- %s\n  NA (in-address-space security "
                            "exception; see paper appendix)\n",
                            abi::abiName(run.request.abi));
                continue;
            }
            printResult(opt, run);
        }
    }
    std::fprintf(stderr, "[cheriperf] %s\n",
                 outcome.stats.summary().c_str());
    return 0;
}

/**
 * Parse one corun lane spec: "name" (ABI from --abi) or "name@abi".
 * Workload names contain no '@', so the split is unambiguous.
 */
runner::Lane
parseLaneSpec(const Options &opt, const std::string &spec)
{
    runner::Lane lane;
    const auto at = spec.rfind('@');
    if (at == std::string::npos) {
        lane.workload = spec;
        lane.abi = parseAbi(opt.abi);
    } else {
        lane.workload = spec.substr(0, at);
        lane.abi = parseAbi(spec.substr(at + 1));
    }
    if (lane.workload.empty()) {
        std::fprintf(stderr, "empty workload in lane spec '%s'\n",
                     spec.c_str());
        usage(1);
    }
    return lane;
}

int
cmdCorun(const Options &opt)
{
    if (opt.lane_specs.empty()) {
        std::fprintf(stderr,
                     "corun needs at least one lane, e.g. "
                     "cheriperf corun 519.lbm_r 541.leela_r\n");
        usage(1);
    }

    std::vector<runner::Lane> lanes;
    lanes.reserve(opt.lane_specs.size());
    for (const auto &spec : opt.lane_specs)
        lanes.push_back(parseLaneSpec(opt, spec));

    // --cores defaults to the lane count; more cores replicate the
    // lane list round-robin; fewer is an error (no time-sharing).
    const std::size_t cores =
        opt.cores ? static_cast<std::size_t>(opt.cores) : lanes.size();
    if (cores < lanes.size()) {
        std::fprintf(stderr,
                     "--cores %zu < %zu lanes; each lane needs its own "
                     "core\n",
                     cores, lanes.size());
        usage(1);
    }
    const std::size_t base = lanes.size();
    for (std::size_t i = base; i < cores; ++i)
        lanes.push_back(lanes[i % base]);

    auto request =
        requestFor(opt, lanes.front().workload, lanes.front().abi);
    request.lanes = lanes;
    if (opt.emit_epochs) {
        request.trace.enabled = true;
        request.trace.epoch_insts = opt.epoch_insts;
    }

    runner::ExperimentPlan plan;
    plan.add(request);
    auto options = runnerOptions(opt);
    options.progress = false; // lane table below is the progress
    const auto outcome = runner::runPlan(plan, options);
    const auto &run = outcome.results.front();

    // A single lane degrades to the single-core path: the runner
    // normalizes the request, so run.lanes is empty and the result is
    // the plain solo cell (identical fingerprint, cache-eligible).
    // Synthesize the one-lane view so every corun output shape still
    // holds with core 0.
    std::vector<runner::LaneOutcome> soloLane;
    if (run.lanes.empty()) {
        runner::LaneOutcome lane;
        lane.lane = {run.request.workload, run.request.abi};
        lane.sim = run.sim;
        lane.metrics = run.metrics;
        lane.epochs = run.epochs;
        soloLane.push_back(std::move(lane));
    }
    const auto &viewLanes = run.lanes.empty() ? soloLane : run.lanes;

    std::vector<trace::CorunLaneSummary> summaries;
    summaries.reserve(viewLanes.size());
    for (std::size_t i = 0; i < viewLanes.size(); ++i) {
        const auto &lane = viewLanes[i];
        trace::CorunLaneSummary s;
        s.workload = lane.lane.workload;
        s.abi = lane.ok() ? abi::abiName(lane.lane.abi) : "NA";
        s.core = static_cast<u32>(i);
        if (lane.ok()) {
            s.instructions = lane.sim->instructions;
            s.cycles = lane.sim->cycles;
            s.ipc = lane.sim->ipc();
            s.llc_rd_misses =
                lane.sim->counts.get(pmu::Event::LlCacheMissRd);
            s.seconds = lane.sim->seconds;
        }
        summaries.push_back(std::move(s));
    }

    if (opt.emit_epochs) {
        // Per-core epoch streams (core_id-tagged) in lane order, then
        // the lane/SoC totals; byte-identical across repeat runs.
        std::string text;
        for (std::size_t i = 0; i < viewLanes.size(); ++i)
            text += trace::seriesToJsonl(
                viewLanes[i].epochs, viewLanes[i].lane.workload,
                abi::abiName(viewLanes[i].lane.abi), run.request.seed,
                static_cast<u32>(i));
        text += trace::corunSummaryJsonl(summaries, run.request.seed);
        const std::string path =
            opt.out.empty() ? "epochs.jsonl" : opt.out;
        if (!writeTextOut(path, text))
            return 1;
        std::fprintf(stderr, "[cheriperf] epoch trace -> %s\n",
                     path.c_str());
    }

    if (opt.csv) {
        // One row per core; this layout is the corun golden contract
        // (tests/golden/corun_smoke.csv).
        std::printf("core,workload,abi,instructions,cycles,seconds");
        for (const auto &field : analysis::allMetricFields())
            std::printf(",%s", field.name.c_str());
        std::printf("\n");
        for (std::size_t i = 0; i < viewLanes.size(); ++i) {
            const auto &lane = viewLanes[i];
            std::printf("%zu,%s,%s", i, lane.lane.workload.c_str(),
                        abi::abiName(lane.lane.abi));
            if (!lane.ok()) {
                std::printf(",NA,NA,NA");
                for (std::size_t f = 0;
                     f < analysis::allMetricFields().size(); ++f)
                    std::printf(",NA");
                std::printf("\n");
                continue;
            }
            std::printf(",%llu,%llu,%s",
                        static_cast<unsigned long long>(
                            lane.sim->instructions),
                        static_cast<unsigned long long>(
                            lane.sim->cycles),
                        fmt::seconds(lane.sim->seconds).c_str());
            for (const auto &field : analysis::allMetricFields())
                std::printf(
                    ",%s",
                    fmt::metric(lane.metrics.*(field.member)).c_str());
            std::printf("\n");
        }
    } else {
        std::printf("=== co-run: %s (%zu cores)\n",
                    run.request.displayName().c_str(),
                    viewLanes.size());
        for (const auto &s : summaries) {
            if (s.abi == "NA") {
                std::printf("  core %u  %-14s NA (ABI unsupported)\n",
                            s.core, s.workload.c_str());
                continue;
            }
            std::printf("  core %u  %-14s %-9s insts %llu  cycles "
                        "%llu  IPC %.3f  LLC-rd-miss %llu\n",
                        s.core, s.workload.c_str(), s.abi.c_str(),
                        static_cast<unsigned long long>(s.instructions),
                        static_cast<unsigned long long>(s.cycles),
                        s.ipc,
                        static_cast<unsigned long long>(
                            s.llc_rd_misses));
        }
        if (run.ok())
            std::printf("  SoC: makespan %llu cycles (%s ms), %llu "
                        "insts total\n",
                        static_cast<unsigned long long>(
                            run.sim->cycles),
                        fmt::metric(run.sim->seconds * 1e3).c_str(),
                        static_cast<unsigned long long>(
                            run.sim->instructions));
        else
            std::printf("  SoC: NA (no runnable lane)\n");
    }
    std::fprintf(stderr, "[cheriperf] %s\n",
                 outcome.stats.summary().c_str());
    return 0;
}

int
cmdVerify(const Options &opt)
{
    const auto suite = verify::parseSuite(opt.suite);
    if (!suite) {
        std::fprintf(stderr, "unknown --suite '%s'\n", opt.suite.c_str());
        usage(1);
    }

    verify::VerifyOptions options;
    options.seed = opt.seed;
    options.iters = opt.iters;
    options.jobs = opt.jobs ? static_cast<u32>(opt.jobs) : 1;
    options.suite = *suite;
    options.fuzz.injectRepresentabilityBug = opt.inject_bug;
    options.replay = opt.replay;
    options.corpus_dir = opt.corpus_dir;
    options.cache_dir = opt.cache_dir;

    const verify::VerifyReport report = verify::runVerify(options);
    std::fwrite(report.text.data(), 1, report.text.size(), stdout);
    return report.passed ? 0 : 1;
}

int
cmdClearCache(const Options &opt)
{
    const runner::ResultCache cache(opt.cache_dir);
    // A live daemon holds the dir's lock Shared; clearing under it
    // would race its .cpr writes. Exclusive-or-refuse, never race.
    const auto lock = runner::CacheDirLock::tryAcquire(
        cache.dir(), runner::CacheDirLock::Mode::Exclusive);
    if (!lock) {
        std::fprintf(stderr,
                     "cheriperf: cache %s is in use (a running "
                     "cheriperf daemon holds it); stop the daemon "
                     "before clearing\n",
                     cache.dir().c_str());
        return 1;
    }
    const std::size_t removed = cache.clear();
    std::printf("removed %zu cached results from %s\n", removed,
                cache.dir().c_str());
    return 0;
}

int
cmdServe(const Options &opt)
{
    serve::ServeOptions options;
    options.port = static_cast<u16>(opt.port);
    options.port_file = opt.port_file;
    options.workers = static_cast<u32>(opt.workers);
    options.queue_depth = static_cast<std::size_t>(opt.queue_depth);
    options.cache = opt.cache;
    options.cache_dir = opt.cache_dir;
    return serve::runServer(options);
}

int
cmdSubmit(const Options &opt)
{
    serve::SubmitOptions options;
    options.port = static_cast<u16>(opt.port);
    options.port_file = opt.port_file;
    options.stream = opt.stream;

    serve::JobSpec &spec = options.spec;
    spec.workload = opt.workload;
    spec.set = opt.set;
    // Sweep parity: without an explicit --abi a submission covers all
    // three ABIs, exactly like `cheriperf sweep`.
    spec.abi = opt.abi_set ? opt.abi : "all";
    spec.scale = opt.scale == workloads::Scale::Tiny    ? "tiny"
                 : opt.scale == workloads::Scale::Small ? "small"
                                                        : "ref";
    spec.seed = opt.seed;
    spec.priority = opt.priority;
    spec.cores = opt.cores ? opt.cores : 1;
    if (opt.emit_epochs)
        spec.trace_epochs = opt.epoch_insts;
    if (opt.approx) {
        spec.approx_rate = opt.approx_rate;
        spec.approx_epoch_insts = opt.epoch_insts;
    }
    if (!opt.allocators.empty()) {
        // Validate client-side first (exit 2 + suggestion, same as
        // sweep); the daemon re-validates and answers 400 for specs
        // arriving over the wire.
        parseAllocatorList(opt);
        spec.allocators = opt.allocators;
    }
    // Machine knobs travel as the wire-form "name=value" list; parse
    // already validated each one (exit 2 + suggestion), the daemon
    // re-validates and answers 400 for specs arriving over the wire.
    for (const auto &[name, value] : opt.machine_knobs) {
        if (!spec.knobs.empty())
            spec.knobs += ",";
        spec.knobs += name + "=" + value;
    }
    return serve::runSubmitClient(options);
}

} // namespace

int
dispatch(const Options &opt)
{
    if (opt.command == "list")
        return cmdList();
    if (opt.command == "events")
        return cmdEvents();
    if (opt.command == "knobs")
        return cmdKnobs();
    if (opt.command == "autotune")
        return cmdAutotune(opt);
    if (opt.command == "run")
        return cmdRun(opt);
    if (opt.command == "sweep")
        return cmdSweep(opt);
    if (opt.command == "corun")
        return cmdCorun(opt);
    if (opt.command == "trace")
        return cmdTrace(opt);
    if (opt.command == "verify")
        return cmdVerify(opt);
    if (opt.command == "serve")
        return cmdServe(opt);
    if (opt.command == "submit")
        return cmdSubmit(opt);
    if (opt.command == "clear-cache")
        return cmdClearCache(opt);
    usage(1);
}

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);
    const bool profiling =
        opt.profile || trace::Profiler::envRequested();
    if (profiling)
        trace::Profiler::setEnabled(true);

    const int rc = dispatch(opt);

    if (profiling) {
        std::fprintf(stderr, "%s", trace::Profiler::report().c_str());
        telemetry::report(stderr);
    }
    return rc;
}
