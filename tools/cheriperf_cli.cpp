/**
 * @file
 * cheriperf — the command-line driver.
 *
 * Run any workload proxy under any ABI with any microarchitectural
 * knob, and inspect the results the way the paper does: derived
 * metrics, the top-down hierarchy, or raw PMU event counts.
 *
 *   cheriperf list
 *   cheriperf run --workload 520.omnetpp_r --abi purecap [options]
 *   cheriperf sweep --workload QuickJS [options]
 *   cheriperf events
 *
 * Options for run/sweep:
 *   --scale tiny|small|ref     problem size (default small)
 *   --seed N                   workload RNG seed (default 42)
 *   --cap-aware-bp             capability-aware branch predictor
 *   --wide-sq                  capability-sized store-queue entries
 *   --tag-latency N            extra cycles per capability access
 *   --l1d-kib N                L1D capacity
 *   --raw                      print raw PMU events too
 *   --csv                      machine-readable one-line-per-metric
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "analysis/topdown.hpp"
#include "support/table.hpp"
#include "workloads/registry.hpp"

using namespace cheri;

namespace {

struct Options
{
    std::string command;
    std::string workload;
    std::string abi = "purecap";
    workloads::Scale scale = workloads::Scale::Small;
    u64 seed = 42;
    bool cap_aware_bp = false;
    bool wide_sq = false;
    u64 tag_latency = 0;
    u64 l1d_kib = 64;
    bool raw = false;
    bool csv = false;
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: cheriperf <list|events|run|sweep> [options]\n"
        "  run/sweep options:\n"
        "    --workload NAME   (required; see 'cheriperf list')\n"
        "    --abi hybrid|purecap|benchmark   (run only)\n"
        "    --scale tiny|small|ref   --seed N\n"
        "    --cap-aware-bp  --wide-sq  --tag-latency N  --l1d-kib N\n"
        "    --raw  --csv\n");
    std::exit(code);
}

Options
parse(int argc, char **argv)
{
    if (argc < 2)
        usage(1);
    Options opt;
    opt.command = argv[1];

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                usage(1);
            }
            return argv[++i];
        };
        if (arg == "--workload") {
            opt.workload = next();
        } else if (arg == "--abi") {
            opt.abi = next();
        } else if (arg == "--scale") {
            const std::string s = next();
            if (s == "tiny")
                opt.scale = workloads::Scale::Tiny;
            else if (s == "small")
                opt.scale = workloads::Scale::Small;
            else if (s == "ref")
                opt.scale = workloads::Scale::Ref;
            else
                usage(1);
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--cap-aware-bp") {
            opt.cap_aware_bp = true;
        } else if (arg == "--wide-sq") {
            opt.wide_sq = true;
        } else if (arg == "--tag-latency") {
            opt.tag_latency = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--l1d-kib") {
            opt.l1d_kib = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--raw") {
            opt.raw = true;
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(1);
        }
    }
    return opt;
}

abi::Abi
parseAbi(const std::string &name)
{
    for (abi::Abi a : abi::kAllAbis)
        if (name == abi::abiName(a))
            return a;
    std::fprintf(stderr, "unknown ABI '%s'\n", name.c_str());
    usage(1);
}

sim::MachineConfig
configFor(const Options &opt, abi::Abi abi)
{
    auto config = sim::MachineConfig::forAbi(abi);
    config.pipe.bp.cap_aware = opt.cap_aware_bp;
    config.pipe.sq.wide_entries = opt.wide_sq;
    config.mem.tag_extra_latency = opt.tag_latency;
    config.mem.l1d.size_bytes = opt.l1d_kib * kKiB;
    return config;
}

void
printResult(const Options &opt, abi::Abi abi, const sim::SimResult &result)
{
    const auto metrics = analysis::DerivedMetrics::compute(result.counts);
    const auto td = analysis::TopDown::fromModelTruth(result.counts);

    if (opt.csv) {
        std::printf("abi,%s\n", abi::abiName(abi));
        std::printf("instructions,%llu\ncycles,%llu\nseconds,%.9f\n",
                    static_cast<unsigned long long>(result.instructions),
                    static_cast<unsigned long long>(result.cycles),
                    result.seconds);
        for (const auto &field : analysis::allMetricFields())
            std::printf("%s,%.6f\n", field.name.c_str(),
                        metrics.*(field.member));
    } else {
        std::printf("--- %s\n", abi::abiName(abi));
        std::printf("  instructions %llu  cycles %llu  IPC %.3f  model "
                    "time %.4f s\n",
                    static_cast<unsigned long long>(result.instructions),
                    static_cast<unsigned long long>(result.cycles),
                    result.ipc(), result.seconds);
        std::printf("  top-down: retiring %.3f  bad-spec %.3f  frontend "
                    "%.3f  backend %.3f\n",
                    td.retiring, td.badSpeculation, td.frontendBound,
                    td.backendBound);
        std::printf("            memory-bound %.3f (L1 %.3f / L2 %.3f / "
                    "ext %.3f)  core-bound %.3f  pcc %.3f\n",
                    td.memoryBound, td.l1Bound, td.l2Bound,
                    td.extMemBound, td.coreBound, td.pccStallShare);
        std::printf("  caches: L1I MR %.2f%%  L1D MR %.2f%%  L2 MR "
                    "%.2f%%  LLC-rd MR %.2f%%\n",
                    metrics.l1iMissRate * 100, metrics.l1dMissRate * 100,
                    metrics.l2MissRate * 100,
                    metrics.llcReadMissRate * 100);
        std::printf("  cheri:  cap-load %.2f%%  cap-store %.2f%%  "
                    "traffic %.2f%%  tag %.2f%%\n",
                    metrics.capLoadDensity * 100,
                    metrics.capStoreDensity * 100,
                    metrics.capTrafficShare * 100,
                    metrics.capTagOverhead * 100);
        std::printf("  branch MR %.2f%%  MI %.3f\n",
                    metrics.branchMissRate * 100, metrics.memoryIntensity);
    }

    if (opt.raw) {
        for (std::size_t i = 0; i < pmu::kNumEvents; ++i) {
            const auto event = static_cast<pmu::Event>(i);
            std::printf("%s%s,%llu\n", opt.csv ? "" : "  ",
                        pmu::eventName(event),
                        static_cast<unsigned long long>(
                            result.counts.get(event)));
        }
    }
}

int
cmdList()
{
    AsciiTable table({"name", "suite", "MI (paper)", "description"});
    for (const auto &w : workloads::allWorkloads()) {
        const auto &info = w->info();
        table.beginRow();
        table.cell(info.name);
        table.cell(info.suite);
        table.cell(info.paperMi > 0 ? formatFixed(info.paperMi, 3) : "-");
        table.cell(info.description);
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdEvents()
{
    for (std::size_t i = 0; i < pmu::kNumEvents; ++i) {
        const auto event = static_cast<pmu::Event>(i);
        std::printf("%-22s %-5s %s\n", pmu::eventName(event),
                    pmu::isArchitectural(event) ? "arch" : "model",
                    pmu::eventDescription(event));
    }
    return 0;
}

int
cmdRun(const Options &opt, bool sweep)
{
    if (opt.workload.empty()) {
        std::fprintf(stderr, "--workload is required\n");
        usage(1);
    }
    const auto pool = workloads::allWorkloads();
    const auto *workload = workloads::findWorkload(pool, opt.workload);
    if (!workload) {
        std::fprintf(stderr, "unknown workload '%s' (try 'cheriperf "
                             "list')\n",
                     opt.workload.c_str());
        return 1;
    }

    std::vector<abi::Abi> abis;
    if (sweep)
        abis.assign(abi::kAllAbis.begin(), abi::kAllAbis.end());
    else
        abis.push_back(parseAbi(opt.abi));

    for (abi::Abi a : abis) {
        const auto config = configFor(opt, a);
        const auto result = workloads::runWorkload(
            *workload, a, opt.scale, &config, opt.seed);
        if (!result) {
            std::printf("--- %s\n  NA (in-address-space security "
                        "exception; see paper appendix)\n",
                        abi::abiName(a));
            continue;
        }
        printResult(opt, a, *result);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);
    if (opt.command == "list")
        return cmdList();
    if (opt.command == "events")
        return cmdEvents();
    if (opt.command == "run")
        return cmdRun(opt, /*sweep=*/false);
    if (opt.command == "sweep")
        return cmdRun(opt, /*sweep=*/true);
    usage(1);
}
