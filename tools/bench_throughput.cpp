/**
 * @file
 * bench_throughput — the CI throughput harness.
 *
 * Runs the tier-1 table-4 sweep four times through the library API —
 * exact, exact with every acceleration escape off (block cache,
 * chained execution, memory inline caches, batched issue), --approx
 * sampled, and over the allocator axis (purecap x bump/freelist/
 * sizeclass) — and emits BENCH_throughput.json: simulated-
 * instructions/sec for each mode (best-of-N plus the p50 wall), the
 * approx/exact speedup, the in-run exact-engine speedup (exact ips /
 * all-off exact ips: both passes share one process and host, so the
 * ratio is host-independent), the alloc-axis/exact efficiency,
 * block-cache hit rate and chained-transition rate (from a decoded-
 * program replay; the synthetic sweep generators do not go through
 * the block cache), memory fast-path coverage and batched-issue shape
 * (ops per issueBlock call) from the hot-path telemetry the sweeps
 * flush.
 *
 * With --baseline the harness compares against a checked-in
 * BENCH_throughput.json and exits non-zero on a >tolerance
 * regression, and additionally enforces absolute floors on the
 * host-independent acceleration metrics (exact_engine_speedup,
 * chain_hit_rate, fastpath_data_coverage). Wall-clock metrics are
 * gated on RATIOS, not absolute ips, so the gate is robust to runner
 * speed; the deterministic counters are gated directly.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "alloc/policy.hpp"
#include "isa/builder.hpp"
#include "runner/runner.hpp"
#include "sim/block_cache.hpp"
#include "sim/exec_hooks.hpp"
#include "sim/machine.hpp"
#include "support/telemetry.hpp"
#include "workloads/registry.hpp"

namespace cheri {
namespace {

struct Options
{
    workloads::Scale scale = workloads::Scale::Small;
    u32 jobs = 1;
    u64 rate = 1000;
    u64 epoch_insts = 10'000;
    u64 seed = 42;
    u32 repeats = 2;
    std::string out = "BENCH_throughput.json";
    std::string baseline;
    double tolerance = 0.10; //!< Relative drop that fails the gate.
};

[[noreturn]] void
usage(int status)
{
    std::fprintf(
        stderr,
        "usage: bench_throughput [options]\n"
        "  --scale tiny|small|ref   sweep scale (default small)\n"
        "  --jobs N                 runner threads (default 1)\n"
        "  --rate N                 approx sampling rate (default 1000)\n"
        "  --epoch N                approx epoch insts (default 10000)\n"
        "  --seed N                 sweep seed (default 42)\n"
        "  --repeats N              timing repeats, best-of (default "
        "2)\n"
        "  --out FILE               JSON output (default "
        "BENCH_throughput.json)\n"
        "  --baseline FILE          gate against a prior JSON\n"
        "  --tolerance FRAC         allowed relative drop "
        "(default 0.10)\n");
    std::exit(status);
}

const char *
scaleName(workloads::Scale scale)
{
    switch (scale) {
      case workloads::Scale::Tiny: return "tiny";
      case workloads::Scale::Small: return "small";
      case workloads::Scale::Ref: return "ref";
    }
    return "?";
}

/** One sweep pass: wall seconds, simulated instructions, telemetry. */
struct SweepMeasure
{
    double wall_seconds = 0;     //!< Best-of-N (host-noise minimum).
    double wall_p50_seconds = 0; //!< Median of the N repeats.
    u64 instructions = 0;
    double ips = 0;
    telemetry::HotPathStats hotpath;
};

/** Which table-4 sweep a measurement pass runs. */
enum class SweepKind {
    Exact,       //!< 3 ABIs, full timing model.
    ExactAllOff, //!< Exact with every acceleration escape off.
    Approx,      //!< 3 ABIs, sampled simulation.
    AllocAxis,   //!< purecap x {bump, freelist, sizeclass}.
};

runner::ExperimentPlan
buildPlan(const Options &opt, SweepKind kind)
{
    runner::ExperimentPlan plan;
    if (kind == SweepKind::AllocAxis) {
        // The allocator-axis throughput probe: same workload set, one
        // ABI, the three strategies. Gated as a ratio to exact_ips so
        // an allocator-layer slowdown (per-allocation bookkeeping,
        // shadow-heap traffic) shows up regardless of host speed.
        for (const auto &name : workloads::table4Names())
            for (const char *alloc_name :
                 {"bump", "freelist", "sizeclass"}) {
                runner::RunRequest request;
                request.workload = name;
                request.abi = abi::Abi::Purecap;
                request.scale = opt.scale;
                request.seed = opt.seed;
                request.allocator =
                    *alloc::parseAllocator(alloc_name);
                plan.add(request);
            }
    } else {
        for (const auto &name : workloads::table4Names())
            for (abi::Abi abi : abi::kAllAbis) {
                runner::RunRequest request;
                request.workload = name;
                request.abi = abi;
                request.scale = opt.scale;
                request.seed = opt.seed;
                if (kind == SweepKind::Approx) {
                    request.approx.enabled = true;
                    request.approx.rate = opt.rate;
                    request.approx.epoch_insts = opt.epoch_insts;
                }
                if (kind == SweepKind::ExactAllOff) {
                    // Same machine, every audited bit-identical
                    // acceleration escape disabled: the denominator of
                    // exact_engine_speedup. Simulated results are
                    // asserted identical by the verify suite and the
                    // hot-path regression tests; only wall time moves.
                    sim::MachineConfig cfg =
                        sim::MachineConfig::forAbi(abi);
                    cfg.block_cache = false;
                    cfg.chain_blocks = false;
                    cfg.mem.fast_path = false;
                    cfg.pipe.batch_issue = false;
                    request.config = cfg;
                }
                plan.add(request);
            }
    }
    return plan;
}

runner::RunnerOptions
benchRunnerOptions(const Options &opt)
{
    runner::RunnerOptions ropt;
    ropt.jobs = opt.jobs;
    ropt.cache = false; // A cache hit would measure the disk, not us.
    return ropt;
}

/** One timed pass over @p plan: appends the wall time to @p walls and
 *  refreshes the instruction count and hot-path telemetry in @p m. */
void
timedPass(const runner::ExperimentPlan &plan,
          const runner::RunnerOptions &ropt, SweepMeasure &m,
          std::vector<double> &walls)
{
    telemetry::reset();
    const auto start = std::chrono::steady_clock::now();
    const auto outcome = runner::runPlan(plan, ropt);
    const auto stop = std::chrono::steady_clock::now();
    walls.push_back(
        std::chrono::duration<double>(stop - start).count());
    m.instructions = 0;
    for (const auto &run : outcome.results)
        if (run.ok())
            m.instructions += run.sim->instructions;
    m.hotpath = telemetry::snapshot();
}

/** Reduce the repeat wall times in @p walls into @p m.
 *
 * Best-of-N wall time: simulation is deterministic, so repeat
 * variation is pure host noise and the minimum is the cleanest
 * estimate a noisy CI runner can give. The p50 is reported too so a
 * drifting host (thermal throttling, noisy neighbours) is visible
 * next to the minimum. */
void
finishMeasure(SweepMeasure &m, std::vector<double> &walls)
{
    std::sort(walls.begin(), walls.end());
    m.wall_seconds = walls.front();
    m.wall_p50_seconds = walls[walls.size() / 2];
    m.ips = m.wall_seconds > 0
                ? static_cast<double>(m.instructions) / m.wall_seconds
                : 0;
}

SweepMeasure
runSweep(const Options &opt, SweepKind kind)
{
    const runner::ExperimentPlan plan = buildPlan(opt, kind);
    const runner::RunnerOptions ropt = benchRunnerOptions(opt);
    SweepMeasure m;
    std::vector<double> walls;
    for (u32 r = 0; r < std::max<u32>(1, opt.repeats); ++r)
        timedPass(plan, ropt, m, walls);
    finishMeasure(m, walls);
    return m;
}

/** Measure the exact and all-escapes-off sweeps with their repeats
 *  interleaved: (exact, alloff) run back to back inside each repeat,
 *  so slow host drift — thermal throttling, a noisy neighbour
 *  arriving mid-bench — hits both legs equally and cancels out of
 *  the engine-speedup ratio instead of biasing it. Separate phases
 *  would put all exact repeats in one era and all alloff repeats in
 *  another, and the gate would measure the drift, not the engine. */
std::pair<SweepMeasure, SweepMeasure>
runEnginePair(const Options &opt)
{
    const runner::ExperimentPlan exact_plan =
        buildPlan(opt, SweepKind::Exact);
    const runner::ExperimentPlan alloff_plan =
        buildPlan(opt, SweepKind::ExactAllOff);
    const runner::RunnerOptions ropt = benchRunnerOptions(opt);
    SweepMeasure exact;
    SweepMeasure alloff;
    std::vector<double> exact_walls;
    std::vector<double> alloff_walls;
    for (u32 r = 0; r < std::max<u32>(1, opt.repeats); ++r) {
        timedPass(exact_plan, ropt, exact, exact_walls);
        timedPass(alloff_plan, ropt, alloff, alloff_walls);
    }
    finishMeasure(exact, exact_walls);
    finishMeasure(alloff, alloff_walls);
    return {exact, alloff};
}

/**
 * The block-cache replay probe. The sweep generators lower workloads
 * straight to DynOps, so block-cache traffic comes from the static-
 * program path: decode a branchy program once into a shared
 * BlockCache, then replay it from the warm cache and report the
 * steady-state hit rate.
 */
isa::Program
probeProgram()
{
    isa::ProgramBuilder pb;
    pb.beginFunction("main");
    const isa::BlockId entry = pb.currentBlock();
    pb.beginFunction("callee");
    pb.addImm(5, 5, 3).ret(false);
    pb.atBlock(entry);
    pb.movImm(1, 0).movImm(2, 400).movImm(3, 0x5000);
    const auto loop = pb.newBlock();
    pb.jump(loop);
    pb.atBlock(loop);
    pb.str(1, 3, 0).ldr(4, 3, 0).addImm(1, 4, 1);
    pb.callBlock(pb.program().function(1).entry, false);
    pb.subImm(2, 2, 1).cmpImm(2, 0);
    pb.branchCond(isa::Cond::Ne, loop);
    const auto done = pb.newBlock();
    pb.atBlock(done);
    pb.halt();
    return pb.finish();
}

struct BlockCacheMeasure
{
    u64 hits = 0;
    u64 misses = 0;
    u64 ops_replayed = 0;
    double hit_rate = 0;
    // Chained execution over the same replay: transitions resolved
    // through successor links / the indirect memo vs map probes.
    u64 chain_hits = 0;
    u64 chain_misses = 0;
    double chain_hit_rate = 0;
};

BlockCacheMeasure
runBlockCacheProbe()
{
    const isa::Program prog = probeProgram();
    sim::BlockCache shared;
    sim::NullExecHooks hooks;
    telemetry::reset();
    // Cold pass decodes; warm passes replay. Several warm passes so
    // the steady-state rate dominates the cold misses, as it does in
    // a long-lived session reusing one cache across runs.
    for (int pass = 0; pass < 10; ++pass) {
        sim::Machine machine(
            sim::MachineConfig::forAbi(abi::Abi::Purecap));
        machine.run(prog, shared, hooks);
    }
    BlockCacheMeasure m;
    m.hits = shared.hits();
    m.misses = shared.misses();
    m.ops_replayed = shared.opsReplayed();
    const u64 total = m.hits + m.misses;
    m.hit_rate =
        total ? static_cast<double>(m.hits) / total : 0.0;
    const telemetry::HotPathStats stats = telemetry::snapshot();
    m.chain_hits = stats.chain_hits;
    m.chain_misses = stats.chain_misses;
    m.chain_hit_rate = stats.chainHitRate();
    return m;
}

void
writeJson(const Options &opt, const SweepMeasure &exact,
          const SweepMeasure &alloff, const SweepMeasure &approx,
          const SweepMeasure &alloc_axis,
          const BlockCacheMeasure &blocks)
{
    std::FILE *f = std::fopen(opt.out.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_throughput: cannot write %s\n",
                     opt.out.c_str());
        std::exit(2);
    }
    const double speedup =
        exact.ips > 0 ? approx.ips / exact.ips : 0;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": 3,\n");
    std::fprintf(f, "  \"scale\": \"%s\",\n", scaleName(opt.scale));
    std::fprintf(f, "  \"jobs\": %u,\n", opt.jobs);
    std::fprintf(f, "  \"approx_rate\": %llu,\n",
                 static_cast<unsigned long long>(opt.rate));
    std::fprintf(f, "  \"approx_epoch_insts\": %llu,\n",
                 static_cast<unsigned long long>(opt.epoch_insts));
    std::fprintf(f, "  \"exact_wall_seconds\": %.6f,\n",
                 exact.wall_seconds);
    std::fprintf(f, "  \"exact_wall_p50_seconds\": %.6f,\n",
                 exact.wall_p50_seconds);
    std::fprintf(f, "  \"exact_instructions\": %llu,\n",
                 static_cast<unsigned long long>(exact.instructions));
    std::fprintf(f, "  \"exact_ips\": %.1f,\n", exact.ips);
    std::fprintf(f, "  \"alloff_wall_seconds\": %.6f,\n",
                 alloff.wall_seconds);
    std::fprintf(f, "  \"alloff_wall_p50_seconds\": %.6f,\n",
                 alloff.wall_p50_seconds);
    std::fprintf(f, "  \"alloff_instructions\": %llu,\n",
                 static_cast<unsigned long long>(alloff.instructions));
    std::fprintf(f, "  \"alloff_ips\": %.1f,\n", alloff.ips);
    std::fprintf(f, "  \"exact_engine_speedup\": %.4f,\n",
                 alloff.ips > 0 ? exact.ips / alloff.ips : 0);
    std::fprintf(f, "  \"approx_wall_seconds\": %.6f,\n",
                 approx.wall_seconds);
    std::fprintf(f, "  \"approx_wall_p50_seconds\": %.6f,\n",
                 approx.wall_p50_seconds);
    std::fprintf(f, "  \"approx_instructions\": %llu,\n",
                 static_cast<unsigned long long>(approx.instructions));
    std::fprintf(f, "  \"approx_ips\": %.1f,\n", approx.ips);
    std::fprintf(f, "  \"approx_speedup\": %.4f,\n", speedup);
    std::fprintf(f, "  \"alloc_axis_wall_seconds\": %.6f,\n",
                 alloc_axis.wall_seconds);
    std::fprintf(f, "  \"alloc_axis_wall_p50_seconds\": %.6f,\n",
                 alloc_axis.wall_p50_seconds);
    std::fprintf(f, "  \"alloc_axis_instructions\": %llu,\n",
                 static_cast<unsigned long long>(
                     alloc_axis.instructions));
    std::fprintf(f, "  \"alloc_axis_ips\": %.1f,\n", alloc_axis.ips);
    std::fprintf(f, "  \"alloc_axis_efficiency\": %.4f,\n",
                 exact.ips > 0 ? alloc_axis.ips / exact.ips : 0);
    std::fprintf(f, "  \"fastpath_data_coverage\": %.6f,\n",
                 exact.hotpath.dataCoverage());
    std::fprintf(f, "  \"fastpath_fetch_coverage\": %.6f,\n",
                 exact.hotpath.fetchCoverage());
    std::fprintf(f, "  \"batch_calls\": %llu,\n",
                 static_cast<unsigned long long>(
                     exact.hotpath.batch_calls));
    std::fprintf(f, "  \"batch_ops\": %llu,\n",
                 static_cast<unsigned long long>(
                     exact.hotpath.batch_ops));
    std::fprintf(f, "  \"ops_per_batch\": %.4f,\n",
                 exact.hotpath.opsPerBatch());
    std::fprintf(f, "  \"block_cache_hits\": %llu,\n",
                 static_cast<unsigned long long>(blocks.hits));
    std::fprintf(f, "  \"block_cache_misses\": %llu,\n",
                 static_cast<unsigned long long>(blocks.misses));
    std::fprintf(f, "  \"block_cache_ops_replayed\": %llu,\n",
                 static_cast<unsigned long long>(blocks.ops_replayed));
    std::fprintf(f, "  \"block_cache_hit_rate\": %.6f,\n",
                 blocks.hit_rate);
    std::fprintf(f, "  \"chain_hits\": %llu,\n",
                 static_cast<unsigned long long>(blocks.chain_hits));
    std::fprintf(f, "  \"chain_misses\": %llu,\n",
                 static_cast<unsigned long long>(blocks.chain_misses));
    std::fprintf(f, "  \"chain_hit_rate\": %.6f\n",
                 blocks.chain_hit_rate);
    std::fprintf(f, "}\n");
    std::fclose(f);
}

/**
 * Pull one numeric field out of a BENCH_throughput.json. The file is
 * our own flat emission above, so a line scan is a full parser for
 * it; a missing key is a fatal baseline-format error.
 */
double
jsonField(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = text.find(needle);
    if (pos == std::string::npos) {
        std::fprintf(stderr,
                     "bench_throughput: baseline lacks key '%s'\n",
                     key.c_str());
        std::exit(2);
    }
    return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

/** True when @p current dropped more than tolerance below @p base. */
bool
regressed(const char *name, double current, double base,
          double tolerance)
{
    if (base <= 0)
        return false; // Nothing to regress from.
    const double floor = base * (1.0 - tolerance);
    const bool bad = current < floor;
    std::fprintf(stderr, "  %-28s %12.4f  baseline %12.4f  %s\n", name,
                 current, base, bad ? "REGRESSED" : "ok");
    return bad;
}

/** True when @p current sits below an absolute floor. */
bool
belowFloor(const char *name, double current, double floor)
{
    const bool bad = current < floor;
    std::fprintf(stderr, "  %-28s %12.4f  floor    %12.4f  %s\n", name,
                 current, floor, bad ? "BELOW FLOOR" : "ok");
    return bad;
}

int
checkBaseline(const Options &opt, const SweepMeasure &exact,
              const SweepMeasure &alloff, const SweepMeasure &approx,
              const SweepMeasure &alloc_axis,
              const BlockCacheMeasure &blocks)
{
    std::ifstream in(opt.baseline);
    if (!in) {
        std::fprintf(stderr,
                     "bench_throughput: cannot read baseline %s\n",
                     opt.baseline.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    const double speedup =
        exact.ips > 0 ? approx.ips / exact.ips : 0;
    const double engine_speedup =
        alloff.ips > 0 ? exact.ips / alloff.ips : 0;
    std::fprintf(stderr, "baseline gate (tolerance %.0f%%):\n",
                 opt.tolerance * 100);
    bool bad = false;
    // Timing gate: the approx/exact ratio cancels host speed, so it
    // is the one wall-clock metric comparable across machines.
    bad |= regressed("approx_speedup", speedup,
                     jsonField(text, "approx_speedup"), opt.tolerance);
    // The exact-engine gate: both passes ran in this process, so the
    // ratio is host-independent — a drop means the accelerated engine
    // itself got slower relative to the all-escapes-off model.
    bad |= regressed("exact_engine_speedup", engine_speedup,
                     jsonField(text, "exact_engine_speedup"),
                     opt.tolerance);
    // Absolute floors on the acceleration metrics (host-independent):
    // these hold on any machine, so CI asserts them outright rather
    // than only relative to a drifting baseline.
    bad |= belowFloor("exact_engine_speedup", engine_speedup, 1.5);
    bad |= belowFloor("chain_hit_rate", blocks.chain_hit_rate, 0.90);
    bad |= belowFloor("fastpath_data_coverage",
                      exact.hotpath.dataCoverage(), 0.60);
    // Same trick for the allocator axis: its ips relative to the
    // exact sweep's cancels host speed, so a drop means the alloc
    // layer itself got slower per simulated instruction.
    bad |= regressed("alloc_axis_efficiency",
                     exact.ips > 0 ? alloc_axis.ips / exact.ips : 0,
                     jsonField(text, "alloc_axis_efficiency"),
                     opt.tolerance);
    // Deterministic counters: same binary + same inputs must
    // reproduce these exactly, so a drop is a real coverage loss.
    bad |= regressed("block_cache_hit_rate", blocks.hit_rate,
                     jsonField(text, "block_cache_hit_rate"),
                     opt.tolerance);
    bad |= regressed("chain_hit_rate", blocks.chain_hit_rate,
                     jsonField(text, "chain_hit_rate"),
                     opt.tolerance);
    bad |= regressed("fastpath_data_coverage",
                     exact.hotpath.dataCoverage(),
                     jsonField(text, "fastpath_data_coverage"),
                     opt.tolerance);
    bad |= regressed("fastpath_fetch_coverage",
                     exact.hotpath.fetchCoverage(),
                     jsonField(text, "fastpath_fetch_coverage"),
                     opt.tolerance);
    return bad ? 1 : 0;
}

int
benchMain(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                usage(2);
            }
            return argv[++i];
        };
        if (arg == "--scale") {
            const std::string s = next();
            if (s == "tiny")
                opt.scale = workloads::Scale::Tiny;
            else if (s == "small")
                opt.scale = workloads::Scale::Small;
            else if (s == "ref")
                opt.scale = workloads::Scale::Ref;
            else
                usage(2);
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<u32>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg == "--rate") {
            opt.rate = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--epoch") {
            opt.epoch_insts =
                std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--repeats") {
            opt.repeats = static_cast<u32>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg == "--out") {
            opt.out = next();
        } else if (arg == "--baseline") {
            opt.baseline = next();
        } else if (arg == "--tolerance") {
            opt.tolerance = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(2);
        }
    }
    if (opt.rate < 1 || opt.epoch_insts < 1)
        usage(2);

    std::fprintf(stderr,
                 "bench_throughput: table4 x 3 ABIs, scale %s, "
                 "jobs %u\n",
                 scaleName(opt.scale), opt.jobs);

    const auto [exact, alloff] = runEnginePair(opt);
    std::fprintf(stderr,
                 "  exact : %8.3f s  %12llu insts  %12.0f ips  "
                 "(p50 %.3f s)\n",
                 exact.wall_seconds,
                 static_cast<unsigned long long>(exact.instructions),
                 exact.ips, exact.wall_p50_seconds);

    std::fprintf(stderr,
                 "  alloff: %8.3f s  %12llu insts  %12.0f ips  "
                 "(engine speedup %.2fx)\n",
                 alloff.wall_seconds,
                 static_cast<unsigned long long>(alloff.instructions),
                 alloff.ips,
                 alloff.ips > 0 ? exact.ips / alloff.ips : 0.0);

    const SweepMeasure approx = runSweep(opt, SweepKind::Approx);
    std::fprintf(stderr,
                 "  approx: %8.3f s  %12llu insts  %12.0f ips  "
                 "(rate %llu, epoch %llu)\n",
                 approx.wall_seconds,
                 static_cast<unsigned long long>(approx.instructions),
                 approx.ips,
                 static_cast<unsigned long long>(opt.rate),
                 static_cast<unsigned long long>(opt.epoch_insts));
    std::fprintf(stderr, "  speedup: %.2fx\n",
                 exact.ips > 0 ? approx.ips / exact.ips : 0.0);

    const SweepMeasure alloc_axis = runSweep(opt, SweepKind::AllocAxis);
    std::fprintf(stderr,
                 "  alloc : %8.3f s  %12llu insts  %12.0f ips  "
                 "(purecap x bump,freelist,sizeclass; %.2fx of "
                 "exact)\n",
                 alloc_axis.wall_seconds,
                 static_cast<unsigned long long>(
                     alloc_axis.instructions),
                 alloc_axis.ips,
                 exact.ips > 0 ? alloc_axis.ips / exact.ips : 0.0);

    const BlockCacheMeasure blocks = runBlockCacheProbe();
    std::fprintf(
        stderr,
        "  block cache: %llu hits / %llu misses (%.1f%%), "
        "%llu ops replayed\n",
        static_cast<unsigned long long>(blocks.hits),
        static_cast<unsigned long long>(blocks.misses),
        blocks.hit_rate * 100,
        static_cast<unsigned long long>(blocks.ops_replayed));
    std::fprintf(
        stderr,
        "  block chain: %llu chained / %llu probed (%.1f%%)\n",
        static_cast<unsigned long long>(blocks.chain_hits),
        static_cast<unsigned long long>(blocks.chain_misses),
        blocks.chain_hit_rate * 100);
    std::fprintf(stderr,
                 "  fast path: data %.1f%%, fetch %.1f%% (exact "
                 "sweep)\n",
                 exact.hotpath.dataCoverage() * 100,
                 exact.hotpath.fetchCoverage() * 100);
    std::fprintf(stderr,
                 "  batch issue: %llu calls, %.1f ops/call (exact "
                 "sweep)\n",
                 static_cast<unsigned long long>(
                     exact.hotpath.batch_calls),
                 exact.hotpath.opsPerBatch());

    writeJson(opt, exact, alloff, approx, alloc_axis, blocks);
    std::fprintf(stderr, "wrote %s\n", opt.out.c_str());

    if (!opt.baseline.empty())
        return checkBaseline(opt, exact, alloff, approx, alloc_axis,
                             blocks);
    return 0;
}

} // namespace
} // namespace cheri

int
main(int argc, char **argv)
{
    return cheri::benchMain(argc, argv);
}
