/**
 * @file
 * bench_throughput — the CI throughput harness.
 *
 * Runs the tier-1 table-4 sweep three times through the library API —
 * exact, --approx sampled, and over the allocator axis (purecap x
 * bump/freelist/sizeclass) — and emits BENCH_throughput.json:
 * simulated-instructions/sec for each mode, the approx/exact speedup,
 * the alloc-axis/exact efficiency, block-cache hit rate (from a decoded-
 * program replay; the synthetic sweep generators do not go through
 * the block cache), and memory fast-path coverage (from the hot-path
 * telemetry the sweeps flush).
 *
 * With --baseline the harness compares against a checked-in
 * BENCH_throughput.json and exits non-zero on a >tolerance
 * regression. Wall-clock metrics are gated on the approx/exact RATIO,
 * not absolute ips, so the gate is robust to runner speed; the
 * deterministic counters (block-cache hit rate, fast-path coverage)
 * are gated directly.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "alloc/policy.hpp"
#include "isa/builder.hpp"
#include "runner/runner.hpp"
#include "sim/block_cache.hpp"
#include "sim/exec_hooks.hpp"
#include "sim/machine.hpp"
#include "support/telemetry.hpp"
#include "workloads/registry.hpp"

namespace cheri {
namespace {

struct Options
{
    workloads::Scale scale = workloads::Scale::Small;
    u32 jobs = 1;
    u64 rate = 1000;
    u64 epoch_insts = 10'000;
    u64 seed = 42;
    u32 repeats = 2;
    std::string out = "BENCH_throughput.json";
    std::string baseline;
    double tolerance = 0.10; //!< Relative drop that fails the gate.
};

[[noreturn]] void
usage(int status)
{
    std::fprintf(
        stderr,
        "usage: bench_throughput [options]\n"
        "  --scale tiny|small|ref   sweep scale (default small)\n"
        "  --jobs N                 runner threads (default 1)\n"
        "  --rate N                 approx sampling rate (default 1000)\n"
        "  --epoch N                approx epoch insts (default 10000)\n"
        "  --seed N                 sweep seed (default 42)\n"
        "  --repeats N              timing repeats, best-of (default "
        "2)\n"
        "  --out FILE               JSON output (default "
        "BENCH_throughput.json)\n"
        "  --baseline FILE          gate against a prior JSON\n"
        "  --tolerance FRAC         allowed relative drop "
        "(default 0.10)\n");
    std::exit(status);
}

const char *
scaleName(workloads::Scale scale)
{
    switch (scale) {
      case workloads::Scale::Tiny: return "tiny";
      case workloads::Scale::Small: return "small";
      case workloads::Scale::Ref: return "ref";
    }
    return "?";
}

/** One sweep pass: wall seconds, simulated instructions, telemetry. */
struct SweepMeasure
{
    double wall_seconds = 0;
    u64 instructions = 0;
    double ips = 0;
    telemetry::HotPathStats hotpath;
};

/** Which table-4 sweep a measurement pass runs. */
enum class SweepKind {
    Exact,     //!< 3 ABIs, full timing model.
    Approx,    //!< 3 ABIs, sampled simulation.
    AllocAxis, //!< purecap x {bump, freelist, sizeclass}.
};

SweepMeasure
runSweep(const Options &opt, SweepKind kind)
{
    runner::ExperimentPlan plan;
    if (kind == SweepKind::AllocAxis) {
        // The allocator-axis throughput probe: same workload set, one
        // ABI, the three strategies. Gated as a ratio to exact_ips so
        // an allocator-layer slowdown (per-allocation bookkeeping,
        // shadow-heap traffic) shows up regardless of host speed.
        for (const auto &name : workloads::table4Names())
            for (const char *alloc_name :
                 {"bump", "freelist", "sizeclass"}) {
                runner::RunRequest request;
                request.workload = name;
                request.abi = abi::Abi::Purecap;
                request.scale = opt.scale;
                request.seed = opt.seed;
                request.allocator =
                    *alloc::parseAllocator(alloc_name);
                plan.add(request);
            }
    } else {
        for (const auto &name : workloads::table4Names())
            for (abi::Abi abi : abi::kAllAbis) {
                runner::RunRequest request;
                request.workload = name;
                request.abi = abi;
                request.scale = opt.scale;
                request.seed = opt.seed;
                if (kind == SweepKind::Approx) {
                    request.approx.enabled = true;
                    request.approx.rate = opt.rate;
                    request.approx.epoch_insts = opt.epoch_insts;
                }
                plan.add(request);
            }
    }

    runner::RunnerOptions ropt;
    ropt.jobs = opt.jobs;
    ropt.cache = false; // A cache hit would measure the disk, not us.

    // Best-of-N wall time: simulation is deterministic, so repeat
    // variation is pure host noise and the minimum is the cleanest
    // estimate a noisy CI runner can give.
    SweepMeasure m;
    m.wall_seconds = -1;
    for (u32 r = 0; r < std::max<u32>(1, opt.repeats); ++r) {
        telemetry::reset();
        const auto start = std::chrono::steady_clock::now();
        const auto outcome = runner::runPlan(plan, ropt);
        const auto stop = std::chrono::steady_clock::now();
        const double wall =
            std::chrono::duration<double>(stop - start).count();
        if (m.wall_seconds < 0 || wall < m.wall_seconds)
            m.wall_seconds = wall;
        m.instructions = 0;
        for (const auto &run : outcome.results)
            if (run.ok())
                m.instructions += run.sim->instructions;
        m.hotpath = telemetry::snapshot();
    }
    m.ips = m.wall_seconds > 0
                ? static_cast<double>(m.instructions) / m.wall_seconds
                : 0;
    return m;
}

/**
 * The block-cache replay probe. The sweep generators lower workloads
 * straight to DynOps, so block-cache traffic comes from the static-
 * program path: decode a branchy program once into a shared
 * BlockCache, then replay it from the warm cache and report the
 * steady-state hit rate.
 */
isa::Program
probeProgram()
{
    isa::ProgramBuilder pb;
    pb.beginFunction("main");
    const isa::BlockId entry = pb.currentBlock();
    pb.beginFunction("callee");
    pb.addImm(5, 5, 3).ret(false);
    pb.atBlock(entry);
    pb.movImm(1, 0).movImm(2, 400).movImm(3, 0x5000);
    const auto loop = pb.newBlock();
    pb.jump(loop);
    pb.atBlock(loop);
    pb.str(1, 3, 0).ldr(4, 3, 0).addImm(1, 4, 1);
    pb.callBlock(pb.program().function(1).entry, false);
    pb.subImm(2, 2, 1).cmpImm(2, 0);
    pb.branchCond(isa::Cond::Ne, loop);
    const auto done = pb.newBlock();
    pb.atBlock(done);
    pb.halt();
    return pb.finish();
}

struct BlockCacheMeasure
{
    u64 hits = 0;
    u64 misses = 0;
    u64 ops_replayed = 0;
    double hit_rate = 0;
};

BlockCacheMeasure
runBlockCacheProbe()
{
    const isa::Program prog = probeProgram();
    sim::BlockCache shared;
    sim::NullExecHooks hooks;
    // Cold pass decodes; warm passes replay. Several warm passes so
    // the steady-state rate dominates the cold misses, as it does in
    // a long-lived session reusing one cache across runs.
    for (int pass = 0; pass < 10; ++pass) {
        sim::Machine machine(
            sim::MachineConfig::forAbi(abi::Abi::Purecap));
        machine.run(prog, shared, hooks);
    }
    BlockCacheMeasure m;
    m.hits = shared.hits();
    m.misses = shared.misses();
    m.ops_replayed = shared.opsReplayed();
    const u64 total = m.hits + m.misses;
    m.hit_rate =
        total ? static_cast<double>(m.hits) / total : 0.0;
    return m;
}

void
writeJson(const Options &opt, const SweepMeasure &exact,
          const SweepMeasure &approx, const SweepMeasure &alloc_axis,
          const BlockCacheMeasure &blocks)
{
    std::FILE *f = std::fopen(opt.out.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_throughput: cannot write %s\n",
                     opt.out.c_str());
        std::exit(2);
    }
    const double speedup =
        exact.ips > 0 ? approx.ips / exact.ips : 0;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": 2,\n");
    std::fprintf(f, "  \"scale\": \"%s\",\n", scaleName(opt.scale));
    std::fprintf(f, "  \"jobs\": %u,\n", opt.jobs);
    std::fprintf(f, "  \"approx_rate\": %llu,\n",
                 static_cast<unsigned long long>(opt.rate));
    std::fprintf(f, "  \"approx_epoch_insts\": %llu,\n",
                 static_cast<unsigned long long>(opt.epoch_insts));
    std::fprintf(f, "  \"exact_wall_seconds\": %.6f,\n",
                 exact.wall_seconds);
    std::fprintf(f, "  \"exact_instructions\": %llu,\n",
                 static_cast<unsigned long long>(exact.instructions));
    std::fprintf(f, "  \"exact_ips\": %.1f,\n", exact.ips);
    std::fprintf(f, "  \"approx_wall_seconds\": %.6f,\n",
                 approx.wall_seconds);
    std::fprintf(f, "  \"approx_instructions\": %llu,\n",
                 static_cast<unsigned long long>(approx.instructions));
    std::fprintf(f, "  \"approx_ips\": %.1f,\n", approx.ips);
    std::fprintf(f, "  \"approx_speedup\": %.4f,\n", speedup);
    std::fprintf(f, "  \"alloc_axis_wall_seconds\": %.6f,\n",
                 alloc_axis.wall_seconds);
    std::fprintf(f, "  \"alloc_axis_instructions\": %llu,\n",
                 static_cast<unsigned long long>(
                     alloc_axis.instructions));
    std::fprintf(f, "  \"alloc_axis_ips\": %.1f,\n", alloc_axis.ips);
    std::fprintf(f, "  \"alloc_axis_efficiency\": %.4f,\n",
                 exact.ips > 0 ? alloc_axis.ips / exact.ips : 0);
    std::fprintf(f, "  \"fastpath_data_coverage\": %.6f,\n",
                 exact.hotpath.dataCoverage());
    std::fprintf(f, "  \"fastpath_fetch_coverage\": %.6f,\n",
                 exact.hotpath.fetchCoverage());
    std::fprintf(f, "  \"block_cache_hits\": %llu,\n",
                 static_cast<unsigned long long>(blocks.hits));
    std::fprintf(f, "  \"block_cache_misses\": %llu,\n",
                 static_cast<unsigned long long>(blocks.misses));
    std::fprintf(f, "  \"block_cache_ops_replayed\": %llu,\n",
                 static_cast<unsigned long long>(blocks.ops_replayed));
    std::fprintf(f, "  \"block_cache_hit_rate\": %.6f\n",
                 blocks.hit_rate);
    std::fprintf(f, "}\n");
    std::fclose(f);
}

/**
 * Pull one numeric field out of a BENCH_throughput.json. The file is
 * our own flat emission above, so a line scan is a full parser for
 * it; a missing key is a fatal baseline-format error.
 */
double
jsonField(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = text.find(needle);
    if (pos == std::string::npos) {
        std::fprintf(stderr,
                     "bench_throughput: baseline lacks key '%s'\n",
                     key.c_str());
        std::exit(2);
    }
    return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

/** True when @p current dropped more than tolerance below @p base. */
bool
regressed(const char *name, double current, double base,
          double tolerance)
{
    if (base <= 0)
        return false; // Nothing to regress from.
    const double floor = base * (1.0 - tolerance);
    const bool bad = current < floor;
    std::fprintf(stderr, "  %-28s %12.4f  baseline %12.4f  %s\n", name,
                 current, base, bad ? "REGRESSED" : "ok");
    return bad;
}

int
checkBaseline(const Options &opt, const SweepMeasure &exact,
              const SweepMeasure &approx,
              const SweepMeasure &alloc_axis,
              const BlockCacheMeasure &blocks)
{
    std::ifstream in(opt.baseline);
    if (!in) {
        std::fprintf(stderr,
                     "bench_throughput: cannot read baseline %s\n",
                     opt.baseline.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    const double speedup =
        exact.ips > 0 ? approx.ips / exact.ips : 0;
    std::fprintf(stderr, "baseline gate (tolerance %.0f%%):\n",
                 opt.tolerance * 100);
    bool bad = false;
    // Timing gate: the approx/exact ratio cancels host speed, so it
    // is the one wall-clock metric comparable across machines.
    bad |= regressed("approx_speedup", speedup,
                     jsonField(text, "approx_speedup"), opt.tolerance);
    // Same trick for the allocator axis: its ips relative to the
    // exact sweep's cancels host speed, so a drop means the alloc
    // layer itself got slower per simulated instruction.
    bad |= regressed("alloc_axis_efficiency",
                     exact.ips > 0 ? alloc_axis.ips / exact.ips : 0,
                     jsonField(text, "alloc_axis_efficiency"),
                     opt.tolerance);
    // Deterministic counters: same binary + same inputs must
    // reproduce these exactly, so a drop is a real coverage loss.
    bad |= regressed("block_cache_hit_rate", blocks.hit_rate,
                     jsonField(text, "block_cache_hit_rate"),
                     opt.tolerance);
    bad |= regressed("fastpath_data_coverage",
                     exact.hotpath.dataCoverage(),
                     jsonField(text, "fastpath_data_coverage"),
                     opt.tolerance);
    bad |= regressed("fastpath_fetch_coverage",
                     exact.hotpath.fetchCoverage(),
                     jsonField(text, "fastpath_fetch_coverage"),
                     opt.tolerance);
    return bad ? 1 : 0;
}

int
benchMain(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                usage(2);
            }
            return argv[++i];
        };
        if (arg == "--scale") {
            const std::string s = next();
            if (s == "tiny")
                opt.scale = workloads::Scale::Tiny;
            else if (s == "small")
                opt.scale = workloads::Scale::Small;
            else if (s == "ref")
                opt.scale = workloads::Scale::Ref;
            else
                usage(2);
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<u32>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg == "--rate") {
            opt.rate = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--epoch") {
            opt.epoch_insts =
                std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--repeats") {
            opt.repeats = static_cast<u32>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg == "--out") {
            opt.out = next();
        } else if (arg == "--baseline") {
            opt.baseline = next();
        } else if (arg == "--tolerance") {
            opt.tolerance = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(2);
        }
    }
    if (opt.rate < 1 || opt.epoch_insts < 1)
        usage(2);

    std::fprintf(stderr,
                 "bench_throughput: table4 x 3 ABIs, scale %s, "
                 "jobs %u\n",
                 scaleName(opt.scale), opt.jobs);

    const SweepMeasure exact = runSweep(opt, SweepKind::Exact);
    std::fprintf(stderr,
                 "  exact : %8.3f s  %12llu insts  %12.0f ips\n",
                 exact.wall_seconds,
                 static_cast<unsigned long long>(exact.instructions),
                 exact.ips);

    const SweepMeasure approx = runSweep(opt, SweepKind::Approx);
    std::fprintf(stderr,
                 "  approx: %8.3f s  %12llu insts  %12.0f ips  "
                 "(rate %llu, epoch %llu)\n",
                 approx.wall_seconds,
                 static_cast<unsigned long long>(approx.instructions),
                 approx.ips,
                 static_cast<unsigned long long>(opt.rate),
                 static_cast<unsigned long long>(opt.epoch_insts));
    std::fprintf(stderr, "  speedup: %.2fx\n",
                 exact.ips > 0 ? approx.ips / exact.ips : 0.0);

    const SweepMeasure alloc_axis = runSweep(opt, SweepKind::AllocAxis);
    std::fprintf(stderr,
                 "  alloc : %8.3f s  %12llu insts  %12.0f ips  "
                 "(purecap x bump,freelist,sizeclass; %.2fx of "
                 "exact)\n",
                 alloc_axis.wall_seconds,
                 static_cast<unsigned long long>(
                     alloc_axis.instructions),
                 alloc_axis.ips,
                 exact.ips > 0 ? alloc_axis.ips / exact.ips : 0.0);

    const BlockCacheMeasure blocks = runBlockCacheProbe();
    std::fprintf(
        stderr,
        "  block cache: %llu hits / %llu misses (%.1f%%), "
        "%llu ops replayed\n",
        static_cast<unsigned long long>(blocks.hits),
        static_cast<unsigned long long>(blocks.misses),
        blocks.hit_rate * 100,
        static_cast<unsigned long long>(blocks.ops_replayed));
    std::fprintf(stderr,
                 "  fast path: data %.1f%%, fetch %.1f%% (exact "
                 "sweep)\n",
                 exact.hotpath.dataCoverage() * 100,
                 exact.hotpath.fetchCoverage() * 100);

    writeJson(opt, exact, approx, alloc_axis, blocks);
    std::fprintf(stderr, "wrote %s\n", opt.out.c_str());

    if (!opt.baseline.empty())
        return checkBaseline(opt, exact, approx, alloc_axis, blocks);
    return 0;
}

} // namespace
} // namespace cheri

int
main(int argc, char **argv)
{
    return cheri::benchMain(argc, argv);
}
