/**
 * @file
 * bench_autotune — the CI harness for the design-space search.
 *
 * Runs one seeded `tune::autotune` pass twice against a private cache
 * directory — cold (fresh directory, every cell simulated) and warm
 * (same directory, every cell replayed from .cpr) — and emits
 * BENCH_autotune.json: probes/sec on the cold pass, the warm/cold
 * wall-clock speedup, and the warm-pass cache-hit rate. The cold and
 * warm traces are byte-compared on the way: a search whose log shifts
 * with cache state is a determinism bug, not a perf number.
 *
 * With --baseline the harness compares against a checked-in
 * BENCH_autotune.json and exits non-zero on a >tolerance regression.
 * Wall-clock is gated on the warm/cold RATIO (host speed cancels);
 * the warm hit rate is deterministic — same binary, same seed must
 * replay every cell — so it is gated directly.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "tune/frontier.hpp"
#include "tune/tuner.hpp"
#include "workloads/registry.hpp"

namespace cheri {
namespace {

struct Options
{
    workloads::Scale scale = workloads::Scale::Tiny;
    u32 jobs = 2;
    u64 seed = 42;
    u64 budget = 16;
    u32 repeats = 2;
    std::string cache_dir = "bench_autotune_cache";
    std::string out = "BENCH_autotune.json";
    std::string baseline;
    double tolerance = 0.10; //!< Relative drop that fails the gate.
};

[[noreturn]] void
usage(int status)
{
    std::fprintf(
        stderr,
        "usage: bench_autotune [options]\n"
        "  --scale tiny|small|ref   probe scale (default tiny)\n"
        "  --jobs N                 runner threads (default 2)\n"
        "  --seed N                 search seed (default 42)\n"
        "  --budget N               probe budget (default 16)\n"
        "  --repeats N              timing repeats, best-of (default "
        "2)\n"
        "  --cache-dir DIR          scratch cache (default "
        "bench_autotune_cache)\n"
        "  --out FILE               JSON output (default "
        "BENCH_autotune.json)\n"
        "  --baseline FILE          gate against a prior JSON\n"
        "  --tolerance FRAC         allowed relative drop "
        "(default 0.10)\n");
    std::exit(status);
}

const char *
scaleName(workloads::Scale scale)
{
    switch (scale) {
      case workloads::Scale::Tiny: return "tiny";
      case workloads::Scale::Small: return "small";
      case workloads::Scale::Ref: return "ref";
    }
    return "?";
}

/** One cold+warm autotune pair against a fresh cache directory. */
struct TuneMeasure
{
    tune::TuneStats cold;
    tune::TuneStats warm;
    u64 frontier_points = 0;
};

TuneMeasure
runPair(const Options &opt)
{
    // Best-of-N wall time: the search itself is deterministic, so
    // repeat variation is pure host noise and the minimum is the
    // cleanest estimate a noisy CI runner can give. Each repeat gets
    // its own cold start — the scratch cache is wiped first.
    TuneMeasure best;
    best.cold.wallSeconds = -1;
    for (u32 r = 0; r < std::max<u32>(1, opt.repeats); ++r) {
        std::error_code ec;
        std::filesystem::remove_all(opt.cache_dir, ec);

        tune::TuneOptions tuning;
        tuning.seed = opt.seed;
        tuning.budget = opt.budget;
        tuning.scale = opt.scale;
        tuning.runner.jobs = opt.jobs;
        tuning.runner.cache = true;
        tuning.runner.cache_dir = opt.cache_dir;

        tune::TuneOutcome cold, warm;
        std::string error;
        if (!tune::autotune(tuning, &cold, &error) ||
            !tune::autotune(tuning, &warm, &error)) {
            std::fprintf(stderr, "bench_autotune: %s\n",
                         error.c_str());
            std::exit(2);
        }
        // The free correctness check: cache state must not leak into
        // the search log or the frontier.
        if (cold.trace != warm.trace ||
            tune::frontierCsv(cold) != tune::frontierCsv(warm)) {
            std::fprintf(stderr,
                         "bench_autotune: cold and warm runs "
                         "diverged — determinism bug\n");
            std::exit(2);
        }
        if (best.cold.wallSeconds < 0 ||
            cold.stats.wallSeconds < best.cold.wallSeconds)
            best.cold = cold.stats;
        if (r == 0 ||
            warm.stats.wallSeconds < best.warm.wallSeconds)
            best.warm = warm.stats;
        best.frontier_points = cold.frontier.size();
    }
    std::error_code ec;
    std::filesystem::remove_all(opt.cache_dir, ec);
    return best;
}

void
writeJson(const Options &opt, const TuneMeasure &m)
{
    std::FILE *f = std::fopen(opt.out.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_autotune: cannot write %s\n",
                     opt.out.c_str());
        std::exit(2);
    }
    const double speedup = m.warm.wallSeconds > 0
                               ? m.cold.wallSeconds / m.warm.wallSeconds
                               : 0;
    const double pps = m.cold.wallSeconds > 0
                           ? static_cast<double>(m.cold.probes) /
                                 m.cold.wallSeconds
                           : 0;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": 1,\n");
    std::fprintf(f, "  \"scale\": \"%s\",\n", scaleName(opt.scale));
    std::fprintf(f, "  \"jobs\": %u,\n", opt.jobs);
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(opt.seed));
    std::fprintf(f, "  \"budget\": %llu,\n",
                 static_cast<unsigned long long>(opt.budget));
    std::fprintf(f, "  \"probes\": %llu,\n",
                 static_cast<unsigned long long>(m.cold.probes));
    std::fprintf(f, "  \"cells\": %llu,\n",
                 static_cast<unsigned long long>(m.cold.cells));
    std::fprintf(f, "  \"generations\": %llu,\n",
                 static_cast<unsigned long long>(m.cold.generations));
    std::fprintf(f, "  \"frontier_points\": %llu,\n",
                 static_cast<unsigned long long>(m.frontier_points));
    std::fprintf(f, "  \"cold_wall_seconds\": %.6f,\n",
                 m.cold.wallSeconds);
    std::fprintf(f, "  \"cold_simulated\": %llu,\n",
                 static_cast<unsigned long long>(m.cold.simulated));
    std::fprintf(f, "  \"warm_wall_seconds\": %.6f,\n",
                 m.warm.wallSeconds);
    std::fprintf(f, "  \"warm_cache_hits\": %llu,\n",
                 static_cast<unsigned long long>(m.warm.cacheHits));
    std::fprintf(f, "  \"warm_hit_rate\": %.6f,\n",
                 m.warm.hitRate());
    std::fprintf(f, "  \"warm_speedup\": %.4f,\n", speedup);
    std::fprintf(f, "  \"probes_per_sec\": %.2f\n", pps);
    std::fprintf(f, "}\n");
    std::fclose(f);
}

/**
 * Pull one numeric field out of a BENCH_autotune.json. The file is
 * our own flat emission above, so a line scan is a full parser for
 * it; a missing key is a fatal baseline-format error.
 */
double
jsonField(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = text.find(needle);
    if (pos == std::string::npos) {
        std::fprintf(stderr,
                     "bench_autotune: baseline lacks key '%s'\n",
                     key.c_str());
        std::exit(2);
    }
    return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

/** True when @p current dropped more than tolerance below @p base. */
bool
regressed(const char *name, double current, double base,
          double tolerance)
{
    if (base <= 0)
        return false; // Nothing to regress from.
    const double floor = base * (1.0 - tolerance);
    const bool bad = current < floor;
    std::fprintf(stderr, "  %-28s %12.4f  baseline %12.4f  %s\n", name,
                 current, base, bad ? "REGRESSED" : "ok");
    return bad;
}

int
checkBaseline(const Options &opt, const TuneMeasure &m)
{
    std::ifstream in(opt.baseline);
    if (!in) {
        std::fprintf(stderr,
                     "bench_autotune: cannot read baseline %s\n",
                     opt.baseline.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    std::fprintf(stderr, "baseline gate (tolerance %.0f%%):\n",
                 opt.tolerance * 100);
    bool bad = false;
    // Deterministic counter: a warm re-run of the same search must
    // replay every cell, so any drop is a real fingerprint or cache
    // regression, not noise.
    bad |= regressed("warm_hit_rate", m.warm.hitRate(),
                     jsonField(text, "warm_hit_rate"), opt.tolerance);
    // Timing gate: warm/cold on the same host cancels runner speed,
    // so a drop means cache replay itself got slower relative to
    // simulation. The checked-in baseline value is deliberately
    // conservative — CI boxes jitter.
    bad |= regressed("warm_speedup",
                     m.warm.wallSeconds > 0
                         ? m.cold.wallSeconds / m.warm.wallSeconds
                         : 0,
                     jsonField(text, "warm_speedup"), opt.tolerance);
    return bad ? 1 : 0;
}

int
benchMain(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                usage(2);
            }
            return argv[++i];
        };
        if (arg == "--scale") {
            const std::string s = next();
            if (s == "tiny")
                opt.scale = workloads::Scale::Tiny;
            else if (s == "small")
                opt.scale = workloads::Scale::Small;
            else if (s == "ref")
                opt.scale = workloads::Scale::Ref;
            else
                usage(2);
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<u32>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--budget") {
            opt.budget = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--repeats") {
            opt.repeats = static_cast<u32>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg == "--cache-dir") {
            opt.cache_dir = next();
        } else if (arg == "--out") {
            opt.out = next();
        } else if (arg == "--baseline") {
            opt.baseline = next();
        } else if (arg == "--tolerance") {
            opt.tolerance = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(2);
        }
    }
    if (opt.budget < 1)
        usage(2);

    std::fprintf(stderr,
                 "bench_autotune: seed %llu, budget %llu, scale %s, "
                 "jobs %u\n",
                 static_cast<unsigned long long>(opt.seed),
                 static_cast<unsigned long long>(opt.budget),
                 scaleName(opt.scale), opt.jobs);

    const TuneMeasure m = runPair(opt);
    std::fprintf(stderr,
                 "  cold: %8.3f s  %llu probes / %llu cells "
                 "(%llu simulated), %llu generations\n",
                 m.cold.wallSeconds,
                 static_cast<unsigned long long>(m.cold.probes),
                 static_cast<unsigned long long>(m.cold.cells),
                 static_cast<unsigned long long>(m.cold.simulated),
                 static_cast<unsigned long long>(m.cold.generations));
    std::fprintf(stderr,
                 "  warm: %8.3f s  %llu / %llu cells from cache "
                 "(%.1f%%), %.2fx of cold\n",
                 m.warm.wallSeconds,
                 static_cast<unsigned long long>(m.warm.cacheHits),
                 static_cast<unsigned long long>(m.warm.cells),
                 m.warm.hitRate() * 100,
                 m.warm.wallSeconds > 0
                     ? m.cold.wallSeconds / m.warm.wallSeconds
                     : 0.0);
    std::fprintf(stderr, "  frontier: %llu points\n",
                 static_cast<unsigned long long>(m.frontier_points));

    writeJson(opt, m);
    std::fprintf(stderr, "wrote %s\n", opt.out.c_str());

    if (!opt.baseline.empty())
        return checkBaseline(opt, m);
    return 0;
}

} // namespace
} // namespace cheri

int
main(int argc, char **argv)
{
    return cheri::benchMain(argc, argv);
}
