/**
 * @file
 * make_report — regenerate the EXPERIMENTS-style comparison as
 * Markdown in one run: the Figure 1 overhead table with the paper's
 * columns, the Table 2 intensity classification, the capability-event
 * summary and the projection table, written to stdout (or a file via
 * the shell). Useful for refreshing EXPERIMENTS.md after model or
 * workload changes.
 *
 * All base cells come from one runner::runPlan() invocation — the
 * full 20-workload x 3-ABI sweep runs on the thread pool and repeats
 * are served from the result cache — and the Table 3 / projection
 * sections reuse those cells instead of re-simulating them.
 *
 *   make_report [tiny|small|ref] > results.md
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "alloc/policy.hpp"
#include "analysis/intensity.hpp"
#include "analysis/metrics.hpp"
#include "analysis/projection.hpp"
#include "analysis/topdown.hpp"
#include "runner/runner.hpp"
#include "support/fmt.hpp"
#include "trace/trace.hpp"
#include "tune/frontier.hpp"
#include "tune/tuner.hpp"
#include "workloads/registry.hpp"

using namespace cheri;

namespace {

std::string
cell(double value, int precision = 3)
{
    if (value < 0)
        return "NA";
    return fmt::fixed(value, precision);
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::Scale scale = workloads::Scale::Small;
    if (argc > 1) {
        if (!std::strcmp(argv[1], "tiny"))
            scale = workloads::Scale::Tiny;
        else if (!std::strcmp(argv[1], "ref"))
            scale = workloads::Scale::Ref;
    }

    const auto pool = workloads::allWorkloads();

    // The one sweep every section reads from.
    runner::RunnerOptions options;
    options.progress = true;
    const auto sweep =
        runner::runPlan(runner::ExperimentPlan::fullSweep({}, scale),
                        options);
    const auto resultFor = [&](const std::string &name, abi::Abi abi)
        -> const runner::RunResult & {
        return *sweep.find(name, abi);
    };

    std::printf("# cheriperf results\n\n");
    std::printf("Deterministic model run (scale: %s). Paper columns are "
                "the IISWC'25 values where reported.\n\n",
                scale == workloads::Scale::Tiny    ? "tiny"
                : workloads::Scale::Ref == scale   ? "ref"
                                                   : "small");

    // --- Figure 1-style overhead table -------------------------------
    std::printf("## Execution time normalized to hybrid (Fig. 1)\n\n");
    std::printf("| workload | MI | class | benchmark ABI | purecap | "
                "paper benchmark | paper purecap |\n");
    std::printf("|---|---|---|---|---|---|---|\n");

    for (const auto &w : pool) {
        const auto &info = w->info();
        const auto &hybrid = resultFor(info.name, abi::Abi::Hybrid);
        const auto &benchmark = resultFor(info.name, abi::Abi::Benchmark);
        const auto &purecap = resultFor(info.name, abi::Abi::Purecap);

        const double bench_ratio =
            benchmark.ok() ? benchmark.seconds() / hybrid.seconds() : -1;
        const double pc_ratio = purecap.seconds() / hybrid.seconds();
        const bool has_paper = info.paperTimeHybrid > 0;

        const std::string paper_bench =
            has_paper && info.paperTimeBenchmark > 0
                ? cell(info.paperTimeBenchmark / info.paperTimeHybrid)
                : std::string(has_paper ? "NA" : "-");
        const std::string paper_pc =
            has_paper
                ? cell(info.paperTimePurecap / info.paperTimeHybrid)
                : std::string("-");
        std::printf("| %s | %s | %s | %s | %s | %s | %s |\n",
                    info.name.c_str(),
                    fmt::ratio(hybrid.metrics.memoryIntensity).c_str(),
                    analysis::intensityClassName(
                        analysis::classifyIntensity(
                            hybrid.metrics.memoryIntensity)),
                    cell(bench_ratio).c_str(), cell(pc_ratio).c_str(),
                    paper_bench.c_str(), paper_pc.c_str());
    }

    // --- Capability-event summary ------------------------------------
    std::printf("\n## Capability traffic under purecap (Table 3 "
                "CHERI rows)\n\n");
    std::printf("| workload | cap load density | cap store density | "
                "traffic share | tag overhead | PCC stall share |\n");
    std::printf("|---|---|---|---|---|---|\n");
    for (const auto &name : workloads::table3Names()) {
        const auto &run = resultFor(name, abi::Abi::Purecap);
        const auto &m = run.metrics;
        const auto &td = run.topdownTruth;
        std::printf("| %s | %.1f%% | %.1f%% | %.1f%% | %.1f%% | %.1f%% "
                    "|\n",
                    name.c_str(), m.capLoadDensity * 100,
                    m.capStoreDensity * 100, m.capTrafficShare * 100,
                    m.capTagOverhead * 100, td.pccStallShare * 100);
    }

    // --- Projection summary -------------------------------------------
    std::printf("\n## Microarchitectural projections (purecap)\n\n");
    std::printf("| workload | cap-aware BP | wide SQ | CHERI-tuned core "
                "|\n|---|---|---|---|\n");
    for (const std::string name :
         {"520.omnetpp_r", "523.xalancbmk_r", "QuickJS", "SQLite"}) {
        const auto simulate = [&](const sim::MachineConfig &config) {
            runner::RunRequest request;
            request.workload = name;
            request.abi = abi::Abi::Purecap;
            request.scale = scale;
            request.config = config;
            // Knob cells share the cache with past report runs.
            return *runner::run(request, options).sim;
        };
        const auto scenarios = analysis::standardScenarios();
        const auto rows = analysis::runProjections(
            simulate, sim::MachineConfig::forAbi(abi::Abi::Purecap),
            {scenarios[0], scenarios[1], scenarios[2]});
        std::printf("| %s | %sx | %sx | %sx |\n", name.c_str(),
                    fmt::ratio(rows[1].speedupVsBaseline).c_str(),
                    fmt::ratio(rows[2].speedupVsBaseline).c_str(),
                    fmt::ratio(rows[3].speedupVsBaseline).c_str());
    }

    // --- Shared-LLC interference --------------------------------------
    // Solo vs 2-core self-co-run for the Table 4 set under purecap:
    // two copies of the workload share the uncore (LLC capacity +
    // arbitration), so the slowdown and extra LLC read misses bound
    // how contended the paper's shared 1 MiB SLC can get.
    std::printf("\n## Shared-LLC interference: 2-core self-co-run "
                "(purecap)\n\n");
    std::printf("| workload | solo cycles | co-run cycles (core 0) | "
                "slowdown | solo LLC-rd-miss | co-run LLC-rd-miss |\n");
    std::printf("|---|---|---|---|---|---|\n");
    for (const auto &name : workloads::table4Names()) {
        const auto &solo = resultFor(name, abi::Abi::Purecap);
        if (!solo.ok()) {
            std::printf("| %s | NA | NA | NA | NA | NA |\n",
                        name.c_str());
            continue;
        }
        runner::RunRequest corun;
        corun.workload = name;
        corun.abi = abi::Abi::Purecap;
        corun.scale = scale;
        corun.lanes = {{name, abi::Abi::Purecap},
                       {name, abi::Abi::Purecap}};
        corun.config = sim::MachineConfig::forAbi(abi::Abi::Purecap);
        const auto co = runner::run(corun, options);
        const auto &lane0 = co.lanes.front();
        const u64 solo_miss =
            solo.sim->counts.get(pmu::Event::LlCacheMissRd);
        const u64 co_miss =
            lane0.sim->counts.get(pmu::Event::LlCacheMissRd);
        std::printf("| %s | %llu | %llu | %sx | %llu | %llu |\n",
                    name.c_str(),
                    static_cast<unsigned long long>(solo.sim->cycles),
                    static_cast<unsigned long long>(lane0.sim->cycles),
                    fmt::ratio(static_cast<double>(lane0.sim->cycles) /
                               static_cast<double>(solo.sim->cycles))
                        .c_str(),
                    static_cast<unsigned long long>(solo_miss),
                    static_cast<unsigned long long>(co_miss));
    }
    std::printf("\nRegenerate one cell with `cheriperf corun <w> <w> "
                "--abi purecap --csv`.\n");

    // --- Allocator interference ---------------------------------------
    // The allocator axis over the Table 4 drill-down set under
    // purecap: cycles normalized to the default freelist allocator,
    // plus the tag-table traffic revocation sweeps push through the
    // modeled memory system (capability-tag reads/writes per kilo
    // instruction — the Cornucopia cost lands in mem::Uncore, not in
    // a side-channel estimate).
    std::printf("\n## Allocator interference: Table 4 set (purecap)\n\n");
    std::printf("| workload | bump | sizeclass | freelist+revoke | "
                "ctag-rd/KI freelist | ctag-rd/KI +revoke |\n");
    std::printf("|---|---|---|---|---|---|\n");
    const std::vector<std::string> axis_names = {
        "freelist", "bump", "sizeclass", "freelist+revoke"};
    // The drill-down set plus the axis stressor: the Table 4 kernels
    // are steady-state (allocate-once heaps barely notice placement),
    // while the boxed-value interpreter's box churn is where the
    // paper-adjacent allocator results actually bite.
    std::vector<std::string> axis_workloads = workloads::table4Names();
    axis_workloads.push_back("Interp.boxvm");
    for (const auto &name : axis_workloads) {
        std::vector<runner::RunResult> cells;
        for (const auto &alloc_name : axis_names) {
            runner::RunRequest request;
            request.workload = name;
            request.abi = abi::Abi::Purecap;
            request.scale = scale;
            request.allocator = *alloc::parseAllocator(alloc_name);
            // Tiny-scale heaps never fill the default 256 KiB
            // quarantine (no sweep ever fires and +revoke degenerates
            // into bump); 64 KiB makes the sweeps — and their tag
            // traffic — actually happen at this scale.
            if (request.allocator.revoke)
                request.allocator.quarantine_kib = 64;
            request.config =
                sim::MachineConfig::forAbi(abi::Abi::Purecap);
            cells.push_back(runner::run(request, options));
        }
        const auto ctagPerKi = [](const runner::RunResult &run) {
            return 1e3 *
                   static_cast<double>(run.sim->counts.get(
                       pmu::Event::MemAccessRdCtag)) /
                   static_cast<double>(run.sim->instructions);
        };
        const double base = static_cast<double>(cells[0].sim->cycles);
        std::printf("| %s | %sx | %sx | %sx | %.3f | %.3f |\n",
                    name.c_str(),
                    fmt::ratio(static_cast<double>(cells[1].sim->cycles) /
                               base)
                        .c_str(),
                    fmt::ratio(static_cast<double>(cells[2].sim->cycles) /
                               base)
                        .c_str(),
                    fmt::ratio(static_cast<double>(cells[3].sim->cycles) /
                               base)
                        .c_str(),
                    ctagPerKi(cells[0]), ctagPerKi(cells[3]));
    }
    std::printf("\nRegenerate with `cheriperf sweep --set table4 "
                "--allocators freelist,bump,sizeclass,freelist+revoke "
                "--set alloc.quarantine_kib=64 --csv`.\n");

    // --- Epoch timeline -----------------------------------------------
    // One traced purecap cell, sliced into retired-instruction epochs,
    // shows how the paper's whole-run top-down attribution (Table 4)
    // moves across a run's phases.
    const u64 epoch_insts = scale == workloads::Scale::Tiny  ? 10'000
                            : scale == workloads::Scale::Ref ? 250'000
                                                             : 50'000;
    runner::RunRequest traced;
    traced.workload = "QuickJS";
    traced.abi = abi::Abi::Purecap;
    traced.scale = scale;
    traced.trace.enabled = true;
    traced.trace.epoch_insts = epoch_insts;
    traced.config = sim::MachineConfig::forAbi(abi::Abi::Purecap);
    const auto traced_run = runner::run(traced, options);

    std::printf("\n## Epoch timeline: QuickJS purecap "
                "(%llu-instruction epochs)\n\n",
                static_cast<unsigned long long>(epoch_insts));
    std::printf("| epoch | insts | IPC | retiring | bad-spec | frontend "
                "| backend | mem L1/L2/ext | core | pcc | sq-occ |\n");
    std::printf("|---|---|---|---|---|---|---|---|---|---|---|\n");
    for (const auto &e : traced_run.epochs.epochs) {
        std::printf("| %llu | %llu | %.3f | %.3f | %.3f | %.3f | %.3f "
                    "| %.3f/%.3f/%.3f | %.3f | %.3f | %u |\n",
                    static_cast<unsigned long long>(e.index),
                    static_cast<unsigned long long>(e.instructions()),
                    e.ipc(), e.retiring, e.badSpeculation,
                    e.frontendBound, e.backendBound, e.memL1Bound,
                    e.memL2Bound, e.memExtBound, e.coreBound,
                    e.pccStallShare, e.sqOccupancy);
    }
    std::printf("\nRegenerate as JSONL with `cheriperf trace QuickJS "
                "--abi purecap --epoch %llu --out quickjs.jsonl`.\n",
                static_cast<unsigned long long>(epoch_insts));

    // --- Design-space frontier ----------------------------------------
    // A seeded autotune pass over the structural knobs: which cheaper
    // or re-balanced machines keep purecap overhead low. The probes
    // are ordinary RunRequests, so the section is warm whenever past
    // reports or `cheriperf autotune` runs populated the cache.
    tune::TuneOptions tuning;
    tuning.seed = 42;
    tuning.budget = 16;
    tuning.scale = scale;
    tuning.runner = options;
    tune::TuneOutcome tuned;
    std::string tune_error;
    std::printf("\n## Design-space frontier (autotune)\n\n");
    if (!tune::autotune(tuning, &tuned, &tune_error)) {
        std::printf("autotune failed: %s\n", tune_error.c_str());
    } else {
        std::printf("Seeded search (seed %llu, budget %llu probes) over "
                    "%zu knobs; %zu of %zu probed configurations are "
                    "Pareto-minimal on (purecap overhead, area proxy).\n\n",
                    static_cast<unsigned long long>(tuning.seed),
                    static_cast<unsigned long long>(tuning.budget),
                    tuned.knobs.size(), tuned.frontier.size(),
                    tuned.probed.size());
        std::printf("%s", tune::frontierMarkdown(tuned).c_str());
        std::printf("\nRegenerate with `cheriperf autotune --seed %llu "
                    "--budget %llu --scale %s --csv`.\n",
                    static_cast<unsigned long long>(tuning.seed),
                    static_cast<unsigned long long>(tuning.budget),
                    scale == workloads::Scale::Tiny  ? "tiny"
                    : scale == workloads::Scale::Ref ? "ref"
                                                     : "small");
    }

    std::printf("\nGenerated by tools/make_report.\n");
    return 0;
}
