# Empty compiler generated dependencies file for cheri_binsize.
# This may be replaced when dependencies are built.
