file(REMOVE_RECURSE
  "CMakeFiles/cheri_binsize.dir/sections.cpp.o"
  "CMakeFiles/cheri_binsize.dir/sections.cpp.o.d"
  "libcheri_binsize.a"
  "libcheri_binsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_binsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
