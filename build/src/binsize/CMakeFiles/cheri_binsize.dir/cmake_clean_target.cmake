file(REMOVE_RECURSE
  "libcheri_binsize.a"
)
