file(REMOVE_RECURSE
  "CMakeFiles/cheri_analysis.dir/correlation.cpp.o"
  "CMakeFiles/cheri_analysis.dir/correlation.cpp.o.d"
  "CMakeFiles/cheri_analysis.dir/intensity.cpp.o"
  "CMakeFiles/cheri_analysis.dir/intensity.cpp.o.d"
  "CMakeFiles/cheri_analysis.dir/metrics.cpp.o"
  "CMakeFiles/cheri_analysis.dir/metrics.cpp.o.d"
  "CMakeFiles/cheri_analysis.dir/projection.cpp.o"
  "CMakeFiles/cheri_analysis.dir/projection.cpp.o.d"
  "CMakeFiles/cheri_analysis.dir/topdown.cpp.o"
  "CMakeFiles/cheri_analysis.dir/topdown.cpp.o.d"
  "libcheri_analysis.a"
  "libcheri_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
