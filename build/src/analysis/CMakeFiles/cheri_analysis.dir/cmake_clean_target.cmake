file(REMOVE_RECURSE
  "libcheri_analysis.a"
)
