# Empty compiler generated dependencies file for cheri_analysis.
# This may be replaced when dependencies are built.
