
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/correlation.cpp" "src/analysis/CMakeFiles/cheri_analysis.dir/correlation.cpp.o" "gcc" "src/analysis/CMakeFiles/cheri_analysis.dir/correlation.cpp.o.d"
  "/root/repo/src/analysis/intensity.cpp" "src/analysis/CMakeFiles/cheri_analysis.dir/intensity.cpp.o" "gcc" "src/analysis/CMakeFiles/cheri_analysis.dir/intensity.cpp.o.d"
  "/root/repo/src/analysis/metrics.cpp" "src/analysis/CMakeFiles/cheri_analysis.dir/metrics.cpp.o" "gcc" "src/analysis/CMakeFiles/cheri_analysis.dir/metrics.cpp.o.d"
  "/root/repo/src/analysis/projection.cpp" "src/analysis/CMakeFiles/cheri_analysis.dir/projection.cpp.o" "gcc" "src/analysis/CMakeFiles/cheri_analysis.dir/projection.cpp.o.d"
  "/root/repo/src/analysis/topdown.cpp" "src/analysis/CMakeFiles/cheri_analysis.dir/topdown.cpp.o" "gcc" "src/analysis/CMakeFiles/cheri_analysis.dir/topdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cheri_support.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/cheri_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cheri_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/abi/CMakeFiles/cheri_abi.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/cheri_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cheri_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cheri_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cap/CMakeFiles/cheri_cap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
