# Empty compiler generated dependencies file for cheri_mem.
# This may be replaced when dependencies are built.
