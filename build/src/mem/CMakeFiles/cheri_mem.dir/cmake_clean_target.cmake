file(REMOVE_RECURSE
  "libcheri_mem.a"
)
