file(REMOVE_RECURSE
  "CMakeFiles/cheri_mem.dir/backing_store.cpp.o"
  "CMakeFiles/cheri_mem.dir/backing_store.cpp.o.d"
  "CMakeFiles/cheri_mem.dir/cache.cpp.o"
  "CMakeFiles/cheri_mem.dir/cache.cpp.o.d"
  "CMakeFiles/cheri_mem.dir/memory_system.cpp.o"
  "CMakeFiles/cheri_mem.dir/memory_system.cpp.o.d"
  "CMakeFiles/cheri_mem.dir/revoker.cpp.o"
  "CMakeFiles/cheri_mem.dir/revoker.cpp.o.d"
  "CMakeFiles/cheri_mem.dir/tag_table.cpp.o"
  "CMakeFiles/cheri_mem.dir/tag_table.cpp.o.d"
  "CMakeFiles/cheri_mem.dir/tlb.cpp.o"
  "CMakeFiles/cheri_mem.dir/tlb.cpp.o.d"
  "libcheri_mem.a"
  "libcheri_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
