
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/backing_store.cpp" "src/mem/CMakeFiles/cheri_mem.dir/backing_store.cpp.o" "gcc" "src/mem/CMakeFiles/cheri_mem.dir/backing_store.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/mem/CMakeFiles/cheri_mem.dir/cache.cpp.o" "gcc" "src/mem/CMakeFiles/cheri_mem.dir/cache.cpp.o.d"
  "/root/repo/src/mem/memory_system.cpp" "src/mem/CMakeFiles/cheri_mem.dir/memory_system.cpp.o" "gcc" "src/mem/CMakeFiles/cheri_mem.dir/memory_system.cpp.o.d"
  "/root/repo/src/mem/revoker.cpp" "src/mem/CMakeFiles/cheri_mem.dir/revoker.cpp.o" "gcc" "src/mem/CMakeFiles/cheri_mem.dir/revoker.cpp.o.d"
  "/root/repo/src/mem/tag_table.cpp" "src/mem/CMakeFiles/cheri_mem.dir/tag_table.cpp.o" "gcc" "src/mem/CMakeFiles/cheri_mem.dir/tag_table.cpp.o.d"
  "/root/repo/src/mem/tlb.cpp" "src/mem/CMakeFiles/cheri_mem.dir/tlb.cpp.o" "gcc" "src/mem/CMakeFiles/cheri_mem.dir/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cheri_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cap/CMakeFiles/cheri_cap.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/cheri_pmu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
