file(REMOVE_RECURSE
  "CMakeFiles/cheri_uarch.dir/branch_predictor.cpp.o"
  "CMakeFiles/cheri_uarch.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/cheri_uarch.dir/pipeline.cpp.o"
  "CMakeFiles/cheri_uarch.dir/pipeline.cpp.o.d"
  "CMakeFiles/cheri_uarch.dir/store_queue.cpp.o"
  "CMakeFiles/cheri_uarch.dir/store_queue.cpp.o.d"
  "libcheri_uarch.a"
  "libcheri_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
