file(REMOVE_RECURSE
  "libcheri_uarch.a"
)
