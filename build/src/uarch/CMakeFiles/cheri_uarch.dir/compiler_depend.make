# Empty compiler generated dependencies file for cheri_uarch.
# This may be replaced when dependencies are built.
