file(REMOVE_RECURSE
  "CMakeFiles/cheri_cap.dir/bounds.cpp.o"
  "CMakeFiles/cheri_cap.dir/bounds.cpp.o.d"
  "CMakeFiles/cheri_cap.dir/capability.cpp.o"
  "CMakeFiles/cheri_cap.dir/capability.cpp.o.d"
  "CMakeFiles/cheri_cap.dir/fault.cpp.o"
  "CMakeFiles/cheri_cap.dir/fault.cpp.o.d"
  "libcheri_cap.a"
  "libcheri_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
