file(REMOVE_RECURSE
  "libcheri_cap.a"
)
