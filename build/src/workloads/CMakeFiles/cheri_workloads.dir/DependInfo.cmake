
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/context.cpp" "src/workloads/CMakeFiles/cheri_workloads.dir/context.cpp.o" "gcc" "src/workloads/CMakeFiles/cheri_workloads.dir/context.cpp.o.d"
  "/root/repo/src/workloads/kernels/deepsjeng.cpp" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/deepsjeng.cpp.o" "gcc" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/deepsjeng.cpp.o.d"
  "/root/repo/src/workloads/kernels/lbm.cpp" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/lbm.cpp.o" "gcc" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/lbm.cpp.o.d"
  "/root/repo/src/workloads/kernels/leela.cpp" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/leela.cpp.o" "gcc" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/leela.cpp.o.d"
  "/root/repo/src/workloads/kernels/llama.cpp" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/llama.cpp.o" "gcc" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/llama.cpp.o.d"
  "/root/repo/src/workloads/kernels/nab.cpp" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/nab.cpp.o" "gcc" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/nab.cpp.o.d"
  "/root/repo/src/workloads/kernels/omnetpp.cpp" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/omnetpp.cpp.o" "gcc" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/omnetpp.cpp.o.d"
  "/root/repo/src/workloads/kernels/parest.cpp" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/parest.cpp.o" "gcc" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/parest.cpp.o.d"
  "/root/repo/src/workloads/kernels/quickjs.cpp" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/quickjs.cpp.o" "gcc" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/quickjs.cpp.o.d"
  "/root/repo/src/workloads/kernels/sqlite.cpp" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/sqlite.cpp.o" "gcc" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/sqlite.cpp.o.d"
  "/root/repo/src/workloads/kernels/x264.cpp" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/x264.cpp.o" "gcc" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/x264.cpp.o.d"
  "/root/repo/src/workloads/kernels/xalancbmk.cpp" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/xalancbmk.cpp.o" "gcc" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/xalancbmk.cpp.o.d"
  "/root/repo/src/workloads/kernels/xz.cpp" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/xz.cpp.o" "gcc" "src/workloads/CMakeFiles/cheri_workloads.dir/kernels/xz.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/cheri_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/cheri_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/scale.cpp" "src/workloads/CMakeFiles/cheri_workloads.dir/scale.cpp.o" "gcc" "src/workloads/CMakeFiles/cheri_workloads.dir/scale.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cheri_support.dir/DependInfo.cmake"
  "/root/repo/build/src/abi/CMakeFiles/cheri_abi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cheri_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/binsize/CMakeFiles/cheri_binsize.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/cheri_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cheri_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cheri_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cap/CMakeFiles/cheri_cap.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/cheri_pmu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
