file(REMOVE_RECURSE
  "libcheri_workloads.a"
)
