file(REMOVE_RECURSE
  "CMakeFiles/cheri_workloads.dir/context.cpp.o"
  "CMakeFiles/cheri_workloads.dir/context.cpp.o.d"
  "CMakeFiles/cheri_workloads.dir/kernels/deepsjeng.cpp.o"
  "CMakeFiles/cheri_workloads.dir/kernels/deepsjeng.cpp.o.d"
  "CMakeFiles/cheri_workloads.dir/kernels/lbm.cpp.o"
  "CMakeFiles/cheri_workloads.dir/kernels/lbm.cpp.o.d"
  "CMakeFiles/cheri_workloads.dir/kernels/leela.cpp.o"
  "CMakeFiles/cheri_workloads.dir/kernels/leela.cpp.o.d"
  "CMakeFiles/cheri_workloads.dir/kernels/llama.cpp.o"
  "CMakeFiles/cheri_workloads.dir/kernels/llama.cpp.o.d"
  "CMakeFiles/cheri_workloads.dir/kernels/nab.cpp.o"
  "CMakeFiles/cheri_workloads.dir/kernels/nab.cpp.o.d"
  "CMakeFiles/cheri_workloads.dir/kernels/omnetpp.cpp.o"
  "CMakeFiles/cheri_workloads.dir/kernels/omnetpp.cpp.o.d"
  "CMakeFiles/cheri_workloads.dir/kernels/parest.cpp.o"
  "CMakeFiles/cheri_workloads.dir/kernels/parest.cpp.o.d"
  "CMakeFiles/cheri_workloads.dir/kernels/quickjs.cpp.o"
  "CMakeFiles/cheri_workloads.dir/kernels/quickjs.cpp.o.d"
  "CMakeFiles/cheri_workloads.dir/kernels/sqlite.cpp.o"
  "CMakeFiles/cheri_workloads.dir/kernels/sqlite.cpp.o.d"
  "CMakeFiles/cheri_workloads.dir/kernels/x264.cpp.o"
  "CMakeFiles/cheri_workloads.dir/kernels/x264.cpp.o.d"
  "CMakeFiles/cheri_workloads.dir/kernels/xalancbmk.cpp.o"
  "CMakeFiles/cheri_workloads.dir/kernels/xalancbmk.cpp.o.d"
  "CMakeFiles/cheri_workloads.dir/kernels/xz.cpp.o"
  "CMakeFiles/cheri_workloads.dir/kernels/xz.cpp.o.d"
  "CMakeFiles/cheri_workloads.dir/registry.cpp.o"
  "CMakeFiles/cheri_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/cheri_workloads.dir/scale.cpp.o"
  "CMakeFiles/cheri_workloads.dir/scale.cpp.o.d"
  "libcheri_workloads.a"
  "libcheri_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
