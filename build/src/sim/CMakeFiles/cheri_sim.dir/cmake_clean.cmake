file(REMOVE_RECURSE
  "CMakeFiles/cheri_sim.dir/machine.cpp.o"
  "CMakeFiles/cheri_sim.dir/machine.cpp.o.d"
  "libcheri_sim.a"
  "libcheri_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
