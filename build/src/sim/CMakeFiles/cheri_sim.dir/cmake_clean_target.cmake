file(REMOVE_RECURSE
  "libcheri_sim.a"
)
