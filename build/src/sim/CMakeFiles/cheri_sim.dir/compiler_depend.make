# Empty compiler generated dependencies file for cheri_sim.
# This may be replaced when dependencies are built.
