file(REMOVE_RECURSE
  "CMakeFiles/cheri_isa.dir/builder.cpp.o"
  "CMakeFiles/cheri_isa.dir/builder.cpp.o.d"
  "CMakeFiles/cheri_isa.dir/disasm.cpp.o"
  "CMakeFiles/cheri_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/cheri_isa.dir/opcode.cpp.o"
  "CMakeFiles/cheri_isa.dir/opcode.cpp.o.d"
  "CMakeFiles/cheri_isa.dir/program.cpp.o"
  "CMakeFiles/cheri_isa.dir/program.cpp.o.d"
  "libcheri_isa.a"
  "libcheri_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
