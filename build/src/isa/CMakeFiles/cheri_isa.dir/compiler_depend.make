# Empty compiler generated dependencies file for cheri_isa.
# This may be replaced when dependencies are built.
