
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/builder.cpp" "src/isa/CMakeFiles/cheri_isa.dir/builder.cpp.o" "gcc" "src/isa/CMakeFiles/cheri_isa.dir/builder.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/isa/CMakeFiles/cheri_isa.dir/disasm.cpp.o" "gcc" "src/isa/CMakeFiles/cheri_isa.dir/disasm.cpp.o.d"
  "/root/repo/src/isa/opcode.cpp" "src/isa/CMakeFiles/cheri_isa.dir/opcode.cpp.o" "gcc" "src/isa/CMakeFiles/cheri_isa.dir/opcode.cpp.o.d"
  "/root/repo/src/isa/program.cpp" "src/isa/CMakeFiles/cheri_isa.dir/program.cpp.o" "gcc" "src/isa/CMakeFiles/cheri_isa.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cheri_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
