# Empty compiler generated dependencies file for cheri_abi.
# This may be replaced when dependencies are built.
