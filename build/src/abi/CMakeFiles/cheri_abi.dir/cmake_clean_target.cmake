file(REMOVE_RECURSE
  "libcheri_abi.a"
)
