file(REMOVE_RECURSE
  "CMakeFiles/cheri_abi.dir/abi.cpp.o"
  "CMakeFiles/cheri_abi.dir/abi.cpp.o.d"
  "CMakeFiles/cheri_abi.dir/allocator.cpp.o"
  "CMakeFiles/cheri_abi.dir/allocator.cpp.o.d"
  "CMakeFiles/cheri_abi.dir/layout.cpp.o"
  "CMakeFiles/cheri_abi.dir/layout.cpp.o.d"
  "CMakeFiles/cheri_abi.dir/lowering.cpp.o"
  "CMakeFiles/cheri_abi.dir/lowering.cpp.o.d"
  "libcheri_abi.a"
  "libcheri_abi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_abi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
