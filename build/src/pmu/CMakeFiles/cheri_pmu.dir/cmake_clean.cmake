file(REMOVE_RECURSE
  "CMakeFiles/cheri_pmu.dir/events.cpp.o"
  "CMakeFiles/cheri_pmu.dir/events.cpp.o.d"
  "CMakeFiles/cheri_pmu.dir/pmu.cpp.o"
  "CMakeFiles/cheri_pmu.dir/pmu.cpp.o.d"
  "libcheri_pmu.a"
  "libcheri_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
