# Empty dependencies file for cheri_pmu.
# This may be replaced when dependencies are built.
