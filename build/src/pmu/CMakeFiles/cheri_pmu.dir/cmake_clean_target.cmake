file(REMOVE_RECURSE
  "libcheri_pmu.a"
)
