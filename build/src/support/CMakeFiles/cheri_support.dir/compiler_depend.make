# Empty compiler generated dependencies file for cheri_support.
# This may be replaced when dependencies are built.
