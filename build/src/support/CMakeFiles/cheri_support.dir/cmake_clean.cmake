file(REMOVE_RECURSE
  "CMakeFiles/cheri_support.dir/logging.cpp.o"
  "CMakeFiles/cheri_support.dir/logging.cpp.o.d"
  "CMakeFiles/cheri_support.dir/rng.cpp.o"
  "CMakeFiles/cheri_support.dir/rng.cpp.o.d"
  "CMakeFiles/cheri_support.dir/stats.cpp.o"
  "CMakeFiles/cheri_support.dir/stats.cpp.o.d"
  "CMakeFiles/cheri_support.dir/table.cpp.o"
  "CMakeFiles/cheri_support.dir/table.cpp.o.d"
  "libcheri_support.a"
  "libcheri_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
