# Empty dependencies file for bench_fig7_correlation.
# This may be replaced when dependencies are built.
