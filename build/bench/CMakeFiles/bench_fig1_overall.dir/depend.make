# Empty dependencies file for bench_fig1_overall.
# This may be replaced when dependencies are built.
