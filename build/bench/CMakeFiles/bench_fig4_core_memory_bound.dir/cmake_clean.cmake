file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_core_memory_bound.dir/bench_fig4_core_memory_bound.cpp.o"
  "CMakeFiles/bench_fig4_core_memory_bound.dir/bench_fig4_core_memory_bound.cpp.o.d"
  "bench_fig4_core_memory_bound"
  "bench_fig4_core_memory_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_core_memory_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
