# Empty dependencies file for bench_fig4_core_memory_bound.
# This may be replaced when dependencies are built.
