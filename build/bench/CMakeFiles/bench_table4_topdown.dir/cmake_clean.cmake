file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_topdown.dir/bench_table4_topdown.cpp.o"
  "CMakeFiles/bench_table4_topdown.dir/bench_table4_topdown.cpp.o.d"
  "bench_table4_topdown"
  "bench_table4_topdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_topdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
