# Empty dependencies file for bench_projection_ablation.
# This may be replaced when dependencies are built.
