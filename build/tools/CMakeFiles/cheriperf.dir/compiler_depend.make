# Empty compiler generated dependencies file for cheriperf.
# This may be replaced when dependencies are built.
