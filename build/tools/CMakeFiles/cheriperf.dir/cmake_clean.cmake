file(REMOVE_RECURSE
  "CMakeFiles/cheriperf.dir/cheriperf_cli.cpp.o"
  "CMakeFiles/cheriperf.dir/cheriperf_cli.cpp.o.d"
  "cheriperf"
  "cheriperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheriperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
