# Empty dependencies file for capability_faults.
# This may be replaced when dependencies are built.
