file(REMOVE_RECURSE
  "CMakeFiles/capability_faults.dir/capability_faults.cpp.o"
  "CMakeFiles/capability_faults.dir/capability_faults.cpp.o.d"
  "capability_faults"
  "capability_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capability_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
