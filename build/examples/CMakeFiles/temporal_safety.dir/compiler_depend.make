# Empty compiler generated dependencies file for temporal_safety.
# This may be replaced when dependencies are built.
