file(REMOVE_RECURSE
  "CMakeFiles/temporal_safety.dir/temporal_safety.cpp.o"
  "CMakeFiles/temporal_safety.dir/temporal_safety.cpp.o.d"
  "temporal_safety"
  "temporal_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
