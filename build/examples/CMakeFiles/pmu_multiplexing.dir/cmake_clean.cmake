file(REMOVE_RECURSE
  "CMakeFiles/pmu_multiplexing.dir/pmu_multiplexing.cpp.o"
  "CMakeFiles/pmu_multiplexing.dir/pmu_multiplexing.cpp.o.d"
  "pmu_multiplexing"
  "pmu_multiplexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmu_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
