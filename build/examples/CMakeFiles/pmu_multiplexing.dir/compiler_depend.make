# Empty compiler generated dependencies file for pmu_multiplexing.
# This may be replaced when dependencies are built.
