file(REMOVE_RECURSE
  "CMakeFiles/pointer_chase_study.dir/pointer_chase_study.cpp.o"
  "CMakeFiles/pointer_chase_study.dir/pointer_chase_study.cpp.o.d"
  "pointer_chase_study"
  "pointer_chase_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointer_chase_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
