# Empty compiler generated dependencies file for cheri_tests.
# This may be replaced when dependencies are built.
