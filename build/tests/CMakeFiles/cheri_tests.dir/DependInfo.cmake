
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_abi.cpp" "tests/CMakeFiles/cheri_tests.dir/test_abi.cpp.o" "gcc" "tests/CMakeFiles/cheri_tests.dir/test_abi.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/cheri_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/cheri_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_binsize.cpp" "tests/CMakeFiles/cheri_tests.dir/test_binsize.cpp.o" "gcc" "tests/CMakeFiles/cheri_tests.dir/test_binsize.cpp.o.d"
  "/root/repo/tests/test_cap_bounds.cpp" "tests/CMakeFiles/cheri_tests.dir/test_cap_bounds.cpp.o" "gcc" "tests/CMakeFiles/cheri_tests.dir/test_cap_bounds.cpp.o.d"
  "/root/repo/tests/test_capability.cpp" "tests/CMakeFiles/cheri_tests.dir/test_capability.cpp.o" "gcc" "tests/CMakeFiles/cheri_tests.dir/test_capability.cpp.o.d"
  "/root/repo/tests/test_executor_opcodes.cpp" "tests/CMakeFiles/cheri_tests.dir/test_executor_opcodes.cpp.o" "gcc" "tests/CMakeFiles/cheri_tests.dir/test_executor_opcodes.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/cheri_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/cheri_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/cheri_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/cheri_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_lowering.cpp" "tests/CMakeFiles/cheri_tests.dir/test_lowering.cpp.o" "gcc" "tests/CMakeFiles/cheri_tests.dir/test_lowering.cpp.o.d"
  "/root/repo/tests/test_mem.cpp" "tests/CMakeFiles/cheri_tests.dir/test_mem.cpp.o" "gcc" "tests/CMakeFiles/cheri_tests.dir/test_mem.cpp.o.d"
  "/root/repo/tests/test_pmu.cpp" "tests/CMakeFiles/cheri_tests.dir/test_pmu.cpp.o" "gcc" "tests/CMakeFiles/cheri_tests.dir/test_pmu.cpp.o.d"
  "/root/repo/tests/test_revoker.cpp" "tests/CMakeFiles/cheri_tests.dir/test_revoker.cpp.o" "gcc" "tests/CMakeFiles/cheri_tests.dir/test_revoker.cpp.o.d"
  "/root/repo/tests/test_sim_executor.cpp" "tests/CMakeFiles/cheri_tests.dir/test_sim_executor.cpp.o" "gcc" "tests/CMakeFiles/cheri_tests.dir/test_sim_executor.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/cheri_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/cheri_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_uarch.cpp" "tests/CMakeFiles/cheri_tests.dir/test_uarch.cpp.o" "gcc" "tests/CMakeFiles/cheri_tests.dir/test_uarch.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/cheri_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/cheri_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/cheri_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cheri_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/binsize/CMakeFiles/cheri_binsize.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cheri_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/abi/CMakeFiles/cheri_abi.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/cheri_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cheri_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cheri_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cap/CMakeFiles/cheri_cap.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/cheri_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cheri_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
