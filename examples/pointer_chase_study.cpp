/**
 * @file
 * A miniature version of the paper's §4 analysis on one workload: run
 * the omnetpp proxy (the paper's flagship memory-centric victim)
 * under all three ABIs, print the top-down decomposition, and then
 * project what a CHERI-tuned core would recover — demonstrating the
 * analysis + projection halves of the public API.
 */

#include <cstdio>

#include "analysis/metrics.hpp"
#include "analysis/projection.hpp"
#include "analysis/topdown.hpp"
#include "runner/runner.hpp"
#include "workloads/registry.hpp"

using namespace cheri;

int
main()
{
    const auto pool = workloads::allWorkloads();
    const auto *workload = workloads::findWorkload(pool, "520.omnetpp_r");

    std::printf("Workload study: %s — %s\n\n", workload->info().name.c_str(),
                workload->info().description.c_str());

    std::printf("%-10s %8s %8s | %9s %8s %9s %8s | %9s %9s\n", "abi",
                "IPC", "slowdn", "retiring", "badspec", "frontend",
                "backend", "mem-bound", "core-bnd");

    // One three-cell plan instead of three sequential runs.
    const auto outcome = runner::runPlan(
        runner::ExperimentPlan{}.addAbiSweep(workload->info().name,
                                             workloads::Scale::Small),
        runner::RunnerOptions{.cache = false});

    double hybrid_seconds = 0;
    for (const auto &run : outcome.results) {
        if (!run.ok()) {
            std::printf("%-10s NA\n", abi::abiName(run.request.abi));
            continue;
        }
        if (run.request.abi == abi::Abi::Hybrid)
            hybrid_seconds = run.sim->seconds;
        const auto &td = run.topdownTruth;
        std::printf(
            "%-10s %8.3f %8.3f | %9.3f %8.3f %9.3f %8.3f | %9.3f %9.3f\n",
            abi::abiName(run.request.abi), run.sim->ipc(),
            run.sim->seconds / hybrid_seconds, td.retiring,
            td.badSpeculation, td.frontendBound, td.backendBound,
            td.memoryBound, td.coreBound);
    }

    std::printf("\nProjection: repairing Morello's prototype artefacts "
                "on the purecap build\n\n");
    const auto simulate = [&](const sim::MachineConfig &config) {
        runner::RunRequest request;
        request.workload = workload->info().name;
        request.abi = abi::Abi::Purecap;
        request.scale = workloads::Scale::Small;
        request.config = config;
        return *runner::run(request).sim;
    };
    const auto rows = analysis::runProjections(
        simulate, sim::MachineConfig::forAbi(abi::Abi::Purecap));
    for (const auto &row : rows)
        std::printf("  %-20s speedup vs purecap %.3f, overhead vs hybrid "
                    "%+.1f%%\n",
                    row.scenario.c_str(), row.speedupVsBaseline,
                    (row.seconds / hybrid_seconds - 1.0) * 100.0);

    std::printf("\nThe purecap-benchmark ABI is the software workaround; "
                "the cap-aware-bp row is the\nhardware fix the paper "
                "projects — they recover the same stalls.\n");
    return 0;
}
