/**
 * @file
 * A miniature version of the paper's §4 analysis on one workload: run
 * the omnetpp proxy (the paper's flagship memory-centric victim)
 * under all three ABIs, print the top-down decomposition, and then
 * project what a CHERI-tuned core would recover — demonstrating the
 * analysis + projection halves of the public API.
 */

#include <cstdio>

#include "analysis/metrics.hpp"
#include "analysis/projection.hpp"
#include "analysis/topdown.hpp"
#include "workloads/registry.hpp"

using namespace cheri;

int
main()
{
    const auto pool = workloads::allWorkloads();
    const auto *workload = workloads::findWorkload(pool, "520.omnetpp_r");

    std::printf("Workload study: %s — %s\n\n", workload->info().name.c_str(),
                workload->info().description.c_str());

    std::printf("%-10s %8s %8s | %9s %8s %9s %8s | %9s %9s\n", "abi",
                "IPC", "slowdn", "retiring", "badspec", "frontend",
                "backend", "mem-bound", "core-bnd");

    double hybrid_seconds = 0;
    for (abi::Abi abi : abi::kAllAbis) {
        const auto result = workloads::runWorkload(
            *workload, abi, workloads::Scale::Small);
        if (!result) {
            std::printf("%-10s NA\n", abi::abiName(abi));
            continue;
        }
        if (abi == abi::Abi::Hybrid)
            hybrid_seconds = result->seconds;
        const auto td = analysis::TopDown::fromModelTruth(result->counts);
        std::printf(
            "%-10s %8.3f %8.3f | %9.3f %8.3f %9.3f %8.3f | %9.3f %9.3f\n",
            abi::abiName(abi), result->ipc(),
            result->seconds / hybrid_seconds, td.retiring,
            td.badSpeculation, td.frontendBound, td.backendBound,
            td.memoryBound, td.coreBound);
    }

    std::printf("\nProjection: repairing Morello's prototype artefacts "
                "on the purecap build\n\n");
    const auto runner = [&](const sim::MachineConfig &config) {
        return *workloads::runWorkload(*workload, abi::Abi::Purecap,
                                       workloads::Scale::Small, &config);
    };
    const auto rows = analysis::runProjections(
        runner, sim::MachineConfig::forAbi(abi::Abi::Purecap));
    for (const auto &row : rows)
        std::printf("  %-20s speedup vs purecap %.3f, overhead vs hybrid "
                    "%+.1f%%\n",
                    row.scenario.c_str(), row.speedupVsBaseline,
                    (row.seconds / hybrid_seconds - 1.0) * 100.0);

    std::printf("\nThe purecap-benchmark ABI is the software workaround; "
                "the cap-aware-bp row is the\nhardware fix the paper "
                "projects — they recover the same stalls.\n");
    return 0;
}
