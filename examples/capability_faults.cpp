/**
 * @file
 * Spatial-safety demonstration: the protection CHERI buys for the
 * overheads the paper measures. Four victim/attacker scenarios run on
 * the simulated machine; each capability violation surfaces exactly
 * like CheriBSD's "in-address-space security exception" (the failure
 * the paper's appendix reports for several SPEC benchmarks).
 */

#include <cstdio>

#include "isa/builder.hpp"
#include "sim/machine.hpp"

using namespace cheri;

namespace {

using isa::Opcode;
using isa::ProgramBuilder;

void
report(const char *name, const sim::SimResult &result, bool expect_fault)
{
    if (result.fault) {
        std::printf("  %-34s -> %s\n", name,
                    result.fault->toString().c_str());
    } else {
        std::printf("  %-34s -> completed without fault\n", name);
    }
    if (expect_fault != result.fault.has_value())
        std::printf("    UNEXPECTED OUTCOME\n");
}

sim::SimResult
run(const isa::Program &program)
{
    sim::Machine machine(
        sim::MachineConfig::forAbi(abi::Abi::Purecap));
    return machine.run(program);
}

} // namespace

int
main()
{
    std::printf("CHERI spatial-safety demonstration (purecap ABI)\n\n");

    // Scenario 1: classic heap buffer overflow.
    {
        ProgramBuilder pb;
        pb.beginFunction("overflow");
        pb.movImm(2, 0x5000);
        pb.emit({.op = Opcode::CSetAddr, .rd = 1, .rn = 0, .rm = 2});
        pb.csetboundsImm(1, 1, 64); // malloc(64)
        pb.movImm(3, 0x41414141);
        // Write a 65th byte: one past the allocation.
        pb.str(3, 1, 64, 1);
        pb.halt();
        report("heap overflow (write 1 past end)", run(pb.finish()),
               true);
    }

    // Scenario 2: in-bounds writes are unaffected.
    {
        ProgramBuilder pb;
        pb.beginFunction("inbounds");
        pb.movImm(2, 0x5000);
        pb.emit({.op = Opcode::CSetAddr, .rd = 1, .rn = 0, .rm = 2});
        pb.csetboundsImm(1, 1, 64);
        pb.movImm(3, 7);
        pb.str(3, 1, 56);
        pb.halt();
        report("in-bounds write (last word)", run(pb.finish()), false);
    }

    // Scenario 3: forging a pointer through integer stores. The tag
    // table makes the rebuilt "capability" invalid.
    {
        ProgramBuilder pb;
        pb.beginFunction("forge");
        // Store a valid capability at 0x7000.
        pb.movImm(2, 0x5000);
        pb.emit({.op = Opcode::CSetAddr, .rd = 1, .rn = 0, .rm = 2});
        pb.csetboundsImm(1, 1, 64);
        pb.movImm(4, 0x7000);
        pb.emit({.op = Opcode::CSetAddr, .rd = 3, .rn = 0, .rm = 4});
        pb.strCap(1, 3, 0);
        // "Improve" its bounds by patching bytes with a scalar store.
        pb.movImm(5, 0xffff);
        pb.str(5, 3, 10, 2);
        // Reload and dereference the forged capability.
        pb.ldrCap(6, 3, 0);
        pb.ldr(7, 6, 0);
        pb.halt();
        report("capability forgery via byte store", run(pb.finish()),
               true);
    }

    // Scenario 4: write through a read-only capability.
    {
        ProgramBuilder pb;
        pb.beginFunction("readonly");
        pb.movImm(2, 0x5000);
        pb.emit({.op = Opcode::CSetAddr, .rd = 1, .rn = 0, .rm = 2});
        pb.csetboundsImm(1, 1, 64);
        pb.movImm(4, static_cast<s64>(cap::PermSet(
                         static_cast<u16>(cap::Perm::Load))
                         .bits()));
        pb.emit({.op = Opcode::CAndPerm, .rd = 1, .rn = 1, .rm = 4});
        pb.movImm(3, 1);
        pb.str(3, 1, 0);
        pb.halt();
        report("store via read-only capability", run(pb.finish()), true);
    }

    std::printf(
        "\nEvery violation trapped in hardware before memory changed — "
        "the security half of the\npaper's security/performance "
        "trade-off. Run the bench_* binaries for the other half.\n");
    return 0;
}
