/**
 * @file
 * Quickstart: build a small MorelloLite program with the
 * ProgramBuilder, run it on the simulated Morello machine under all
 * three CheriBSD ABIs, and read the PMU-derived metrics — the
 * end-to-end flow every other tool in this repository builds on.
 *
 * The program sums a linked list: the classic pointer-chase that CHERI
 * makes wider (16-byte capabilities) and the paper shows hurting the
 * memory hierarchy.
 */

#include <cstdio>

#include "analysis/metrics.hpp"
#include "isa/builder.hpp"
#include "runner/runner.hpp"
#include "sim/machine.hpp"

using namespace cheri;

namespace {

/** Build the list-summing program. Registers:
 *  c1 = cursor capability, x2 = accumulator, x3 = loop count. */
isa::Program
buildListSum(bool purecap, u64 nodes)
{
    using isa::Cond;
    using isa::Opcode;

    isa::ProgramBuilder pb;
    pb.beginFunction("sum_list");
    // c1 = c0 (root data cap) rebased to the list head at 0x100000.
    pb.movImm(4, 0x100000);
    pb.emit({.op = Opcode::CSetAddr, .rd = 1, .rn = 0, .rm = 4});
    if (purecap) {
        // Bound the cursor to the list arena, as CheriBSD malloc would.
        pb.csetboundsImm(1, 1, static_cast<s64>(nodes * 32));
    }
    pb.movImm(2, 0);
    pb.movImm(3, static_cast<s64>(nodes));

    const auto loop = pb.newBlock();
    pb.jump(loop);
    pb.atBlock(loop);
    pb.ldr(5, 1, 8);            // value = cursor->value
    pb.add(2, 2, 5);            // acc += value
    if (purecap)
        pb.ldrCap(1, 1, 16); // cursor = cursor->next (capability)
    else
        pb.ldr(1, 1, 16);    // cursor = cursor->next (DDC-relative int)
    pb.subImm(3, 3, 1).cmpImm(3, 0);
    pb.branchCond(Cond::Ne, loop);

    const auto done = pb.newBlock();
    pb.atBlock(done);
    pb.halt();
    return pb.finish();
}

/** Lay the list out in simulated memory (node: value @8, next @16). */
void
buildListData(sim::Machine &machine, bool purecap, u64 nodes)
{
    const Addr base = 0x100000;
    for (u64 i = 0; i < nodes; ++i) {
        const Addr node = base + i * 32;
        const Addr next = base + ((i + 1) % nodes) * 32;
        machine.store().write(node + 8, i + 1, 8);
        if (purecap) {
            const auto next_cap =
                cap::Capability::dataRegion(base, nodes * 32)
                    .withAddress(next);
            machine.store().writeCap(node + 16, next_cap);
        } else {
            machine.store().write(node + 16, next, 8);
        }
    }
}

} // namespace

int
main()
{
    constexpr u64 kNodes = 4096;

    std::printf("cheriperf quickstart: a %llu-node linked-list sum under "
                "the three CheriBSD ABIs\n\n",
                static_cast<unsigned long long>(kNodes));
    std::printf("%-10s %10s %10s %8s %10s %12s\n", "abi", "insts",
                "cycles", "IPC", "L1D MR", "cap loads");

    for (abi::Abi abi : abi::kAllAbis) {
        const bool purecap = abi::capabilityPointers(abi);
        const auto program = buildListSum(purecap, kNodes);

        sim::Machine machine(sim::MachineConfig::forAbi(abi));
        buildListData(machine, purecap, kNodes);
        const auto result = machine.run(program);

        if (!result.halted) {
            std::printf("%-10s did not halt: %s\n", abi::abiName(abi),
                        result.fault ? result.fault->toString().c_str()
                                     : "instruction limit");
            return 1;
        }

        const auto metrics =
            analysis::DerivedMetrics::compute(result.counts);
        std::printf("%-10s %10llu %10llu %8.3f %9.2f%% %12llu\n",
                    abi::abiName(abi),
                    static_cast<unsigned long long>(result.instructions),
                    static_cast<unsigned long long>(result.cycles),
                    result.ipc(), metrics.l1dMissRate * 100,
                    static_cast<unsigned long long>(result.counts.get(
                        pmu::Event::CapMemAccessRd)));

        // The architectural result is ABI-independent: sum of 1..N.
        const u64 expected = kNodes * (kNodes + 1) / 2;
        if (machine.regs().x(2) != expected) {
            std::printf("wrong sum: %llu != %llu\n",
                        static_cast<unsigned long long>(
                            machine.regs().x(2)),
                        static_cast<unsigned long long>(expected));
            return 1;
        }
    }

    std::printf("\nAll three ABIs computed the same sum; the capability "
                "ABIs moved 16-byte tagged\npointers through the cache "
                "hierarchy (see the cap-load column). At this toy size\n"
                "the working set stays cached and costs nothing — run "
                "bench_fig1_overall and\nexamples/pointer_chase_study to "
                "watch the overhead emerge at realistic scales.\n");

    // For the paper's full-size workload proxies, hand a RunRequest to
    // the experiment runner instead of driving a Machine by hand — the
    // same call scales to parallel, cached plans (runner::runPlan).
    const auto study = runner::run({.workload = "520.omnetpp_r",
                                    .abi = abi::Abi::Purecap,
                                    .scale = workloads::Scale::Tiny});
    std::printf("\nrunner::run(\"520.omnetpp_r\"/purecap/tiny): "
                "%llu insts, IPC %.3f, %.1fms host wall\n",
                static_cast<unsigned long long>(
                    study.sim->instructions),
                study.sim->ipc(), study.wallSeconds * 1e3);
    return 0;
}
