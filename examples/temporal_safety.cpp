/**
 * @file
 * Temporal safety demonstration: use-after-free under CHERI with
 * quarantine + revocation (the Cornucopia direction the paper cites).
 *
 * 1. allocate an object, store a capability to it in memory;
 * 2. free it — without revocation, a reallocation lets the stale
 *    capability read the new owner's data (the classic UAF);
 * 3. with quarantine + a revocation sweep, the stale capability's tag
 *    is cleared in memory and the dangling dereference traps.
 */

#include <cstdio>

#include "abi/allocator.hpp"
#include "mem/backing_store.hpp"
#include "mem/revoker.hpp"

using namespace cheri;

int
main()
{
    std::printf("CHERI heap temporal safety: quarantine + revocation\n\n");

    mem::BackingStore store;
    mem::Revoker revoker(store);
    abi::SimAllocator heap(abi::Abi::Purecap);

    // A "victim" object with a secret, and a stored pointer to it.
    const u64 size = 64;
    const Addr victim = heap.allocate(size);
    const cap::Capability victim_cap = heap.boundedCap(victim, size);
    store.write(victim, 0xdeadbeef, 8);

    const Addr pointer_slot = heap.allocate(16);
    store.writeCap(pointer_slot, victim_cap);
    std::printf("allocated object at 0x%llx; capability stored at "
                "0x%llx\n",
                static_cast<unsigned long long>(victim),
                static_cast<unsigned long long>(pointer_slot));

    // --- The unsafe path: free and reuse without revocation ---------
    heap.free(victim, size);
    const Addr reused = heap.allocate(size); // same block (LIFO reuse)
    store.write(reused, 0x5ec7e7, 8);        // new owner's secret

    auto stale = store.readCap(pointer_slot);
    std::printf("\nwithout revocation:\n");
    std::printf("  reallocated block at 0x%llx (reused: %s)\n",
                static_cast<unsigned long long>(reused),
                reused == victim ? "yes" : "no");
    if (!stale.checkAccess(stale.address(), 8, false)) {
        std::printf("  stale capability still works: read 0x%llx — "
                    "use-after-free leaked the new secret!\n",
                    static_cast<unsigned long long>(
                        store.read(stale.address(), 8)));
    }

    // --- The safe path: quarantine + sweep ---------------------------
    std::printf("\nwith quarantine + revocation:\n");
    const Addr victim2 = heap.allocate(size);
    const auto victim2_cap = heap.boundedCap(victim2, size);
    store.writeCap(pointer_slot, victim2_cap);

    // free(): the allocator would put the chunk in quarantine instead
    // of on a free list.
    revoker.quarantine(victim2, heap.paddedSize(size));
    std::printf("  freed block quarantined (%llu bytes pending)\n",
                static_cast<unsigned long long>(
                    revoker.quarantinedBytes()));

    const auto stats = revoker.sweep();
    std::printf("  sweep: visited %llu tagged granules, revoked %llu "
                "capabilities, released %llu bytes\n",
                static_cast<unsigned long long>(stats.granulesVisited),
                static_cast<unsigned long long>(stats.capsRevoked),
                static_cast<unsigned long long>(stats.bytesReleased));
    std::printf("  modeled sweep cost: %llu cycles\n",
                static_cast<unsigned long long>(stats.modeledCycles()));

    auto revoked = store.readCap(pointer_slot);
    const auto fault = revoked.checkAccess(revoked.address(), 8, false);
    if (fault) {
        std::printf("  stale capability after sweep: %s\n",
                    fault->toString().c_str());
    } else {
        std::printf("  UNEXPECTED: stale capability survived the "
                    "sweep\n");
        return 1;
    }

    std::printf("\nThe dangling pointer died in memory before the reuse "
                "— temporal safety at the cost\nof the sweep, which is "
                "why the paper flags the N1's handling of revocation "
                "stores\nas a microarchitectural pain point.\n");
    return 0;
}
