/**
 * @file
 * The measurement methodology itself (§3.2): Morello exposes only six
 * programmable PMU counters, so pmcstat-style profiling must multiplex
 * event groups across repeated runs. This example collects the full
 * Table 1 event set for the SQLite proxy, group by group, and derives
 * the paper's metrics from the merged counts.
 */

#include <cstdio>

#include "analysis/metrics.hpp"
#include "pmu/pmu.hpp"
#include "runner/runner.hpp"
#include "workloads/registry.hpp"

using namespace cheri;

int
main()
{
    const auto pool = workloads::allWorkloads();
    const auto *workload = workloads::findWorkload(pool, "SQLite");

    const auto events = pmu::PmcSession::paperEventSet();
    const auto groups = pmu::PmcSession::schedule(events);

    std::printf("pmcstat-style collection on %s (purecap ABI)\n",
                workload->info().name.c_str());
    std::printf("%zu events / %zu counters -> %zu runs\n\n", events.size(),
                pmu::kNumSlots, groups.size());

    for (std::size_t g = 0; g < groups.size(); ++g) {
        std::printf("  run %zu programs:", g + 1);
        for (const auto event : groups[g])
            std::printf(" %s", pmu::eventName(event));
        std::printf("\n");
    }

    pmu::PmcSession session;
    std::size_t run_index = 0;
    const auto collected = session.collect(events, [&] {
        ++run_index;
        std::printf("  ... executing run %zu\n", run_index);
        const auto result =
            runner::run({.workload = workload->info().name,
                         .abi = abi::Abi::Purecap,
                         .scale = workloads::Scale::Tiny});
        return result.sim->counts;
    });

    std::printf("\nMerged counts (selected):\n");
    for (const auto event :
         {pmu::Event::CpuCycles, pmu::Event::InstRetired,
          pmu::Event::L1dCache, pmu::Event::L1dCacheRefill,
          pmu::Event::CapMemAccessRd, pmu::Event::CapMemAccessWr,
          pmu::Event::MemAccessRdCtag, pmu::Event::DtlbWalk})
        std::printf("  %-22s %12llu\n", pmu::eventName(event),
                    static_cast<unsigned long long>(collected.get(event)));

    const auto metrics =
        analysis::DerivedMetrics::compute(collected.toEventCounts());
    std::printf("\nDerived Table 1 metrics from the merged counts:\n");
    std::printf("  IPC %.3f  CPI %.3f\n", metrics.ipc, metrics.cpi);
    std::printf("  L1D MR %.2f%%  L2 MR %.2f%%  LLC read MR %.2f%%\n",
                metrics.l1dMissRate * 100, metrics.l2MissRate * 100,
                metrics.llcReadMissRate * 100);
    std::printf("  capability load density %.2f%%  store density %.2f%%  "
                "tag overhead %.2f%%\n",
                metrics.capLoadDensity * 100,
                metrics.capStoreDensity * 100,
                metrics.capTagOverhead * 100);
    std::printf("  memory intensity %.3f\n", metrics.memoryIntensity);

    std::printf("\nDeterministic replay makes the merge exact; on real "
                "hardware the paper saw <1%% variance.\n");
    return 0;
}
