/**
 * @file
 * Deterministic design-space search over MachineConfig knobs
 * (DESIGN.md §10): grid seeding + successive halving, every probe a
 * RunRequest routed through runner::runPlan so the content-addressed
 * .cpr cache makes repeated probes free and the search trace is
 * byte-identical across --jobs values and cache states.
 *
 * A candidate is one point of the knob grid (the cross product of
 * the searched knobs' menus). A probe evaluates one candidate on one
 * rung — the rung ladder doubles the scored workload prefix (1, 2,
 * 4, ... of the pool) and each rung only simulates the workloads new
 * to it, so a candidate promoted through every rung costs each cell
 * exactly once. Score = arithmetic mean of per-workload
 * purecap/hybrid model-seconds ratios (no libm, so the bytes cannot
 * drift across compilers); surviving candidates are classified with
 * analysis::topdown into a bottleneck label and filtered to a Pareto
 * frontier of (overhead, areaProxy).
 */

#ifndef CHERI_TUNE_TUNER_HPP
#define CHERI_TUNE_TUNER_HPP

#include <string>
#include <vector>

#include "pmu/counts.hpp"
#include "runner/runner.hpp"
#include "tune/knobs.hpp"
#include "workloads/workload.hpp"

namespace cheri::tune {

struct TuneOptions
{
    u64 seed = 1;    //!< Search seed (candidate sampling only).
    u64 budget = 32; //!< Max probes (candidate x rung evaluations).
    workloads::Scale scale = workloads::Scale::Tiny;

    /**
     * Workload RNG seed for every probe cell — kept at the sweep
     * default so autotune probes share .cpr entries with standard
     * sweeps of the same knobs.
     */
    u64 workload_seed = 42;

    /** Knob names to search (must have menus); empty = tunableKnobs(). */
    std::vector<std::string> knobs;

    /** Workload pool, rung-ladder order; empty = table4Names(). */
    std::vector<std::string> workloads;

    runner::RunnerOptions runner;
};

/** One grid point and everything the search learned about it. */
struct TuneCandidate
{
    u64 grid_index = 0;         //!< Row-major index into the knob grid.
    std::vector<double> values; //!< Parallel to TuneOutcome::knobs.
    double overhead = 0; //!< Mean purecap/hybrid seconds ratio.
    double area = 1;     //!< areaProxy() of the configured machine.
    u32 workloads_scored = 0; //!< Pool prefix the score covers.
    u32 rung = 0;             //!< Highest rung reached.
    bool valid = true;        //!< False on any NA/faulted cell.
    std::string bottleneck;   //!< Top-down label ("backend-mem-l1").
    pmu::EventCounts purecapCounts; //!< Summed over scored workloads.
};

struct TuneStats
{
    u64 probes = 0; //!< Candidate x rung evaluations charged.
    u64 cells = 0;  //!< RunRequests issued (2 ABIs per workload).
    u64 cacheHits = 0;
    u64 simulated = 0;
    u64 generations = 0;
    double wallSeconds = 0; //!< Host wall clock (NOT deterministic).

    double
    hitRate() const
    {
        return cells ? static_cast<double>(cacheHits) / cells : 0.0;
    }
};

struct TuneOutcome
{
    /** The searched knobs, registry order. */
    std::vector<const Knob *> knobs;

    /** Every sampled candidate, grid_index ascending. */
    std::vector<TuneCandidate> probed;

    /** Pareto frontier (min overhead, min area), area ascending. */
    std::vector<TuneCandidate> frontier;

    /** The deterministic search log (probe lines + generation
     *  headers); byte-identical for a given (seed, budget, scale,
     *  knobs, workloads) regardless of jobs or cache state. */
    std::string trace;

    TuneStats stats;
};

/**
 * Run the search. False + @p error on invalid options (unknown knob
 * or workload names, a knob without a menu, empty grid); no cells run
 * in that case.
 */
bool autotune(const TuneOptions &options, TuneOutcome *out,
              std::string *error);

/**
 * The bottleneck label for @p counts: the dominant top-down category,
 * with backend drilled into -mem-l1/-mem-l2/-mem-ext/-core and a
 * PCC-dominated frontend flagged as frontend-pcc.
 */
std::string bottleneckLabel(const pmu::EventCounts &counts);

} // namespace cheri::tune

#endif // CHERI_TUNE_TUNER_HPP
