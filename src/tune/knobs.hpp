/**
 * @file
 * The machine knob registry: one table describing every MachineConfig
 * field — canonical name, kind, default, a legal probe value, whether
 * the knob participates in the cell fingerprint, its weight in the
 * area proxy, and the value menu the autotuner searches.
 *
 * The registry is the single source of truth shared by the `--set
 * name=value` CLI parser, serve's JobSpec `knobs` field, the
 * autotuner's grid, and tests/test_tune.cpp. Adding a MachineConfig
 * field without registering it here (or registering it without
 * joining runner/cache.cpp's fingerprint) is exactly the drift the
 * table-driven registry test exists to catch.
 */

#ifndef CHERI_TUNE_KNOBS_HPP
#define CHERI_TUNE_KNOBS_HPP

#include <string>
#include <string_view>
#include <vector>

#include "sim/core.hpp"

namespace cheri::tune {

enum class KnobKind { U64, Double, Bool };

struct Knob
{
    const char *name;        //!< Canonical dotted name ("mem.l1d_kib").
    const char *description; //!< One-line human description.
    KnobKind kind = KnobKind::U64;

    /**
     * True when changing the knob must change cellFingerprint().
     * Only the proven bit-identical accelerations (block cache, mem
     * fast path) are documented non-fingerprint escapes.
     */
    bool fingerprint = true;

    /** The default MachineConfig{} value (computed at registry build,
     *  so it cannot drift from sim/core.hpp). */
    double baseline = 0;

    /** A legal non-default value, used by the round-trip and
     *  fingerprint-sensitivity tests. */
    double probe = 0;

    /** Smallest value parseKnobValue() accepts. */
    double min_value = 0;

    /** Weight in areaProxy(); 0 = the knob is free (latencies,
     *  penalties and other non-structural parameters). */
    double area_weight = 0;

    /** Values the autotuner's grid enumerates; empty = not searched. */
    std::vector<double> menu;

    double (*get)(const sim::MachineConfig &) = nullptr;
    void (*set)(sim::MachineConfig &, double) = nullptr;
};

/** The full registry, in canonical (group-major) order. */
const std::vector<Knob> &knobRegistry();

/** Lookup by canonical name; nullptr when unknown. */
const Knob *findKnob(std::string_view name);

/** The registered name nearest to @p name (Levenshtein), for
 *  did-you-mean diagnostics. Empty only if the registry were empty. */
std::string closestKnobName(std::string_view name);

/** Registry entries with a non-empty menu, registry order — the
 *  default autotune search space. */
std::vector<const Knob *> tunableKnobs();

/**
 * Canonical text for @p value of @p knob: integers bare, doubles with
 * trailing zeros trimmed, booleans "on"/"off". Stable across builds
 * (snprintf-based), so golden CSVs can embed knob values.
 */
std::string renderKnobValue(const Knob &knob, double value);

/**
 * Parse @p text as a value for @p knob. Booleans accept
 * on/off/true/false/1/0. False + @p error on malformed text or a
 * value below the knob's minimum.
 */
bool parseKnobValue(const Knob &knob, std::string_view text,
                    double *out, std::string *error);

/**
 * Apply "name=value" semantics: look up @p name, parse @p value, set
 * it on @p config. False + @p error (with a did-you-mean suggestion
 * for unknown names) on any failure.
 */
bool applyKnob(sim::MachineConfig &config, std::string_view name,
               std::string_view value, std::string *error);

/** Apply a comma-separated "a=1,b=2" list via applyKnob(). */
bool applyKnobList(sim::MachineConfig &config, std::string_view list,
                   std::string *error);

/**
 * Area-proxy cost of @p config: the weighted mean of each structural
 * knob's size relative to its default (booleans count 1x when off, 2x
 * when on), normalized so the default MachineConfig is exactly 1.0.
 * Pure IEEE adds/divides — byte-stable across compilers, safe for
 * golden CSVs.
 */
double areaProxy(const sim::MachineConfig &config);

} // namespace cheri::tune

#endif // CHERI_TUNE_KNOBS_HPP
