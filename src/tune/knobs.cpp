#include "tune/knobs.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <type_traits>

#include "support/fmt.hpp"
#include "support/serialize.hpp"

namespace cheri::tune {

namespace {

using sim::MachineConfig;

Knob
make(const char *name, const char *desc, KnobKind kind, bool fp,
     double probe, double min, double weight, std::vector<double> menu,
     double (*get)(const MachineConfig &),
     void (*set)(MachineConfig &, double))
{
    Knob k;
    k.name = name;
    k.description = desc;
    k.kind = kind;
    k.fingerprint = fp;
    k.probe = probe;
    k.min_value = min;
    k.area_weight = weight;
    k.menu = std::move(menu);
    k.get = get;
    k.set = set;
    k.baseline = get(MachineConfig{});
    return k;
}

// GETF/SETF adapt one MachineConfig field; the cast round-trips
// u32/u64/bool/double fields through the registry's double values.
#define GETF(EXPR)                                                     \
    [](const MachineConfig &c) -> double {                             \
        return static_cast<double>(EXPR);                              \
    }
#define SETF(FIELD)                                                    \
    [](MachineConfig &c, double v) {                                   \
        c.FIELD =                                                      \
            static_cast<std::remove_reference_t<decltype(c.FIELD)>>(v);\
    }
// Cache capacities are exposed in KiB (the unit the paper and the
// legacy --l1d-kib flag speak), stored in bytes.
#define SET_KIB(FIELD)                                                 \
    [](MachineConfig &c, double v) {                                   \
        c.FIELD = static_cast<u64>(v) * 1024;                          \
    }

std::vector<Knob>
buildRegistry()
{
    std::vector<Knob> r;
    auto u64k = [&r](const char *name, const char *desc, double probe,
                     double min, double weight, std::vector<double> menu,
                     double (*get)(const MachineConfig &),
                     void (*set)(MachineConfig &, double)) {
        r.push_back(make(name, desc, KnobKind::U64, true, probe, min,
                         weight, std::move(menu), get, set));
    };
    auto dblk = [&r](const char *name, const char *desc, double probe,
                     double min, double weight,
                     double (*get)(const MachineConfig &),
                     void (*set)(MachineConfig &, double)) {
        r.push_back(make(name, desc, KnobKind::Double, true, probe, min,
                         weight, {}, get, set));
    };
    auto boolk = [&r](const char *name, const char *desc, bool fp,
                      double probe, double weight,
                      std::vector<double> menu,
                      double (*get)(const MachineConfig &),
                      void (*set)(MachineConfig &, double)) {
        r.push_back(make(name, desc, KnobKind::Bool, fp, probe, 0,
                         weight, std::move(menu), get, set));
    };

    // machine.* — whole-machine parameters.
    u64k("machine.max_insts", "instruction budget per cell",
         1'000'000, 1, 0, {}, GETF(c.max_insts), SETF(max_insts));
    dblk("machine.clock_ghz", "core clock used for model seconds",
         2.0, 0.1, 0, GETF(c.clock_ghz), SETF(clock_ghz));
    u64k("machine.cores", "modelled cores sharing the uncore",
         2, 1, 0, {}, GETF(c.cores), SETF(cores));
    u64k("machine.corun_quantum", "co-run lane scheduling quantum",
         128, 1, 0, {}, GETF(c.corun_quantum), SETF(corun_quantum));
    boolk("machine.block_cache",
          "decoded-block cache (bit-identical acceleration)",
          /*fingerprint=*/false, 0, 0, {},
          GETF(c.block_cache), SETF(block_cache));
    boolk("machine.chain_blocks",
          "chained block execution (bit-identical acceleration)",
          /*fingerprint=*/false, 0, 0, {},
          GETF(c.chain_blocks), SETF(chain_blocks));

    // mem.* — cache geometry (KiB / ways / line bytes).
    u64k("mem.l1i_kib", "L1I capacity", 32, 1, 1.0, {},
         GETF(c.mem.l1i.size_bytes / 1024.0), SET_KIB(mem.l1i.size_bytes));
    u64k("mem.l1i_ways", "L1I associativity", 8, 1, 0.25, {},
         GETF(c.mem.l1i.ways), SETF(mem.l1i.ways));
    u64k("mem.l1i_line_bytes", "L1I line size", 128, 1, 0, {},
         GETF(c.mem.l1i.line_bytes), SETF(mem.l1i.line_bytes));
    u64k("mem.l1d_kib", "L1D capacity", 128, 1, 1.0, {32, 64, 128},
         GETF(c.mem.l1d.size_bytes / 1024.0), SET_KIB(mem.l1d.size_bytes));
    u64k("mem.l1d_ways", "L1D associativity", 8, 1, 0.25, {},
         GETF(c.mem.l1d.ways), SETF(mem.l1d.ways));
    u64k("mem.l1d_line_bytes", "L1D line size", 128, 1, 0, {},
         GETF(c.mem.l1d.line_bytes), SETF(mem.l1d.line_bytes));
    u64k("mem.l2_kib", "private L2 capacity", 2048, 1, 2.0,
         {512, 1024, 2048},
         GETF(c.mem.l2.size_bytes / 1024.0), SET_KIB(mem.l2.size_bytes));
    u64k("mem.l2_ways", "L2 associativity", 16, 1, 0.25, {},
         GETF(c.mem.l2.ways), SETF(mem.l2.ways));
    u64k("mem.l2_line_bytes", "L2 line size", 128, 1, 0, {},
         GETF(c.mem.l2.line_bytes), SETF(mem.l2.line_bytes));
    u64k("mem.llc_kib", "shared LLC capacity", 2048, 1, 2.0, {},
         GETF(c.mem.llc.size_bytes / 1024.0), SET_KIB(mem.llc.size_bytes));
    u64k("mem.llc_ways", "LLC associativity", 8, 1, 0.25, {},
         GETF(c.mem.llc.ways), SETF(mem.llc.ways));
    u64k("mem.llc_line_bytes", "LLC line size", 128, 1, 0, {},
         GETF(c.mem.llc.line_bytes), SETF(mem.llc.line_bytes));

    // mem.* — TLB geometry.
    u64k("mem.l1i_tlb_entries", "L1I TLB entries", 96, 1, 0.3, {},
         GETF(c.mem.l1i_tlb.entries), SETF(mem.l1i_tlb.entries));
    u64k("mem.l1i_tlb_ways", "L1I TLB ways (0 = fully associative)",
         4, 0, 0, {}, GETF(c.mem.l1i_tlb.ways), SETF(mem.l1i_tlb.ways));
    u64k("mem.l1i_tlb_page_bytes", "L1I TLB page size", 16384, 1, 0, {},
         GETF(c.mem.l1i_tlb.page_bytes), SETF(mem.l1i_tlb.page_bytes));
    u64k("mem.l1d_tlb_entries", "L1D TLB entries", 96, 1, 0.3,
         {32, 48, 96},
         GETF(c.mem.l1d_tlb.entries), SETF(mem.l1d_tlb.entries));
    u64k("mem.l1d_tlb_ways", "L1D TLB ways (0 = fully associative)",
         4, 0, 0, {}, GETF(c.mem.l1d_tlb.ways), SETF(mem.l1d_tlb.ways));
    u64k("mem.l1d_tlb_page_bytes", "L1D TLB page size", 16384, 1, 0, {},
         GETF(c.mem.l1d_tlb.page_bytes), SETF(mem.l1d_tlb.page_bytes));
    u64k("mem.l2_tlb_entries", "unified L2 TLB entries", 2560, 1, 0.3,
         {}, GETF(c.mem.l2_tlb.entries), SETF(mem.l2_tlb.entries));
    u64k("mem.l2_tlb_ways", "L2 TLB ways (0 = fully associative)",
         10, 0, 0, {}, GETF(c.mem.l2_tlb.ways), SETF(mem.l2_tlb.ways));
    u64k("mem.l2_tlb_page_bytes", "L2 TLB page size", 16384, 1, 0, {},
         GETF(c.mem.l2_tlb.page_bytes), SETF(mem.l2_tlb.page_bytes));

    // mem.* — latencies and penalties (cycles; all area-free).
    u64k("mem.l1_latency", "L1 hit latency", 3, 1, 0, {},
         GETF(c.mem.l1_latency), SETF(mem.l1_latency));
    u64k("mem.l2_latency", "L2 hit latency", 9, 1, 0, {},
         GETF(c.mem.l2_latency), SETF(mem.l2_latency));
    u64k("mem.llc_latency", "LLC hit latency", 30, 1, 0, {},
         GETF(c.mem.llc_latency), SETF(mem.llc_latency));
    u64k("mem.dram_latency", "DRAM latency", 150, 1, 0, {},
         GETF(c.mem.dram_latency), SETF(mem.dram_latency));
    u64k("mem.walk_latency", "page-walk latency", 11, 1, 0, {},
         GETF(c.mem.walk_latency), SETF(mem.walk_latency));
    u64k("mem.tag_extra_latency", "extra cycles per tagged access",
         4, 0, 0, {},
         GETF(c.mem.tag_extra_latency), SETF(mem.tag_extra_latency));
    u64k("mem.llc_arb_penalty", "LLC arbitration penalty under co-run",
         12, 0, 0, {},
         GETF(c.mem.llc_arb_penalty), SETF(mem.llc_arb_penalty));
    u64k("mem.dram_arb_penalty", "DRAM arbitration penalty under co-run",
         36, 0, 0, {},
         GETF(c.mem.dram_arb_penalty), SETF(mem.dram_arb_penalty));
    boolk("mem.fast_path",
          "memory fast path (bit-identical acceleration)",
          /*fingerprint=*/false, 0, 0, {},
          GETF(c.mem.fast_path), SETF(mem.fast_path));

    // pipe.* — pipeline shape.
    u64k("pipe.width", "issue width (slots per cycle)", 6, 1, 1.5, {},
         GETF(c.pipe.width), SETF(pipe.width));
    u64k("pipe.mlp", "memory-level parallelism (overlap depth)",
         16, 1, 0.5, {4, 8, 16}, GETF(c.pipe.mlp), SETF(pipe.mlp));
    u64k("pipe.mispredict_penalty", "branch mispredict penalty",
         14, 0, 0, {},
         GETF(c.pipe.mispredict_penalty), SETF(pipe.mispredict_penalty));
    u64k("pipe.pcc_stall_penalty", "PCC re-derivation stall penalty",
         0, 0, 0, {},
         GETF(c.pipe.pcc_stall_penalty), SETF(pipe.pcc_stall_penalty));
    u64k("pipe.div_latency", "divide latency", 20, 1, 0, {},
         GETF(c.pipe.div_latency), SETF(pipe.div_latency));
    dblk("pipe.dp_ports", "integer data-processing ports", 4.0, 0.1,
         0.4, GETF(c.pipe.dp_ports), SETF(pipe.dp_ports));
    dblk("pipe.load_ports", "load ports", 3.0, 0.1, 0.4,
         GETF(c.pipe.load_ports), SETF(pipe.load_ports));
    dblk("pipe.store_ports", "store ports", 2.0, 0.1, 0.4,
         GETF(c.pipe.store_ports), SETF(pipe.store_ports));
    dblk("pipe.fp_ports", "FP/SIMD ports", 3.0, 0.1, 0.4,
         GETF(c.pipe.fp_ports), SETF(pipe.fp_ports));
    dblk("pipe.branch_ports", "branch ports", 3.0, 0.1, 0.4,
         GETF(c.pipe.branch_ports), SETF(pipe.branch_ports));
    boolk("pipe.batch_issue",
          "batched block issue (bit-identical acceleration)",
          /*fingerprint=*/false, 0, 0, {},
          GETF(c.pipe.batch_issue), SETF(pipe.batch_issue));

    // pipe.bp.* — branch predictor tables.
    u64k("pipe.bp.pht_entries", "pattern history table entries",
         32768, 1, 0.4, {},
         GETF(c.pipe.bp.pht_entries), SETF(pipe.bp.pht_entries));
    u64k("pipe.bp.history_bits", "global history length", 14, 1, 0.1,
         {}, GETF(c.pipe.bp.history_bits), SETF(pipe.bp.history_bits));
    u64k("pipe.bp.btb_entries", "branch target buffer entries",
         2048, 1, 0.4, {},
         GETF(c.pipe.bp.btb_entries), SETF(pipe.bp.btb_entries));
    u64k("pipe.bp.ras_depth", "return address stack depth", 32, 1,
         0.1, {}, GETF(c.pipe.bp.ras_depth), SETF(pipe.bp.ras_depth));
    boolk("pipe.bp.cap_aware", "capability-aware branch predictor",
          /*fingerprint=*/true, 1, 0.25, {0, 1},
          GETF(c.pipe.bp.cap_aware), SETF(pipe.bp.cap_aware));

    // pipe.sq.* — store queue.
    u64k("pipe.sq.entries", "store queue entries", 48, 1, 0.5,
         {16, 24, 48},
         GETF(c.pipe.sq.entries), SETF(pipe.sq.entries));
    boolk("pipe.sq.wide_entries",
          "129-bit store queue entries (capability-wide)",
          /*fingerprint=*/true, 1, 0.25, {0, 1},
          GETF(c.pipe.sq.wide_entries), SETF(pipe.sq.wide_entries));

    return r;
}

#undef GETF
#undef SETF
#undef SET_KIB

// Classic Levenshtein, mirroring alloc/policy.cpp's did-you-mean.
std::size_t
editDistance(std::string_view a, std::string_view b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t prev = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t insert_or_delete =
                std::min(row[j], row[j - 1]) + 1;
            std::size_t substitute =
                prev + (a[i - 1] == b[j - 1] ? 0 : 1);
            prev = row[j];
            row[j] = std::min(insert_or_delete, substitute);
        }
    }
    return row[b.size()];
}

bool
parseBoolText(std::string_view text, double *out)
{
    if (text == "on" || text == "true" || text == "1") {
        *out = 1;
        return true;
    }
    if (text == "off" || text == "false" || text == "0") {
        *out = 0;
        return true;
    }
    return false;
}

} // namespace

const std::vector<Knob> &
knobRegistry()
{
    static const std::vector<Knob> registry = buildRegistry();
    return registry;
}

const Knob *
findKnob(std::string_view name)
{
    for (const Knob &k : knobRegistry())
        if (name == k.name)
            return &k;
    return nullptr;
}

std::string
closestKnobName(std::string_view name)
{
    std::string best;
    std::size_t bestDistance = ~std::size_t{0};
    for (const Knob &k : knobRegistry()) {
        std::size_t d = editDistance(name, k.name);
        if (d < bestDistance) {
            bestDistance = d;
            best = k.name;
        }
    }
    return best;
}

std::vector<const Knob *>
tunableKnobs()
{
    std::vector<const Knob *> out;
    for (const Knob &k : knobRegistry())
        if (!k.menu.empty())
            out.push_back(&k);
    return out;
}

std::string
renderKnobValue(const Knob &knob, double value)
{
    switch (knob.kind) {
    case KnobKind::Bool:
        return value != 0 ? "on" : "off";
    case KnobKind::U64: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(value));
        return buf;
    }
    case KnobKind::Double: {
        std::string text = fmt::fixed(value, 3);
        while (!text.empty() && text.back() == '0')
            text.pop_back();
        if (!text.empty() && text.back() == '.')
            text.pop_back();
        return text;
    }
    }
    return {};
}

bool
parseKnobValue(const Knob &knob, std::string_view text, double *out,
               std::string *error)
{
    std::string value(text);
    double parsed = 0;
    switch (knob.kind) {
    case KnobKind::Bool:
        if (!parseBoolText(value, &parsed)) {
            if (error)
                *error = "knob '" + std::string(knob.name) +
                         "' wants on/off, got '" + value + "'";
            return false;
        }
        break;
    case KnobKind::U64: {
        std::optional<u64> n = cheri::parseU64(value);
        if (!n) {
            if (error)
                *error = "knob '" + std::string(knob.name) +
                         "' wants an integer, got '" + value + "'";
            return false;
        }
        parsed = static_cast<double>(*n);
        break;
    }
    case KnobKind::Double: {
        char *end = nullptr;
        parsed = std::strtod(value.c_str(), &end);
        if (value.empty() || end != value.c_str() + value.size() ||
            !std::isfinite(parsed)) {
            if (error)
                *error = "knob '" + std::string(knob.name) +
                         "' wants a number, got '" + value + "'";
            return false;
        }
        break;
    }
    }
    if (parsed < knob.min_value) {
        if (error)
            *error = "knob '" + std::string(knob.name) + "' minimum is " +
                     renderKnobValue(knob, knob.min_value) + ", got '" +
                     value + "'";
        return false;
    }
    *out = parsed;
    return true;
}

bool
applyKnob(sim::MachineConfig &config, std::string_view name,
          std::string_view value, std::string *error)
{
    const Knob *knob = findKnob(name);
    if (!knob) {
        if (error)
            *error = "unknown machine knob '" + std::string(name) +
                     "'; did you mean '" + closestKnobName(name) + "'?";
        return false;
    }
    double parsed = 0;
    if (!parseKnobValue(*knob, value, &parsed, error))
        return false;
    knob->set(config, parsed);
    return true;
}

bool
applyKnobList(sim::MachineConfig &config, std::string_view list,
              std::string *error)
{
    std::string_view rest = list;
    while (!rest.empty()) {
        std::size_t comma = rest.find(',');
        std::string_view item = rest.substr(0, comma);
        rest = comma == std::string_view::npos
                   ? std::string_view{}
                   : rest.substr(comma + 1);
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string_view::npos) {
            if (error)
                *error = "expected name=value, got '" +
                         std::string(item) + "'";
            return false;
        }
        if (!applyKnob(config, item.substr(0, eq), item.substr(eq + 1),
                       error))
            return false;
    }
    return true;
}

double
areaProxy(const sim::MachineConfig &config)
{
    // Weighted structural cost relative to the default machine; the
    // ratio of two identical IEEE sums is exactly 1.0 at baseline.
    double cost = 0;
    double base = 0;
    for (const Knob &k : knobRegistry()) {
        if (k.area_weight <= 0)
            continue;
        double value = k.get(config);
        if (k.kind == KnobKind::Bool) {
            cost += k.area_weight * (1.0 + value);
            base += k.area_weight * (1.0 + k.baseline);
        } else {
            cost += k.area_weight * (value / k.baseline);
            base += k.area_weight;
        }
    }
    return base > 0 ? cost / base : 1.0;
}

} // namespace cheri::tune
