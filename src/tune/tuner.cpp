#include "tune/tuner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>

#include "analysis/topdown.hpp"
#include "support/fmt.hpp"
#include "tune/frontier.hpp"
#include "support/rng.hpp"
#include "workloads/registry.hpp"

namespace cheri::tune {

namespace {

const char *
scaleName(workloads::Scale scale)
{
    switch (scale) {
    case workloads::Scale::Tiny: return "tiny";
    case workloads::Scale::Small: return "small";
    case workloads::Scale::Ref: return "ref";
    }
    return "?";
}

std::string
gridIndexText(u64 index)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%06llu",
                  static_cast<unsigned long long>(index));
    return buf;
}

/** Decode @p index into one menu value per knob (row-major: the
 *  first knob is the most significant digit). */
std::vector<double>
decodeGridIndex(u64 index, const std::vector<const Knob *> &knobs)
{
    std::vector<double> values(knobs.size());
    for (std::size_t i = knobs.size(); i-- > 0;) {
        u64 n = knobs[i]->menu.size();
        values[i] = knobs[i]->menu[index % n];
        index /= n;
    }
    return values;
}

/** The search bookkeeping for one sampled candidate. */
struct Work
{
    TuneCandidate cand;
    double sumRatio = 0;
    bool evaluated = false;
};

} // namespace

std::string
bottleneckLabel(const pmu::EventCounts &counts)
{
    analysis::TopDown td = analysis::TopDown::fromModelTruth(counts);

    int dominant = 0; // 0 retiring, 1 bad-spec, 2 frontend, 3 backend
    double top = td.retiring;
    if (td.badSpeculation > top) { top = td.badSpeculation; dominant = 1; }
    if (td.frontendBound > top) { top = td.frontendBound; dominant = 2; }
    if (td.backendBound > top) { top = td.backendBound; dominant = 3; }

    switch (dominant) {
    case 0: return "retiring";
    case 1: return "bad-speculation";
    case 2:
        return td.pccStallShare > 0.5 * td.frontendBound
                   ? "frontend-pcc"
                   : "frontend";
    default:
        break;
    }
    if (td.coreBound > td.memoryBound)
        return "backend-core";
    if (td.l2Bound > td.l1Bound && td.l2Bound > td.extMemBound)
        return "backend-mem-l2";
    if (td.extMemBound > td.l1Bound)
        return "backend-mem-ext";
    return "backend-mem-l1";
}

bool
autotune(const TuneOptions &options, TuneOutcome *out,
         std::string *error)
{
    auto started = std::chrono::steady_clock::now();
    *out = TuneOutcome{};

    // Resolve and validate the knob subset.
    if (options.knobs.empty()) {
        out->knobs = tunableKnobs();
    } else {
        for (const std::string &name : options.knobs) {
            const Knob *knob = findKnob(name);
            if (!knob) {
                if (error)
                    *error = "unknown machine knob '" + name +
                             "'; did you mean '" + closestKnobName(name) +
                             "'?";
                return false;
            }
            if (knob->menu.empty()) {
                if (error)
                    *error = "knob '" + name +
                             "' has no search menu; searchable knobs "
                             "have one (see `cheriperf knobs`)";
                return false;
            }
            out->knobs.push_back(knob);
        }
        // Registry order regardless of the spelling order, so the
        // trace/CSV column order is canonical.
        std::sort(out->knobs.begin(), out->knobs.end(),
                  [](const Knob *a, const Knob *b) { return a < b; });
        out->knobs.erase(
            std::unique(out->knobs.begin(), out->knobs.end()),
            out->knobs.end());
    }
    if (out->knobs.empty()) {
        if (error)
            *error = "no searchable knobs selected";
        return false;
    }

    // Validate the workload pool.
    std::vector<std::string> pool = options.workloads.empty()
                                        ? workloads::table4Names()
                                        : options.workloads;
    auto registry = workloads::allWorkloads();
    for (const std::string &name : pool) {
        if (!workloads::findWorkload(registry, name)) {
            if (error)
                *error = "unknown workload '" + name + "'";
            return false;
        }
    }

    // Grid size (cross product of menus), overflow-guarded.
    u64 grid = 1;
    for (const Knob *knob : out->knobs) {
        u64 n = knob->menu.size();
        if (grid > 10'000'000 / n) {
            if (error)
                *error = "knob grid too large; search fewer knobs";
            return false;
        }
        grid *= n;
    }
    if (options.budget == 0) {
        if (error)
            *error = "budget must be >= 1";
        return false;
    }

    // Seeded grid sampling: budget/2 initial candidates (successive
    // halving spends roughly half its probes on generation 0), as
    // distinct grid indices via Floyd's algorithm, visited ascending.
    u64 want = std::min<u64>(std::max<u64>(options.budget / 2, 1), grid);
    std::set<u64> sampled;
    Xoshiro256StarStar rng(options.seed);
    if (want == grid) {
        for (u64 i = 0; i < grid; ++i)
            sampled.insert(i);
    } else {
        for (u64 j = grid - want; j < grid; ++j) {
            u64 t = rng.nextBelow(j + 1);
            if (!sampled.insert(t).second)
                sampled.insert(j);
        }
    }

    std::map<u64, Work> all;
    std::vector<u64> active;
    for (u64 index : sampled) {
        Work work;
        work.cand.grid_index = index;
        work.cand.values = decodeGridIndex(index, out->knobs);
        sim::MachineConfig costed; // abi-independent: areaProxy only
        for (std::size_t i = 0; i < out->knobs.size(); ++i)
            out->knobs[i]->set(costed, work.cand.values[i]);
        work.cand.area = areaProxy(costed);
        all.emplace(index, std::move(work));
        active.push_back(index);
    }

    std::string &trace = out->trace;
    trace += "# cheriperf autotune seed=" + std::to_string(options.seed) +
             " budget=" + std::to_string(options.budget) + " scale=" +
             scaleName(options.scale) + "\n";
    trace += "# knobs (" + std::to_string(out->knobs.size()) + "):";
    for (const Knob *knob : out->knobs)
        trace += std::string(" ") + knob->name;
    trace += "\n# workloads (" + std::to_string(pool.size()) + "):";
    for (const std::string &name : pool)
        trace += " " + name;
    trace += "\n# grid " + std::to_string(grid) + " candidates " +
             std::to_string(active.size()) + "\n";

    // The rung ladder: rung r scores the first min(2^r, |pool|)
    // workloads; a generation only simulates the workloads new to
    // its rung.
    auto cum = [&pool](u32 rung) {
        u64 n = u64{1} << std::min<u32>(rung, 62);
        return std::min<std::size_t>(n, pool.size());
    };

    u64 spent = 0;
    u32 rung = 0;
    while (!active.empty() && spent < options.budget) {
        std::size_t prev = rung == 0 ? 0 : cum(rung - 1);
        std::size_t cumw = cum(rung);

        u64 room = options.budget - spent;
        if (active.size() > room) {
            active.resize(static_cast<std::size_t>(room));
            trace += "# budget: truncated generation to " +
                     std::to_string(active.size()) + " candidates\n";
        }

        runner::ExperimentPlan plan;
        for (u64 index : active) {
            const Work &work = all.at(index);
            for (std::size_t wi = prev; wi < cumw; ++wi) {
                for (abi::Abi abi :
                     {abi::Abi::Hybrid, abi::Abi::Purecap}) {
                    runner::RunRequest request;
                    request.workload = pool[wi];
                    request.abi = abi;
                    request.scale = options.scale;
                    request.seed = options.workload_seed;
                    sim::MachineConfig config =
                        sim::MachineConfig::forAbi(abi);
                    for (std::size_t i = 0; i < out->knobs.size(); ++i)
                        out->knobs[i]->set(config, work.cand.values[i]);
                    request.config = config;
                    plan.add(std::move(request));
                }
            }
        }

        runner::PlanOutcome outcome =
            runner::runPlan(plan, options.runner);

        trace += "# gen " + std::to_string(out->stats.generations) +
                 " rung " + std::to_string(rung) + ": " +
                 std::to_string(active.size()) + " candidates, workloads " +
                 std::to_string(cumw) + " (+" +
                 std::to_string(cumw - prev) + "), " +
                 std::to_string(plan.size()) + " cells\n";

        std::size_t at = 0;
        for (u64 index : active) {
            Work &work = all.at(index);
            work.evaluated = true;
            for (std::size_t wi = prev; wi < cumw; ++wi) {
                const runner::RunResult &hybrid = outcome.results[at++];
                const runner::RunResult &purecap = outcome.results[at++];
                if (!hybrid.ok() || !purecap.ok() ||
                    hybrid.seconds() <= 0) {
                    work.cand.valid = false;
                    continue;
                }
                work.sumRatio += purecap.seconds() / hybrid.seconds();
                work.cand.workloads_scored++;
                work.cand.purecapCounts += purecap.sim->counts;
            }
            work.cand.rung = rung;
            if (work.cand.valid && work.cand.workloads_scored > 0) {
                work.cand.overhead =
                    work.sumRatio / work.cand.workloads_scored;
                work.cand.bottleneck =
                    bottleneckLabel(work.cand.purecapCounts);
            } else {
                work.cand.valid = false;
                work.cand.bottleneck = "NA";
            }

            trace += "probe " + gridIndexText(index);
            for (std::size_t i = 0; i < out->knobs.size(); ++i)
                trace += std::string(" ") + out->knobs[i]->name + "=" +
                         renderKnobValue(*out->knobs[i],
                                         work.cand.values[i]);
            trace += " workloads=" +
                     std::to_string(work.cand.workloads_scored) +
                     " overhead=" +
                     (work.cand.valid ? fmt::metric(work.cand.overhead)
                                      : std::string("NA")) +
                     " area=" + fmt::metric(work.cand.area) +
                     " bottleneck=" + work.cand.bottleneck + "\n";
        }

        spent += active.size();
        out->stats.probes += active.size();
        out->stats.cells += outcome.stats.cells;
        out->stats.cacheHits += outcome.stats.cacheHits;
        out->stats.simulated += outcome.stats.simulated;
        out->stats.generations++;

        if (cumw >= pool.size())
            break; // everyone still active saw the full pool

        // Halve: valid first, lowest overhead first, grid index as
        // the deterministic tie-break.
        std::sort(active.begin(), active.end(), [&all](u64 a, u64 b) {
            const TuneCandidate &ca = all.at(a).cand;
            const TuneCandidate &cb = all.at(b).cand;
            if (ca.valid != cb.valid)
                return ca.valid;
            if (ca.overhead != cb.overhead)
                return ca.overhead < cb.overhead;
            return ca.grid_index < cb.grid_index;
        });
        active.resize((active.size() + 1) / 2);
        ++rung;
    }

    for (auto &[index, work] : all)
        if (work.evaluated)
            out->probed.push_back(work.cand);

    out->frontier = paretoFrontier(out->probed);

    u64 invalid = 0;
    for (const TuneCandidate &cand : out->probed)
        if (!cand.valid)
            ++invalid;
    trace += "# done: " + std::to_string(out->stats.probes) +
             " probes, " + std::to_string(out->stats.generations) +
             " generations\n";
    trace += "# frontier " + std::to_string(out->frontier.size()) +
             " of " + std::to_string(out->probed.size()) + " probed (" +
             std::to_string(invalid) + " invalid)\n";

    out->stats.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    return true;
}

} // namespace cheri::tune
