/**
 * @file
 * Pareto-frontier filtering and rendering for autotune outcomes: the
 * frontier CSV the CLI emits (golden-checked in CI) and the markdown
 * table make_report embeds. All doubles go through cheri::fmt so the
 * bytes are stable across builds.
 */

#ifndef CHERI_TUNE_FRONTIER_HPP
#define CHERI_TUNE_FRONTIER_HPP

#include <string>
#include <vector>

#include "tune/tuner.hpp"

namespace cheri::tune {

/**
 * The Pareto-minimal subset of @p probed over (overhead, area):
 * valid candidates no other valid candidate beats on both axes.
 * Sorted area ascending, overhead then grid index as tie-breaks.
 */
std::vector<TuneCandidate>
paretoFrontier(const std::vector<TuneCandidate> &probed);

/**
 * Frontier CSV: "rank,<knob...>,workloads,overhead,area,bottleneck",
 * one row per frontier point, knob values in canonical text.
 */
std::string frontierCsv(const TuneOutcome &outcome);

/**
 * Markdown frontier table for make_report: each point described by
 * its non-default knob settings ("(baseline)" when none differ).
 */
std::string frontierMarkdown(const TuneOutcome &outcome);

} // namespace cheri::tune

#endif // CHERI_TUNE_FRONTIER_HPP
