#include "tune/frontier.hpp"

#include <algorithm>

#include "support/fmt.hpp"

namespace cheri::tune {

std::vector<TuneCandidate>
paretoFrontier(const std::vector<TuneCandidate> &probed)
{
    std::vector<TuneCandidate> frontier;
    for (const TuneCandidate &point : probed) {
        if (!point.valid)
            continue;
        bool dominated = false;
        for (const TuneCandidate &other : probed) {
            if (!other.valid || other.grid_index == point.grid_index)
                continue;
            bool noWorse = other.overhead <= point.overhead &&
                           other.area <= point.area;
            bool better = other.overhead < point.overhead ||
                          other.area < point.area;
            // Equal-on-both-axes duplicates keep the lower grid
            // index, so the frontier is unique and deterministic.
            if (noWorse &&
                (better || other.grid_index < point.grid_index)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            frontier.push_back(point);
    }
    std::sort(frontier.begin(), frontier.end(),
              [](const TuneCandidate &a, const TuneCandidate &b) {
                  if (a.area != b.area)
                      return a.area < b.area;
                  if (a.overhead != b.overhead)
                      return a.overhead < b.overhead;
                  return a.grid_index < b.grid_index;
              });
    return frontier;
}

std::string
frontierCsv(const TuneOutcome &outcome)
{
    std::string csv = "rank";
    for (const Knob *knob : outcome.knobs)
        csv += std::string(",") + knob->name;
    csv += ",workloads,overhead,area,bottleneck\n";
    std::size_t rank = 0;
    for (const TuneCandidate &point : outcome.frontier) {
        csv += std::to_string(++rank);
        for (std::size_t i = 0; i < outcome.knobs.size(); ++i)
            csv += "," +
                   renderKnobValue(*outcome.knobs[i], point.values[i]);
        csv += "," + std::to_string(point.workloads_scored) + "," +
               fmt::metric(point.overhead) + "," +
               fmt::metric(point.area) + "," + point.bottleneck + "\n";
    }
    return csv;
}

std::string
frontierMarkdown(const TuneOutcome &outcome)
{
    std::string md =
        "| # | configuration | overhead | area | workloads | "
        "bottleneck |\n"
        "|---|---|---|---|---|---|\n";
    std::size_t rank = 0;
    for (const TuneCandidate &point : outcome.frontier) {
        std::string deltas;
        for (std::size_t i = 0; i < outcome.knobs.size(); ++i) {
            const Knob &knob = *outcome.knobs[i];
            if (point.values[i] == knob.baseline)
                continue;
            if (!deltas.empty())
                deltas += " ";
            deltas += std::string(knob.name) + "=" +
                      renderKnobValue(knob, point.values[i]);
        }
        if (deltas.empty())
            deltas = "(baseline)";
        md += "| " + std::to_string(++rank) + " | " + deltas + " | " +
              fmt::ratio(point.overhead) + " | " +
              fmt::ratio(point.area) + " | " +
              std::to_string(point.workloads_scored) + " | " +
              point.bottleneck + " |\n";
    }
    if (outcome.frontier.empty())
        md += "| - | (no valid candidates) | - | - | - | - |\n";
    return md;
}

} // namespace cheri::tune
