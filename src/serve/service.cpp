#include "serve/service.hpp"

#include <algorithm>
#include <cstdio>

#include "serve/render.hpp"
#include "support/logging.hpp"
#include "trace/jsonl.hpp"

namespace cheri::serve {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

} // namespace

/**
 * Streams a solo traced cell's epochs into its task buffer as they
 * close, on the worker thread, so subscribers read them while the
 * cell still simulates. The buffer is the single authoritative
 * stream: late subscribers replay it, so every subscriber sees the
 * same bytes. (A terminal fault is attributed to the final epoch
 * after the series closes — the live line for that epoch will not
 * carry the capFault bump; documented in DESIGN.md §8.)
 */
class ExperimentService::LiveEpochSink : public trace::EpochSink
{
  public:
    LiveEpochSink(ExperimentService &service,
                  std::shared_ptr<CellTask> task)
        : service_(service), task_(std::move(task))
    {
    }

    void
    onEpoch(const trace::EpochRecord &epoch) override
    {
        std::string line = trace::epochToJsonl(
            epoch, task_->request.workload,
            abi::abiName(task_->request.abi), task_->request.seed);
        std::lock_guard<std::mutex> lk(service_.mu_);
        task_->streamLines.push_back(std::move(line));
        service_.doneCv_.notify_all();
    }

  private:
    ExperimentService &service_;
    std::shared_ptr<CellTask> task_;
};

std::string
ServiceStats::summary() const
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "jobs=%llu cells=%llu unique=%llu simulated=%llu "
        "inflight_dedup=%llu memo_hits=%llu cache_hits=%llu "
        "rejected=%llu",
        static_cast<unsigned long long>(jobsSubmitted),
        static_cast<unsigned long long>(cellsSubmitted),
        static_cast<unsigned long long>(uniqueCells),
        static_cast<unsigned long long>(simulated),
        static_cast<unsigned long long>(inflightDedup),
        static_cast<unsigned long long>(memoHits),
        static_cast<unsigned long long>(cacheHits),
        static_cast<unsigned long long>(rejectedFull +
                                        rejectedDraining));
    return buf;
}

ExperimentService::ExperimentService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_dir),
      queue_(config_.shards
                 ? config_.shards
                 : (config_.workers ? config_.workers
                                    : runner::hardwareJobs()),
             config_.queue_depth)
{
    if (config_.workers == 0)
        config_.workers = runner::hardwareJobs();
    if (config_.shards == 0)
        config_.shards = config_.workers;
    if (config_.autostart)
        start();
}

ExperimentService::~ExperimentService()
{
    drainAndStop();
}

void
ExperimentService::start()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (started_ || stopped_)
        return;
    started_ = true;
    workers_.reserve(config_.workers);
    for (u32 i = 0; i < config_.workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

SubmitStatus
ExperimentService::submit(const JobSpec &spec, std::string *job_id,
                          std::string *error)
{
    std::string err;
    auto cells = expandJobSpec(spec, &err);
    if (cells.empty()) {
        if (error)
            *error = err.empty() ? "job expands to no cells" : err;
        return SubmitStatus::BadRequest;
    }
    for (auto &cell : cells)
        cell = cell.normalized();
    std::vector<u64> fps;
    fps.reserve(cells.size());
    for (const auto &cell : cells)
        fps.push_back(runner::cellFingerprint(cell));
    const std::string id = jobId(cells);

    std::unique_lock<std::mutex> lk(mu_);
    if (draining_) {
        ++stats_.rejectedDraining;
        if (error)
            *error = "service is draining";
        return SubmitStatus::Draining;
    }

    if (auto it = jobs_.find(id); it != jobs_.end()) {
        // Whole-job dedup: same cells already registered. A higher
        // priority raises any still-queued cells; the subscriber set
        // just grows.
        ++stats_.jobsSubmitted;
        stats_.cellsSubmitted += it->second.cells.size();
        for (const auto &task : it->second.cells) {
            if (task->state == CellTask::State::Done)
                ++stats_.memoHits;
            else
                ++stats_.inflightDedup;
            if (task->state == CellTask::State::Queued)
                queue_.reprioritize(task->fingerprint, spec.priority);
        }
        workCv_.notify_all();
        if (job_id)
            *job_id = id;
        return SubmitStatus::Accepted;
    }

    // Phase 1 — classify without mutating, so admission is
    // all-or-nothing. Disk probes are read-only and happen here once;
    // their results carry into phase 2.
    std::unordered_map<u64, sim::SimResult> diskHits;
    std::size_t fresh = 0;
    std::size_t seenNew = 0;
    {
        std::unordered_map<u64, bool> seen;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const u64 fp = fps[i];
            if (memo_.count(fp) || seen.count(fp))
                continue;
            seen.emplace(fp, true);
            ++seenNew;
            const auto &req = cells[i];
            const bool eligible = config_.cache &&
                                  !req.trace.enabled &&
                                  !req.approx.enabled && !req.corun();
            if (eligible) {
                if (auto replay = cache_.load(req, fp)) {
                    diskHits.emplace(fp, std::move(*replay));
                    continue;
                }
            }
            ++fresh;
        }
    }
    if (fresh > queue_.freeSlots()) {
        ++stats_.rejectedFull;
        if (error)
            *error = "queue full";
        return SubmitStatus::QueueFull;
    }

    // Phase 2 — register the job. Guaranteed to succeed: every fresh
    // cell has a reserved slot.
    Job job;
    job.approxColumns = spec.approxColumns();
    job.allocColumns = spec.allocColumns();
    job.cells.reserve(cells.size());
    ++stats_.jobsSubmitted;
    stats_.cellsSubmitted += cells.size();
    stats_.uniqueCells += seenNew;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const u64 fp = fps[i];
        if (auto it = memo_.find(fp); it != memo_.end()) {
            auto &task = it->second;
            if (task->state == CellTask::State::Done)
                ++stats_.memoHits;
            else
                ++stats_.inflightDedup;
            if (task->state == CellTask::State::Queued)
                queue_.reprioritize(fp, spec.priority);
            job.cells.push_back(task);
            continue;
        }
        auto task = std::make_shared<CellTask>();
        task->request = cells[i];
        task->fingerprint = fp;
        if (auto hit = diskHits.find(fp); hit != diskHits.end()) {
            ++stats_.cacheHits;
            task->state = CellTask::State::Done;
            task->result.request = task->request;
            task->result.sim = std::move(hit->second);
            task->result.cacheHit = true;
            task->result.metrics = analysis::DerivedMetrics::compute(
                task->result.sim->counts);
            task->result.topdownTruth =
                analysis::TopDown::fromModelTruth(
                    task->result.sim->counts);
            task->result.topdownPaper =
                analysis::TopDown::fromPaperFormulas(
                    task->result.sim->counts);
        } else {
            task->state = CellTask::State::Queued;
            task->enqueued = Clock::now();
            const bool pushed =
                queue_.push(fp, spec.priority, submitSeq_++);
            CHERI_ASSERT(pushed, "admission reserved a slot");
        }
        memo_.emplace(fp, task);
        job.cells.push_back(std::move(task));
    }
    jobs_.emplace(id, std::move(job));
    workCv_.notify_all();
    doneCv_.notify_all();
    if (job_id)
        *job_id = id;
    return SubmitStatus::Accepted;
}

void
ExperimentService::workerLoop(u32 index)
{
    std::unique_lock<std::mutex> lk(mu_);
    const std::size_t home = index % queue_.shards();
    for (;;) {
        auto fp = queue_.pop(home);
        if (!fp) {
            if (draining_)
                return;
            workCv_.wait(lk);
            continue;
        }
        auto task = memo_.at(*fp);
        task->state = CellTask::State::Running;
        latencySamples_.push_back(secondsSince(task->enqueued));
        runner::RunRequest request = task->request;
        lk.unlock();

        LiveEpochSink sink(*this, task);
        if (request.trace.enabled && !request.corun())
            request.trace.sink = &sink;
        runner::RunResult result = runner::run(request);
        // The sink is this stack frame; the stored result must not
        // carry a pointer into it.
        result.request.trace.sink = nullptr;

        const bool eligible = config_.cache &&
                              !task->request.trace.enabled &&
                              !task->request.approx.enabled &&
                              !task->request.corun() && result.ok();
        if (eligible)
            cache_.store(result.request, *fp, *result.sim);

        lk.lock();
        task->result = std::move(result);
        if (task->request.trace.enabled && task->request.corun()) {
            // Co-run traces have no live stream (lanes interleave in
            // cycle order inside the machine); publish the per-lane,
            // core-tagged streams at completion, lane order.
            for (std::size_t i = 0; i < task->result.lanes.size();
                 ++i) {
                const auto &lane = task->result.lanes[i];
                for (const auto &epoch : lane.epochs.epochs)
                    task->streamLines.push_back(trace::epochToJsonl(
                        epoch, lane.lane.workload,
                        abi::abiName(lane.lane.abi),
                        task->request.seed, static_cast<u32>(i)));
            }
        }
        task->state = CellTask::State::Done;
        ++stats_.simulated;
        doneCv_.notify_all();
    }
}

std::optional<std::string>
ExperimentService::waitResult(const std::string &job_id)
{
    std::unique_lock<std::mutex> lk(mu_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end())
        return std::nullopt;
    const Job &job = it->second;
    doneCv_.wait(lk, [&] {
        return std::all_of(job.cells.begin(), job.cells.end(),
                           [](const auto &t) {
                               return t->state == CellTask::State::Done;
                           });
    });
    std::vector<runner::RunResult> results;
    results.reserve(job.cells.size());
    for (const auto &task : job.cells)
        results.push_back(task->result);
    const bool approx = job.approxColumns;
    const bool alloc_column = job.allocColumns;
    lk.unlock();
    return sweepCsv(results, approx, alloc_column);
}

ExperimentService::JobStatus
ExperimentService::status(const std::string &job_id)
{
    JobStatus out;
    std::lock_guard<std::mutex> lk(mu_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end())
        return out;
    out.known = true;
    out.cells = it->second.cells.size();
    for (const auto &task : it->second.cells)
        if (task->state == CellTask::State::Done)
            ++out.done;
    return out;
}

bool
ExperimentService::streamJob(
    const std::string &job_id,
    const std::function<bool(const std::string &)> &emit)
{
    std::vector<std::shared_ptr<CellTask>> cells;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = jobs_.find(job_id);
        if (it == jobs_.end())
            return false;
        cells = it->second.cells;
    }

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &task = cells[i];
        std::size_t next = 0;
        for (;;) {
            std::vector<std::string> batch;
            bool done = false;
            {
                std::unique_lock<std::mutex> lk(mu_);
                doneCv_.wait(lk, [&] {
                    return task->streamLines.size() > next ||
                           task->state == CellTask::State::Done;
                });
                while (next < task->streamLines.size())
                    batch.push_back(task->streamLines[next++]);
                done = task->state == CellTask::State::Done;
            }
            for (const auto &line : batch)
                if (!emit(line))
                    return false;
            if (done && batch.empty())
                break;
        }

        // The deterministic cell trailer: no provenance (cache/dedup
        // state depends on arrival order), only model truth.
        trace::JsonlWriter w;
        w.field("cell", static_cast<u64>(i));
        w.field("workload", task->request.workload);
        w.field("abi", abi::abiName(task->request.abi));
        if (task->result.ok()) {
            w.field("state", "done");
            w.field("instructions", task->result.sim->instructions);
            w.field("cycles", task->result.sim->cycles);
        } else {
            w.field("state", "na");
        }
        if (!emit(w.finish()))
            return false;
    }

    trace::JsonlWriter w;
    w.field("job", job_id);
    w.field("state", "done");
    w.field("cells", static_cast<u64>(cells.size()));
    return emit(w.finish());
}

void
ExperimentService::beginDrain()
{
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
    workCv_.notify_all();
    doneCv_.notify_all();
}

void
ExperimentService::drainAndStop()
{
    beginDrain();
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopped_)
            return;
        stopped_ = true;
    }
    for (auto &worker : workers_)
        worker.join();
    workers_.clear();
}

ServiceStats
ExperimentService::stats()
{
    std::lock_guard<std::mutex> lk(mu_);
    ServiceStats out = stats_;
    std::vector<double> sorted = latencySamples_;
    std::sort(sorted.begin(), sorted.end());
    out.queueLatencyP50 = percentile(sorted, 0.50);
    out.queueLatencyP99 = percentile(std::move(sorted), 0.99);
    return out;
}

} // namespace cheri::serve
