/**
 * @file
 * The daemon entry point: sockets + signals around ExperimentService.
 *
 * Shutdown contract (the CI hammer gates on it): SIGTERM/SIGINT stops
 * the listener immediately — late connections get ECONNREFUSED —
 * while every connection accepted before the signal is served to
 * completion and every queued cell drains. The daemon then prints one
 * final `[serve] ... drained clean` stats line on stderr and exits 0.
 */

#ifndef CHERI_SERVE_SERVER_HPP
#define CHERI_SERVE_SERVER_HPP

#include <string>

#include "support/types.hpp"

namespace cheri::serve {

struct ServeOptions
{
    u16 port = 0; //!< 0 = kernel-assigned ephemeral port.

    /** When set, the bound port is written here (atomically) once
     *  listening — how scripts using --port 0 find the daemon. */
    std::string port_file;

    u32 workers = 0; //!< 0 = hardware threads.
    std::size_t queue_depth = 4096;
    bool cache = true;
    std::string cache_dir;
};

/** Run until SIGTERM/SIGINT; returns the process exit code. */
int runServer(const ServeOptions &options);

} // namespace cheri::serve

#endif // CHERI_SERVE_SERVER_HPP
