/**
 * @file
 * The one sweep-CSV renderer.
 *
 * `cheriperf sweep --csv` and the experiment daemon both answer with
 * this exact byte stream — the CLI writes it to stdout, the daemon
 * into an HTTP body — so "served response == offline run" holds by
 * construction, not by parallel maintenance of two printf blocks.
 * The layout is the golden contract checked by
 * tests/golden/bench_smoke.csv; any change here is a schema change.
 */

#ifndef CHERI_SERVE_RENDER_HPP
#define CHERI_SERVE_RENDER_HPP

#include <string>
#include <vector>

#include "runner/run_result.hpp"

namespace cheri::serve {

/**
 * Render @p results (plan order) as the sweep CSV: one header line,
 * one flat row per cell, NA rows for unsupported ABI cells. With
 * @p approx_columns the sampling-provenance and per-metric error-bar
 * column block is appended (the --approx schema). With
 * @p alloc_column an allocator column follows abi (the allocator-axis
 * schema; off by default so pre-axis sweeps keep their exact bytes).
 */
std::string sweepCsv(const std::vector<runner::RunResult> &results,
                     bool approx_columns, bool alloc_column = false);

} // namespace cheri::serve

#endif // CHERI_SERVE_RENDER_HPP
