#include "serve/render.hpp"

#include "alloc/policy.hpp"
#include "analysis/metrics.hpp"
#include "support/fmt.hpp"

namespace cheri::serve {

std::string
sweepCsv(const std::vector<runner::RunResult> &results,
         bool approx_columns, bool alloc_column)
{
    std::string out;
    out += "workload,abi";
    if (alloc_column)
        out += ",allocator";
    out += ",instructions,cycles,seconds";
    for (const auto &field : analysis::allMetricFields()) {
        out += ',';
        out += field.name;
    }
    if (approx_columns) {
        out += ",approx_rate,approx_epochs_sampled,"
               "approx_epochs_total,approx_scale";
        for (const auto &field : analysis::allMetricFields()) {
            out += ',';
            out += field.name;
            out += "_err";
        }
    }
    out += '\n';

    for (const auto &run : results) {
        const std::size_t metric_cols =
            analysis::allMetricFields().size() +
            (approx_columns ? 4 + analysis::allMetricFields().size()
                            : 0);
        out += run.request.workload;
        out += ',';
        out += abi::abiName(run.request.abi);
        if (alloc_column) {
            out += ',';
            out += alloc::allocatorName(run.request.allocator);
        }
        if (!run.ok()) {
            out += ",NA,NA,NA";
            for (std::size_t i = 0; i < metric_cols; ++i)
                out += ",NA";
            out += '\n';
            continue;
        }
        out += ',';
        out += std::to_string(run.sim->instructions);
        out += ',';
        out += std::to_string(run.sim->cycles);
        out += ',';
        out += fmt::seconds(run.sim->seconds);
        for (const auto &field : analysis::allMetricFields()) {
            out += ',';
            out += fmt::metric(run.metrics.*(field.member));
        }
        if (approx_columns) {
            if (run.approx) {
                const auto &a = *run.approx;
                out += ',';
                out += std::to_string(a.report.rate);
                out += ',';
                out += std::to_string(a.report.epochsSampled);
                out += ',';
                out += std::to_string(a.report.epochsTotal);
                out += ',';
                out += fmt::metric(a.report.scale);
                for (const auto &field : analysis::allMetricFields()) {
                    out += ',';
                    out += fmt::metric(a.stderr_.*(field.member));
                }
            } else {
                for (std::size_t i = 0;
                     i < 4 + analysis::allMetricFields().size(); ++i)
                    out += ",NA";
            }
        }
        out += '\n';
    }
    return out;
}

} // namespace cheri::serve
