/**
 * @file
 * ExperimentService — the daemon's in-process core: a deduplicating
 * job registry over a sharded priority queue and a worker pool.
 *
 * Dedup happens at three layers, all keyed by the cell's cache
 * fingerprint (runner::cellFingerprint):
 *   1. on-disk: a `.cpr` cache hit at submit time replays instantly;
 *   2. in-flight: a fingerprint already Queued/Running attaches the
 *      new job as a second subscriber of the same CellTask;
 *   3. memo: a fingerprint already Done this daemon lifetime reuses
 *      the completed task.
 * Either way, every unique fingerprint simulates at most once per
 * daemon lifetime, and every subscriber reads the same RunResult —
 * the determinism contract (same request → same bytes) holds no
 * matter how many clients race.
 *
 * The service is deliberately separable from the HTTP layer: tests
 * drive submit/waitResult/streamJob directly, and the in-process
 * bench (tools/bench_serve.cpp) measures it without socket noise.
 */

#ifndef CHERI_SERVE_SERVICE_HPP
#define CHERI_SERVE_SERVICE_HPP

#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runner/runner.hpp"
#include "serve/job_queue.hpp"
#include "serve/protocol.hpp"

namespace cheri::serve {

struct ServiceConfig
{
    u32 workers = 0; //!< 0 = runner::hardwareJobs().
    u32 shards = 0;  //!< 0 = worker count.
    std::size_t queue_depth = 4096; //!< Admission bound (cells).
    bool cache = true;              //!< Consult/populate the .cpr cache.
    std::string cache_dir;          //!< Empty = ResultCache::defaultDir().

    /**
     * Spawn workers in the constructor. Tests turn this off to stage
     * guaranteed-overlapping submissions before any cell can finish,
     * then call start().
     */
    bool autostart = true;
};

enum class SubmitStatus
{
    Accepted,   //!< Job registered (possibly entirely deduplicated).
    QueueFull,  //!< Backpressure: not enough queue slots; retry later.
    Draining,   //!< Daemon is shutting down; no new work.
    BadRequest, //!< Malformed/unknown spec; never retriable.
};

/** Monotonic counters + queue-latency percentiles (stats()). */
struct ServiceStats
{
    u64 jobsSubmitted = 0;
    u64 cellsSubmitted = 0;   //!< Cells across all accepted jobs.
    u64 uniqueCells = 0;      //!< New fingerprints first seen.
    u64 simulated = 0;        //!< Worker-executed simulations.
    u64 inflightDedup = 0;    //!< Joined a Queued/Running cell.
    u64 memoHits = 0;         //!< Joined an already-Done cell.
    u64 cacheHits = 0;        //!< Replayed from disk at submit.
    u64 rejectedFull = 0;     //!< Submissions bounced by backpressure.
    u64 rejectedDraining = 0; //!< Submissions bounced by shutdown.
    double queueLatencyP50 = 0; //!< Seconds enqueue→pop.
    double queueLatencyP99 = 0;

    /** The daemon's shutdown summary line (asserted by CI). */
    std::string summary() const;
};

class ExperimentService
{
  public:
    explicit ExperimentService(ServiceConfig config = {});
    ~ExperimentService();

    ExperimentService(const ExperimentService &) = delete;
    ExperimentService &operator=(const ExperimentService &) = delete;

    /** Spawn the worker pool (idempotent; no-op after drain). */
    void start();

    /**
     * Register @p spec. On Accepted, @p job_id names the (possibly
     * pre-existing) job; on BadRequest, @p error says why. Admission
     * is all-or-nothing: a job whose fresh cells exceed the free
     * queue slots is rejected whole (QueueFull) with no partial
     * state.
     */
    SubmitStatus submit(const JobSpec &spec, std::string *job_id,
                        std::string *error);

    /**
     * Block until every cell of @p job_id is done, then render the
     * job's sweep CSV. nullopt for unknown ids.
     */
    std::optional<std::string> waitResult(const std::string &job_id);

    struct JobStatus
    {
        bool known = false;
        std::size_t cells = 0;
        std::size_t done = 0;
        bool finished() const { return known && done == cells; }
    };
    JobStatus status(const std::string &job_id);

    /**
     * Stream @p job_id as NDJSON: per cell in plan order, any live
     * epoch lines (traced cells — pushed while the cell simulates,
     * replayed from the buffer for late subscribers) followed by one
     * deterministic cell-done line, then one job-done trailer. @p emit
     * returns false to abort (client went away). False for unknown
     * ids or an aborted emit.
     */
    bool streamJob(const std::string &job_id,
                   const std::function<bool(const std::string &)> &emit);

    /** Stop admitting work; queued cells still complete. */
    void beginDrain();

    /** beginDrain() + run the queue dry + join the workers. */
    void drainAndStop();

    ServiceStats stats();

    const ServiceConfig &config() const { return config_; }

  private:
    struct CellTask
    {
        enum class State { Queued, Running, Done };

        runner::RunRequest request; //!< Normalized.
        u64 fingerprint = 0;
        State state = State::Queued;
        runner::RunResult result;
        /** Live epoch JSONL lines (traced cells), in epoch order. */
        std::vector<std::string> streamLines;
        std::chrono::steady_clock::time_point enqueued{};
    };

    struct Job
    {
        std::vector<std::shared_ptr<CellTask>> cells; //!< Plan order.
        bool approxColumns = false;
        bool allocColumns = false;
    };

    class LiveEpochSink;

    void workerLoop(u32 index);
    void noteDone(CellTask &task);

    ServiceConfig config_;
    runner::ResultCache cache_;

    std::mutex mu_;
    std::condition_variable workCv_; //!< Workers: queue non-empty/drain.
    std::condition_variable doneCv_; //!< Waiters: cell progress.
    ShardedQueue queue_;
    std::unordered_map<u64, std::shared_ptr<CellTask>> memo_;
    std::map<std::string, Job> jobs_;
    std::vector<double> latencySamples_;
    ServiceStats stats_;
    u64 submitSeq_ = 0;
    bool draining_ = false;
    bool started_ = false;
    bool stopped_ = false;
    std::vector<std::thread> workers_;
};

} // namespace cheri::serve

#endif // CHERI_SERVE_SERVICE_HPP
