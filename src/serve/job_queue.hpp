/**
 * @file
 * The sharded, deduplicating priority queue under the experiment
 * service.
 *
 * Entries are cell fingerprints, one per unique in-flight cell —
 * deduplication happens before push (the service's memo map), so the
 * queue itself never holds the same cell twice. Cells partition into
 * shards by fingerprint (shard = fp % nshards); each worker drains
 * its home shard in priority order and steals round-robin from the
 * others when home is dry. Because a cell's result is independent of
 * which worker runs it, stealing affects wall-clock only, never
 * bytes.
 *
 * Ordering within a shard: priority descending, then submission
 * sequence ascending (FIFO among equals). A duplicate submission at
 * higher priority re-prioritizes the queued entry in place, keeping
 * its original sequence — a raise, never a requeue.
 *
 * Pure data structure: not thread-safe on its own. The service holds
 * its one mutex around every call, which keeps the invariants (index
 * map ↔ shard sets) trivially atomic and the structure directly
 * unit-testable.
 */

#ifndef CHERI_SERVE_JOB_QUEUE_HPP
#define CHERI_SERVE_JOB_QUEUE_HPP

#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "support/types.hpp"

namespace cheri::serve {

class ShardedQueue
{
  public:
    /** @p shards >= 1; @p capacity bounds total queued entries. */
    ShardedQueue(std::size_t shards, std::size_t capacity);

    std::size_t shards() const { return sets_.size(); }
    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return index_.size(); }
    std::size_t freeSlots() const { return capacity_ - index_.size(); }
    bool contains(u64 fingerprint) const
    {
        return index_.count(fingerprint) != 0;
    }

    std::size_t
    shardOf(u64 fingerprint) const
    {
        return static_cast<std::size_t>(fingerprint % sets_.size());
    }

    /**
     * Enqueue @p fingerprint (must not already be queued). @p seq is
     * the service's global submission counter. False when full.
     */
    bool push(u64 fingerprint, s64 priority, u64 seq);

    /**
     * Raise a queued entry to @p priority (no-op when not queued or
     * already at least as urgent). Returns true when it moved.
     */
    bool reprioritize(u64 fingerprint, s64 priority);

    /**
     * Dequeue the most urgent entry of @p home_shard, stealing
     * round-robin from the other shards when home is empty. nullopt
     * when the whole queue is empty.
     */
    std::optional<u64> pop(std::size_t home_shard);

  private:
    struct Entry
    {
        s64 priority = 0;
        u64 seq = 0;
        u64 fingerprint = 0;

        bool
        operator<(const Entry &other) const
        {
            if (priority != other.priority)
                return priority > other.priority; // higher first
            if (seq != other.seq)
                return seq < other.seq; // FIFO among equals
            return fingerprint < other.fingerprint;
        }
    };

    std::vector<std::set<Entry>> sets_;
    std::unordered_map<u64, Entry> index_; //!< fingerprint -> entry.
    std::size_t capacity_;
};

} // namespace cheri::serve

#endif // CHERI_SERVE_JOB_QUEUE_HPP
