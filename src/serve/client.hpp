/**
 * @file
 * `cheriperf submit` — the bundled client for the experiment daemon.
 *
 * Default mode is fully synchronous: POST the job, block, write the
 * CSV response verbatim to stdout — so `cheriperf submit ... >
 * out.csv` is byte-for-byte interchangeable with `cheriperf sweep
 * ... --csv > out.csv` (the determinism contract CI diffs). --stream
 * instead submits asynchronously and relays the job's NDJSON
 * telemetry stream (live epochs + cell trailers) to stdout.
 *
 * Exit codes: 0 ok, 1 transport/protocol error, 2 bad request,
 * 3 queue full (retry later), 4 daemon draining.
 */

#ifndef CHERI_SERVE_CLIENT_HPP
#define CHERI_SERVE_CLIENT_HPP

#include <string>

#include "serve/protocol.hpp"

namespace cheri::serve {

struct SubmitOptions
{
    u16 port = 0;          //!< Direct port, or 0 to use port_file.
    std::string port_file; //!< Polled (~10 s) until it appears.
    bool stream = false;
    JobSpec spec;
};

int runSubmitClient(const SubmitOptions &options);

} // namespace cheri::serve

#endif // CHERI_SERVE_CLIENT_HPP
