#include "serve/protocol.hpp"

#include <cctype>
#include <cstdlib>

#include "alloc/policy.hpp"
#include "runner/cache.hpp"
#include "support/hash.hpp"
#include "tune/knobs.hpp"
#include "workloads/registry.hpp"

namespace cheri::serve {

namespace {

/** A parsed flat-JSON value: exactly one of the members is live. */
struct FlatValue
{
    enum class Kind { String, Number, Bool } kind = Kind::String;
    std::string str;
    s64 num = 0;
    bool negative = false;
    bool boolean = false;
};

void
skipWs(const std::string &s, std::size_t &i)
{
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
}

bool
parseString(const std::string &s, std::size_t &i, std::string *out,
            std::string *error)
{
    if (i >= s.size() || s[i] != '"') {
        *error = "expected '\"'";
        return false;
    }
    ++i;
    out->clear();
    while (i < s.size() && s[i] != '"') {
        char c = s[i];
        if (c == '\\') {
            if (i + 1 >= s.size()) {
                *error = "dangling escape in string";
                return false;
            }
            c = s[++i];
            if (c != '"' && c != '\\') {
                *error = "unsupported escape in string";
                return false;
            }
        }
        out->push_back(c);
        ++i;
    }
    if (i >= s.size()) {
        *error = "unterminated string";
        return false;
    }
    ++i; // closing quote
    return true;
}

bool
parseValue(const std::string &s, std::size_t &i, FlatValue *out,
           std::string *error)
{
    if (i >= s.size()) {
        *error = "truncated value";
        return false;
    }
    const char c = s[i];
    if (c == '"') {
        out->kind = FlatValue::Kind::String;
        return parseString(s, i, &out->str, error);
    }
    if (c == 't' || c == 'f') {
        const std::string word = c == 't' ? "true" : "false";
        if (s.compare(i, word.size(), word) != 0) {
            *error = "malformed literal";
            return false;
        }
        i += word.size();
        out->kind = FlatValue::Kind::Bool;
        out->boolean = c == 't';
        return true;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
        out->kind = FlatValue::Kind::Number;
        out->negative = c == '-';
        const std::size_t start = i;
        if (c == '-')
            ++i;
        while (i < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[i])))
            ++i;
        if (i == start + (out->negative ? 1u : 0u)) {
            *error = "malformed number";
            return false;
        }
        if (i < s.size() && (s[i] == '.' || s[i] == 'e' || s[i] == 'E')) {
            *error = "only integer numbers are accepted";
            return false;
        }
        out->num = std::strtoll(s.substr(start, i - start).c_str(),
                                nullptr, 10);
        return true;
    }
    *error = "nested or unsupported JSON value (flat objects only)";
    return false;
}

bool
assignU64(const FlatValue &v, const char *key, u64 *out,
          std::string *error)
{
    if (v.kind != FlatValue::Kind::Number || v.negative) {
        *error = std::string(key) + " expects a non-negative integer";
        return false;
    }
    *out = static_cast<u64>(v.num);
    return true;
}

bool
assignString(const FlatValue &v, const char *key, std::string *out,
             std::string *error)
{
    if (v.kind != FlatValue::Kind::String) {
        *error = std::string(key) + " expects a string";
        return false;
    }
    *out = v.str;
    return true;
}

void
appendEscaped(std::string &out, const std::string &value)
{
    out.push_back('"');
    for (char c : value) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    out.push_back('"');
}

} // namespace

bool
parseJobSpec(const std::string &line, JobSpec *out, std::string *error)
{
    JobSpec spec;
    std::size_t i = 0;
    std::string err;

    skipWs(line, i);
    if (i >= line.size() || line[i] != '{') {
        *error = "submission must be one flat JSON object";
        return false;
    }
    ++i;
    skipWs(line, i);
    bool first = true;
    while (i < line.size() && line[i] != '}') {
        if (!first) {
            if (line[i] != ',') {
                *error = "expected ',' between fields";
                return false;
            }
            ++i;
            skipWs(line, i);
        }
        first = false;

        std::string key;
        if (!parseString(line, i, &key, &err)) {
            *error = err;
            return false;
        }
        skipWs(line, i);
        if (i >= line.size() || line[i] != ':') {
            *error = "expected ':' after key '" + key + "'";
            return false;
        }
        ++i;
        skipWs(line, i);
        FlatValue value;
        if (!parseValue(line, i, &value, &err)) {
            *error = err + " (key '" + key + "')";
            return false;
        }
        skipWs(line, i);

        bool ok = true;
        if (key == "workload")
            ok = assignString(value, "workload", &spec.workload, error);
        else if (key == "set")
            ok = assignString(value, "set", &spec.set, error);
        else if (key == "abi")
            ok = assignString(value, "abi", &spec.abi, error);
        else if (key == "scale")
            ok = assignString(value, "scale", &spec.scale, error);
        else if (key == "seed")
            ok = assignU64(value, "seed", &spec.seed, error);
        else if (key == "priority") {
            if (value.kind != FlatValue::Kind::Number) {
                *error = "priority expects an integer";
                return false;
            }
            spec.priority = value.num;
        } else if (key == "cores")
            ok = assignU64(value, "cores", &spec.cores, error);
        else if (key == "trace_epochs")
            ok = assignU64(value, "trace_epochs", &spec.trace_epochs,
                           error);
        else if (key == "approx_rate")
            ok = assignU64(value, "approx_rate", &spec.approx_rate,
                           error);
        else if (key == "approx_epoch_insts")
            ok = assignU64(value, "approx_epoch_insts",
                           &spec.approx_epoch_insts, error);
        else if (key == "allocators")
            ok = assignString(value, "allocators", &spec.allocators,
                              error);
        else if (key == "knobs")
            ok = assignString(value, "knobs", &spec.knobs, error);
        else {
            *error = "unknown field '" + key + "'";
            return false;
        }
        if (!ok)
            return false;
    }
    if (i >= line.size()) {
        *error = "unterminated object";
        return false;
    }
    ++i; // '}'
    skipWs(line, i);
    if (i != line.size()) {
        *error = "trailing bytes after object";
        return false;
    }
    *out = std::move(spec);
    return true;
}

std::string
jobSpecJsonl(const JobSpec &spec)
{
    std::string out = "{";
    const auto field = [&](const char *key, const std::string &value,
                           bool quoted) {
        if (out.size() > 1)
            out += ',';
        out += '"';
        out += key;
        out += "\":";
        if (quoted)
            appendEscaped(out, value);
        else
            out += value;
    };
    if (!spec.workload.empty())
        field("workload", spec.workload, true);
    else
        field("set", spec.set.empty() ? "all" : spec.set, true);
    if (spec.abi != "all")
        field("abi", spec.abi, true);
    if (spec.scale != "small")
        field("scale", spec.scale, true);
    if (spec.seed != 42)
        field("seed", std::to_string(spec.seed), false);
    if (spec.priority != 0)
        field("priority", std::to_string(spec.priority), false);
    if (spec.cores != 1)
        field("cores", std::to_string(spec.cores), false);
    if (spec.trace_epochs != 0)
        field("trace_epochs", std::to_string(spec.trace_epochs), false);
    if (spec.approx_rate != 0) {
        field("approx_rate", std::to_string(spec.approx_rate), false);
        if (spec.approx_epoch_insts != 100'000)
            field("approx_epoch_insts",
                  std::to_string(spec.approx_epoch_insts), false);
    }
    if (!spec.allocators.empty())
        field("allocators", spec.allocators, true);
    if (!spec.knobs.empty())
        field("knobs", spec.knobs, true);
    out += '}';
    return out;
}

std::vector<runner::RunRequest>
expandJobSpec(const JobSpec &spec, std::string *error)
{
    if (spec.cores == 0) {
        *error = "cores must be >= 1";
        return {};
    }
    if (spec.approx_rate > 0 && spec.trace_epochs > 0) {
        *error = "approx and epoch tracing are mutually exclusive";
        return {};
    }
    if (spec.approx_rate > 0 && spec.cores >= 2) {
        *error = "approx does not support co-run cells";
        return {};
    }

    workloads::Scale scale;
    if (spec.scale == "tiny")
        scale = workloads::Scale::Tiny;
    else if (spec.scale == "small")
        scale = workloads::Scale::Small;
    else if (spec.scale == "ref")
        scale = workloads::Scale::Ref;
    else {
        *error = "unknown scale '" + spec.scale +
                 "' (expected tiny|small|ref)";
        return {};
    }

    std::vector<abi::Abi> abis;
    if (spec.abi == "all") {
        for (abi::Abi a : abi::kAllAbis)
            abis.push_back(a);
    } else {
        bool found = false;
        for (abi::Abi a : abi::kAllAbis)
            if (spec.abi == abi::abiName(a)) {
                abis.push_back(a);
                found = true;
            }
        if (!found) {
            *error = "unknown abi '" + spec.abi + "'";
            return {};
        }
    }

    // Allocator axis: a comma list of alloc::parseAllocator names;
    // empty means the one default allocator (the pre-axis job shape).
    std::vector<alloc::AllocatorConfig> allocators;
    if (spec.allocators.empty()) {
        allocators.push_back(alloc::AllocatorConfig{});
    } else {
        std::size_t start = 0;
        while (start <= spec.allocators.size()) {
            std::size_t comma = spec.allocators.find(',', start);
            if (comma == std::string::npos)
                comma = spec.allocators.size();
            const std::string name =
                spec.allocators.substr(start, comma - start);
            const auto config = alloc::parseAllocator(name);
            if (!config) {
                *error = "unknown allocator '" + name +
                         "' (did you mean '" +
                         alloc::closestAllocatorName(name) + "'?)";
                return {};
            }
            allocators.push_back(*config);
            start = comma + 1;
        }
    }

    // Machine knobs: validate the whole list once (the daemon must
    // answer 400 with the registry's did-you-mean, never die), then
    // bake a per-ABI config for the cells below. Cells without knobs
    // carry no config at all, preserving their pre-knob fingerprints.
    if (!spec.knobs.empty()) {
        sim::MachineConfig probe;
        if (!tune::applyKnobList(probe, spec.knobs, error))
            return {};
    }

    std::vector<std::string> names;
    if (!spec.workload.empty()) {
        names.push_back(spec.workload);
    } else if (spec.set.empty() || spec.set == "all") {
        for (const auto &w : workloads::allWorkloads())
            names.push_back(w->info().name);
    } else if (spec.set == "table3") {
        names = workloads::table3Names();
    } else if (spec.set == "table4") {
        names = workloads::table4Names();
    } else {
        *error = "unknown set '" + spec.set +
                 "' (expected table3|table4|all)";
        return {};
    }

    // Validate every name before building a single cell: the daemon
    // must answer 400, never die in CHERI_FATAL mid-plan.
    const auto pool = workloads::allWorkloads();
    for (const auto &name : names)
        if (workloads::findWorkload(pool, name) == nullptr) {
            *error = "unknown workload '" + name + "'";
            return {};
        }

    // Name-major, allocator-major, ABI-minor: the CLI plan order
    // (ExperimentPlan::addScenarioSweep), which is what keeps a
    // served response byte-identical to the offline sweep.
    std::vector<runner::RunRequest> cells;
    cells.reserve(names.size() * allocators.size() * abis.size());
    for (const auto &name : names)
        for (const alloc::AllocatorConfig &allocator : allocators)
            for (abi::Abi a : abis) {
                runner::RunRequest request;
                request.workload = name;
                request.abi = a;
                request.scale = scale;
                request.seed = spec.seed;
                request.allocator = allocator;
                if (!spec.knobs.empty()) {
                    sim::MachineConfig config =
                        sim::MachineConfig::forAbi(a);
                    if (!tune::applyKnobList(config, spec.knobs, error))
                        return {};
                    request.config = config;
                }
                if (spec.cores >= 2)
                    request.lanes.assign(
                        static_cast<std::size_t>(spec.cores),
                        runner::Lane{name, a});
                if (spec.trace_epochs > 0) {
                    request.trace.enabled = true;
                    request.trace.epoch_insts = spec.trace_epochs;
                }
                if (spec.approx_rate > 0) {
                    request.approx.enabled = true;
                    request.approx.rate = spec.approx_rate;
                    request.approx.epoch_insts = spec.approx_epoch_insts;
                }
                cells.push_back(std::move(request));
            }
    return cells;
}

std::string
jobId(const std::vector<runner::RunRequest> &cells)
{
    Fnv1a h;
    h.add(static_cast<u64>(cells.size()));
    for (const auto &cell : cells)
        h.add(runner::cellFingerprint(cell));
    return toHex64(h.value());
}

} // namespace cheri::serve
