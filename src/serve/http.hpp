/**
 * @file
 * Minimal HTTP/1.1 framing for the loopback experiment service: just
 * enough protocol for `POST body → response bytes` and close-delimited
 * NDJSON streaming, one request per connection (Connection: close).
 * No chunked encoding, no keep-alive, no TLS — clients are the
 * bundled `cheriperf submit` verb and curl-shaped CI scripts.
 */

#ifndef CHERI_SERVE_HTTP_HPP
#define CHERI_SERVE_HTTP_HPP

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "support/socket.hpp"

namespace cheri::serve {

struct HttpRequest
{
    std::string method; //!< "GET" | "POST".
    std::string target; //!< Path + optional query ("/v1/jobs?wait=0").
    std::string body;
};

/**
 * Read one request from @p sock. False on malformed framing, EOF, or
 * oversized headers/body (64 KiB / 4 MiB caps — this is a loopback
 * job API, not a general server).
 */
bool readHttpRequest(net::Socket &sock, HttpRequest *out,
                     std::string *error);

/** One complete Content-Length-framed response; closes nothing. */
bool writeHttpResponse(net::Socket &sock, int status,
                       std::string_view content_type,
                       std::string_view body,
                       std::string_view extra_headers = {});

/**
 * Response head for a close-delimited stream (no Content-Length;
 * "Connection: close"). The caller then sendAll()s lines and closes.
 */
bool beginHttpStream(net::Socket &sock, int status,
                     std::string_view content_type);

struct HttpResponse
{
    int status = 0;
    std::string body;
};

/** Client: one request to 127.0.0.1:@p port, full response back. */
std::optional<HttpResponse> httpRequest(u16 port,
                                        std::string_view method,
                                        std::string_view target,
                                        std::string_view body,
                                        std::string *error);

/**
 * Client: GET @p target and hand each received line (newline
 * included) to @p emit as it arrives, until EOF. @p emit returning
 * false aborts. False on connect/HTTP errors or abort.
 */
bool httpStream(u16 port, std::string_view target,
                const std::function<bool(std::string_view)> &emit,
                std::string *error);

} // namespace cheri::serve

#endif // CHERI_SERVE_HTTP_HPP
