#include "serve/client.hpp"

#include <chrono>
#include <cstdio>
#include <thread>

#include "serve/http.hpp"
#include "support/serialize.hpp"

namespace cheri::serve {

namespace {

/** Resolve the daemon port: --port wins, else poll the port file. */
std::optional<u16>
resolvePort(const SubmitOptions &options)
{
    if (options.port != 0)
        return options.port;
    if (options.port_file.empty()) {
        std::fprintf(stderr,
                     "submit: need --port or --port-file to find the "
                     "daemon\n");
        return std::nullopt;
    }
    // The daemon writes the file atomically right after bind; poll
    // briefly so `serve &` + `submit` races resolve themselves.
    for (int attempt = 0; attempt < 100; ++attempt) {
        if (const auto text = readFile(options.port_file)) {
            if (const auto port = parseU64(
                    text->substr(0, text->find('\n'))))
                if (*port > 0 && *port <= 65535)
                    return static_cast<u16>(*port);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::fprintf(stderr, "submit: no daemon port in %s after 10s\n",
                 options.port_file.c_str());
    return std::nullopt;
}

int
statusToExit(int http_status, const std::string &body)
{
    switch (http_status) {
    case 400:
        std::fprintf(stderr, "submit: rejected: %s", body.c_str());
        return 2;
    case 429:
        std::fprintf(stderr, "submit: queue full, retry later\n");
        return 3;
    case 503:
        std::fprintf(stderr, "submit: daemon is draining\n");
        return 4;
    default:
        std::fprintf(stderr, "submit: HTTP %d: %s", http_status,
                     body.c_str());
        return 1;
    }
}

} // namespace

int
runSubmitClient(const SubmitOptions &options)
{
    const auto port = resolvePort(options);
    if (!port)
        return 1;
    const std::string body = jobSpecJsonl(options.spec);
    std::string error;

    if (!options.stream) {
        const auto response =
            httpRequest(*port, "POST", "/v1/jobs", body, &error);
        if (!response) {
            std::fprintf(stderr, "submit: %s\n", error.c_str());
            return 1;
        }
        if (response->status != 200)
            return statusToExit(response->status, response->body);
        std::fwrite(response->body.data(), 1, response->body.size(),
                    stdout);
        return 0;
    }

    const auto ack =
        httpRequest(*port, "POST", "/v1/jobs?wait=0", body, &error);
    if (!ack) {
        std::fprintf(stderr, "submit: %s\n", error.c_str());
        return 1;
    }
    if (ack->status != 202)
        return statusToExit(ack->status, ack->body);

    // Pull the job id out of the ack: {"job":"<hex>",...}.
    const std::string marker = "\"job\":\"";
    const auto at = ack->body.find(marker);
    const auto end = at == std::string::npos
                         ? std::string::npos
                         : ack->body.find('"', at + marker.size());
    if (at == std::string::npos || end == std::string::npos) {
        std::fprintf(stderr, "submit: malformed ack: %s",
                     ack->body.c_str());
        return 1;
    }
    const std::string id =
        ack->body.substr(at + marker.size(),
                         end - at - marker.size());
    std::fprintf(stderr, "submit: job %s accepted, streaming\n",
                 id.c_str());

    const bool ok = httpStream(
        *port, "/v1/jobs/" + id + "/stream",
        [](std::string_view line) {
            std::fwrite(line.data(), 1, line.size(), stdout);
            return true;
        },
        &error);
    if (!ok) {
        std::fprintf(stderr, "submit: %s\n", error.c_str());
        return 1;
    }
    return 0;
}

} // namespace cheri::serve
