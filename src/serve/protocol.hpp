/**
 * @file
 * The experiment service's JSONL wire protocol (DESIGN.md §8).
 *
 * A job submission is one flat JSON object per line — string, number
 * and boolean values only, no nesting — mirroring the sweep CLI's
 * flags. The daemon expands a JobSpec into the same RunRequest cells
 * `cheriperf sweep` would build (workload selection × ABIs, name-major
 * order), which is what makes a served response byte-identical to the
 * offline run: both sides render the identical RunResult vector
 * through serve::sweepCsv.
 *
 * The job id is content-addressed over the expanded cells' cache
 * fingerprints, so two clients submitting the same experiment — in
 * any field spelling that expands to the same cells — share one job.
 * Priority is deliberately NOT part of the id: a duplicate submission
 * at higher priority re-prioritizes the in-flight job instead of
 * forking it.
 */

#ifndef CHERI_SERVE_PROTOCOL_HPP
#define CHERI_SERVE_PROTOCOL_HPP

#include <string>
#include <vector>

#include "runner/run_request.hpp"

namespace cheri::serve {

/** One submitted experiment, as it travels on the wire. */
struct JobSpec
{
    std::string workload; //!< Single-workload job (wins over set).
    std::string set;      //!< "table3" | "table4" | "all".
    std::string abi = "all"; //!< One ABI name, or "all" (sweep parity).
    std::string scale = "small";
    u64 seed = 42;
    s64 priority = 0; //!< Higher runs sooner; FIFO within a level.
    u64 cores = 1;    //!< >= 2: homogeneous self-co-run per cell.
    u64 trace_epochs = 0; //!< > 0: epoch tracing, N insts per epoch.
    u64 approx_rate = 0;  //!< > 0: sampled simulation, 1-in-N epochs.
    u64 approx_epoch_insts = 100'000;

    /**
     * Allocator-axis values, a comma-separated list of names from
     * alloc::parseAllocator ("bump,freelist+revoke", ...). Empty
     * means the default allocator alone — the pre-axis job shape,
     * which must keep rendering the pre-axis CSV byte-for-byte.
     */
    std::string allocators;

    /**
     * Machine knobs, a comma-separated "name=value" list over the
     * tune::KnobRegistry ("mem.l1d_kib=128,pipe.sq.entries=48") —
     * the wire form of the CLI's `--set name=value`, which is how
     * autotune-shaped probe batches travel to the daemon. Empty
     * means the stock per-ABI MachineConfig — the pre-knob job
     * shape, whose cells must keep their historical fingerprints.
     */
    std::string knobs;

    bool approxColumns() const { return approx_rate > 0; }

    /** Axis active: the CSV grows an allocator column after abi. */
    bool allocColumns() const { return !allocators.empty(); }
};

/**
 * Parse one submission line. Strict: the line must be a single flat
 * JSON object; unknown keys, nested values and type mismatches are
 * errors (reported via @p error), never silently ignored — a typo'd
 * key must not quietly run the default experiment.
 */
bool parseJobSpec(const std::string &line, JobSpec *out,
                  std::string *error);

/** Canonical wire rendering of @p spec (defaults omitted). */
std::string jobSpecJsonl(const JobSpec &spec);

/**
 * Expand @p spec into its RunRequest cells, sweep order (name-major,
 * allocator-major, ABI-minor — the CLI's plan order). Validates
 * everything the daemon must never die on: workload names against the
 * registry, ABI/scale/set/allocator spellings, and the approx
 * exclusions (approx+trace, approx+corun). Empty vector + @p error on
 * any violation.
 */
std::vector<runner::RunRequest> expandJobSpec(const JobSpec &spec,
                                              std::string *error);

/**
 * Content-addressed job id: FNV-1a over the expanded cells' cache
 * fingerprints (order-sensitive) plus the cell count, hex-encoded.
 */
std::string jobId(const std::vector<runner::RunRequest> &cells);

} // namespace cheri::serve

#endif // CHERI_SERVE_PROTOCOL_HPP
