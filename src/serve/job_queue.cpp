#include "serve/job_queue.hpp"

#include "support/logging.hpp"

namespace cheri::serve {

ShardedQueue::ShardedQueue(std::size_t shards, std::size_t capacity)
    : sets_(shards ? shards : 1), capacity_(capacity)
{
    CHERI_ASSERT(capacity_ > 0, "queue capacity must be positive");
}

bool
ShardedQueue::push(u64 fingerprint, s64 priority, u64 seq)
{
    CHERI_ASSERT(!contains(fingerprint),
                 "duplicate fingerprint pushed (dedup before push)");
    if (index_.size() >= capacity_)
        return false;
    const Entry entry{priority, seq, fingerprint};
    sets_[shardOf(fingerprint)].insert(entry);
    index_.emplace(fingerprint, entry);
    return true;
}

bool
ShardedQueue::reprioritize(u64 fingerprint, s64 priority)
{
    auto it = index_.find(fingerprint);
    if (it == index_.end() || it->second.priority >= priority)
        return false;
    auto &shard = sets_[shardOf(fingerprint)];
    shard.erase(it->second);
    it->second.priority = priority;
    shard.insert(it->second);
    return true;
}

std::optional<u64>
ShardedQueue::pop(std::size_t home_shard)
{
    const std::size_t n = sets_.size();
    for (std::size_t probe = 0; probe < n; ++probe) {
        auto &shard = sets_[(home_shard + probe) % n];
        if (shard.empty())
            continue;
        const u64 fingerprint = shard.begin()->fingerprint;
        shard.erase(shard.begin());
        index_.erase(fingerprint);
        return fingerprint;
    }
    return std::nullopt;
}

} // namespace cheri::serve
