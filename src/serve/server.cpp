#include "serve/server.hpp"

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>
#include <thread>

#include "runner/cache.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"
#include "support/serialize.hpp"
#include "support/socket.hpp"

namespace cheri::serve {

namespace {

net::WakePipe *gShutdownPipe = nullptr;
std::atomic<bool> gShutdownRequested{false};

void
onShutdownSignal(int)
{
    gShutdownRequested.store(true, std::memory_order_relaxed);
    if (gShutdownPipe != nullptr)
        gShutdownPipe->notify(); // async-signal-safe (write(2))
}

/** Counted detached connection threads, so drain can wait for them. */
class ConnectionTracker
{
  public:
    void
    add()
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++active_;
    }

    void
    remove()
    {
        std::lock_guard<std::mutex> lk(mu_);
        --active_;
        cv_.notify_all();
    }

    void
    waitIdle()
    {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return active_ == 0; });
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::size_t active_ = 0;
};

std::string
statsJson(const ServiceStats &s)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"jobs\":%llu,\"cells\":%llu,\"unique\":%llu,"
        "\"simulated\":%llu,\"inflight_dedup\":%llu,"
        "\"memo_hits\":%llu,\"cache_hits\":%llu,"
        "\"rejected_full\":%llu,\"rejected_draining\":%llu,"
        "\"queue_p50_s\":%.6f,\"queue_p99_s\":%.6f}\n",
        static_cast<unsigned long long>(s.jobsSubmitted),
        static_cast<unsigned long long>(s.cellsSubmitted),
        static_cast<unsigned long long>(s.uniqueCells),
        static_cast<unsigned long long>(s.simulated),
        static_cast<unsigned long long>(s.inflightDedup),
        static_cast<unsigned long long>(s.memoHits),
        static_cast<unsigned long long>(s.cacheHits),
        static_cast<unsigned long long>(s.rejectedFull),
        static_cast<unsigned long long>(s.rejectedDraining),
        s.queueLatencyP50, s.queueLatencyP99);
    return buf;
}

void
handleConnection(net::Socket sock, ExperimentService &service)
{
    sock.setIoTimeout(30);

    HttpRequest request;
    std::string error;
    if (!readHttpRequest(sock, &request, &error))
        return;

    // POST /v1/jobs[?wait=0] — submit; the default (blocking) mode
    // answers with the job's full sweep CSV on this connection.
    std::string target = request.target;
    bool wait = true;
    if (const auto q = target.find('?'); q != std::string::npos) {
        if (target.substr(q) == "?wait=0")
            wait = false;
        target.erase(q);
    }

    if (request.method == "POST" && target == "/v1/jobs") {
        JobSpec spec;
        if (!parseJobSpec(request.body, &spec, &error)) {
            writeHttpResponse(sock, 400, "application/json",
                              "{\"error\":\"" + error + "\"}\n");
            return;
        }
        std::string id;
        switch (service.submit(spec, &id, &error)) {
        case SubmitStatus::BadRequest:
            writeHttpResponse(sock, 400, "application/json",
                              "{\"error\":\"" + error + "\"}\n");
            return;
        case SubmitStatus::QueueFull:
            writeHttpResponse(sock, 429, "application/json",
                              "{\"error\":\"queue full\"}\n",
                              "Retry-After: 1\r\n");
            return;
        case SubmitStatus::Draining:
            writeHttpResponse(sock, 503, "application/json",
                              "{\"error\":\"draining\"}\n");
            return;
        case SubmitStatus::Accepted:
            break;
        }
        if (!wait) {
            // The ack is deterministic: id and cell count derive from
            // the spec alone, never from arrival-order dedup state.
            const auto status = service.status(id);
            writeHttpResponse(
                sock, 202, "application/json",
                "{\"job\":\"" + id + "\",\"cells\":" +
                    std::to_string(status.cells) +
                    ",\"state\":\"accepted\"}\n");
            return;
        }
        const auto csv = service.waitResult(id);
        if (!csv) {
            writeHttpResponse(sock, 500, "application/json",
                              "{\"error\":\"job vanished\"}\n");
            return;
        }
        writeHttpResponse(sock, 200, "text/csv", *csv);
        return;
    }

    if (request.method == "GET" && target == "/healthz") {
        writeHttpResponse(sock, 200, "text/plain", "ok\n");
        return;
    }
    if (request.method == "GET" && target == "/v1/stats") {
        writeHttpResponse(sock, 200, "application/json",
                          statsJson(service.stats()));
        return;
    }

    // GET /v1/jobs/<id>[/result|/stream]
    const std::string prefix = "/v1/jobs/";
    if (request.method == "GET" &&
        target.rfind(prefix, 0) == 0) {
        std::string rest = target.substr(prefix.size());
        std::string verb;
        if (const auto slash = rest.find('/');
            slash != std::string::npos) {
            verb = rest.substr(slash + 1);
            rest.erase(slash);
        }
        const auto status = service.status(rest);
        if (!status.known) {
            writeHttpResponse(sock, 404, "application/json",
                              "{\"error\":\"unknown job\"}\n");
            return;
        }
        if (verb.empty()) {
            writeHttpResponse(
                sock, 200, "application/json",
                "{\"job\":\"" + rest + "\",\"cells\":" +
                    std::to_string(status.cells) + ",\"done\":" +
                    std::to_string(status.done) + ",\"state\":\"" +
                    (status.finished() ? "done" : "running") +
                    "\"}\n");
            return;
        }
        if (verb == "result") {
            const auto csv = service.waitResult(rest);
            writeHttpResponse(sock, 200, "text/csv",
                              csv ? *csv : std::string());
            return;
        }
        if (verb == "stream") {
            if (!beginHttpStream(sock, 200, "application/x-ndjson"))
                return;
            service.streamJob(rest, [&](const std::string &line) {
                return net::sendAll(sock, line);
            });
            return;
        }
    }

    writeHttpResponse(sock, 404, "application/json",
                      "{\"error\":\"no such endpoint\"}\n");
}

} // namespace

int
runServer(const ServeOptions &options)
{
    std::signal(SIGPIPE, SIG_IGN);

    net::WakePipe wake;
    if (!wake.open()) {
        std::fprintf(stderr, "[serve] cannot create wake pipe\n");
        return 1;
    }
    gShutdownPipe = &wake;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onShutdownSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    // A daemon holds the cache-dir lock Shared for its lifetime so
    // `cheriperf clear-cache` (Exclusive) cannot race live writes.
    std::optional<runner::CacheDirLock> cacheLock;
    if (options.cache) {
        const std::string dir = options.cache_dir.empty()
                                    ? runner::ResultCache::defaultDir()
                                    : options.cache_dir;
        cacheLock = runner::CacheDirLock::tryAcquire(
            dir, runner::CacheDirLock::Mode::Shared);
        if (!cacheLock) {
            std::fprintf(stderr,
                         "[serve] cache dir %s is locked exclusively "
                         "(clear-cache in progress?); retry later\n",
                         dir.c_str());
            return 1;
        }
    }

    net::ListenSocket listener;
    std::string error;
    if (!listener.listen(options.port, &error)) {
        std::fprintf(stderr, "[serve] %s\n", error.c_str());
        return 1;
    }
    if (!options.port_file.empty())
        writeFileAtomic(options.port_file,
                        std::to_string(listener.boundPort()) + "\n");

    ServiceConfig config;
    config.workers = options.workers;
    config.queue_depth = options.queue_depth;
    config.cache = options.cache;
    config.cache_dir = options.cache_dir;
    ExperimentService service(config);

    std::fprintf(stderr,
                 "[serve] listening on 127.0.0.1:%u (workers=%u, "
                 "queue=%zu)\n",
                 static_cast<unsigned>(listener.boundPort()),
                 static_cast<unsigned>(service.config().workers),
                 options.queue_depth);

    ConnectionTracker connections;
    for (;;) {
        auto sock = listener.accept(wake.read_end.fd());
        if (!sock)
            break; // woken for shutdown, or listener died
        connections.add();
        std::thread([&connections, &service,
                     s = std::move(*sock)]() mutable {
            handleConnection(std::move(s), service);
            connections.remove();
        }).detach();
    }

    // Shutdown: stop admitting connections first, then finish every
    // request already in flight and run the queue dry.
    listener.close();
    std::fprintf(stderr, "[serve] shutdown requested; draining\n");
    service.beginDrain();
    connections.waitIdle();
    service.drainAndStop();

    std::fprintf(stderr, "[serve] %s drained clean\n",
                 service.stats().summary().c_str());
    return 0;
}

} // namespace cheri::serve
