#include "serve/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace cheri::serve {

namespace {

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 4 * 1024 * 1024;

const char *
statusText(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 202:
        return "Accepted";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 429:
        return "Too Many Requests";
    case 500:
        return "Internal Server Error";
    case 503:
        return "Service Unavailable";
    default:
        return "Unknown";
    }
}

/** Case-insensitive "Header-Name:" scan over a CRLF header block. */
std::optional<std::string>
findHeader(const std::string &head, std::string_view name)
{
    std::size_t pos = 0;
    while (pos < head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string::npos)
            eol = head.size();
        const std::string_view line(head.data() + pos, eol - pos);
        const std::size_t colon = line.find(':');
        if (colon != std::string_view::npos &&
            colon == name.size()) {
            bool match = true;
            for (std::size_t i = 0; i < name.size(); ++i)
                if (std::tolower(static_cast<unsigned char>(line[i])) !=
                    std::tolower(static_cast<unsigned char>(name[i]))) {
                    match = false;
                    break;
                }
            if (match) {
                std::size_t v = colon + 1;
                while (v < line.size() &&
                       (line[v] == ' ' || line[v] == '\t'))
                    ++v;
                return std::string(line.substr(v));
            }
        }
        pos = eol + 2;
    }
    return std::nullopt;
}

/** Read until the header/body separator; body prefix spills to @p rest. */
bool
readHead(net::Socket &sock, std::string *head, std::string *rest,
         std::string *error)
{
    std::string buf;
    char chunk[4096];
    for (;;) {
        const std::size_t sep = buf.find("\r\n\r\n");
        if (sep != std::string::npos) {
            *head = buf.substr(0, sep + 2);
            *rest = buf.substr(sep + 4);
            return true;
        }
        if (buf.size() > kMaxHeaderBytes) {
            *error = "oversized header block";
            return false;
        }
        const long n = net::recvSome(sock, chunk, sizeof(chunk));
        if (n <= 0) {
            *error = n == 0 ? "connection closed mid-header"
                            : "recv failed";
            return false;
        }
        buf.append(chunk, static_cast<std::size_t>(n));
    }
}

bool
readExact(net::Socket &sock, std::string *buf, std::size_t want,
          std::string *error)
{
    char chunk[4096];
    while (buf->size() < want) {
        const long n = net::recvSome(
            sock, chunk,
            std::min(sizeof(chunk), want - buf->size()));
        if (n <= 0) {
            *error = "connection closed mid-body";
            return false;
        }
        buf->append(chunk, static_cast<std::size_t>(n));
    }
    return true;
}

} // namespace

bool
readHttpRequest(net::Socket &sock, HttpRequest *out, std::string *error)
{
    std::string head;
    std::string body;
    if (!readHead(sock, &head, &body, error))
        return false;

    // Request line: METHOD SP TARGET SP VERSION CRLF.
    const std::size_t eol = head.find("\r\n");
    const std::string line = head.substr(0, eol);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        *error = "malformed request line";
        return false;
    }
    out->method = line.substr(0, sp1);
    out->target = line.substr(sp1 + 1, sp2 - sp1 - 1);

    std::size_t content_length = 0;
    if (const auto cl = findHeader(head, "Content-Length")) {
        content_length =
            static_cast<std::size_t>(std::strtoull(cl->c_str(),
                                                   nullptr, 10));
        if (content_length > kMaxBodyBytes) {
            *error = "oversized body";
            return false;
        }
    }
    if (body.size() > content_length) {
        *error = "body longer than Content-Length";
        return false;
    }
    if (!readExact(sock, &body, content_length, error))
        return false;
    out->body = std::move(body);
    return true;
}

bool
writeHttpResponse(net::Socket &sock, int status,
                  std::string_view content_type, std::string_view body,
                  std::string_view extra_headers)
{
    std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                       statusText(status) + "\r\n";
    head += "Content-Type: ";
    head += content_type;
    head += "\r\nContent-Length: " + std::to_string(body.size()) +
            "\r\n";
    head += extra_headers;
    head += "Connection: close\r\n\r\n";
    return net::sendAll(sock, head) && net::sendAll(sock, body);
}

bool
beginHttpStream(net::Socket &sock, int status,
                std::string_view content_type)
{
    std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                       statusText(status) + "\r\n";
    head += "Content-Type: ";
    head += content_type;
    head += "\r\nConnection: close\r\n\r\n";
    return net::sendAll(sock, head);
}

std::optional<HttpResponse>
httpRequest(u16 port, std::string_view method, std::string_view target,
            std::string_view body, std::string *error)
{
    net::Socket sock = net::connectLoopback(port, error);
    if (!sock.valid())
        return std::nullopt;

    std::string req(method);
    req += ' ';
    req += target;
    req += " HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: " +
           std::to_string(body.size()) +
           "\r\nConnection: close\r\n\r\n";
    req += body;
    if (!net::sendAll(sock, req)) {
        if (error)
            *error = "send failed";
        return std::nullopt;
    }

    std::string head;
    std::string rest;
    if (!readHead(sock, &head, &rest, error))
        return std::nullopt;
    const std::size_t eol = head.find("\r\n");
    const std::string line = head.substr(0, eol);
    // Status line: HTTP/1.1 SP CODE SP TEXT.
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string::npos) {
        if (error)
            *error = "malformed status line";
        return std::nullopt;
    }
    HttpResponse out;
    out.status = std::atoi(line.c_str() + sp1 + 1);
    out.body = std::move(rest);

    if (const auto cl = findHeader(head, "Content-Length")) {
        const auto want = static_cast<std::size_t>(
            std::strtoull(cl->c_str(), nullptr, 10));
        if (!readExact(sock, &out.body, want, error))
            return std::nullopt;
    } else {
        // Close-delimited: read to EOF.
        char chunk[4096];
        for (;;) {
            const long n = net::recvSome(sock, chunk, sizeof(chunk));
            if (n < 0) {
                if (error)
                    *error = "recv failed";
                return std::nullopt;
            }
            if (n == 0)
                break;
            out.body.append(chunk, static_cast<std::size_t>(n));
        }
    }
    return out;
}

bool
httpStream(u16 port, std::string_view target,
           const std::function<bool(std::string_view)> &emit,
           std::string *error)
{
    net::Socket sock = net::connectLoopback(port, error);
    if (!sock.valid())
        return false;

    std::string req = "GET ";
    req += target;
    req += " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
    if (!net::sendAll(sock, req)) {
        if (error)
            *error = "send failed";
        return false;
    }

    std::string head;
    std::string buf;
    if (!readHead(sock, &head, &buf, error))
        return false;
    const std::size_t sp1 = head.find(' ');
    if (sp1 == std::string::npos ||
        std::atoi(head.c_str() + sp1 + 1) != 200) {
        if (error)
            *error = "stream request failed: " +
                     head.substr(0, head.find("\r\n"));
        return false;
    }

    char chunk[4096];
    for (;;) {
        // Flush whole lines as they complete.
        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            if (!emit(std::string_view(buf).substr(0, nl + 1)))
                return false;
            buf.erase(0, nl + 1);
        }
        const long n = net::recvSome(sock, chunk, sizeof(chunk));
        if (n < 0) {
            if (error)
                *error = "recv failed";
            return false;
        }
        if (n == 0)
            break;
        buf.append(chunk, static_cast<std::size_t>(n));
    }
    if (!buf.empty() && !emit(buf))
        return false;
    return true;
}

} // namespace cheri::serve
