#include "workloads/context.hpp"

#include <algorithm>

namespace cheri::workloads {

std::vector<Addr>
Ctx::allocLinkedPool(const abi::StructDesc &desc, u64 count, bool emit_ops,
                     u64 window)
{
    const abi::RecordLayout layout = desc.layoutFor(abi);
    std::vector<Addr> nodes;
    nodes.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        nodes.push_back(alloc.allocate(layout.size, layout.align));
        if (emit_ops && (i & 63) == 0) {
            // Amortized allocation cost: the pool is typically built
            // in bulk; charge a representative slice of malloc work.
            low.derivePointer();
            low.alu(2);
        }
    }

    if (window == 0 || window > count)
        window = count;
    for (u64 begin = 0; begin < count; begin += window) {
        const u64 len = std::min(window, count - begin);
        const std::vector<u32> perm = permutation(len);
        for (u64 i = 0; i < len; ++i) {
            const Addr from = nodes[begin + perm[i]];
            const Addr to = nodes[begin + perm[(i + 1) % len]];
            core.store().write(from + layout.offsetOf(0), to, 8);
            if (emit_ops && (i & 63) == 0)
                low.storePointer(from + layout.offsetOf(0));
        }
    }
    return nodes;
}

std::vector<u32>
Ctx::permutation(u64 n)
{
    std::vector<u32> perm(n);
    for (u64 i = 0; i < n; ++i)
        perm[i] = static_cast<u32>(i);
    for (u64 i = n; i > 1; --i) {
        const u64 j = rng.nextBelow(i);
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

} // namespace cheri::workloads
