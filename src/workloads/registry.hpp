/**
 * @file
 * The workload registry and the standard run helper used by tests,
 * examples and every benchmark harness.
 */

#ifndef CHERI_WORKLOADS_REGISTRY_HPP
#define CHERI_WORKLOADS_REGISTRY_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "workloads/workload.hpp"

namespace cheri::workloads {

/**
 * All workload instances: the paper's 20 in presentation order, then
 * repo-local additions (the Interp.boxvm allocator stressor).
 */
std::vector<std::unique_ptr<Workload>> allWorkloads();

/** The 12 representative benchmarks of Table 3 (by name). */
const std::vector<std::string> &table3Names();

/** The 6 drill-down workloads of Table 4 / Figure 3. */
const std::vector<std::string> &table4Names();

/** Find by exact name among @p pool; nullptr when absent. */
const Workload *
findWorkload(const std::vector<std::unique_ptr<Workload>> &pool,
             const std::string &name);

namespace detail {

/**
 * Low-level single-cell executor: run @p workload under @p abi with a
 * fresh Machine. Internal plumbing for the runner subsystem — callers
 * should go through runner::run(RunRequest) / runner::runPlan(),
 * which add caching, parallelism and derived metrics.
 *
 * @param base Optional config template; its abi field is overridden.
 * @param seed Workload RNG seed (fixed default for reproducibility).
 * @return Nothing when the workload does not support the ABI (the
 *         paper's "NA" cells).
 */
std::optional<sim::SimResult>
executeWorkload(const Workload &workload, abi::Abi abi,
                Scale scale = Scale::Small,
                const sim::MachineConfig *base = nullptr, u64 seed = 42);

/**
 * As above, additionally collecting an epoch trace. When
 * @p trace_config is non-null and enabled, an EpochCollector rides
 * the machine's pipeline and the resulting series is moved into
 * @p epochs_out (which must be non-null in that case).
 */
std::optional<sim::SimResult>
executeWorkload(const Workload &workload, abi::Abi abi, Scale scale,
                const sim::MachineConfig *base, u64 seed,
                const trace::TraceConfig *trace_config,
                trace::EpochSeries *epochs_out);

/**
 * As above, additionally supporting sampled (--approx) simulation.
 * When @p approx_config is non-null and enabled, an ApproxSampler
 * rides the pipeline, only the seed-derived 1-in-rate epoch subset
 * runs the full timing model, and the returned SimResult's
 * non-architectural counts are the sampler's stratified estimate
 * (each skipped epoch priced at its own stratum's measured epoch,
 * falling back to uniform retired/sampled scaling when no measured
 * epoch completed); InstRetired stays exact. The accounting moves into
 * @p approx_out (which must be non-null in that case). Approx is
 * mutually exclusive with epoch tracing (asserted): both claim the
 * pipeline's one epoch-boundary slot.
 *
 * @param allocator Optional allocator-axis point for the scenario;
 *        null means the default allocator (historical behaviour).
 */
std::optional<sim::SimResult>
executeWorkload(const Workload &workload, abi::Abi abi, Scale scale,
                const sim::MachineConfig *base, u64 seed,
                const trace::TraceConfig *trace_config,
                trace::EpochSeries *epochs_out,
                const trace::ApproxConfig *approx_config,
                trace::ApproxReport *approx_out,
                const alloc::AllocatorConfig *allocator = nullptr);

/** One co-run lane: a workload bound to an ABI. */
struct CorunLane
{
    const Workload *workload = nullptr;
    abi::Abi abi = abi::Abi::Purecap;
};

/**
 * Multi-programmed co-run executor: one Machine with lanes.size()
 * core slices over a shared uncore; lane i's workload generator
 * drives core i, the timelines interleaved deterministically in cycle
 * order by sim::CorunGate so co-run results are byte-identical across
 * repeat runs regardless of host scheduling. Every lane uses the same
 * @p seed (solo and co-run lanes of a workload then retire identical
 * instruction streams, isolating the uncore contention delta).
 *
 * @param base Optional config template; cores/abi are overridden
 *        from the lane vector.
 * @param trace_config When non-null and enabled, each lane collects
 *        its own epoch series into @p epochs_out (resized to
 *        lanes.size(); NA lanes get an empty series).
 * @return One SimResult per lane, std::nullopt for lanes whose
 *         workload does not support its ABI (the paper's "NA").
 */
std::vector<std::optional<sim::SimResult>>
executeCoRun(const std::vector<CorunLane> &lanes, Scale scale,
             const sim::MachineConfig *base, u64 seed,
             const trace::TraceConfig *trace_config = nullptr,
             std::vector<trace::EpochSeries> *epochs_out = nullptr,
             const alloc::AllocatorConfig *allocator = nullptr);

} // namespace detail

} // namespace cheri::workloads

#endif // CHERI_WORKLOADS_REGISTRY_HPP
