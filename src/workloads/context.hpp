/**
 * @file
 * Shared plumbing for workload kernels: one object bundling the
 * ABI-aware allocator, synthetic code map, dynamic lowering engine
 * and deterministic RNG, plus helpers for the recurring data-structure
 * idioms (linked node pools, index arrays, streamed buffers).
 */

#ifndef CHERI_WORKLOADS_CONTEXT_HPP
#define CHERI_WORKLOADS_CONTEXT_HPP

#include <memory>
#include <vector>

#include "abi/layout.hpp"
#include "abi/lowering.hpp"
#include "alloc/allocator.hpp"
#include "sim/core.hpp"
#include "support/rng.hpp"
#include "workloads/workload.hpp"

namespace cheri::workloads {

/**
 * Ctx doubles as the allocator's SweepObserver: when the scenario's
 * allocator runs quarantine+revocation, each sweep's granule loads
 * and revocation tag-writes are replayed through the lowering engine
 * as dependent capability loads and pointer stores — so revocation
 * cost flows through the modeled pipeline, caches and mem::Uncore
 * tag-table counters like any other memory traffic.
 */
class Ctx : public mem::SweepObserver
{
  public:
    Ctx(sim::Core &core, const Scenario &scenario, u64 seed)
        : abi(scenario.abi), core(core),
          alloc_(alloc::makeAllocator(scenario.allocator, scenario.abi,
                                      &core.store(), this)),
          alloc(*alloc_), code(abi),
          low(abi, core.pipeline(), code), rng(seed)
    {
    }

    Ctx(sim::Core &core, abi::Abi abi, u64 seed)
        : Ctx(core, Scenario{abi}, seed)
    {
    }

    void
    onGranuleVisited(Addr addr) override
    {
        if (low.callDepth() > 0)
            low.loadPointer(addr, true);
    }

    void
    onCapRevoked(Addr addr) override
    {
        if (low.callDepth() > 0)
            low.storePointer(addr);
    }

    abi::Abi abi;
    sim::Core &core;

  private:
    std::unique_ptr<alloc::Allocator> alloc_;

  public:
    alloc::Allocator &alloc;
    abi::CodeMap code;
    abi::DynLowering low;
    Xoshiro256StarStar rng;

    /**
     * Allocate a pool of records laid out per the ABI and link them
     * into a random permutation cycle (classic pointer-chase pool).
     * Each element's "next" pointer is at @p layout offset 0; the
     * allocation cost (malloc + bounds derivation + pointer store)
     * is emitted through the lowering engine.
     *
     * @param window When nonzero, links stay within consecutive
     *        blocks of this many records — pointer chases starting in
     *        a hot window then remain in it, as real working sets do.
     * @return The record addresses in allocation order.
     */
    std::vector<Addr> allocLinkedPool(const abi::StructDesc &desc,
                                      u64 count, bool emit_ops = true,
                                      u64 window = 0);

    /** Random permutation of [0, n). */
    std::vector<u32> permutation(u64 n);
};

} // namespace cheri::workloads

#endif // CHERI_WORKLOADS_CONTEXT_HPP
