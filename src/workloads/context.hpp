/**
 * @file
 * Shared plumbing for workload kernels: one object bundling the
 * ABI-aware allocator, synthetic code map, dynamic lowering engine
 * and deterministic RNG, plus helpers for the recurring data-structure
 * idioms (linked node pools, index arrays, streamed buffers).
 */

#ifndef CHERI_WORKLOADS_CONTEXT_HPP
#define CHERI_WORKLOADS_CONTEXT_HPP

#include <vector>

#include "abi/allocator.hpp"
#include "abi/layout.hpp"
#include "abi/lowering.hpp"
#include "sim/core.hpp"
#include "support/rng.hpp"

namespace cheri::workloads {

class Ctx
{
  public:
    Ctx(sim::Core &core, abi::Abi abi, u64 seed)
        : abi(abi), core(core), alloc(abi),
          code(abi), low(abi, core.pipeline(), code), rng(seed)
    {
    }

    abi::Abi abi;
    sim::Core &core;
    abi::SimAllocator alloc;
    abi::CodeMap code;
    abi::DynLowering low;
    Xoshiro256StarStar rng;

    /**
     * Allocate a pool of records laid out per the ABI and link them
     * into a random permutation cycle (classic pointer-chase pool).
     * Each element's "next" pointer is at @p layout offset 0; the
     * allocation cost (malloc + bounds derivation + pointer store)
     * is emitted through the lowering engine.
     *
     * @param window When nonzero, links stay within consecutive
     *        blocks of this many records — pointer chases starting in
     *        a hot window then remain in it, as real working sets do.
     * @return The record addresses in allocation order.
     */
    std::vector<Addr> allocLinkedPool(const abi::StructDesc &desc,
                                      u64 count, bool emit_ops = true,
                                      u64 window = 0);

    /** Random permutation of [0, n). */
    std::vector<u32> permutation(u64 n);
};

} // namespace cheri::workloads

#endif // CHERI_WORKLOADS_CONTEXT_HPP
