/**
 * @file
 * Multi-programmed co-run execution: one host thread per lane driving
 * its core slice, serialized into a deterministic cycle-ordered
 * interleave by sim::CorunGate. See registry.hpp for the contract.
 */

#include <optional>
#include <thread>
#include <vector>

#include "mem/uncore.hpp"
#include "sim/corun_gate.hpp"
#include "sim/machine.hpp"
#include "support/logging.hpp"
#include "trace/collector.hpp"
#include "trace/profile.hpp"
#include "workloads/registry.hpp"

namespace cheri::workloads {

std::vector<std::optional<sim::SimResult>>
detail::executeCoRun(const std::vector<CorunLane> &lanes, Scale scale,
                     const sim::MachineConfig *base, u64 seed,
                     const trace::TraceConfig *trace_config,
                     std::vector<trace::EpochSeries> *epochs_out,
                     const alloc::AllocatorConfig *allocator)
{
    CHERI_TRACE_SCOPE("workloads/corun");
    CHERI_ASSERT(!lanes.empty(), "co-run needs at least one lane");
    const u32 n = static_cast<u32>(lanes.size());

    sim::MachineConfig config =
        base ? *base : sim::MachineConfig::forAbi(lanes.front().abi);
    config.cores = n;
    std::vector<abi::Abi> abis;
    abis.reserve(n);
    for (const CorunLane &lane : lanes) {
        CHERI_ASSERT(lane.workload != nullptr, "co-run lane without workload");
        abis.push_back(lane.abi);
    }
    config.abi = abis.front();
    sim::Machine machine(config, abis);

    const bool traced = trace_config != nullptr && trace_config->enabled;
    CHERI_ASSERT(!traced || epochs_out != nullptr,
                 "tracing requested without an epoch sink");
    if (traced)
        epochs_out->assign(n, trace::EpochSeries{});

    std::vector<u32> runnable;
    for (u32 i = 0; i < n; ++i)
        if (lanes[i].workload->supports(lanes[i].abi))
            runnable.push_back(i);

    std::vector<std::optional<trace::EpochCollector>> collectors(n);
    auto runLane = [&](u32 i) {
        sim::Core &core = machine.core(i);
        if (traced) {
            collectors[i].emplace(*trace_config);
            core.pipeline().attachHooks(&*collectors[i]);
        }
        const Scenario scenario{
            lanes[i].abi, allocator ? *allocator : alloc::AllocatorConfig{}};
        lanes[i].workload->run(core, scenario, scale, seed);
    };

    if (runnable.size() <= 1) {
        // Degenerate co-run (<= 1 runnable lane): no contention is
        // possible, so skip the gate and the threads entirely.
        if (!runnable.empty())
            runLane(runnable.front());
    } else {
        sim::CorunGate gate(n, config.corun_quantum);
        for (u32 i : runnable)
            gate.activate(i);
        for (u32 i : runnable)
            machine.core(i).pipeline().attachHooks(&gate);

        std::vector<std::thread> threads;
        threads.reserve(runnable.size());
        for (u32 i : runnable)
            threads.emplace_back([&, i] {
                runLane(i);
                // The lane holds the gate token here (or never issued
                // and never touched the uncore), so dropping out of
                // the contender set is a deterministic event.
                machine.uncore().coreFinished(i);
                gate.finish(i);
            });
        for (std::thread &t : threads)
            t.join();
        for (u32 i : runnable)
            machine.core(i).pipeline().detachHooks(&gate);
    }

    std::vector<std::optional<sim::SimResult>> out(n);
    for (u32 i : runnable) {
        sim::Core &core = machine.core(i);
        // Close the trailing epoch before finalize(), as in
        // executeWorkload().
        if (traced) {
            core.pipeline().detachHooks(&*collectors[i]);
            (*epochs_out)[i] = collectors[i]->finish(core.pipeline());
        }
        out[i] = core.finalize();
    }
    return out;
}

} // namespace cheri::workloads
