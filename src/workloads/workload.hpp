/**
 * @file
 * The workload abstraction: each of the paper's 20 applications is
 * represented by a synthetic proxy engineered to match its dominant
 * kernel along the axes the paper's analysis keys on — memory
 * intensity (Table 2), pointer density, working-set size, call and
 * branch structure — rather than its source code. DESIGN.md documents
 * each substitution.
 */

#ifndef CHERI_WORKLOADS_WORKLOAD_HPP
#define CHERI_WORKLOADS_WORKLOAD_HPP

#include <optional>
#include <string>

#include "abi/abi.hpp"
#include "alloc/policy.hpp"
#include "binsize/sections.hpp"
#include "sim/core.hpp"

namespace cheri::workloads {

/** Problem-size knob. Small keeps full 60-run sweeps tractable. */
enum class Scale : u8 {
    Tiny,  //!< Unit-test sized (~100k dynamic ops).
    Small, //!< Benchmark default (~1-3M dynamic ops).
    Ref,   //!< Larger runs for detailed single-workload studies.
};

double scaleFactor(Scale scale);

/**
 * Everything about the environment a workload executes in that is an
 * experiment axis. Historically this was the ABI alone; the scenario
 * generalizes it so new axes (today: the allocator) thread through
 * the experiment plane without another signature change. The
 * default-constructed allocator reproduces the pre-axis heap
 * behaviour exactly, so Scenario{abi} means what (abi) used to.
 */
struct Scenario
{
    abi::Abi abi = abi::Abi::Purecap;
    alloc::AllocatorConfig allocator{};
};

struct WorkloadInfo
{
    std::string name;        //!< e.g. "520.omnetpp_r"
    std::string suite;       //!< "SPEC CPU 2017" or "real-world"
    std::string description;

    double paperMi = 0;      //!< Table 2 memory intensity (0 = absent).

    /** Table 3/4 execution times in seconds (0 = not reported). */
    double paperTimeHybrid = 0;
    double paperTimeBenchmark = 0;
    double paperTimePurecap = 0;

    /**
     * False for QuickJS under the benchmark ABI: the paper reports an
     * in-address-space security exception instead of a result ("NA").
     */
    bool benchmarkAbiRuns = true;

    /** Link-level profile for the Figure 2 binary-size model. */
    binsize::BinaryProfile binary{};
};

class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const WorkloadInfo &info() const = 0;

    /**
     * Synthesize the workload's dynamic behaviour into @p core
     * (via its pipeline/dynamic-issue interface) for the given
     * scenario. Deterministic for a given (scenario, scale, seed);
     * in a co-run the core's shared uncore adds deterministic
     * interference on top.
     */
    virtual void run(sim::Core &core, const Scenario &scenario,
                     Scale scale, u64 seed) const = 0;

    /** ABI-only convenience: runs the default-allocator scenario. */
    void
    run(sim::Core &core, abi::Abi abi, Scale scale, u64 seed) const
    {
        run(core, Scenario{abi}, scale, seed);
    }

    /** True when the workload can execute under @p abi. */
    bool
    supports(abi::Abi abi) const
    {
        return abi != abi::Abi::Benchmark || info().benchmarkAbiRuns;
    }
};

} // namespace cheri::workloads

#endif // CHERI_WORKLOADS_WORKLOAD_HPP
