#include "workloads/workload.hpp"

namespace cheri::workloads {

double
scaleFactor(Scale scale)
{
    switch (scale) {
      case Scale::Tiny:
        return 0.06;
      case Scale::Small:
        return 1.0;
      case Scale::Ref:
        return 4.0;
    }
    return 1.0;
}

} // namespace cheri::workloads
