#include "workloads/registry.hpp"

#include "sim/machine.hpp"
#include "support/logging.hpp"
#include "trace/collector.hpp"
#include "trace/profile.hpp"
#include "workloads/kernels.hpp"

namespace cheri::workloads {

std::vector<std::unique_ptr<Workload>>
allWorkloads()
{
    std::vector<std::unique_ptr<Workload>> out;
    out.push_back(makeParest());
    out.push_back(makeLbm());
    out.push_back(makeOmnetpp(false));
    out.push_back(makeXalancbmk(false));
    out.push_back(makeX264(false));
    out.push_back(makeDeepsjeng(false));
    out.push_back(makeLeela(false));
    out.push_back(makeNab(false));
    out.push_back(makeXz(false));
    out.push_back(makeOmnetpp(true));
    out.push_back(makeXalancbmk(true));
    out.push_back(makeX264(true));
    out.push_back(makeDeepsjeng(true));
    out.push_back(makeLeela(true));
    out.push_back(makeNab(true));
    out.push_back(makeXz(true));
    out.push_back(makeLlamaInference());
    out.push_back(makeLlamaMatmul());
    out.push_back(makeSqlite());
    out.push_back(makeQuickjs());
    return out;
}

const std::vector<std::string> &
table3Names()
{
    static const std::vector<std::string> kNames = {
        "510.parest_r", "519.lbm_r",       "520.omnetpp_r",
        "523.xalancbmk_r", "531.deepsjeng_r", "541.leela_r",
        "544.nab_r",    "557.xz_r",        "LLaMA.inference",
        "LLaMA.matmul", "SQLite",          "QuickJS",
    };
    return kNames;
}

const std::vector<std::string> &
table4Names()
{
    static const std::vector<std::string> kNames = {
        "519.lbm_r", "520.omnetpp_r",   "541.leela_r",
        "LLaMA.inference", "SQLite",    "QuickJS",
    };
    return kNames;
}

const Workload *
findWorkload(const std::vector<std::unique_ptr<Workload>> &pool,
             const std::string &name)
{
    for (const auto &workload : pool)
        if (workload->info().name == name)
            return workload.get();
    return nullptr;
}

std::optional<sim::SimResult>
detail::executeWorkload(const Workload &workload, abi::Abi abi,
                        Scale scale, const sim::MachineConfig *base,
                        u64 seed)
{
    return executeWorkload(workload, abi, scale, base, seed, nullptr,
                           nullptr);
}

std::optional<sim::SimResult>
detail::executeWorkload(const Workload &workload, abi::Abi abi,
                        Scale scale, const sim::MachineConfig *base,
                        u64 seed, const trace::TraceConfig *trace_config,
                        trace::EpochSeries *epochs_out)
{
    CHERI_TRACE_SCOPE("workloads/execute");
    if (!workload.supports(abi))
        return std::nullopt;

    sim::MachineConfig config =
        base ? *base : sim::MachineConfig::forAbi(abi);
    config.abi = abi;
    sim::Machine machine(config);

    const bool traced = trace_config != nullptr && trace_config->enabled;
    CHERI_ASSERT(!traced || epochs_out != nullptr,
                 "tracing requested without an epoch sink");
    std::optional<trace::EpochCollector> collector;
    if (traced) {
        collector.emplace(*trace_config);
        machine.pipeline().setRetireHook(&*collector);
    }

    workload.run(machine.core(0), abi, scale, seed);

    // Close the trailing epoch before finalize(): the pipeline's
    // finish() write-back would otherwise bleed whole-run totals into
    // the last interval's deltas.
    if (traced) {
        machine.pipeline().setRetireHook(nullptr);
        *epochs_out = collector->finish(machine.pipeline());
    }
    return machine.finalize();
}

} // namespace cheri::workloads
