#include "workloads/registry.hpp"

#include <cmath>

#include "sim/machine.hpp"
#include "support/logging.hpp"
#include "trace/approx.hpp"
#include "trace/collector.hpp"
#include "trace/profile.hpp"
#include "workloads/kernels.hpp"

namespace cheri::workloads {

std::vector<std::unique_ptr<Workload>>
allWorkloads()
{
    std::vector<std::unique_ptr<Workload>> out;
    out.push_back(makeParest());
    out.push_back(makeLbm());
    out.push_back(makeOmnetpp(false));
    out.push_back(makeXalancbmk(false));
    out.push_back(makeX264(false));
    out.push_back(makeDeepsjeng(false));
    out.push_back(makeLeela(false));
    out.push_back(makeNab(false));
    out.push_back(makeXz(false));
    out.push_back(makeOmnetpp(true));
    out.push_back(makeXalancbmk(true));
    out.push_back(makeX264(true));
    out.push_back(makeDeepsjeng(true));
    out.push_back(makeLeela(true));
    out.push_back(makeNab(true));
    out.push_back(makeXz(true));
    out.push_back(makeLlamaInference());
    out.push_back(makeLlamaMatmul());
    out.push_back(makeSqlite());
    out.push_back(makeQuickjs());
    // Appended after the paper's 20 so existing name-ordered sweeps
    // and goldens keep their rows.
    out.push_back(makeInterp());
    return out;
}

const std::vector<std::string> &
table3Names()
{
    static const std::vector<std::string> kNames = {
        "510.parest_r", "519.lbm_r",       "520.omnetpp_r",
        "523.xalancbmk_r", "531.deepsjeng_r", "541.leela_r",
        "544.nab_r",    "557.xz_r",        "LLaMA.inference",
        "LLaMA.matmul", "SQLite",          "QuickJS",
    };
    return kNames;
}

const std::vector<std::string> &
table4Names()
{
    static const std::vector<std::string> kNames = {
        "519.lbm_r", "520.omnetpp_r",   "541.leela_r",
        "LLaMA.inference", "SQLite",    "QuickJS",
    };
    return kNames;
}

const Workload *
findWorkload(const std::vector<std::unique_ptr<Workload>> &pool,
             const std::string &name)
{
    for (const auto &workload : pool)
        if (workload->info().name == name)
            return workload.get();
    return nullptr;
}

std::optional<sim::SimResult>
detail::executeWorkload(const Workload &workload, abi::Abi abi,
                        Scale scale, const sim::MachineConfig *base,
                        u64 seed)
{
    return executeWorkload(workload, abi, scale, base, seed, nullptr,
                           nullptr);
}

std::optional<sim::SimResult>
detail::executeWorkload(const Workload &workload, abi::Abi abi,
                        Scale scale, const sim::MachineConfig *base,
                        u64 seed, const trace::TraceConfig *trace_config,
                        trace::EpochSeries *epochs_out)
{
    return executeWorkload(workload, abi, scale, base, seed,
                           trace_config, epochs_out, nullptr, nullptr);
}

std::optional<sim::SimResult>
detail::executeWorkload(const Workload &workload, abi::Abi abi,
                        Scale scale, const sim::MachineConfig *base,
                        u64 seed, const trace::TraceConfig *trace_config,
                        trace::EpochSeries *epochs_out,
                        const trace::ApproxConfig *approx_config,
                        trace::ApproxReport *approx_out,
                        const alloc::AllocatorConfig *allocator)
{
    CHERI_TRACE_SCOPE("workloads/execute");
    if (!workload.supports(abi))
        return std::nullopt;

    sim::MachineConfig config =
        base ? *base : sim::MachineConfig::forAbi(abi);
    config.abi = abi;
    sim::Machine machine(config);

    const bool traced = trace_config != nullptr && trace_config->enabled;
    const bool approx =
        approx_config != nullptr && approx_config->enabled;
    CHERI_ASSERT(!traced || epochs_out != nullptr,
                 "tracing requested without an epoch sink");
    CHERI_ASSERT(!approx || approx_out != nullptr,
                 "approx requested without a report sink");
    CHERI_ASSERT(!(traced && approx),
                 "approx and epoch tracing both need the pipeline's "
                 "epoch slot; run them separately");
    std::optional<trace::EpochCollector> collector;
    if (traced) {
        collector.emplace(*trace_config);
        machine.pipeline().attachHooks(&*collector);
    }
    std::optional<trace::ApproxSampler> sampler;
    if (approx) {
        sampler.emplace(*approx_config, seed, machine.pipeline());
        machine.pipeline().attachHooks(&*sampler);
    }

    const Scenario scenario{
        abi, allocator ? *allocator : alloc::AllocatorConfig{}};
    workload.run(machine.core(0), scenario, scale, seed);

    // Close the trailing epoch before finalize(): the pipeline's
    // finish() write-back would otherwise bleed whole-run totals into
    // the last interval's deltas.
    if (traced) {
        machine.pipeline().detachHooks(&*collector);
        *epochs_out = collector->finish(machine.pipeline());
    }
    if (approx) {
        machine.pipeline().detachHooks(&*sampler);
        *approx_out = sampler->finish(machine.pipeline());
    }

    sim::SimResult result = machine.finalize();

    if (approx) {
        const trace::ApproxReport &rep = *approx_out;
        if (rep.estimated) {
            // The sampler's stratified estimate: every simulated
            // interval — epoch 0's cold start, the detailed warm-ups,
            // the measured sample, a simulated tail — counted
            // exactly; each skipped epoch priced at its own stratum's
            // measured epoch, so phase drift doesn't smear one
            // interval's CPI across the run. InstRetired inside it is
            // already the architecturally exact total.
            result.counts = rep.estimatedTotals;
        } else if (rep.sampledInsts > 0 &&
                   rep.sampledInsts < rep.totalInsts) {
            // Short run: epochs were skipped but no measured epoch
            // completed, so fall back to uniformly scaling the raw
            // counts by the retired/sampled instruction ratio.
            for (std::size_t i = 0; i < pmu::kNumEvents; ++i) {
                const auto event = static_cast<pmu::Event>(i);
                if (event == pmu::Event::InstRetired)
                    continue;
                const u64 raw = result.counts.get(event);
                if (raw != 0)
                    result.counts.set(
                        event,
                        static_cast<u64>(std::llround(
                            static_cast<double>(raw) * rep.scale)));
            }
        }
        result.instructions =
            result.counts.get(pmu::Event::InstRetired);
        result.cycles = result.counts.get(pmu::Event::CpuCycles);
        result.seconds = static_cast<double>(result.cycles) /
                         (config.clock_ghz * 1e9);
    }
    return result;
}

} // namespace cheri::workloads
