/**
 * @file
 * Proxy for 520.omnetpp_r / 620.omnetpp_s: discrete-event simulation
 * of a large Ethernet network.
 *
 * The real workload's signature (paper Tables 2-4): memory-centric
 * (MI 1.16), IPC ~0.58, ~25% L2 miss rate, heavy purecap slowdown
 * (1.87x) of which a noticeable share is PCC branch stalls
 * (benchmark ABI recovers 153s -> 142s).
 *
 * Proxy structure: a future-event set of linked event records spread
 * over a multi-megabyte pool. Each simulation step pops an event by
 * chasing dependent pointers, dispatches it to a module handler via a
 * virtual call (C++ vtables), touches the event payload, and
 * schedules follow-up events through the scheduler library
 * (cross-library calls). A hot working set sized near the L2 capacity
 * boundary makes the purecap pointer growth (48 -> 80-byte events)
 * cross the boundary, reproducing the paper's backend/memory-bound
 * shift mechanically.
 */

#include "support/logging.hpp"
#include "workloads/context.hpp"
#include "workloads/kernels.hpp"

namespace cheri::workloads {

namespace {

class OmnetppWorkload final : public Workload
{
  public:
    explicit OmnetppWorkload(bool speed) : speed_(speed)
    {
        info_.name = speed ? "620.omnetpp_s" : "520.omnetpp_r";
        info_.suite = "SPEC CPU 2017";
        info_.description =
            "Discrete event simulation of a large 10GbE network";
        info_.paperMi = speed ? 1.165 : 1.164;
        info_.paperTimeHybrid = 81.73;
        info_.paperTimeBenchmark = 142.30;
        info_.paperTimePurecap = 153.21;
        info_.binary = binsize::BinaryProfile{
            info_.name, 1800 * kKiB, 220 * kKiB, 9000, 90 * kKiB,
            5200,       140 * kKiB,  2600,       150,  4200 * kKiB,
            120 * kKiB};
    }

    const WorkloadInfo &info() const override { return info_; }

    void
    run(sim::Core &core, const Scenario &scenario, Scale scale,
        u64 seed) const override
    {
        const abi::Abi abi = scenario.abi;
        Ctx ctx(core, scenario, seed + (speed_ ? 1 : 0));

        // Code layout: main model code plus the simulation kernel
        // library (lib 1) the model calls into constantly.
        const u32 f_main = ctx.code.addFunction(0, 500);
        const u32 f_sched = ctx.code.addFunction(1, 700);
        u32 f_handler[8];
        for (auto &f : f_handler)
            f = ctx.code.addFunction(0, 350);
        ctx.low.enterFunction(f_main);

        // Event record: three pointers + scalar payload.
        // hybrid: 48 B; purecap: 80 B.
        const abi::StructDesc event_desc({
            abi::Field::pointer("next"),
            abi::Field::pointer("dest"),
            abi::Field::pointer("payload"),
            abi::Field::scalar(8, "time"),
            abi::Field::scalar(8, "id"),
            abi::Field::scalar(4, "kind"),
            abi::Field::scalar(4, "prio"),
        });
        const abi::RecordLayout layout = event_desc.layoutFor(abi);
        const u32 off_next = layout.offsetOf(0);
        const u32 off_dest = layout.offsetOf(1);
        const u32 off_time = layout.offsetOf(3);

        const double f = scaleFactor(scale);
        const u64 pool = std::max<u64>(2048, static_cast<u64>(120'000 * f));
        // Hot future-event window: ~14k events. Hybrid: 14k * 48 B =
        // 672 KiB (fits the 1 MiB L2); purecap: 14k * 80 B = 1.12 MiB
        // (thrashes it). The sub-window of ~1.2k events similarly
        // straddles the 64 KiB L1D.
        const u64 hot = std::min<u64>(pool, 14'000);
        const u64 hot_l1 = std::min<u64>(pool, 1200);

        // Links stay within 1200-event windows: a chase that starts
        // hot stays hot, as the real future-event set behaves.
        const std::vector<Addr> nodes =
            ctx.allocLinkedPool(event_desc, pool, true, hot_l1);

        const u64 steps = static_cast<u64>(52'000 * f);
        Addr cursor = nodes[0];
        u32 handler = 0;
        for (u64 step = 0; step < steps; ++step) {
            ctx.low.loopBegin();
            // Scheduler: cross-library call into the simulation
            // kernel (amortized: heap siftdown is partially inlined).
            const bool sched_call = (step & 3) == 0;
            if (sched_call)
                ctx.low.call(f_sched, abi::CallKind::CrossLib);

            // Pop the next event: pointer-chase within the future
            // event set. Locality: mostly the L1-hot window, often the
            // L2-hot window, occasionally anywhere in the pool.
            const double p = ctx.rng.nextDouble();
            u64 pick;
            if (p < 0.60)
                pick = ctx.rng.nextBelow(hot_l1);
            else if (p < 0.89)
                pick = ctx.rng.nextBelow(hot);
            else
                pick = ctx.rng.nextBelow(pool);
            cursor = nodes[pick];

            for (int hop = 0; hop < 2; ++hop) {
                const Addr next =
                    ctx.core.store().read(cursor + off_next, 8);
                ctx.low.loadPointer(cursor + off_next, hop > 0);
                ctx.low.alu(1);
                cursor = next;
            }

            // Dispatch to the module handler (virtual call): bursty —
            // the same module usually handles consecutive events.
            if (ctx.rng.chance(0.05))
                handler = static_cast<u32>(ctx.rng.nextBelow(8));
            ctx.low.call(f_handler[handler], abi::CallKind::Virtual);

            // Handler body: touch the payload, local bookkeeping, a
            // data-dependent branch (~85/15 bias).
            ctx.low.load(cursor + off_time, 8, /*dependent=*/true);
            ctx.low.local(5);
            ctx.low.alu(7);
            ctx.low.branch(ctx.rng.chance(0.93));
            ctx.low.store(cursor + off_time, 8);
            ctx.low.capOverhead(6);
            ctx.low.loadPointer(cursor + off_dest, true);
            ctx.low.load(cursor + off_time, 8);
            ctx.low.alu(1);
            ctx.low.ret(); // handler

            // Schedule a follow-up event near the popped one: event
            // insertion exhibits the same locality as extraction.
            u64 fresh_idx = (pick / hot_l1) * hot_l1 +
                            ctx.rng.nextBelow(hot_l1);
            if (fresh_idx >= pool)
                fresh_idx = pick;
            const Addr fresh = nodes[fresh_idx];
            ctx.low.derivePointer();
            ctx.low.storePointer(fresh + off_next);
            ctx.low.storePointer(fresh + off_dest);
            ctx.low.store(fresh + off_time, 8);
            ctx.low.local(3);
            ctx.low.alu(4);

            if (sched_call)
                ctx.low.ret(); // scheduler
        }
    }

  private:
    WorkloadInfo info_;
    bool speed_;
};

} // namespace

std::unique_ptr<Workload>
makeOmnetpp(bool speed)
{
    return std::make_unique<OmnetppWorkload>(speed);
}

} // namespace cheri::workloads
