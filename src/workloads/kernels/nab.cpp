/**
 * @file
 * Proxy for 544.nab_r / 644.nab_s: Nucleic Acid Builder molecular
 * dynamics (floating-point force-field evaluation).
 *
 * Paper signature: compute-intensive (MI 0.42), tiny purecap overhead
 * (+5%), high FP share, a moderate DTLB-walk increase (+62%) under
 * purecap, and capability densities around 24%/15% (stack and
 * parameter-table traffic, not the particle data itself).
 *
 * Proxy structure: neighbor-list force computation: sequential index
 * loads, gathers of particle coordinates (pure doubles — identical
 * size under every ABI), and FMA-dominated force math with calls into
 * math-library helpers.
 */

#include "support/logging.hpp"
#include "workloads/context.hpp"
#include "workloads/kernels.hpp"

namespace cheri::workloads {

namespace {

class NabWorkload final : public Workload
{
  public:
    explicit NabWorkload(bool speed) : speed_(speed)
    {
        info_.name = speed ? "644.nab_s" : "544.nab_r";
        info_.suite = "SPEC CPU 2017";
        info_.description = "Molecular modeling (Nucleic Acid Builder)";
        info_.paperMi = speed ? 0.424 : 0.420;
        info_.paperTimeHybrid = 99.03;
        info_.paperTimeBenchmark = 103.39;
        info_.paperTimePurecap = 103.92;
        info_.binary = binsize::BinaryProfile{
            info_.name, 280 * kKiB, 40 * kKiB, 700, 30 * kKiB, 260,
            900 * kKiB, 240,        60,        1100 * kKiB, 50 * kKiB};
    }

    const WorkloadInfo &info() const override { return info_; }

    void
    run(sim::Core &core, const Scenario &scenario, Scale scale,
        u64 seed) const override
    {
        Ctx ctx(core, scenario, seed + (speed_ ? 1 : 0));
        const u32 f_main = ctx.code.addFunction(0, 500);
        const u32 f_force = ctx.code.addFunction(0, 1100);
        const u32 f_math = ctx.code.addFunction(1, 300); // libm
        ctx.low.enterFunction(f_main);

        // Particle data: 3 coordinates + 3 forces + charge (doubles).
        const u64 particles = 60'000;
        const Addr coords = ctx.alloc.allocate(particles * 56);
        const Addr neigh = ctx.alloc.allocate(particles * 4 * 8);
        ctx.low.derivePointer();

        const double f = scaleFactor(scale);
        const u64 pairs = static_cast<u64>(26'000 * f);
        ctx.low.call(f_force, abi::CallKind::Local);
        for (u64 pair = 0; pair < pairs; ++pair) {
            ctx.low.loopBegin();
            // Neighbor indices: sequential.
            ctx.low.load(neigh + (pair * 8) % (particles * 32), 4);
            const u64 a = ctx.rng.nextBelow(particles);
            const u64 b = ctx.rng.nextBelow(particles);
            // Gather coordinates.
            ctx.low.load(coords + a * 56, 8, true);
            ctx.low.load(coords + a * 56 + 16, 8);
            ctx.low.load(coords + b * 56, 8);
            ctx.low.load(coords + b * 56 + 16, 8);
            // Distance + Lennard-Jones/electrostatics.
            ctx.low.fp(14);
            ctx.low.mul(2);
            ctx.low.alu(6);
            if ((pair & 15) == 0) {
                ctx.low.call(f_math, abi::CallKind::CrossLib);
                ctx.low.fp(6);
                ctx.low.div();
                ctx.low.ret();
            }
            ctx.low.branch(ctx.rng.chance(0.94)); // cutoff test
            // Scatter forces.
            ctx.low.store(coords + a * 56 + 24, 8);
            ctx.low.store(coords + b * 56 + 24, 8);
        }
        ctx.low.ret();
    }

  private:
    WorkloadInfo info_;
    bool speed_;
};

} // namespace

std::unique_ptr<Workload>
makeNab(bool speed)
{
    return std::make_unique<NabWorkload>(speed);
}

} // namespace cheri::workloads
