/**
 * @file
 * Proxies for LLaMA.cpp (ggml) LLM inference.
 *
 * Two instances, matching §3.3:
 *  - matmul: two FP32 matrices (11008x4096)·(4096x128) — pure
 *    SIMD-dot streaming over a weight array far larger than the LLC;
 *    bandwidth-bound, essentially pointer-free, so the capability
 *    ABIs change almost nothing (the paper even measures a ~1.3%
 *    speed-up);
 *  - inference: q8_0 7B token generation — matmul plus attention
 *    (KV-cache streaming), layernorm/softmax scalar FP and a little
 *    pointer-based tensor bookkeeping; paper overhead ~1.3%.
 */

#include "support/logging.hpp"
#include "workloads/context.hpp"

#include <algorithm>
#include "workloads/kernels.hpp"

namespace cheri::workloads {

namespace {

/** Shared streaming-dot kernel over a big weight region. */
void
dotRows(Ctx &ctx, Addr weights, u64 weight_bytes, Addr acts, u64 rows,
        u64 cols_per_row)
{
    for (u64 row = 0; row < rows; ++row) {
        ctx.low.loopBegin();
        const u64 row_off = (row * cols_per_row * 4) % (weight_bytes - 4096);
        for (u64 c = 0; c < cols_per_row; c += 8) {
            // One q8_0-ish block: 16-byte weight chunk + activation.
            ctx.low.load(weights + row_off + c * 4, 16);
            ctx.low.load(acts + (c * 4) % 16384, 8);
            ctx.low.vec(6); // dot-product accumulate steps
        }
        ctx.low.fp(2);  // scale + bias
        ctx.low.alu(2);
        ctx.low.store(acts + (row * 4) % 16384, 4);
        ctx.low.branch(true); // row loop: predictable
    }
}

class LlamaMatmulWorkload final : public Workload
{
  public:
    LlamaMatmulWorkload()
    {
        info_.name = "LLaMA.matmul";
        info_.suite = "real-world";
        info_.description = "ggml FP32 matrix multiply (11008x4096)";
        info_.paperMi = 0.432;
        info_.paperTimeHybrid = 126.31;
        info_.paperTimeBenchmark = 124.57;
        info_.paperTimePurecap = 124.61;
        info_.binary = binsize::BinaryProfile{
            info_.name, 1300 * kKiB, 160 * kKiB, 2400, 70 * kKiB, 1100,
            600 * kKiB, 900,         110,        2800 * kKiB, 90 * kKiB};
    }

    const WorkloadInfo &info() const override { return info_; }

    void
    run(sim::Core &core, const Scenario &scenario, Scale scale,
        u64 seed) const override
    {
        Ctx ctx(core, scenario, seed);
        const u32 f_main = ctx.code.addFunction(0, 400);
        const u32 f_gemm = ctx.code.addFunction(0, 700);
        ctx.low.enterFunction(f_main);

        const u64 weight_bytes = 24 * kMiB;
        const Addr weights = ctx.alloc.allocate(weight_bytes);
        const Addr acts = ctx.alloc.allocate(64 * kKiB);
        ctx.low.derivePointer();

        const double f = scaleFactor(scale);
        ctx.low.call(f_gemm, abi::CallKind::Local);
        dotRows(ctx, weights, weight_bytes, acts,
                static_cast<u64>(430 * f), 96 * 8);
        ctx.low.ret();
    }

  private:
    WorkloadInfo info_;
};

class LlamaInferenceWorkload final : public Workload
{
  public:
    LlamaInferenceWorkload()
    {
        info_.name = "LLaMA.inference";
        info_.suite = "real-world";
        info_.description = "7B q8_0 token generation (prompt 512, gen 128)";
        info_.paperMi = 0.309;
        info_.paperTimeHybrid = 477.93;
        info_.paperTimeBenchmark = 483.79;
        info_.paperTimePurecap = 484.11;
        info_.binary = binsize::BinaryProfile{
            info_.name, 1400 * kKiB, 180 * kKiB, 2800, 80 * kKiB, 1300,
            800 * kKiB, 1000,        120,        3000 * kKiB, 100 * kKiB};
    }

    const WorkloadInfo &info() const override { return info_; }

    void
    run(sim::Core &core, const Scenario &scenario, Scale scale,
        u64 seed) const override
    {
        const abi::Abi abi = scenario.abi;
        Ctx ctx(core, scenario, seed);
        const u32 f_main = ctx.code.addFunction(0, 500);
        const u32 f_gemm = ctx.code.addFunction(0, 700);
        const u32 f_attn = ctx.code.addFunction(0, 600);
        const u32 f_norm = ctx.code.addFunction(0, 300);
        ctx.low.enterFunction(f_main);

        const u64 weight_bytes = 24 * kMiB;
        const Addr weights = ctx.alloc.allocate(weight_bytes);
        const Addr kv = ctx.alloc.allocate(4 * kMiB);
        const Addr acts = ctx.alloc.allocate(64 * kKiB);

        // Tensor graph bookkeeping: a few hundred tensor descriptors.
        const abi::StructDesc tensor_desc({
            abi::Field::pointer("data"),
            abi::Field::pointer("grad"),
            abi::Field::pointer("src0"),
            abi::Field::pointer("src1"),
            abi::Field::scalar(8, "ne"),
            abi::Field::scalar(4, "type"),
            abi::Field::scalar(4, "op"),
        });
        const std::vector<Addr> tensors =
            ctx.allocLinkedPool(tensor_desc, 512);
        const abi::RecordLayout tl = tensor_desc.layoutFor(abi);

        const double f = scaleFactor(scale);
        const u64 tokens = std::max<u64>(2, static_cast<u64>(10 * f));
        for (u64 token = 0; token < tokens; ++token) {
            ctx.low.loopBegin();
            for (int layer = 0; layer < 3; ++layer) {
                // Graph walk: pick the layer's tensors.
                const Addr t = tensors[ctx.rng.nextBelow(512)];
                ctx.low.loadPointer(t + tl.offsetOf(0));
                ctx.low.load(t + tl.offsetOf(4), 8);
                ctx.low.alu(2);

                // Projections: weight-streaming dot products.
                ctx.low.call(f_gemm, abi::CallKind::Local);
                dotRows(ctx, weights, weight_bytes, acts, 24, 64 * 8);
                ctx.low.ret();

                // Attention over the KV cache.
                ctx.low.call(f_attn, abi::CallKind::Local);
                for (int pos = 0; pos < 48; ++pos) {
                    ctx.low.load(kv + (pos * 512) % (4 * kMiB - 64), 16);
                    ctx.low.vec(5);
                }
                ctx.low.fp(8); // softmax
                ctx.low.div();
                ctx.low.ret();

                // Layernorm.
                ctx.low.call(f_norm, abi::CallKind::Local);
                ctx.low.fp(12);
                ctx.low.alu(4);
                ctx.low.ret();
            }
            ctx.low.branch(ctx.rng.chance(0.97)); // sampling accept
        }
    }

  private:
    WorkloadInfo info_;
};

} // namespace

std::unique_ptr<Workload>
makeLlamaMatmul()
{
    return std::make_unique<LlamaMatmulWorkload>();
}

std::unique_ptr<Workload>
makeLlamaInference()
{
    return std::make_unique<LlamaInferenceWorkload>();
}

} // namespace cheri::workloads
