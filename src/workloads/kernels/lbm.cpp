/**
 * @file
 * Proxy for 519.lbm_r: Lattice-Boltzmann fluid simulation.
 *
 * Paper signature: compute-classified (MI 0.44) but heavily
 * DRAM-bound (ExtMem bound 0.51 under hybrid), L1D miss rate ~20%,
 * and — the interesting part — a ~8% *speed-up* under both capability
 * ABIs, with the top-down profile shifting from memory- to
 * core-bound.
 *
 * Proxy structure: a multi-stream stencil sweep over distribution
 * arrays. The arrays are sized 512 KiB + 16 B, so under hybrid the
 * 16-byte allocator granule leaves consecutive array bases offset by
 * only 16 B — all streams collide in the same few L1D sets and the
 * 4-way associativity thrashes. Under the capability ABIs, CHERI
 * representability padding rounds each array to a 64-byte boundary,
 * skewing the bases by a full cache line and de-aliasing the streams:
 * the same mechanical layout-side-effect class the paper credits for
 * lbm's counter-intuitive speed-up.
 */

#include "support/logging.hpp"
#include "workloads/context.hpp"
#include "workloads/kernels.hpp"

namespace cheri::workloads {

namespace {

constexpr u32 kStreams = 8;
constexpr u64 kArrayBytes = 512 * kKiB + 16;

class LbmWorkload final : public Workload
{
  public:
    LbmWorkload()
    {
        info_.name = "519.lbm_r";
        info_.suite = "SPEC CPU 2017";
        info_.description = "Lattice Boltzmann 3D incompressible fluids";
        info_.paperMi = 0.438;
        info_.paperTimeHybrid = 38.00;
        info_.paperTimeBenchmark = 35.06;
        info_.paperTimePurecap = 35.09;
        info_.binary = binsize::BinaryProfile{
            info_.name, 140 * kKiB, 20 * kKiB, 300,  30 * kKiB, 120,
            380 * kKiB, 160,        40,        900 * kKiB, 40 * kKiB};
    }

    const WorkloadInfo &info() const override { return info_; }

    void
    run(sim::Core &core, const Scenario &scenario, Scale scale,
        u64 seed) const override
    {
        Ctx ctx(core, scenario, seed);
        const u32 f_main = ctx.code.addFunction(0, 600);
        const u32 f_collide = ctx.code.addFunction(0, 900);
        ctx.low.enterFunction(f_main);

        // Distribution arrays, allocated back-to-back.
        Addr base[kStreams];
        for (auto &addr : base) {
            addr = ctx.alloc.allocate(kArrayBytes);
            ctx.low.derivePointer();
        }

        const double f = scaleFactor(scale);
        const u64 cells = static_cast<u64>(26'000 * f);
        const u64 span = (kArrayBytes - 64) / 8;

        ctx.low.call(f_collide, abi::CallKind::Local);
        for (u64 cell = 0; cell < cells; ++cell) {
            ctx.low.loopBegin();
            const u64 i = cell % span;
            // Gather the distributions of this cell from every stream.
            for (u32 s = 0; s < kStreams; ++s)
                ctx.low.load(base[s] + i * 8, 8);
            // Collision: FP-heavy update.
            ctx.low.fp(26);
            ctx.low.alu(10);
            ctx.low.branch(true); // loop branch: fully predictable
            // Scatter the post-collision distributions (streaming).
            for (u32 s = 0; s < kStreams; ++s)
                ctx.low.store(base[s] + i * 8, 8);
        }
        ctx.low.ret();
    }

  private:
    WorkloadInfo info_;
};

} // namespace

std::unique_ptr<Workload>
makeLbm()
{
    return std::make_unique<LbmWorkload>();
}

} // namespace cheri::workloads
