/**
 * @file
 * Proxy for QuickJS running the Test262 ECMAScript suite.
 *
 * Paper signature: the most CHERI-hostile workload — classified
 * compute-intensive (MI 0.68) yet suffering the study's worst purecap
 * overhead (+166%): 18,612 small JS programs executed back-to-back,
 * each with its own parse / object allocation / execution / teardown
 * cycle. Boxed JS values make most loads pointer loads (capability
 * load density 57% purecap), the interpreter's code footprint
 * pressures L1I (1.17% -> 1.67% miss rate), and the allocation churn
 * inflates the touched footprint (+36%) and TLB walk counts. Under
 * the benchmark ABI the binary aborts with an in-address-space
 * security exception (paper Appendix) — reported as NA.
 *
 * Proxy structure: a loop of small "programs": allocate a fresh
 * object graph, interpret bytecodes through high-entropy indirect
 * dispatch where operand fetches are pointer loads and property
 * lookups are shape-chain chases, then tear the graph down.
 */

#include "support/logging.hpp"
#include "workloads/context.hpp"
#include "workloads/kernels.hpp"

namespace cheri::workloads {

namespace {

class QuickjsWorkload final : public Workload
{
  public:
    QuickjsWorkload()
    {
        info_.name = "QuickJS";
        info_.suite = "real-world";
        info_.description = "Test262 ECMAScript suite on QuickJS";
        info_.paperMi = 0.680;
        info_.paperTimeHybrid = 22.51;
        info_.paperTimeBenchmark = 0; // NA: security exception
        info_.paperTimePurecap = 59.87;
        info_.benchmarkAbiRuns = false;
        info_.binary = binsize::BinaryProfile{
            info_.name, 1200 * kKiB, 260 * kKiB, 12'000, 80 * kKiB, 4'000,
            160 * kKiB, 1900,        120,        2200 * kKiB, 90 * kKiB};
    }

    const WorkloadInfo &info() const override { return info_; }

    void
    run(sim::Core &core, const Scenario &scenario, Scale scale,
        u64 seed) const override
    {
        const abi::Abi abi = scenario.abi;
        Ctx ctx(core, scenario, seed);

        // The interpreter loop is one huge function (~40 KiB hybrid,
        // exceeding the 64 KiB L1I together with the runtime helpers).
        const u32 f_main = ctx.code.addFunction(0, 400);
        const u32 f_interp = ctx.code.addFunction(0, 10'000);
        u32 f_runtime[10];
        for (auto &f : f_runtime)
            f = ctx.code.addFunction(0, 900);
        const u32 f_libc = ctx.code.addFunction(1, 600);
        ctx.low.enterFunction(f_main);

        // JS object: shape pointer, prototype, property slots (boxed
        // values are themselves pointers).
        const abi::StructDesc obj_desc({
            abi::Field::pointer("shape"),
            abi::Field::pointer("proto"),
            abi::Field::pointer("prop0"),
            abi::Field::pointer("prop1"),
            abi::Field::pointer("prop2"),
            abi::Field::scalar(4, "class_id"),
            abi::Field::scalar(4, "flags"),
            abi::Field::scalar(8, "refcount"),
        });
        const abi::RecordLayout obj = obj_desc.layoutFor(abi);

        const double f = scaleFactor(scale);
        const u64 programs = static_cast<u64>(110 * f);
        const u64 objs_per_program = 2600;

        for (u64 prog = 0; prog < programs; ++prog) {
            ctx.low.loopBegin();
            // Parse + compile: allocation-heavy work that also writes
            // every fresh object (initialization warms the lines).
            std::vector<Addr> graph;
            graph.reserve(objs_per_program);
            for (u64 i = 0; i < objs_per_program; ++i) {
                const Addr addr = ctx.alloc.allocate(obj.size, obj.align);
                graph.push_back(addr);
                if ((i & 7) == 0)
                    ctx.low.derivePointer();
                ctx.low.storePointer(addr + obj.offsetOf(0));
                ctx.low.store(addr + obj.offsetOf(7), 8);
                ctx.low.alu(4);
                // Link prototype chains through the fresh graph.
                ctx.core.store().write(
                    addr + obj.offsetOf(1),
                    graph[ctx.rng.nextBelow(graph.size())], 8);
            }

            // Compile a small bytecode "program": each test is a loop
            // over a fixed opcode trace, so dispatch targets repeat
            // within a program but differ across programs.
            const u64 trace_len = 24;
            std::vector<u32> trace(trace_len);
            std::vector<u32> operand(trace_len);
            for (u64 i = 0; i < trace_len; ++i) {
                trace[i] = static_cast<u32>(ctx.rng.nextBelow(160));
                operand[i] = static_cast<u32>(
                    ctx.rng.nextBelow(objs_per_program));
            }

            // Execute: the interpreter loop.
            ctx.low.call(f_interp, abi::CallKind::Local);
            // The VM operand stack: JSValues are boxed pointers, so
            // every push/pop moves a capability under purecap (two
            // store-queue entries each) but a plain 8-byte word under
            // hybrid — QuickJS's dominant purecap cost.
            const Addr vm_stack = ctx.alloc.allocate(4096, 16);
            const u64 iterations = 16;
            for (u64 it = 0; it < iterations; ++it) {
                ctx.low.loopBegin();
                for (u64 b = 0; b < trace_len; ++b) {
                    // Opcode dispatch: indirect branch; repeats within
                    // the program, shifts across programs.
                    ctx.low.dispatch(trace[b]);
                    ctx.low.alu(9); // type tests, refcount math
                    ctx.low.local(2);

                    // Operand fetch: boxed values = pointer
                    // loads, re-pushed onto the VM stack.
                    const Addr o = graph[operand[b]];
                    ctx.low.loadPointer(o + obj.offsetOf(2));
                    const Addr slot = vm_stack + 32 * (b % 8);
                    ctx.low.storePointer(slot);
                    ctx.low.loadPointer(slot);
                    ctx.low.storePointer(slot + 16 * (b % 2));
                    ctx.low.derivePointer();

                    // Property lookup: shape/prototype chain chase.
                    Addr cursor = o;
                    for (int hop = 0; hop < 2; ++hop) {
                        const Addr next = ctx.core.store().read(
                            cursor + obj.offsetOf(1), 8);
                        ctx.low.loadPointer(cursor + obj.offsetOf(1),
                                            /*dependent=*/true);
                        cursor = next ? next : o;
                    }
                    ctx.low.branch(((it + b) & 3) != 0);

                    // Boxed-value plumbing: under CHERI C the NaN-boxed
                    // JSValue fast paths are gone; every value move
                    // re-derives and copies a full capability.
                    ctx.low.capOverhead(26);
                    if (ctx.abi != abi::Abi::Hybrid) {
                        // Boxed-value copies are capability moves.
                        const Addr slot2 = vm_stack + 32 * ((b + 3) % 8);
                        ctx.low.storePointer(slot2);
                        ctx.low.loadPointer(slot2);
                    }

                    // Result write: a boxed store.
                    ctx.low.storePointer(o + obj.offsetOf(3));

                    // Occasional runtime helper (string/number/etc.).
                    if ((b % 12) == 0) {
                        ctx.low.call(f_runtime[trace[b] % 10],
                                     abi::CallKind::Virtual);
                        ctx.low.alu(8);
                        ctx.low.load(cursor + obj.offsetOf(7), 8);
                        ctx.low.ret();
                    }
                }
            }
            ctx.low.ret(); // interpreter

            // Teardown: refcount sweeps + free into the allocator.
            ctx.low.call(f_libc, abi::CallKind::CrossLib);
            for (u64 i = 0; i < objs_per_program; i += 8) {
                ctx.low.load(graph[i] + obj.offsetOf(7), 8);
                ctx.low.store(graph[i] + obj.offsetOf(7), 8);
                ctx.low.alu(1);
            }
            ctx.low.ret();
            // Test262 churn: most graphs are NOT reused — fresh pages
            // next program (footprint growth + TLB pressure). Only a
            // small fraction returns to the free lists.
            if (ctx.rng.chance(0.2)) {
                for (const Addr addr : graph)
                    ctx.alloc.free(addr, obj.size);
            }
        }
    }

  private:
    WorkloadInfo info_;
};

} // namespace

std::unique_ptr<Workload>
makeQuickjs()
{
    return std::make_unique<QuickjsWorkload>();
}

} // namespace cheri::workloads
