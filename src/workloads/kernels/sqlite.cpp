/**
 * @file
 * Proxy for SQLite3 speedtest1.
 *
 * Paper signature: balanced intensity (MI 0.82), a very high L1I miss
 * rate (~4.3% — SQLite's bytecode VM and B-tree code footprint), a
 * notable *hybrid* capability share (~17%, CheriBSD libc), purecap
 * overhead +61% of which the benchmark ABI recovers little (the cost
 * is data-side: capability load density ~50%).
 *
 * Proxy structure: per query, descend a B-tree by page pointers
 * (dependent capability hops), binary-search within the page, execute
 * a few VDBE bytecode ops through indirect dispatch, copy the row
 * out, and call through the VFS/libc layer (cross-library). Code is
 * spread over dozens of round-robin functions to reproduce the L1I
 * pressure.
 */

#include "support/logging.hpp"
#include "workloads/context.hpp"
#include "workloads/kernels.hpp"

namespace cheri::workloads {

namespace {

class SqliteWorkload final : public Workload
{
  public:
    SqliteWorkload()
    {
        info_.name = "SQLite";
        info_.suite = "real-world";
        info_.description = "speedtest1 embedded SQL workload";
        info_.paperMi = 0.816;
        info_.paperTimeHybrid = 18.18;
        info_.paperTimeBenchmark = 28.24;
        info_.paperTimePurecap = 29.30;
        info_.binary = binsize::BinaryProfile{
            info_.name, 1500 * kKiB, 300 * kKiB, 8000, 90 * kKiB, 2600,
            220 * kKiB, 1600,        130,        2600 * kKiB, 110 * kKiB};
    }

    const WorkloadInfo &info() const override { return info_; }

    void
    run(sim::Core &core, const Scenario &scenario, Scale scale,
        u64 seed) const override
    {
        const abi::Abi abi = scenario.abi;
        Ctx ctx(core, scenario, seed);

        // Wide, flat code footprint: the VDBE + B-tree + OS layers.
        const u32 f_main = ctx.code.addFunction(0, 600);
        u32 f_stage[36];
        for (auto &f : f_stage)
            f = ctx.code.addFunction(0, 620);
        const u32 f_vfs = ctx.code.addFunction(1, 500); // libc/VFS
        ctx.low.enterFunction(f_main);

        // B-tree pages: header with sibling/overflow pointers + cell
        // pointer array (pointers!) + payload.
        const abi::StructDesc page_desc({
            abi::Field::pointer("right_child"),
            abi::Field::pointer("overflow"),
            abi::Field::pointer("cell0"),
            abi::Field::pointer("cell1"),
            abi::Field::pointer("cell2"),
            abi::Field::pointer("cell3"),
            abi::Field::scalar(8, "hdr"),
            abi::Field::scalar(8, "key0"),
            abi::Field::scalar(8, "key1"),
            abi::Field::scalar(8, "key2"),
            abi::Field::scalar(8, "payload0"),
            abi::Field::scalar(8, "payload1"),
            abi::Field::scalar(8, "payload2"),
            abi::Field::scalar(8, "payload3"),
        });
        const abi::RecordLayout page = page_desc.layoutFor(abi);
        // Page pool near the L2/TLB boundary: hybrid ~1.3 MiB hot set.
        const u64 pages = 64'000;
        const u64 hot = 11'000;
        const std::vector<Addr> pool =
            ctx.allocLinkedPool(page_desc, pages);

        const double f = scaleFactor(scale);
        const u64 queries = static_cast<u64>(13'000 * f);
        u32 vdbe_op = 0;
        for (u64 q = 0; q < queries; ++q) {
            ctx.low.loopBegin();
            const u32 stage = f_stage[q % 36];
            ctx.low.call(stage, abi::CallKind::Local);

            // VDBE: a few bytecode ops through indirect dispatch; the
            // opcode mix shifts slowly (speedtest1 runs each statement
            // shape many times in a row).
            for (int op = 0; op < 4; ++op) {
                if (ctx.rng.chance(0.02))
                    vdbe_op = static_cast<u32>(ctx.rng.nextBelow(48));
                ctx.low.dispatch(vdbe_op);
                ctx.low.alu(4);
                ctx.low.local(3);
                ctx.low.load(pool[ctx.rng.nextBelow(900)] +
                                 page.offsetOf(7),
                             8);
            }

            // B-tree descent: 4 levels of dependent page-pointer hops.
            Addr cursor = pool[ctx.rng.chance(0.9)
                                   ? ctx.rng.nextBelow(hot)
                                   : ctx.rng.nextBelow(pages)];
            for (int level = 0; level < 4; ++level) {
                const u32 cell =
                    2 + static_cast<u32>(ctx.rng.nextBelow(4));
                const Addr next = ctx.core.store().read(
                    cursor + page.offsetOf(0), 8);
                ctx.low.loadPointer(cursor + page.offsetOf(cell),
                                    /*dependent=*/level > 0);
                // Binary search within the page.
                ctx.low.load(cursor + page.offsetOf(7 + (cell % 3)), 8);
                ctx.low.alu(3);
                ctx.low.branch(ctx.rng.chance(0.95));
                cursor = next;
            }

            ctx.low.capOverhead(8);

            // Row copy-out through VM registers.
            ctx.low.local(6);
            for (int col = 0; col < 3; ++col) {
                ctx.low.load(cursor + page.offsetOf(10 + col), 8, col == 0);
                ctx.low.store(cursor + page.offsetOf(10 + col), 8);
            }

            // Journal / VFS syscall-ish path.
            if ((q & 3) == 0) {
                ctx.low.call(f_vfs, abi::CallKind::CrossLib);
                ctx.low.alu(6);
                ctx.low.store(cursor + page.offsetOf(6), 8);
                ctx.low.ret();
            }
            ctx.low.ret(); // stage
        }
    }

  private:
    WorkloadInfo info_;
};

} // namespace

std::unique_ptr<Workload>
makeSqlite()
{
    return std::make_unique<SqliteWorkload>();
}

} // namespace cheri::workloads
