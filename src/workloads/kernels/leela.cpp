/**
 * @file
 * Proxy for 541.leela_r / 641.leela_s: Monte-Carlo tree search (Go).
 *
 * Paper signature: compute-intensive (MI 0.57) with the suite's worst
 * branch predictability (~7.3% miss rate, from playout randomness),
 * purecap overhead +23% of which the benchmark ABI recovers
 * a sizeable share (+14%) — the UCT descent is virtual-call-flavoured
 * — and a large DTLB-walk increase (~4x) under purecap.
 *
 * Proxy structure: repeated MCTS iterations: a UCT descent chasing
 * child pointers through a pointer-rich node tree, a random playout
 * of ALU work with highly unpredictable branches, and a backup pass
 * rewriting node statistics.
 */

#include "support/logging.hpp"
#include "workloads/context.hpp"
#include "workloads/kernels.hpp"

namespace cheri::workloads {

namespace {

class LeelaWorkload final : public Workload
{
  public:
    explicit LeelaWorkload(bool speed) : speed_(speed)
    {
        info_.name = speed ? "641.leela_s" : "541.leela_r";
        info_.suite = "SPEC CPU 2017";
        info_.description = "Monte Carlo tree search (Go)";
        info_.paperMi = 0.565;
        info_.paperTimeHybrid = 97.01;
        info_.paperTimeBenchmark = 110.59;
        info_.paperTimePurecap = 119.46;
        info_.binary = binsize::BinaryProfile{
            info_.name, 420 * kKiB, 70 * kKiB, 2600, 50 * kKiB, 900,
            520 * kKiB, 520,        80,        1600 * kKiB, 70 * kKiB};
    }

    const WorkloadInfo &info() const override { return info_; }

    void
    run(sim::Core &core, const Scenario &scenario, Scale scale,
        u64 seed) const override
    {
        const abi::Abi abi = scenario.abi;
        Ctx ctx(core, scenario, seed + (speed_ ? 1 : 0));
        const u32 f_main = ctx.code.addFunction(0, 700);
        const u32 f_uct = ctx.code.addFunction(0, 800);
        u32 f_policy[4];
        for (auto &f : f_policy)
            f = ctx.code.addFunction(1, 300); // policy helpers (library)
        const u32 f_playout = ctx.code.addFunction(0, 1200);
        ctx.low.enterFunction(f_main);

        // UCT node: pointer-rich (parent, 2 child slots, move list).
        const abi::StructDesc node_desc({
            abi::Field::pointer("parent"),
            abi::Field::pointer("child_a"),
            abi::Field::pointer("child_b"),
            abi::Field::pointer("moves"),
            abi::Field::scalar(8, "visits"),
            abi::Field::scalar(8, "score"),
        });
        const abi::RecordLayout node = node_desc.layoutFor(abi);
        // Tree sized so purecap growth (64 -> 96 B) crosses both the
        // L2 capacity and the hot-path TLB reach.
        const u64 pool = 12'000;
        const std::vector<Addr> nodes =
            ctx.allocLinkedPool(node_desc, pool, true, 3000);

        const double f = scaleFactor(scale);
        const u64 iterations = static_cast<u64>(11'000 * f);
        u32 policy = 0;
        for (u64 iter = 0; iter < iterations; ++iter) {
            ctx.low.loopBegin();
            // UCT descent: 6 pointer hops with UCB arithmetic.
            ctx.low.call(f_uct, abi::CallKind::Local);
            Addr cursor = nodes[ctx.rng.chance(0.7)
                                    ? ctx.rng.nextBelow(3000)
                                    : ctx.rng.nextBelow(pool)];
            for (int hop = 0; hop < 6; ++hop) {
                const u32 slot = ctx.rng.chance(0.5) ? 1 : 2;
                const Addr next = ctx.core.store().read(
                    cursor + node.offsetOf(0), 8);
                ctx.low.loadPointer(cursor + node.offsetOf(slot),
                                    /*dependent=*/hop > 0);
                ctx.low.load(cursor + node.offsetOf(4), 8);
                ctx.low.fp(2); // UCB term
                ctx.low.alu(2);
                ctx.low.branch(ctx.rng.chance(0.85)); // child choice
                cursor = next;
            }
            // Expansion: policy evaluation in the support library.
            if (ctx.rng.chance(0.1))
                policy = static_cast<u32>(ctx.rng.nextBelow(4));
            ctx.low.call(f_policy[policy], abi::CallKind::Virtual);
            ctx.low.alu(6);
            ctx.low.fp(2);
            ctx.low.ret();
            ctx.low.ret(); // f_uct

            // Random playout: ALU work; a fraction of the move
            // legality branches are true coin flips (the suite's worst
            // predictability comes from here).
            ctx.low.call(f_playout, abi::CallKind::Local);
            for (int move = 0; move < 22; ++move) {
                ctx.low.alu(4);
                ctx.low.local(1);
                const bool taken = (move & 7) == 0
                                       ? ctx.rng.chance(0.5)
                                       : ((iter + move) & 7) < 6;
                ctx.low.branch(taken);
                if ((move & 3) == 0)
                    ctx.low.load(cursor + node.offsetOf(5), 8);
            }
            ctx.low.mul(2);
            ctx.low.ret();

            // Backup: rewrite statistics along the path.
            const u64 win = ctx.rng.nextBelow(pool / 3000) * 3000;
            for (int hop = 0; hop < 4; ++hop) {
                const u64 idx = win + ctx.rng.nextBelow(3000);
                ctx.low.store(nodes[idx] + node.offsetOf(4), 8);
                ctx.low.storePointer(nodes[idx] + node.offsetOf(1));
                ctx.low.alu(2);
            }
        }
    }

  private:
    WorkloadInfo info_;
    bool speed_;
};

} // namespace

std::unique_ptr<Workload>
makeLeela(bool speed)
{
    return std::make_unique<LeelaWorkload>(speed);
}

} // namespace cheri::workloads
