/**
 * @file
 * Proxy for 523.xalancbmk_r / 623.xalancbmk_s: XSLT transformation of
 * XML documents (Xalan + the Xerces-C DOM library).
 *
 * Paper signature: balanced intensity (MI 0.86), the largest
 * PCC-sensitive overhead in the suite — purecap 2.03x vs hybrid, of
 * which more than half vanishes under the benchmark ABI (1.45x) —
 * plus a dramatic DTLB-walk increase (~12x) under purecap.
 *
 * Proxy structure: a DOM-like tree of nodes with per-node child
 * pointer arrays, visited by a recursive template-matching walk in
 * which *every node dispatches through virtual calls into the parser
 * library* (hence the dense PCC-bounds traffic), interleaved with
 * string/attribute processing. The tree spans enough pages that the
 * purecap footprint growth pushes the walk out of the 1280-entry L2
 * TLB's coverage.
 */

#include "support/logging.hpp"
#include "workloads/context.hpp"

#include <algorithm>
#include "workloads/kernels.hpp"

namespace cheri::workloads {

namespace {

class XalancbmkWorkload final : public Workload
{
  public:
    explicit XalancbmkWorkload(bool speed) : speed_(speed)
    {
        info_.name = speed ? "623.xalancbmk_s" : "523.xalancbmk_r";
        info_.suite = "SPEC CPU 2017";
        info_.description = "XSLT processor transforming XML documents";
        info_.paperMi = 0.860;
        info_.paperTimeHybrid = 53.59;
        info_.paperTimeBenchmark = 77.95;
        info_.paperTimePurecap = 109.07;
        info_.binary = binsize::BinaryProfile{
            info_.name, 4600 * kKiB, 900 * kKiB, 26'000, 130 * kKiB,
            9'000,      180 * kKiB,  5200,       240,    9000 * kKiB,
            200 * kKiB};
    }

    const WorkloadInfo &info() const override { return info_; }

    void
    run(sim::Core &core, const Scenario &scenario, Scale scale,
        u64 seed) const override
    {
        const abi::Abi abi = scenario.abi;
        Ctx ctx(core, scenario, seed + (speed_ ? 1 : 0));

        // Main transform code plus the Xerces DOM library (lib 1):
        // virtual handlers resolve into library code.
        const u32 f_main = ctx.code.addFunction(0, 900);
        u32 f_visit[12];
        for (auto &f : f_visit)
            f = ctx.code.addFunction(1, 260);
        const u32 f_string = ctx.code.addFunction(1, 400);
        ctx.low.enterFunction(f_main);

        // DOM node: vtable + parent/sibling/child pointers + attrs.
        // hybrid: 56 B -> purecap: 104 B (page-pressure driver).
        const abi::StructDesc node_desc({
            abi::Field::pointer("vptr"),
            abi::Field::pointer("first_child"),
            abi::Field::pointer("next_sibling"),
            abi::Field::pointer("attrs"),
            abi::Field::pointer("text"),
            abi::Field::scalar(4, "type"),
            abi::Field::scalar(4, "len"),
            abi::Field::scalar(8, "hash"),
        });
        const abi::RecordLayout layout = node_desc.layoutFor(abi);
        const u32 off_child = layout.offsetOf(1);
        const u32 off_sib = layout.offsetOf(2);
        const u32 off_hash = layout.offsetOf(7);

        const double f = scaleFactor(scale);
        // Tree size: hybrid footprint ~3.6 MiB (fits the ~5 MiB L2-TLB
        // coverage at 4 KiB pages); purecap ~6.7 MiB (does not).
        const u64 pool = std::max<u64>(2048, static_cast<u64>(64'000 * f));
        const std::vector<Addr> nodes =
            ctx.allocLinkedPool(node_desc, pool);

        const u64 visits = static_cast<u64>(46'000 * f);
        const u64 hot = std::min<u64>(pool, 13'000);
        u32 matched = 0;
        for (u64 visit = 0; visit < visits; ++visit) {
            ctx.low.loopBegin();
            // Template match: virtual dispatch into library code for
            // the node and a handful of its children — the dense
            // capability-branch pattern the benchmark ABI repairs.
            const Addr node = nodes[ctx.rng.chance(0.92)
                                        ? ctx.rng.nextBelow(hot)
                                        : ctx.rng.nextBelow(pool)];
            if (ctx.rng.chance(0.06))
                matched = static_cast<u32>(ctx.rng.nextBelow(12));
            ctx.low.call(f_visit[matched], abi::CallKind::Virtual);

            Addr child = ctx.core.store().read(node + off_child, 8);
            ctx.low.loadPointer(node + off_child);
            for (int i = 0; i < 3; ++i) {
                ctx.low.loadPointer(child + off_sib, /*dependent=*/true);
                ctx.low.load(child + off_hash, 8);
                ctx.low.alu(2);
                ctx.low.branch(ctx.rng.chance(0.93));
                child = ctx.core.store().read(child + off_sib, 8);
                // Each child classification is its own virtual call.
                ctx.low.call(f_visit[(matched + i) % 12],
                             abi::CallKind::Virtual);
                ctx.low.alu(3);
                ctx.low.ret();
            }

            ctx.low.capOverhead(22);

            // String/attribute handling in the library.
            ctx.low.call(f_string, abi::CallKind::CrossLib);
            for (int i = 0; i < 4; ++i) {
                ctx.low.load(node + off_hash, 8);
                ctx.low.alu(3);
            }
            ctx.low.store(node + off_hash, 8);
            ctx.low.ret(); // f_string

            ctx.low.ret(); // node visit
        }
    }

  private:
    WorkloadInfo info_;
    bool speed_;
};

} // namespace

std::unique_ptr<Workload>
makeXalancbmk(bool speed)
{
    return std::make_unique<XalancbmkWorkload>(speed);
}

} // namespace cheri::workloads
