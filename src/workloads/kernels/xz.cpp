/**
 * @file
 * Proxy for 557.xz_r / 657.xz_s: LZMA compression (XZ utils).
 *
 * Paper signature: compute-intensive (MI 0.51), high branch miss rate
 * (~5.5%, literal/match decisions), very high L2 miss rate (~22%, the
 * match-finder window), small purecap overhead (+6.5%).
 *
 * Proxy structure: a hash-chain match finder over a large window
 * buffer: hash the current position, follow a chain of *integer*
 * indices (dependent loads whose footprint does not grow under
 * purecap — which is why xz stays cheap), compare candidate matches
 * byte-wise with unpredictable exit branches, then range-code the
 * decision with ALU work.
 */

#include "support/logging.hpp"
#include "workloads/context.hpp"
#include "workloads/kernels.hpp"

namespace cheri::workloads {

namespace {

class XzWorkload final : public Workload
{
  public:
    explicit XzWorkload(bool speed) : speed_(speed)
    {
        info_.name = speed ? "657.xz_s" : "557.xz_r";
        info_.suite = "SPEC CPU 2017";
        info_.description = "LZMA data compression";
        info_.paperMi = speed ? 0.504 : 0.514;
        info_.paperTimeHybrid = 46.93;
        info_.paperTimeBenchmark = 49.65;
        info_.paperTimePurecap = 49.98;
        info_.binary = binsize::BinaryProfile{
            info_.name, 240 * kKiB, 50 * kKiB, 600, 30 * kKiB, 280,
            3200 * kKiB, 260,       60,        800 * kKiB, 40 * kKiB};
    }

    const WorkloadInfo &info() const override { return info_; }

    void
    run(sim::Core &core, const Scenario &scenario, Scale scale,
        u64 seed) const override
    {
        Ctx ctx(core, scenario, seed + (speed_ ? 1 : 0));
        const u32 f_main = ctx.code.addFunction(0, 500);
        const u32 f_find = ctx.code.addFunction(0, 900);
        const u32 f_code = ctx.code.addFunction(0, 700);
        ctx.low.enterFunction(f_main);

        // Window + hash chains: integer indices, ABI-size invariant.
        const u64 window = 8 * kMiB;
        const u64 chain_slots = kMiB;
        const Addr buf = ctx.alloc.allocate(window);
        const Addr chains = ctx.alloc.allocate(chain_slots * 4);
        ctx.low.derivePointer();

        const double f = scaleFactor(scale);
        const u64 positions = static_cast<u64>(30'000 * f);
        u64 pos = 0;
        for (u64 p = 0; p < positions; ++p) {
            ctx.low.loopBegin();
            pos = (pos + 1 + ctx.rng.nextBelow(8)) % (window - 64);

            ctx.low.call(f_find, abi::CallKind::Local);
            // Hash the next bytes, index the chain head.
            ctx.low.load(buf + pos, 4);
            ctx.low.alu(4);
            ctx.low.load(chains + (ctx.rng.nextBelow(chain_slots)) * 4, 4,
                         /*dependent=*/true);
            // Follow the chain: candidate positions, byte compares.
            const u32 depth = 1 + static_cast<u32>(ctx.rng.nextBelow(3));
            for (u32 d = 0; d < depth; ++d) {
                // Candidates cluster near the current position; the
                // cold tail reaches across the whole window (L2 miss).
                const u64 cand =
                    ctx.rng.chance(0.6)
                        ? (pos + window - 32'768 +
                           ctx.rng.nextBelow(32'000)) % (window - 64)
                        : ctx.rng.nextBelow(window - 64);
                ctx.low.load(buf + cand, 8, /*dependent=*/d == 0);
                ctx.low.load(buf + pos + d * 8, 8);
                ctx.low.alu(3);
                ctx.low.branch(ctx.rng.chance(0.55)); // match length exit
            }
            ctx.low.ret();

            // Range coder: serial ALU with mispredictable bit choices.
            ctx.low.call(f_code, abi::CallKind::Local);
            for (int bit = 0; bit < 6; ++bit) {
                ctx.low.alu(3);
                ctx.low.local(1);
                ctx.low.mul(1);
                // Range-coder bit choices: genuinely data-dependent.
                ctx.low.branch((bit & 1) ? ctx.rng.chance(0.5)
                                         : ctx.rng.chance(0.9));
            }
            ctx.low.store(buf + (p * 8) % window, 8);
            ctx.low.ret();
        }
    }

  private:
    WorkloadInfo info_;
    bool speed_;
};

} // namespace

std::unique_ptr<Workload>
makeXz(bool speed)
{
    return std::make_unique<XzWorkload>(speed);
}

} // namespace cheri::workloads
