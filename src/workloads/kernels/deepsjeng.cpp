/**
 * @file
 * Proxy for 531.deepsjeng_r / 631.deepsjeng_s: alpha-beta chess tree
 * search with a transposition table.
 *
 * Paper signature: compute-intensive (MI 0.49), branch miss rate ~3%,
 * very high L2 miss rate (~23%, the transposition table), modest
 * purecap overhead (+17%, mostly call/stack capability traffic: the
 * capability store density jumps to ~41%).
 *
 * Proxy structure: recursive negamax to depth ~6 with a random
 * branching factor; per node, move-generation ALU work, a probe into
 * a multi-megabyte transposition table (random, L2-missing), and an
 * evaluation with data-dependent branches.
 */

#include "support/logging.hpp"
#include "workloads/context.hpp"
#include "workloads/kernels.hpp"

namespace cheri::workloads {

namespace {

class DeepsjengWorkload final : public Workload
{
  public:
    explicit DeepsjengWorkload(bool speed) : speed_(speed)
    {
        info_.name = speed ? "631.deepsjeng_s" : "531.deepsjeng_r";
        info_.suite = "SPEC CPU 2017";
        info_.description = "Alpha-beta tree search (chess)";
        info_.paperMi = speed ? 0.496 : 0.489;
        info_.paperTimeHybrid = 67.42;
        info_.paperTimeBenchmark = 73.64;
        info_.paperTimePurecap = 78.85;
        info_.binary = binsize::BinaryProfile{
            info_.name, 360 * kKiB, 60 * kKiB, 1200, 40 * kKiB, 420,
            5200 * kKiB, 380,       70,        1400 * kKiB, 60 * kKiB};
    }

    const WorkloadInfo &info() const override { return info_; }

    void
    run(sim::Core &core, const Scenario &scenario, Scale scale,
        u64 seed) const override
    {
        Ctx ctx(core, scenario, seed + (speed_ ? 1 : 0));
        const u32 f_main = ctx.code.addFunction(0, 600);
        const u32 f_search = ctx.code.addFunction(0, 1400);
        const u32 f_eval = ctx.code.addFunction(0, 900);
        ctx.low.enterFunction(f_main);

        // Transposition table: 6 MiB of 16-byte entries, no pointers.
        const u64 tt_entries = 400'000;
        const Addr tt = ctx.alloc.allocate(tt_entries * 16);
        ctx.low.derivePointer();

        const double f = scaleFactor(scale);
        const u64 node_budget = static_cast<u64>(22'000 * f);

        u64 nodes = 0;
        while (nodes < node_budget) {
            ctx.low.loopBegin();
            search(ctx, f_search, f_eval, tt, tt_entries, 6, nodes,
                   node_budget);
        }
    }

  private:
    void
    search(Ctx &ctx, u32 f_search, u32 f_eval, Addr tt, u64 tt_entries,
           int depth, u64 &nodes, u64 budget) const
    {
        if (depth == 0 || nodes >= budget)
            return;
        ++nodes;

        ctx.low.call(f_search, abi::CallKind::Local);

        // Transposition probe: skewed towards recently-used
        // entries; the cold tail is what misses L2 so hard.
        const u64 slot = ctx.rng.chance(0.72)
                             ? ctx.rng.nextBelow(12'000)
                             : ctx.rng.nextBelow(tt_entries);
        ctx.low.load(tt + slot * 16, 8);
        ctx.low.load(tt + slot * 16 + 8, 8);
        ctx.low.alu(3);
        ctx.low.branch(ctx.rng.chance(0.94)); // no TT cutoff, usually

        // Move generation: bitboard arithmetic on the stack.
        ctx.low.alu(16);
        ctx.low.local(8);
        ctx.low.mul(2);
        ctx.low.branch(ctx.rng.chance(0.94));

        // Evaluate or recurse over a few children.
        const u32 children = 2 + static_cast<u32>(ctx.rng.nextBelow(2));
        for (u32 c = 0; c < children && nodes < budget; ++c) {
            if (depth == 1 || ctx.rng.chance(0.25)) {
                ctx.low.call(f_eval, abi::CallKind::Local);
                ctx.low.alu(12);
                ctx.low.local(4);
                ctx.low.fp(2);
                ctx.low.branch(ctx.rng.chance(0.93));
                ctx.low.ret();
                ++nodes;
            } else {
                search(ctx, f_search, f_eval, tt, tt_entries, depth - 1,
                       nodes, budget);
            }
            ctx.low.alu(3);
            ctx.low.branch(ctx.rng.chance(0.95)); // alpha-beta window
        }

        // Store the result back into the table.
        ctx.low.store(tt + slot * 16, 8);
        ctx.low.store(tt + slot * 16 + 8, 8);
        ctx.low.ret();
    }

    WorkloadInfo info_;
    bool speed_;
};

} // namespace

std::unique_ptr<Workload>
makeDeepsjeng(bool speed)
{
    return std::make_unique<DeepsjengWorkload>(speed);
}

} // namespace cheri::workloads
