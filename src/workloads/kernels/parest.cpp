/**
 * @file
 * Proxy for 510.parest_r: a deal.II finite-element solver for a
 * biomedical imaging inverse problem.
 *
 * Paper signature: balanced-to-memory intensity (MI 0.92), mild
 * purecap overhead (~14%), moderate capability load density (~8%),
 * L1D miss rate ~2.7%.
 *
 * Proxy structure: conjugate-gradient iterations over a CSR sparse
 * matrix-vector product — indexed gathers from a solution vector that
 * mostly fits in L2 — interleaved with walks of pointer-rich mesh
 * cell records (deal.II triangulation objects), which contribute the
 * small capability-access share under purecap.
 */

#include "support/logging.hpp"
#include "workloads/context.hpp"
#include "workloads/kernels.hpp"

namespace cheri::workloads {

namespace {

class ParestWorkload final : public Workload
{
  public:
    ParestWorkload()
    {
        info_.name = "510.parest_r";
        info_.suite = "SPEC CPU 2017";
        info_.description = "Finite element solver (biomedical imaging)";
        info_.paperMi = 0.922;
        info_.paperTimeHybrid = 37.87;
        info_.paperTimeBenchmark = 41.94;
        info_.paperTimePurecap = 43.10;
        info_.binary = binsize::BinaryProfile{
            info_.name, 7200 * kKiB, 1100 * kKiB, 30'000, 200 * kKiB,
            7'000,      260 * kKiB,  6400,        260,    16'000 * kKiB,
            260 * kKiB};
    }

    const WorkloadInfo &info() const override { return info_; }

    void
    run(sim::Core &core, const Scenario &scenario, Scale scale,
        u64 seed) const override
    {
        const abi::Abi abi = scenario.abi;
        Ctx ctx(core, scenario, seed);
        const u32 f_main = ctx.code.addFunction(0, 800);
        const u32 f_spmv = ctx.code.addFunction(0, 500);
        const u32 f_mesh = ctx.code.addFunction(0, 700);
        ctx.low.enterFunction(f_main);

        // Solution vector: ~1.5 MiB of doubles (straddles L2 slightly).
        const u64 vec_len = 190'000;
        const Addr x = ctx.alloc.allocate(vec_len * 8);
        const Addr y = ctx.alloc.allocate(vec_len * 8);
        const Addr cols = ctx.alloc.allocate(vec_len * 4);
        ctx.low.derivePointer();

        // Mesh cells: pointer-rich records (neighbors + DoF pointers).
        const abi::StructDesc cell_desc({
            abi::Field::pointer("neighbor0"),
            abi::Field::pointer("neighbor1"),
            abi::Field::pointer("dofs"),
            abi::Field::scalar(8, "measure"),
            abi::Field::scalar(8, "id"),
        });
        const abi::RecordLayout cell = cell_desc.layoutFor(abi);
        const u64 cell_count = 20'000;
        const std::vector<Addr> cells =
            ctx.allocLinkedPool(cell_desc, cell_count);

        const double f = scaleFactor(scale);
        const u64 rows = static_cast<u64>(34'000 * f);
        for (u64 row = 0; row < rows; ++row) {
            ctx.low.loopBegin();
            ctx.low.call(f_spmv, abi::CallKind::Local);
            // One CSR row: gather ~5 nonzeros.
            for (int nz = 0; nz < 5; ++nz) {
                const u64 col = ctx.rng.nextBelow(vec_len);
                ctx.low.load(cols + ((row * 5 + nz) % vec_len) * 4, 4);
                ctx.low.load(x + col * 8, 8, /*dependent=*/true);
                ctx.low.fp(2); // multiply-accumulate
            }
            ctx.low.store(y + (row % vec_len) * 8, 8);
            ctx.low.local(3);
            ctx.low.alu(7);
            ctx.low.branch(ctx.rng.chance(0.96));
            ctx.low.ret();

            // Every few rows, touch the mesh (pointer structures).
            if ((row & 7) == 0) {
                ctx.low.call(f_mesh, abi::CallKind::Local);
                const Addr c = cells[ctx.rng.nextBelow(cell_count)];
                ctx.low.loadPointer(c + cell.offsetOf(0));
                ctx.low.loadPointer(c + cell.offsetOf(2), true);
                ctx.low.load(c + cell.offsetOf(3), 8);
                ctx.low.capOverhead(6);
                ctx.low.fp(2);
                ctx.low.alu(2);
                ctx.low.ret();
            }
        }
    }

  private:
    WorkloadInfo info_;
};

} // namespace

std::unique_ptr<Workload>
makeParest()
{
    return std::make_unique<ParestWorkload>();
}

} // namespace cheri::workloads
