/**
 * @file
 * Boxed-value bytecode interpreter: the allocator-axis stressor.
 *
 * Lowther et al.'s CHERI interpreter studies (PAPERS.md) show dynamic
 * language runtimes are where allocator policy matters most on
 * Morello: every value is a heap box, so the interpreter's inner loop
 * is an allocate / link / chase / free cycle and the malloc
 * implementation decides the heap's locality, footprint and — under
 * Cornucopia-style temporal safety — how often revocation sweeps run.
 *
 * Proxy structure: programs execute an opcode trace through indirect
 * dispatch. Each step allocates a fresh boxed value (sizes mixed
 * across three box shapes so size-class rounding diverges from exact
 * free lists), links it into the live set, chases operand pointers
 * through recently produced boxes, and evicts the oldest box from a
 * fixed-capacity ring — a steady-state churn that a free-list
 * allocator recycles LIFO, a bump allocator turns into unbounded
 * footprint growth, and a revoking allocator periodically interrupts
 * with tag-table sweeps whose traffic lands in the modeled memory
 * system. Unlike the QuickJS proxy (churn across program boundaries),
 * the churn here is inside the hot loop, which is what makes the
 * allocator axis bite.
 */

#include "workloads/context.hpp"
#include "workloads/kernels.hpp"

namespace cheri::workloads {

namespace {

class InterpWorkload final : public Workload
{
  public:
    InterpWorkload()
    {
        info_.name = "Interp.boxvm";
        info_.suite = "real-world";
        info_.description =
            "boxed-value bytecode VM (allocator-axis stressor)";
        info_.binary = binsize::BinaryProfile{
            info_.name, 420 * kKiB, 90 * kKiB, 5'000, 40 * kKiB, 1'600,
            90 * kKiB,  900,        60,        600 * kKiB, 40 * kKiB};
    }

    const WorkloadInfo &info() const override { return info_; }

    void
    run(sim::Core &core, const Scenario &scenario, Scale scale,
        u64 seed) const override
    {
        const abi::Abi abi = scenario.abi;
        Ctx ctx(core, scenario, seed);

        const u32 f_main = ctx.code.addFunction(0, 300);
        const u32 f_interp = ctx.code.addFunction(0, 6'000);
        const u32 f_box = ctx.code.addFunction(0, 500);
        const u32 f_libc = ctx.code.addFunction(1, 600);
        ctx.low.enterFunction(f_main);

        // A boxed value: type tag, payload, and a pointer to the box
        // it was computed from (provenance chains are what the
        // operand-fetch chases walk).
        const abi::StructDesc box_desc({
            abi::Field::pointer("from"),
            abi::Field::scalar(8, "payload"),
            abi::Field::scalar(4, "type"),
            abi::Field::scalar(4, "flags"),
        });
        const abi::RecordLayout box = box_desc.layoutFor(abi);
        // Three box shapes: bare box, small string/tuple payload,
        // larger buffer payload. The mixed sizes are deliberate —
        // exact-size free lists keep them apart, size classes fold
        // them together, bump ignores them.
        const u64 shapes[3] = {box.size, box.size + 24, box.size + 120};

        // Persistent constant pool the programs keep reading.
        const std::vector<Addr> pool =
            ctx.allocLinkedPool(box_desc, 512, true, 64);

        const double f = scaleFactor(scale);
        const u64 programs = static_cast<u64>(36 * f);
        const u64 steps = 1'600;

        // Fixed-capacity live set: steady-state heap churn.
        const u64 ring_size = 1024;
        std::vector<Addr> ring;
        ring.reserve(ring_size);

        for (u64 prog = 0; prog < programs; ++prog) {
            ctx.low.loopBegin();
            // Each program is a short opcode trace executed hot.
            const u64 trace_len = 32;
            std::vector<u32> trace(trace_len);
            for (u64 i = 0; i < trace_len; ++i)
                trace[i] = static_cast<u32>(ctx.rng.nextBelow(96));

            ctx.low.call(f_interp, abi::CallKind::Local);
            for (u64 s = 0; s < steps; ++s) {
                const u32 op = trace[s % trace_len];
                ctx.low.dispatch(op);
                ctx.low.alu(5); // decode, type tests
                ctx.low.local(1);

                // Produce a fresh box (every result is heap-boxed).
                ctx.low.call(f_box, abi::CallKind::Local);
                const u64 shape = op % 3;
                const Addr addr =
                    ctx.alloc.allocate(shapes[shape], box.align);
                ctx.low.derivePointer();
                ctx.low.storePointer(addr + box.offsetOf(0));
                ctx.low.store(addr + box.offsetOf(1), 8);
                ctx.low.ret();

                // Operand fetch: chase provenance through a recent box
                // and a constant-pool entry (boxed loads).
                const Addr operand =
                    ring.empty()
                        ? pool[op % pool.size()]
                        : ring[ctx.rng.nextBelow(ring.size())];
                ctx.core.store().write(addr + box.offsetOf(0), operand,
                                       8);
                ctx.low.loadPointer(operand + box.offsetOf(0),
                                    /*dependent=*/true);
                ctx.low.load(operand + box.offsetOf(1), 8);
                ctx.low.loadPointer(pool[(op * 7 + s) % pool.size()] +
                                    box.offsetOf(0));
                ctx.low.alu(3);
                ctx.low.branch((s & 7) != 0);

                // Under CHERI C every box handle is a capability;
                // moving one re-derives bounds.
                ctx.low.capOverhead(6);

                // Evict: the displaced box dies here, inside the hot
                // loop. This free is where the allocator axis bites —
                // reuse policy, footprint, quarantine pressure.
                if (ring.size() < ring_size) {
                    ring.push_back(addr);
                } else {
                    const u64 slot = s % ring_size;
                    ctx.alloc.free(ring[slot]);
                    ring[slot] = addr;
                }

                // Occasional runtime helper (string ops, arithmetic
                // slow paths).
                if ((s % 96) == 0) {
                    ctx.low.call(f_libc, abi::CallKind::CrossLib);
                    ctx.low.alu(6);
                    ctx.low.ret();
                }
            }
            ctx.low.ret(); // interpreter

            // Program teardown: drop the whole live set.
            for (const Addr addr : ring)
                ctx.alloc.free(addr);
            ring.clear();
        }
    }

  private:
    WorkloadInfo info_;
};

} // namespace

std::unique_ptr<Workload>
makeInterp()
{
    return std::make_unique<InterpWorkload>();
}

} // namespace cheri::workloads
