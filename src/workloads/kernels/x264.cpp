/**
 * @file
 * Proxy for 525.x264_r / 625.x264_s: H.264 video encoding.
 *
 * The paper compiles and runs x264 under all three ABIs (Appendix
 * Tables 5/6) but does not report its detailed counters; Figure 1
 * implies a modest overhead. Proxy structure: motion-estimation SAD
 * loops — SIMD-dominated streaming reads over reference frames with
 * highly predictable loop branches — plus DCT/quantization ALU and
 * residual stores.
 */

#include "support/logging.hpp"
#include "workloads/context.hpp"
#include "workloads/kernels.hpp"

namespace cheri::workloads {

namespace {

class X264Workload final : public Workload
{
  public:
    explicit X264Workload(bool speed) : speed_(speed)
    {
        info_.name = speed ? "625.x264_s" : "525.x264_r";
        info_.suite = "SPEC CPU 2017";
        info_.description = "H.264 video compression";
        info_.paperMi = 0;
        info_.binary = binsize::BinaryProfile{
            info_.name, 900 * kKiB, 150 * kKiB, 3200, 60 * kKiB, 800,
            700 * kKiB, 700,        90,         2400 * kKiB, 90 * kKiB};
    }

    const WorkloadInfo &info() const override { return info_; }

    void
    run(sim::Core &core, const Scenario &scenario, Scale scale,
        u64 seed) const override
    {
        Ctx ctx(core, scenario, seed + (speed_ ? 1 : 0));
        const u32 f_main = ctx.code.addFunction(0, 700);
        const u32 f_sad = ctx.code.addFunction(0, 400);
        const u32 f_dct = ctx.code.addFunction(0, 600);
        ctx.low.enterFunction(f_main);

        // Current + reference frames (1080p-ish luma planes).
        const u64 frame = 2 * kMiB;
        const Addr cur = ctx.alloc.allocate(frame);
        const Addr ref = ctx.alloc.allocate(frame);
        const Addr out = ctx.alloc.allocate(frame);
        ctx.low.derivePointer();

        const double f = scaleFactor(scale);
        const u64 blocks = static_cast<u64>(9'000 * f);
        for (u64 b = 0; b < blocks; ++b) {
            ctx.low.loopBegin();
            const u64 cur_off = (b * 256) % (frame - 4096);
            ctx.low.call(f_sad, abi::CallKind::Local);
            // Search a few candidate motion vectors.
            for (int mv = 0; mv < 4; ++mv) {
                const u64 ref_off =
                    (cur_off + ctx.rng.nextBelow(8192)) % (frame - 4096);
                for (int row = 0; row < 4; ++row) {
                    ctx.low.load(cur + cur_off + row * 64, 8);
                    ctx.low.load(ref + ref_off + row * 64, 8);
                    ctx.low.vec(2); // SAD accumulate
                }
                ctx.low.alu(2);
                ctx.low.branch(ctx.rng.chance(0.9)); // early-out compare
            }
            ctx.low.ret();

            // Transform + quantize the winning block.
            ctx.low.call(f_dct, abi::CallKind::Local);
            ctx.low.vec(10);
            ctx.low.mul(2);
            ctx.low.alu(6);
            for (int row = 0; row < 4; ++row)
                ctx.low.store(out + cur_off + row * 64, 8);
            ctx.low.branch(true);
            ctx.low.ret();
        }
    }

  private:
    WorkloadInfo info_;
    bool speed_;
};

} // namespace

std::unique_ptr<Workload>
makeX264(bool speed)
{
    return std::make_unique<X264Workload>(speed);
}

} // namespace cheri::workloads
