/**
 * @file
 * Factory functions for every workload proxy. The bool parameter on
 * SPEC kernels selects the _r (false) or _s (true) instance — same
 * kernel, slightly different problem size and seed, matching how the
 * paper's rate and speed runs relate.
 */

#ifndef CHERI_WORKLOADS_KERNELS_HPP
#define CHERI_WORKLOADS_KERNELS_HPP

#include <memory>

#include "workloads/workload.hpp"

namespace cheri::workloads {

// SPEC CPU 2017 proxies.
std::unique_ptr<Workload> makeParest();            // 510.parest_r
std::unique_ptr<Workload> makeLbm();               // 519.lbm_r
std::unique_ptr<Workload> makeOmnetpp(bool speed); // 520/620.omnetpp
std::unique_ptr<Workload> makeXalancbmk(bool speed); // 523/623.xalancbmk
std::unique_ptr<Workload> makeX264(bool speed);    // 525/625.x264
std::unique_ptr<Workload> makeDeepsjeng(bool speed); // 531/631.deepsjeng
std::unique_ptr<Workload> makeLeela(bool speed);   // 541/641.leela
std::unique_ptr<Workload> makeNab(bool speed);     // 544/644.nab
std::unique_ptr<Workload> makeXz(bool speed);      // 557/657.xz

// Real-world application proxies.
std::unique_ptr<Workload> makeLlamaInference();
std::unique_ptr<Workload> makeLlamaMatmul();
std::unique_ptr<Workload> makeSqlite();
std::unique_ptr<Workload> makeQuickjs();
std::unique_ptr<Workload> makeInterp(); // boxed-value bytecode VM

} // namespace cheri::workloads

#endif // CHERI_WORKLOADS_KERNELS_HPP
