/**
 * @file
 * Mechanistic out-of-order pipeline model (interval style).
 *
 * The model is not cycle-accurate RTL; it reproduces the abstraction
 * level the paper observes through PMCs: a 4-wide Neoverse-N1-like
 * core whose cycles decompose into issue slots plus stall intervals,
 * each interval attributed to a top-down category:
 *
 *  - frontend:  I-cache / ITLB fetch latency, and Morello's
 *               PCC-bounds-update stalls on capability branches;
 *  - bad speculation: branch-mispredict flushes;
 *  - backend/memory: data-side miss latency, serialized for
 *               pointer-chasing (dependent) loads, amortized by the
 *               MLP window for independent ones, attributed to the
 *               level that serviced the miss;
 *  - backend/core: execution-port contention (notably the extra
 *               capability-manipulation DP ops purecap code executes)
 *               and store-queue backpressure from two-entry 128-bit
 *               capability stores.
 *
 * All Morello-prototype artefacts the paper isolates are explicit
 * knobs: BranchPredictorConfig::cap_aware, StoreQueueConfig::
 * wide_entries, MemConfig::tag_extra_latency.
 */

#ifndef CHERI_UARCH_PIPELINE_HPP
#define CHERI_UARCH_PIPELINE_HPP

#include <algorithm>
#include <array>
#include <vector>

#include "mem/memory_system.hpp"
#include "support/logging.hpp"
#include "pmu/counts.hpp"
#include "uarch/branch_predictor.hpp"
#include "uarch/dynop.hpp"
#include "uarch/exec_hooks.hpp"
#include "uarch/store_queue.hpp"

namespace cheri::uarch {

struct PipelineConfig
{
    u32 width = 4;           //!< Dispatch slots per cycle.
    u32 mlp = 8;             //!< Outstanding-miss window for independent loads.
    Cycles mispredict_penalty = 11; //!< N1 pipeline flush depth.
    Cycles pcc_stall_penalty = 9;   //!< Refetch on PCC-bounds install.
    Cycles div_latency = 12;        //!< Extra serial latency of divides.

    // Issue-port throughput (ops per cycle per class).
    double dp_ports = 3.0;
    double load_ports = 2.0;
    double store_ports = 1.5;
    double fp_ports = 2.0;
    double branch_ports = 2.0;

    BranchPredictorConfig bp{};
    StoreQueueConfig sq{};

    /**
     * Batched issue: let issueBlock() retire a whole decoded block
     * per call, hoisting the accumulator state into locals and
     * collapsing the per-op hook dispatch to one boundary check per
     * chunk when no per-op observer is attached. The per-op arithmetic
     * and its order are unchanged, so results are bit-identical to
     * op-at-a-time issue() — the regression suite toggles this over
     * the whole workload registry. Deliberately NOT part of the
     * result-cache fingerprint (same audited-escape status as
     * MachineConfig::block_cache and MemConfig::fast_path).
     */
    bool batch_issue = true;
};

class PipelineModel
{
  public:
    /**
     * The model's un-finalized accounting, readable mid-run. finish()
     * writes exactly these totals (rounded) into the PMU counts; the
     * epoch collector diffs successive samples to attribute cycles to
     * intervals.
     */
    struct LiveStats
    {
        double cycles = 0;
        double stallFrontend = 0;
        double stallPcc = 0;
        double stallBadSpec = 0;
        double stallMemL1 = 0;
        double stallMemL2 = 0;
        double stallMemExt = 0;
        double stallCore = 0;
        u64 uopsRetired = 0;
    };

    PipelineModel(const PipelineConfig &config, mem::MemorySystem &memory,
                  pmu::EventCounts &counts);

    ~PipelineModel();

    /** Retire one dynamic operation through the model. */
    void issue(const DynOp &op);

    /**
     * Retire @p n dynamic operations through the model in one call.
     * Bit-identical to issuing them one at a time: with
     * config().batch_issue set and no per-op observer attached
     * (retire hook, lane-switch hook, approx skip), ops are processed
     * in epoch-bounded chunks over a local copy of the accumulator —
     * the same `+=` sequence on the same doubles, so IEEE results are
     * unchanged — with retire bookkeeping and the epoch-boundary
     * check hoisted to the chunk boundary. Any per-op observer (or
     * batch_issue=off) routes every op through issue() instead.
     * Epoch hooks still fire at exactly the same retired-instruction
     * boundaries, and a hook that flips approxSkip mid-block (the
     * --approx sampler) re-routes the remaining ops through issue()'s
     * skip path just as the unbatched loop would.
     *
     * [[gnu::flatten]] inlines issueTimed() (and its inlined memory
     * replay wrappers) into the chunk loop, so the chunk-local
     * accumulator and spec batch actually live in registers across
     * ops instead of being re-loaded through a call boundary per op.
     * Inlining only changes where the same instruction sequence runs;
     * the arithmetic stream — and thus every counter and cycle value
     * — is unchanged.
     */
    [[gnu::flatten]] void issueBlock(const DynOp *ops, std::size_t n);

    /** Finalize: write cycle/slot/stall totals into the PMU counts. */
    void finish();

    /** Current cycle count (valid any time). */
    Cycles cycles() const { return static_cast<Cycles>(acc_.cycleF); }

    /** Snapshot the live (pre-finish) accounting. */
    LiveStats liveStats() const;

    /** The count vector the model increments (readable mid-run). */
    const pmu::EventCounts &liveCounts() const { return counts_; }

    /**
     * Attach an ExecHooks observer. Its capability queries
     * (wantsRetire / wantsLaneSwitch / epochInstructions) are sampled
     * here and cached as plain dispatch pointers, so the per-op cost
     * with no observers is one predictable null check and the cost
     * with an epoch observer is one counter decrement. At most one
     * attached observer may claim each capability (asserted): the
     * trace collector takes the epoch slot, the co-run gate the
     * lane-switch slot. Observers must outlive their attachment.
     */
    void attachHooks(ExecHooks *hooks);

    /** Detach a previously attached observer. */
    void detachHooks(ExecHooks *hooks);

    /** Dispatch onFault to every attached observer (sim::Core). */
    void notifyFault(Addr pc);

    /**
     * The lane id passed to onLaneSwitch (the owning core's slice
     * index; sim::Core sets it at construction).
     */
    void setLaneId(u32 lane) { laneId_ = lane; }
    u32 laneId() const { return laneId_; }

    /**
     * Approx-sampling fast-forward: while set, issue() retires
     * instructions (InstRetired and the epoch countdown stay exact)
     * but skips the timing model entirely — no fetch, no memory walk,
     * no predictor, no float accounting. The --approx sampler toggles
     * this at epoch boundaries; totals for skipped epochs are
     * extrapolated from the sampled ones (runner layer).
     */
    void setApproxSkip(bool skip) { approxSkip_ = skip; }
    bool approxSkip() const { return approxSkip_; }

    /**
     * Retire one instruction through the approx-skip fast path
     * without materializing a DynOp: same bookkeeping as issue()
     * under approxSkip() (lane-switch dispatch, InstRetired, retire
     * and epoch hooks), minus the op decode the skip would discard
     * anyway. Callers must re-check approxSkip() before every op —
     * the epoch hook fired here can end the skipped stratum
     * mid-sequence, and every later op must then take the full
     * issue() path or its timing would be lost.
     */
    void
    issueSkipped()
    {
        CHERI_ASSERT(!finished_, "issue after finish");
        if (laneHook_ != nullptr)
            laneHook_->onLaneSwitch(laneId_, acc_.cycleF);
        counts_.add(pmu::Event::InstRetired);
        retireTail();
    }

    /**
     * How many ops retireSkippedBulk() may take in one call without
     * observable effect: only up to (never through) the next epoch
     * boundary, and only when no per-op observer (retire or
     * lane-switch hook) is attached. Returns 0 when ops must go
     * through issueSkipped() one at a time — in particular for the
     * op that lands on the epoch boundary, so the epoch hook fires
     * at exactly the same instruction either way.
     */
    u64
    skipBulkBudget(u64 want) const
    {
        if (!approxSkip_ || retireHook_ != nullptr ||
            laneHook_ != nullptr || epochEvery_ == 0)
            return 0;
        return std::min(want, instsToEpoch_ - 1);
    }

    /** Retire @p n skipped ops at once; n <= skipBulkBudget(). */
    void
    retireSkippedBulk(u64 n)
    {
        CHERI_ASSERT(!finished_ && approxSkip_ && n < instsToEpoch_,
                     "bulk skip outside its budget");
        counts_.add(pmu::Event::InstRetired, n);
        retired_ += n;
        instsToEpoch_ -= n;
    }

    /** Total instructions retired so far (exact in approx mode too). */
    u64 retired() const { return retired_; }

    const BranchPredictor &predictor() const { return predictor_; }
    const StoreQueue &storeQueue() const { return sq_; }
    const PipelineConfig &config() const { return config_; }

  private:
    /**
     * The model's accumulator state: everything the per-op timing
     * body reads and writes. Grouped so issueBlock() can copy it into
     * a local, run a chunk of ops against the local (keeping the hot
     * values in registers instead of bouncing through `this`), and
     * write it back — the member/local distinction is invisible to
     * the arithmetic, which is what makes batching bit-identical.
     */
    struct Accum
    {
        double cycleF = 0.0; //!< Master clock.
        double stallFrontendF = 0.0;
        double stallPccF = 0.0;
        double stallBadSpecF = 0.0;
        double stallMemL1F = 0.0;
        double stallMemL2F = 0.0;
        double stallMemExtF = 0.0;
        double stallCoreF = 0.0;
        u64 uopsRetired = 0;
        double lastLoadCompleteF = 0.0;
        mem::MemLevel lastLoadLevel = mem::MemLevel::L1;
        Addr lastFetchGroup = ~0ULL;
    };

    /**
     * Chunk-local staging for the per-op retirement/speculation
     * counters. Inside a batched chunk no observer can read counts_
     * (no retire/lane hooks by the batched-path gate; the epoch hook
     * fires only at chunk boundaries, after the flush), and u64
     * addition is associative — so staging the adds and flushing the
     * sums at the boundary leaves every observable counter value
     * identical to the per-op adds.
     */
    struct SpecBatch
    {
        u64 retired = 0;
        u64 instSpec = 0;
        std::array<u64, 9> byClass{};
    };

    double portCost(isa::InstClass cls) const;
    void recordSpec(isa::InstClass cls, u64 n);
    void flushSpec(const SpecBatch &batch);
    static void stallBackendMem(Accum &a, double cycles,
                                mem::MemLevel level);
    /**
     * The full timing body of one op (frontend fetch, ports, branch
     * resolution, memory) including its InstRetired/spec counts, over
     * accumulator @p a. Shared verbatim by issue() (on acc_, batch
     * nullptr — per-op counter adds, unchanged) and issueBlock() (on
     * a local copy, with a chunk-local SpecBatch); excludes hook
     * dispatch and the retire/epoch bookkeeping, which the callers
     * own.
     */
    void issueTimed(const DynOp &op, Accum &a, SpecBatch *batch = nullptr);
    void refreshHookDispatch();

    /** Retire bookkeeping shared by the full and approx-skip paths. */
    void
    retireTail()
    {
        ++retired_;
        if (retireHook_ != nullptr)
            retireHook_->onRetire(*this);
        if (epochEvery_ != 0 && --instsToEpoch_ == 0) {
            instsToEpoch_ = epochEvery_;
            epochHook_->onEpochBoundary(*this);
        }
    }

    PipelineConfig config_;
    mem::MemorySystem &memory_;
    pmu::EventCounts &counts_;
    BranchPredictor predictor_;
    StoreQueue sq_;

    // Division results issueTimed() needs per op, computed once at
    // construction: portCostTbl_[cls] caches portCost(cls)'s quotient
    // and slotCostTbl_[uops] caches uops/width. Each entry is the
    // identical IEEE quotient the per-op division would produce, so
    // the cycle stream is bit-identical — this only removes the two
    // hardware divides from the hot loop.
    std::array<double, 9> portCostTbl_{};
    std::array<double, 256> slotCostTbl_{};

    // Attached observers plus the cached capability dispatch state
    // refreshHookDispatch() derives from them.
    std::vector<ExecHooks *> hooks_;
    ExecHooks *retireHook_ = nullptr;
    ExecHooks *laneHook_ = nullptr;
    ExecHooks *epochHook_ = nullptr;
    u64 epochEvery_ = 0;
    u64 instsToEpoch_ = 0;
    u32 laneId_ = 0;
    bool approxSkip_ = false;
    u64 retired_ = 0;

    Accum acc_;
    bool finished_ = false;

    // Batched-issue self-stats (telemetry; not model-visible).
    u64 batchCalls_ = 0;
    u64 batchOps_ = 0;
    u64 batchCallsFlushed_ = 0;
    u64 batchOpsFlushed_ = 0;
};

} // namespace cheri::uarch

#endif // CHERI_UARCH_PIPELINE_HPP
