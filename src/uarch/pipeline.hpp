/**
 * @file
 * Mechanistic out-of-order pipeline model (interval style).
 *
 * The model is not cycle-accurate RTL; it reproduces the abstraction
 * level the paper observes through PMCs: a 4-wide Neoverse-N1-like
 * core whose cycles decompose into issue slots plus stall intervals,
 * each interval attributed to a top-down category:
 *
 *  - frontend:  I-cache / ITLB fetch latency, and Morello's
 *               PCC-bounds-update stalls on capability branches;
 *  - bad speculation: branch-mispredict flushes;
 *  - backend/memory: data-side miss latency, serialized for
 *               pointer-chasing (dependent) loads, amortized by the
 *               MLP window for independent ones, attributed to the
 *               level that serviced the miss;
 *  - backend/core: execution-port contention (notably the extra
 *               capability-manipulation DP ops purecap code executes)
 *               and store-queue backpressure from two-entry 128-bit
 *               capability stores.
 *
 * All Morello-prototype artefacts the paper isolates are explicit
 * knobs: BranchPredictorConfig::cap_aware, StoreQueueConfig::
 * wide_entries, MemConfig::tag_extra_latency.
 */

#ifndef CHERI_UARCH_PIPELINE_HPP
#define CHERI_UARCH_PIPELINE_HPP

#include "mem/memory_system.hpp"
#include "pmu/counts.hpp"
#include "uarch/branch_predictor.hpp"
#include "uarch/dynop.hpp"
#include "uarch/store_queue.hpp"

namespace cheri::uarch {

struct PipelineConfig
{
    u32 width = 4;           //!< Dispatch slots per cycle.
    u32 mlp = 8;             //!< Outstanding-miss window for independent loads.
    Cycles mispredict_penalty = 11; //!< N1 pipeline flush depth.
    Cycles pcc_stall_penalty = 9;   //!< Refetch on PCC-bounds install.
    Cycles div_latency = 12;        //!< Extra serial latency of divides.

    // Issue-port throughput (ops per cycle per class).
    double dp_ports = 3.0;
    double load_ports = 2.0;
    double store_ports = 1.5;
    double fp_ports = 2.0;
    double branch_ports = 2.0;

    BranchPredictorConfig bp{};
    StoreQueueConfig sq{};
};

class PipelineModel;

/**
 * Observer invoked after every retired DynOp with the live model
 * state. The trace layer's epoch collector implements this; the
 * indirection keeps uarch free of a dependency on trace. With no hook
 * attached the per-op cost is a single predictable null check.
 */
class RetireHook
{
  public:
    virtual ~RetireHook() = default;
    virtual void onRetire(const PipelineModel &pipe) = 0;
};

/**
 * Co-run interleave hook, called at the top of every issue() with the
 * issuing core's id and its live fractional cycle. The sim layer's
 * CorunGate implements this to timeshare N core timelines
 * deterministically in cycle order; the call may block until the core
 * is allowed to proceed. With no gate attached the per-op cost is a
 * single predictable null check.
 */
class IssueGate
{
  public:
    virtual ~IssueGate() = default;
    virtual void onIssue(u32 core, double cycleF) = 0;
};

class PipelineModel
{
  public:
    /**
     * The model's un-finalized accounting, readable mid-run. finish()
     * writes exactly these totals (rounded) into the PMU counts; the
     * epoch collector diffs successive samples to attribute cycles to
     * intervals.
     */
    struct LiveStats
    {
        double cycles = 0;
        double stallFrontend = 0;
        double stallPcc = 0;
        double stallBadSpec = 0;
        double stallMemL1 = 0;
        double stallMemL2 = 0;
        double stallMemExt = 0;
        double stallCore = 0;
        u64 uopsRetired = 0;
    };

    PipelineModel(const PipelineConfig &config, mem::MemorySystem &memory,
                  pmu::EventCounts &counts);

    /** Retire one dynamic operation through the model. */
    void issue(const DynOp &op);

    /** Finalize: write cycle/slot/stall totals into the PMU counts. */
    void finish();

    /** Current cycle count (valid any time). */
    Cycles cycles() const { return static_cast<Cycles>(cycleF_); }

    /** Snapshot the live (pre-finish) accounting. */
    LiveStats liveStats() const;

    /** The count vector the model increments (readable mid-run). */
    const pmu::EventCounts &liveCounts() const { return counts_; }

    /** Attach/detach the per-retire observer (nullptr = none). */
    void setRetireHook(RetireHook *hook) { hook_ = hook; }

    /**
     * Attach/detach the co-run interleave gate (nullptr = none).
     * @p core is the id passed back on every onIssue().
     */
    void setIssueGate(IssueGate *gate, u32 core)
    {
        gate_ = gate;
        gateCore_ = core;
    }

    const BranchPredictor &predictor() const { return predictor_; }
    const StoreQueue &storeQueue() const { return sq_; }
    const PipelineConfig &config() const { return config_; }

  private:
    double portCost(isa::InstClass cls) const;
    void recordSpec(isa::InstClass cls, u64 n);
    void stallBackendMem(double cycles, mem::MemLevel level);

    PipelineConfig config_;
    mem::MemorySystem &memory_;
    pmu::EventCounts &counts_;
    BranchPredictor predictor_;
    StoreQueue sq_;
    RetireHook *hook_ = nullptr;
    IssueGate *gate_ = nullptr;
    u32 gateCore_ = 0;

    double cycleF_ = 0.0;           //!< Master clock.
    double stallFrontendF_ = 0.0;
    double stallPccF_ = 0.0;
    double stallBadSpecF_ = 0.0;
    double stallMemL1F_ = 0.0;
    double stallMemL2F_ = 0.0;
    double stallMemExtF_ = 0.0;
    double stallCoreF_ = 0.0;
    u64 uopsRetired_ = 0;

    double lastLoadCompleteF_ = 0.0;
    mem::MemLevel lastLoadLevel_ = mem::MemLevel::L1;
    Addr lastFetchGroup_ = ~0ULL;
    bool finished_ = false;
};

} // namespace cheri::uarch

#endif // CHERI_UARCH_PIPELINE_HPP
