/**
 * @file
 * ExecHooks — the unified execution-observer seam.
 *
 * The pipeline used to expose two ad-hoc observer slots (RetireHook
 * for the trace layer, IssueGate for the co-run interleaver) and the
 * runner a third (setResultHook). Every new observer forced another
 * per-op virtual call into issue(), which is exactly the hot path the
 * decoded-block cache wants to batch. ExecHooks folds the execution-
 * side events into one interface with *capability queries*: the
 * pipeline asks each attached observer what it wants (per-retire
 * callbacks, lane-switch arbitration, an epoch interval) once at
 * attach time and caches the answers as plain pointers/counters, so
 * an untraced run pays one predictable null check per op and a traced
 * run pays a counter decrement instead of a virtual call per retire.
 *
 * Events:
 *  - onRetire: after every retired DynOp (only when wantsRetire()).
 *  - onEpochBoundary: every epochInstructions() retired instructions
 *    (exact boundaries — the pipeline counts down internally). The
 *    trace layer's EpochCollector and the --approx sampler register
 *    here; neither needs per-retire callbacks any more.
 *  - onFault: the executing core raised a capability fault; fired by
 *    sim::Core before the run is finalized.
 *  - onLaneSwitch: at the top of every issue() with the issuing
 *    core's id and live fractional cycle (only when
 *    wantsLaneSwitch()). The co-run gate blocks here to timeshare N
 *    core timelines deterministically; the name reflects what the
 *    event means to the SoC — a potential handoff point between
 *    lanes.
 *
 * Layering: defined in uarch (the pipeline dispatches the events) and
 * re-exported as sim::ExecHooks (sim/exec_hooks.hpp), which is the
 * name the public API uses. uarch must not depend on sim or trace.
 */

#ifndef CHERI_UARCH_EXEC_HOOKS_HPP
#define CHERI_UARCH_EXEC_HOOKS_HPP

#include "support/types.hpp"

namespace cheri::uarch {

class PipelineModel;

class ExecHooks
{
  public:
    virtual ~ExecHooks() = default;

    /** After every retired op; fired only when wantsRetire(). */
    virtual void onRetire(const PipelineModel &) {}

    /**
     * Every epochInstructions() retired instructions, with the live
     * model state; fired only when epochInstructions() > 0. The
     * boundary is exact: the pipeline retires one instruction per
     * issue() and counts down internally.
     */
    virtual void onEpochBoundary(const PipelineModel &) {}

    /** The core raised a capability fault at @p pc. */
    virtual void onFault(const PipelineModel &, Addr /*pc*/) {}

    /**
     * Top of issue(): core @p core is about to simulate its next op
     * at fractional cycle @p cycleF. May block (co-run arbitration).
     * Fired only when wantsLaneSwitch().
     */
    virtual void onLaneSwitch(u32 /*core*/, double /*cycleF*/) {}

    // --- Capability queries (sampled once at attach) ------------------
    virtual bool wantsRetire() const { return false; }
    virtual bool wantsLaneSwitch() const { return false; }
    /** Retired-instruction interval for onEpochBoundary; 0 = none. */
    virtual u64 epochInstructions() const { return 0; }
};

} // namespace cheri::uarch

#endif // CHERI_UARCH_EXEC_HOOKS_HPP
