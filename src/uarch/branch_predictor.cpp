#include "uarch/branch_predictor.hpp"

#include <bit>

#include "support/logging.hpp"

namespace cheri::uarch {

BranchPredictor::BranchPredictor(const BranchPredictorConfig &config)
    : config_(config)
{
    CHERI_ASSERT(std::has_single_bit(config.pht_entries),
                 "PHT entries must be a power of two");
    CHERI_ASSERT(std::has_single_bit(config.btb_entries),
                 "BTB entries must be a power of two");
    pht_.assign(config.pht_entries, 1); // weakly not-taken
    btb_.assign(config.btb_entries, 0);
    ras_.assign(config.ras_depth, 0);
}

bool
BranchPredictor::predictDirection(Addr pc, bool taken)
{
    const u64 hist_mask = (1ULL << config_.history_bits) - 1;
    const u64 index =
        ((pc >> 2) ^ (history_ & hist_mask)) & (config_.pht_entries - 1);
    u8 &counter = pht_[index];
    const bool predicted_taken = counter >= 2;

    if (taken && counter < 3)
        ++counter;
    else if (!taken && counter > 0)
        --counter;
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & hist_mask;

    return predicted_taken == taken;
}

bool
BranchPredictor::predictIndirect(Addr pc, Addr target)
{
    const u64 index = (pc >> 2) & (config_.btb_entries - 1);
    const bool correct = btb_[index] == target;
    btb_[index] = target;
    return correct;
}

BranchPrediction
BranchPredictor::resolve(const DynOp &op)
{
    CHERI_ASSERT(op.branch != BranchKind::None, "resolve on non-branch");
    ++branches_;

    BranchPrediction out;

    switch (op.branch) {
      case BranchKind::Immed:
        // Unconditional direct branches and calls always predict; only
        // conditional direction can mispredict.
        if (op.op == isa::Opcode::BCond)
            out.mispredicted = !predictDirection(op.pc, op.taken);
        break;
      case BranchKind::Indirect:
        out.mispredicted = !predictIndirect(op.pc, op.target);
        break;
      case BranchKind::Return:
        if (rasTop_ > 0) {
            --rasTop_;
            out.mispredicted = ras_[rasTop_ % ras_.size()] != op.target;
        } else {
            out.mispredicted = true; // underflow: nothing to predict from
        }
        break;
      case BranchKind::None:
        break;
    }

    if (op.isCall) {
        // Push the fall-through address; overflow silently wraps
        // (oldest entry lost), as in a real RAS.
        ras_[rasTop_ % ras_.size()] = op.pc + 4;
        ++rasTop_;
        if (rasTop_ >= 2 * ras_.size())
            rasTop_ -= ras_.size();
    }

    if (op.pccChange && !config_.cap_aware) {
        out.pcc_stall = true;
        ++pccStalls_;
    }
    if (out.mispredicted)
        ++mispredicts_;
    return out;
}

} // namespace cheri::uarch
