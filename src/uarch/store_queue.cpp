#include "uarch/store_queue.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace cheri::uarch {

StoreQueue::StoreQueue(const StoreQueueConfig &config) : config_(config)
{
    CHERI_ASSERT(config.entries >= 2, "store queue too small");
}

void
StoreQueue::drain(Cycles now)
{
    while (!releaseTimes_.empty() && releaseTimes_.front() <= now)
        releaseTimes_.pop_front();
}

u32
StoreQueue::occupancy(Cycles now)
{
    drain(now);
    return static_cast<u32>(releaseTimes_.size());
}

Cycles
StoreQueue::push(Cycles now, Cycles drain_latency, u32 bytes)
{
    const u32 needed =
        config_.wide_entries ? 1 : std::max<u32>(1, (bytes + 7) / 8);
    drain(now);

    Cycles stall = 0;
    while (releaseTimes_.size() + needed > config_.entries) {
        // Wait for the oldest entry to retire.
        const Cycles wake = releaseTimes_.front();
        CHERI_ASSERT(wake > now + stall, "store queue drain went backwards");
        stall = wake - now;
        drain(now + stall);
    }
    if (stall)
        ++fullStalls_;

    const Cycles release = now + stall + drain_latency;
    for (u32 i = 0; i < needed; ++i)
        releaseTimes_.push_back(release);
    return stall;
}

} // namespace cheri::uarch
