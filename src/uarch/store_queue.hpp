/**
 * @file
 * Store queue / store buffer model.
 *
 * The Neoverse N1's store buffering is sized for 64-bit stores; a
 * 128-bit capability store consumes two entries (§2.2: "Store queues
 * and buffers, sized for 64-bit operations, become bottlenecks when
 * handling 128-bit capability stores"). When the queue is full the
 * core stalls until entries drain at the store's cache latency.
 *
 * The wide_entries knob models the paper's projection of a
 * capability-sized store buffer (one entry per capability store).
 */

#ifndef CHERI_UARCH_STORE_QUEUE_HPP
#define CHERI_UARCH_STORE_QUEUE_HPP

#include <deque>

#include "support/types.hpp"

namespace cheri::uarch {

struct StoreQueueConfig
{
    u32 entries = 24;
    bool wide_entries = false; //!< Capability store fits one entry.
};

class StoreQueue
{
  public:
    explicit StoreQueue(const StoreQueueConfig &config);

    /**
     * Insert a store at time @p now that completes its cache write at
     * @p now + drain_latency. Entries are 64-bit sized: a @p bytes
     * wide store consumes ceil(bytes/8) entries unless wide_entries
     * is set (then any store fits one entry).
     *
     * @return Stall cycles suffered waiting for free entries.
     */
    Cycles push(Cycles now, Cycles drain_latency, u32 bytes);

    /** Entries occupied at time @p now (drains lazily). */
    u32 occupancy(Cycles now);

    /**
     * Entries still in flight at time @p now without mutating the
     * queue — the read the epoch collector uses at interval close.
     */
    u32
    occupancyAt(Cycles now) const
    {
        u32 live = 0;
        for (Cycles release : releaseTimes_)
            if (release > now)
                ++live;
        return live;
    }

    u64 fullStalls() const { return fullStalls_; }

    const StoreQueueConfig &config() const { return config_; }

  private:
    void drain(Cycles now);

    StoreQueueConfig config_;
    std::deque<Cycles> releaseTimes_; //!< One element per entry in use.
    u64 fullStalls_ = 0;
};

} // namespace cheri::uarch

#endif // CHERI_UARCH_STORE_QUEUE_HPP
