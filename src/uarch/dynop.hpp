/**
 * @file
 * The dynamic operation record: one retired instruction instance as
 * the timing model sees it. Produced either by the functional
 * executor (static MorelloLite programs) or directly by the workload
 * generators; consumed by uarch::PipelineModel.
 */

#ifndef CHERI_UARCH_DYNOP_HPP
#define CHERI_UARCH_DYNOP_HPP

#include "isa/opcode.hpp"
#include "support/types.hpp"

namespace cheri::uarch {

/** Branch taxonomy as the N1 PMU distinguishes it. */
enum class BranchKind : u8 {
    None,
    Immed,    //!< Direct (incl. conditional) branch / direct call.
    Indirect, //!< Register-indirect jump or call.
    Return,
};

struct DynOp
{
    isa::Opcode op = isa::Opcode::Nop;
    Addr pc = 0;

    /** Micro-ops this instruction cracks into (128-bit stores: 2). */
    u8 uops = 1;

    // --- Memory operations ------------------------------------------
    Addr addr = 0;
    u8 size = 0;        //!< 0 when not a memory op.
    bool isCap = false; //!< Capability-width (16-byte, tagged) access.
    /**
     * True when the address of this access was produced by an
     * immediately preceding load (pointer chasing): the access cannot
     * overlap with the previous miss and pays full latency.
     */
    bool dependsOnLoad = false;

    // --- Branches -----------------------------------------------------
    BranchKind branch = BranchKind::None;
    bool taken = false;
    bool isCall = false; //!< Pushes a return address (BL / BLR).
    Addr target = 0;
    /**
     * True when the branch installs new PCC bounds (purecap
     * cross-library call/return, capability indirect call). The
     * Morello predictor does not track PCC bounds and stalls.
     */
    bool pccChange = false;

    // Convenience constructors ----------------------------------------
    static DynOp
    alu(Addr pc, isa::Opcode op = isa::Opcode::Add)
    {
        DynOp d;
        d.op = op;
        d.pc = pc;
        return d;
    }

    static DynOp
    load(Addr pc, Addr addr, u8 size, bool is_cap = false,
         bool dependent = false)
    {
        DynOp d;
        d.op = is_cap ? isa::Opcode::LdrCap : isa::Opcode::Ldr;
        d.pc = pc;
        d.addr = addr;
        d.size = size;
        d.isCap = is_cap;
        d.dependsOnLoad = dependent;
        return d;
    }

    static DynOp
    store(Addr pc, Addr addr, u8 size, bool is_cap = false)
    {
        DynOp d;
        d.op = is_cap ? isa::Opcode::StrCap : isa::Opcode::Str;
        d.pc = pc;
        d.addr = addr;
        d.size = size;
        d.isCap = is_cap;
        d.uops = size > 8 ? 2 : 1; // 128-bit stores crack into two uops.
        return d;
    }

    static DynOp
    branchOp(Addr pc, BranchKind kind, bool taken, Addr target,
             bool pcc_change = false, bool is_call = false)
    {
        DynOp d;
        d.op = kind == BranchKind::Return     ? isa::Opcode::Ret
               : kind == BranchKind::Indirect ? isa::Opcode::Br
                                              : isa::Opcode::B;
        d.pc = pc;
        d.branch = kind;
        d.taken = taken;
        d.isCall = is_call;
        d.target = target;
        d.pccChange = pcc_change;
        return d;
    }

    /** A conditional direct branch (subject to direction prediction). */
    static DynOp
    condBranch(Addr pc, bool taken, Addr target)
    {
        DynOp d = branchOp(pc, BranchKind::Immed, taken, target);
        d.op = isa::Opcode::BCond;
        return d;
    }
};

} // namespace cheri::uarch

#endif // CHERI_UARCH_DYNOP_HPP
