/**
 * @file
 * Branch prediction model: gshare direction predictor, an indirect-
 * target BTB and a return-address stack, plus the Morello-specific
 * limitation the paper centres on — the predictor does not track PCC
 * bounds, so capability branches that install new bounds cannot be
 * followed speculatively and stall the frontend (§2.2, §4.5).
 */

#ifndef CHERI_UARCH_BRANCH_PREDICTOR_HPP
#define CHERI_UARCH_BRANCH_PREDICTOR_HPP

#include <vector>

#include "support/types.hpp"
#include "uarch/dynop.hpp"

namespace cheri::uarch {

struct BranchPredictorConfig
{
    u32 pht_entries = 16384; //!< gshare pattern history table.
    u32 history_bits = 12;
    u32 btb_entries = 1024;  //!< indirect-target buffer.
    u32 ras_depth = 16;
    /**
     * A capability-aware predictor (the paper's projection: "a CHERI
     * implementation with a capability-aware branch predictor") treats
     * PCC-bounds-changing branches like any other.
     */
    bool cap_aware = false;
};

/** Outcome of predicting one branch. */
struct BranchPrediction
{
    bool mispredicted = false;
    bool pcc_stall = false; //!< Frontend stalled on a PCC-bounds update.
};

class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredictorConfig &config);

    /** Predict-and-update for a resolved branch. */
    BranchPrediction resolve(const DynOp &op);

    u64 branches() const { return branches_; }
    u64 mispredicts() const { return mispredicts_; }
    u64 pccStalls() const { return pccStalls_; }

    const BranchPredictorConfig &config() const { return config_; }

  private:
    bool predictDirection(Addr pc, bool taken);
    bool predictIndirect(Addr pc, Addr target);

    BranchPredictorConfig config_;
    std::vector<u8> pht_;       //!< 2-bit saturating counters.
    std::vector<Addr> btb_;     //!< last-target table.
    std::vector<Addr> ras_;     //!< return-address stack.
    std::size_t rasTop_ = 0;    //!< index one past the top entry.
    u64 history_ = 0;
    u64 branches_ = 0;
    u64 mispredicts_ = 0;
    u64 pccStalls_ = 0;
};

} // namespace cheri::uarch

#endif // CHERI_UARCH_BRANCH_PREDICTOR_HPP
