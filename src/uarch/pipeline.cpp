#include "uarch/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"
#include "trace/profile.hpp"

namespace cheri::uarch {

using isa::InstClass;
using pmu::Event;

PipelineModel::PipelineModel(const PipelineConfig &config,
                             mem::MemorySystem &memory,
                             pmu::EventCounts &counts)
    : config_(config), memory_(memory), counts_(counts),
      predictor_(config.bp), sq_(config.sq)
{
    CHERI_ASSERT(config.width > 0 && config.mlp > 0, "bad pipeline config");
}

void
PipelineModel::refreshHookDispatch()
{
    retireHook_ = nullptr;
    laneHook_ = nullptr;
    epochHook_ = nullptr;
    u64 every = 0;
    for (ExecHooks *h : hooks_) {
        if (h->wantsRetire()) {
            CHERI_ASSERT(retireHook_ == nullptr,
                         "two ExecHooks claim the retire slot");
            retireHook_ = h;
        }
        if (h->wantsLaneSwitch()) {
            CHERI_ASSERT(laneHook_ == nullptr,
                         "two ExecHooks claim the lane-switch slot");
            laneHook_ = h;
        }
        if (const u64 interval = h->epochInstructions(); interval > 0) {
            CHERI_ASSERT(epochHook_ == nullptr,
                         "two ExecHooks claim the epoch slot");
            epochHook_ = h;
            every = interval;
        }
    }
    // Preserve the countdown phase across attach/detach mid-run: only
    // (re)arm when the interval provider actually changed.
    if (every != epochEvery_) {
        epochEvery_ = every;
        instsToEpoch_ = every;
    }
}

void
PipelineModel::attachHooks(ExecHooks *hooks)
{
    CHERI_ASSERT(hooks != nullptr, "attachHooks(nullptr)");
    hooks_.push_back(hooks);
    refreshHookDispatch();
}

void
PipelineModel::detachHooks(ExecHooks *hooks)
{
    hooks_.erase(std::remove(hooks_.begin(), hooks_.end(), hooks),
                 hooks_.end());
    refreshHookDispatch();
}

void
PipelineModel::notifyFault(Addr pc)
{
    for (ExecHooks *h : hooks_)
        h->onFault(*this, pc);
}

double
PipelineModel::portCost(InstClass cls) const
{
    switch (cls) {
      case InstClass::Dp:
        return 1.0 / config_.dp_ports;
      case InstClass::Load:
        return 1.0 / config_.load_ports;
      case InstClass::Store:
        return 1.0 / config_.store_ports;
      case InstClass::Vfp:
      case InstClass::Ase:
        return 1.0 / config_.fp_ports;
      case InstClass::BranchImmed:
      case InstClass::BranchIndirect:
      case InstClass::BranchReturn:
        return 1.0 / config_.branch_ports;
      case InstClass::Other:
        return 0.0;
    }
    return 0.0;
}

void
PipelineModel::recordSpec(InstClass cls, u64 n)
{
    counts_.add(Event::InstSpec, n);
    switch (cls) {
      case InstClass::Dp:
        counts_.add(Event::DpSpec, n);
        break;
      case InstClass::Load:
        counts_.add(Event::LdSpec, n);
        break;
      case InstClass::Store:
        counts_.add(Event::StSpec, n);
        break;
      case InstClass::Vfp:
        counts_.add(Event::VfpSpec, n);
        break;
      case InstClass::Ase:
        counts_.add(Event::AseSpec, n);
        break;
      case InstClass::BranchImmed:
        counts_.add(Event::BrImmedSpec, n);
        break;
      case InstClass::BranchIndirect:
        counts_.add(Event::BrIndirectSpec, n);
        break;
      case InstClass::BranchReturn:
        counts_.add(Event::BrReturnSpec, n);
        break;
      case InstClass::Other:
        break;
    }
}

void
PipelineModel::stallBackendMem(double cycles, mem::MemLevel level)
{
    cycleF_ += cycles;
    switch (level) {
      case mem::MemLevel::L1:
        stallMemL1F_ += cycles;
        break;
      case mem::MemLevel::L2:
        stallMemL2F_ += cycles;
        break;
      case mem::MemLevel::Llc:
      case mem::MemLevel::Dram:
        stallMemExtF_ += cycles;
        break;
    }
}

void
PipelineModel::issue(const DynOp &op)
{
    CHERI_ASSERT(!finished_, "issue after finish");
    if (laneHook_ != nullptr)
        laneHook_->onLaneSwitch(laneId_, cycleF_);
    if (approxSkip_) {
        // Approx fast-forward: the instruction retires (architectural
        // progress and epoch boundaries stay exact) but the timing
        // model is skipped; the sampler extrapolates its cost later.
        counts_.add(Event::InstRetired);
        retireTail();
        return;
    }
    const InstClass cls = isa::opcodeClass(op.op);
    const u32 uops = std::max<u32>(op.uops, 1);

    // ----- Frontend: one I-fetch per 16-byte fetch group ------------
    const Addr group = op.pc >> 4;
    if (group != lastFetchGroup_) {
        lastFetchGroup_ = group;
        const mem::AccessResult fetch = memory_.fetch(op.pc);
        if (fetch.latency > 0) {
            // Fetch bubbles: partially hidden by the fetch queue.
            const double visible = 0.7 * static_cast<double>(fetch.latency);
            cycleF_ += visible;
            stallFrontendF_ += visible;
        }
    }

    // ----- Issue slots and execution-port contention ----------------
    const double slot_cost = static_cast<double>(uops) / config_.width;
    const double port_cost = portCost(cls) * uops;
    cycleF_ += std::max(slot_cost, port_cost);
    if (port_cost > slot_cost)
        stallCoreF_ += port_cost - slot_cost;

    if (op.op == isa::Opcode::Udiv || op.op == isa::Opcode::FDiv) {
        // The single divider is not pipelined.
        const double extra = static_cast<double>(config_.div_latency) / 2.0;
        cycleF_ += extra;
        stallCoreF_ += extra;
    }

    uopsRetired_ += uops;
    counts_.add(Event::InstRetired);
    recordSpec(cls, uops);

    // ----- Branch resolution -----------------------------------------
    if (op.branch != BranchKind::None) {
        counts_.add(Event::BrRetired);
        const BranchPrediction pred = predictor_.resolve(op);
        if (pred.mispredicted) {
            counts_.add(Event::BrMisPredRetired);
            const double penalty =
                static_cast<double>(config_.mispredict_penalty);
            cycleF_ += penalty;
            stallBadSpecF_ += penalty;
            // Wrong-path work inflates the speculative counts.
            const u64 wrong = static_cast<u64>(penalty / 2.0 *
                                               config_.width);
            recordSpec(InstClass::Dp, wrong / 2);
            recordSpec(InstClass::Load, wrong / 4);
            recordSpec(InstClass::Store, wrong / 8);
            recordSpec(InstClass::BranchImmed, wrong / 8);
        }
        if (pred.pcc_stall) {
            const double penalty =
                static_cast<double>(config_.pcc_stall_penalty);
            cycleF_ += penalty;
            stallFrontendF_ += penalty;
            stallPccF_ += penalty;
        }
    }

    // ----- Memory -----------------------------------------------------
    if (op.size > 0 && isa::isMemory(op.op)) {
        const bool is_store = cls == InstClass::Store;
        if (is_store) {
            const mem::AccessResult res =
                memory_.data(op.addr, op.size, true, op.isCap);
            const Cycles stall = sq_.push(cycles(), res.latency, op.size);
            if (stall) {
                // Store-buffer backpressure: an execution-resource
                // (core-bound) stall in the N1 accounting.
                cycleF_ += static_cast<double>(stall);
                stallCoreF_ += static_cast<double>(stall);
            }
            if (res.tlb_walk) {
                const double walk =
                    static_cast<double>(memory_.config().walk_latency) / 2.0;
                stallBackendMem(walk, mem::MemLevel::L2);
            }
        } else {
            if (op.dependsOnLoad && lastLoadCompleteF_ > cycleF_)
                stallBackendMem(lastLoadCompleteF_ - cycleF_,
                                lastLoadLevel_);
            const mem::AccessResult res =
                memory_.data(op.addr, op.size, false, op.isCap);
            const double l1_lat =
                static_cast<double>(memory_.config().l1_latency);
            const double lat = static_cast<double>(res.latency);
            if (res.level != mem::MemLevel::L1 && !op.dependsOnLoad) {
                // Independent miss: overlapped within the MLP window.
                const double amortized =
                    std::max(0.0, lat - l1_lat) / config_.mlp;
                stallBackendMem(amortized, res.level);
            }
            if (res.tlb_walk)
                stallBackendMem(
                    static_cast<double>(memory_.config().walk_latency) *
                        0.25,
                    mem::MemLevel::L2);
            lastLoadCompleteF_ = cycleF_ + lat;
            lastLoadLevel_ = res.level;
        }
    }

    // Observability: one predictable null check per retired op when
    // tracing is off, a counter decrement when epoch-sampling is on.
    retireTail();
}

PipelineModel::LiveStats
PipelineModel::liveStats() const
{
    LiveStats live;
    live.cycles = cycleF_;
    live.stallFrontend = stallFrontendF_;
    live.stallPcc = stallPccF_;
    live.stallBadSpec = stallBadSpecF_;
    live.stallMemL1 = stallMemL1F_;
    live.stallMemL2 = stallMemL2F_;
    live.stallMemExt = stallMemExtF_;
    live.stallCore = stallCoreF_;
    live.uopsRetired = uopsRetired_;
    return live;
}

void
PipelineModel::finish()
{
    CHERI_TRACE_SCOPE("uarch/pipeline.finish");
    CHERI_ASSERT(!finished_, "finish called twice");
    finished_ = true;

    const auto cyc = static_cast<u64>(std::llround(cycleF_));
    counts_.add(Event::CpuCycles, cyc);

    const double backend =
        stallMemL1F_ + stallMemL2F_ + stallMemExtF_ + stallCoreF_;
    counts_.add(Event::StallFrontend,
                static_cast<u64>(stallFrontendF_ + 0.5));
    counts_.add(Event::StallBackend, static_cast<u64>(backend + 0.5));
    counts_.add(Event::StallMemL1, static_cast<u64>(stallMemL1F_ + 0.5));
    counts_.add(Event::StallMemL2, static_cast<u64>(stallMemL2F_ + 0.5));
    counts_.add(Event::StallMemExt, static_cast<u64>(stallMemExtF_ + 0.5));
    counts_.add(Event::StallCore, static_cast<u64>(stallCoreF_ + 0.5));
    counts_.add(Event::PccStall, static_cast<u64>(stallPccF_ + 0.5));

    const u64 slots_total = cyc * config_.width;
    counts_.add(Event::SlotsTotal, slots_total);
    counts_.add(Event::SlotsRetired, uopsRetired_);
    counts_.add(Event::SlotsBadSpec,
                static_cast<u64>(stallBadSpecF_ * config_.width + 0.5));
    counts_.add(Event::SlotsFrontend,
                static_cast<u64>(stallFrontendF_ * config_.width + 0.5));
    counts_.add(Event::SlotsBackend,
                static_cast<u64>(backend * config_.width + 0.5));
}

} // namespace cheri::uarch
