#include "uarch/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"
#include "support/telemetry.hpp"
#include "trace/profile.hpp"

namespace cheri::uarch {

using isa::InstClass;
using pmu::Event;

PipelineModel::PipelineModel(const PipelineConfig &config,
                             mem::MemorySystem &memory,
                             pmu::EventCounts &counts)
    : config_(config), memory_(memory), counts_(counts),
      predictor_(config.bp), sq_(config.sq)
{
    CHERI_ASSERT(config.width > 0 && config.mlp > 0, "bad pipeline config");
    for (std::size_t cls = 0; cls < portCostTbl_.size(); ++cls)
        portCostTbl_[cls] = portCost(static_cast<InstClass>(cls));
    for (std::size_t uops = 0; uops < slotCostTbl_.size(); ++uops)
        slotCostTbl_[uops] =
            static_cast<double>(uops) / config_.width;
}

PipelineModel::~PipelineModel()
{
    // Remainder flush for pipelines destroyed without finish() (unit
    // tests); finish() already flushed a finalized run's deltas.
    telemetry::addBatchIssue(batchCalls_ - batchCallsFlushed_,
                             batchOps_ - batchOpsFlushed_);
}

void
PipelineModel::refreshHookDispatch()
{
    retireHook_ = nullptr;
    laneHook_ = nullptr;
    epochHook_ = nullptr;
    u64 every = 0;
    for (ExecHooks *h : hooks_) {
        if (h->wantsRetire()) {
            CHERI_ASSERT(retireHook_ == nullptr,
                         "two ExecHooks claim the retire slot");
            retireHook_ = h;
        }
        if (h->wantsLaneSwitch()) {
            CHERI_ASSERT(laneHook_ == nullptr,
                         "two ExecHooks claim the lane-switch slot");
            laneHook_ = h;
        }
        if (const u64 interval = h->epochInstructions(); interval > 0) {
            CHERI_ASSERT(epochHook_ == nullptr,
                         "two ExecHooks claim the epoch slot");
            epochHook_ = h;
            every = interval;
        }
    }
    // Preserve the countdown phase across attach/detach mid-run: only
    // (re)arm when the interval provider actually changed.
    if (every != epochEvery_) {
        epochEvery_ = every;
        instsToEpoch_ = every;
    }
}

void
PipelineModel::attachHooks(ExecHooks *hooks)
{
    CHERI_ASSERT(hooks != nullptr, "attachHooks(nullptr)");
    hooks_.push_back(hooks);
    refreshHookDispatch();
}

void
PipelineModel::detachHooks(ExecHooks *hooks)
{
    hooks_.erase(std::remove(hooks_.begin(), hooks_.end(), hooks),
                 hooks_.end());
    refreshHookDispatch();
}

void
PipelineModel::notifyFault(Addr pc)
{
    for (ExecHooks *h : hooks_)
        h->onFault(*this, pc);
}

double
PipelineModel::portCost(InstClass cls) const
{
    switch (cls) {
      case InstClass::Dp:
        return 1.0 / config_.dp_ports;
      case InstClass::Load:
        return 1.0 / config_.load_ports;
      case InstClass::Store:
        return 1.0 / config_.store_ports;
      case InstClass::Vfp:
      case InstClass::Ase:
        return 1.0 / config_.fp_ports;
      case InstClass::BranchImmed:
      case InstClass::BranchIndirect:
      case InstClass::BranchReturn:
        return 1.0 / config_.branch_ports;
      case InstClass::Other:
        return 0.0;
    }
    return 0.0;
}

void
PipelineModel::recordSpec(InstClass cls, u64 n)
{
    counts_.add(Event::InstSpec, n);
    switch (cls) {
      case InstClass::Dp:
        counts_.add(Event::DpSpec, n);
        break;
      case InstClass::Load:
        counts_.add(Event::LdSpec, n);
        break;
      case InstClass::Store:
        counts_.add(Event::StSpec, n);
        break;
      case InstClass::Vfp:
        counts_.add(Event::VfpSpec, n);
        break;
      case InstClass::Ase:
        counts_.add(Event::AseSpec, n);
        break;
      case InstClass::BranchImmed:
        counts_.add(Event::BrImmedSpec, n);
        break;
      case InstClass::BranchIndirect:
        counts_.add(Event::BrIndirectSpec, n);
        break;
      case InstClass::BranchReturn:
        counts_.add(Event::BrReturnSpec, n);
        break;
      case InstClass::Other:
        break;
    }
}

void
PipelineModel::flushSpec(const SpecBatch &batch)
{
    counts_.add(Event::InstRetired, batch.retired);
    counts_.add(Event::InstSpec, batch.instSpec);
    static constexpr Event kClassEvent[9] = {
        Event::DpSpec,        Event::VfpSpec,       Event::AseSpec,
        Event::LdSpec,        Event::StSpec,        Event::BrImmedSpec,
        Event::BrIndirectSpec, Event::BrReturnSpec, Event::InstSpec,
    };
    for (std::size_t cls = 0; cls < batch.byClass.size(); ++cls)
        if (batch.byClass[cls] != 0 &&
            static_cast<InstClass>(cls) != InstClass::Other)
            counts_.add(kClassEvent[cls], batch.byClass[cls]);
}

void
PipelineModel::stallBackendMem(Accum &a, double cycles, mem::MemLevel level)
{
    a.cycleF += cycles;
    switch (level) {
      case mem::MemLevel::L1:
        a.stallMemL1F += cycles;
        break;
      case mem::MemLevel::L2:
        a.stallMemL2F += cycles;
        break;
      case mem::MemLevel::Llc:
      case mem::MemLevel::Dram:
        a.stallMemExtF += cycles;
        break;
    }
}

void
PipelineModel::issueTimed(const DynOp &op, Accum &a, SpecBatch *batch)
{
    const InstClass cls = isa::opcodeClass(op.op);
    const u32 uops = std::max<u32>(op.uops, 1);

    // Stage a spec count either into the chunk-local batch (batched
    // path; flushed before any observer runs) or straight into the
    // counters (per-op path, unchanged).
    const auto spec = [&](InstClass c, u64 n) {
        if (batch != nullptr) {
            batch->instSpec += n;
            batch->byClass[static_cast<std::size_t>(c)] += n;
        } else {
            recordSpec(c, n);
        }
    };

    // ----- Frontend: one I-fetch per 16-byte fetch group ------------
    const Addr group = op.pc >> 4;
    if (group != a.lastFetchGroup) {
        a.lastFetchGroup = group;
        const mem::AccessResult fetch = memory_.fetch(op.pc);
        if (fetch.latency > 0) {
            // Fetch bubbles: partially hidden by the fetch queue.
            const double visible = 0.7 * static_cast<double>(fetch.latency);
            a.cycleF += visible;
            a.stallFrontendF += visible;
        }
    }

    // ----- Issue slots and execution-port contention ----------------
    // Table lookups cache the divisions' exact quotients (see the
    // table declarations); the arithmetic stream is unchanged.
    const double slot_cost = slotCostTbl_[uops];
    const double port_cost = portCostTbl_[static_cast<std::size_t>(cls)] *
                             uops;
    a.cycleF += std::max(slot_cost, port_cost);
    if (port_cost > slot_cost)
        a.stallCoreF += port_cost - slot_cost;

    if (op.op == isa::Opcode::Udiv || op.op == isa::Opcode::FDiv) {
        // The single divider is not pipelined.
        const double extra = static_cast<double>(config_.div_latency) / 2.0;
        a.cycleF += extra;
        a.stallCoreF += extra;
    }

    a.uopsRetired += uops;
    if (batch != nullptr)
        ++batch->retired;
    else
        counts_.add(Event::InstRetired);
    spec(cls, uops);

    // ----- Branch resolution -----------------------------------------
    if (op.branch != BranchKind::None) {
        counts_.add(Event::BrRetired);
        const BranchPrediction pred = predictor_.resolve(op);
        if (pred.mispredicted) {
            counts_.add(Event::BrMisPredRetired);
            const double penalty =
                static_cast<double>(config_.mispredict_penalty);
            a.cycleF += penalty;
            a.stallBadSpecF += penalty;
            // Wrong-path work inflates the speculative counts.
            const u64 wrong = static_cast<u64>(penalty / 2.0 *
                                               config_.width);
            spec(InstClass::Dp, wrong / 2);
            spec(InstClass::Load, wrong / 4);
            spec(InstClass::Store, wrong / 8);
            spec(InstClass::BranchImmed, wrong / 8);
        }
        if (pred.pcc_stall) {
            const double penalty =
                static_cast<double>(config_.pcc_stall_penalty);
            a.cycleF += penalty;
            a.stallFrontendF += penalty;
            a.stallPccF += penalty;
        }
    }

    // ----- Memory -----------------------------------------------------
    if (op.size > 0 && isa::isMemory(op.op)) {
        const bool is_store = cls == InstClass::Store;
        if (is_store) {
            const mem::AccessResult res =
                memory_.data(op.addr, op.size, true, op.isCap);
            const Cycles stall = sq_.push(static_cast<Cycles>(a.cycleF),
                                          res.latency, op.size);
            if (stall) {
                // Store-buffer backpressure: an execution-resource
                // (core-bound) stall in the N1 accounting.
                a.cycleF += static_cast<double>(stall);
                a.stallCoreF += static_cast<double>(stall);
            }
            if (res.tlb_walk) {
                const double walk =
                    static_cast<double>(memory_.config().walk_latency) / 2.0;
                stallBackendMem(a, walk, mem::MemLevel::L2);
            }
        } else {
            if (op.dependsOnLoad && a.lastLoadCompleteF > a.cycleF)
                stallBackendMem(a, a.lastLoadCompleteF - a.cycleF,
                                a.lastLoadLevel);
            const mem::AccessResult res =
                memory_.data(op.addr, op.size, false, op.isCap);
            const double l1_lat =
                static_cast<double>(memory_.config().l1_latency);
            const double lat = static_cast<double>(res.latency);
            if (res.level != mem::MemLevel::L1 && !op.dependsOnLoad) {
                // Independent miss: overlapped within the MLP window.
                const double amortized =
                    std::max(0.0, lat - l1_lat) / config_.mlp;
                stallBackendMem(a, amortized, res.level);
            }
            if (res.tlb_walk)
                stallBackendMem(
                    a,
                    static_cast<double>(memory_.config().walk_latency) *
                        0.25,
                    mem::MemLevel::L2);
            a.lastLoadCompleteF = a.cycleF + lat;
            a.lastLoadLevel = res.level;
        }
    }
}

void
PipelineModel::issue(const DynOp &op)
{
    CHERI_ASSERT(!finished_, "issue after finish");
    if (laneHook_ != nullptr)
        laneHook_->onLaneSwitch(laneId_, acc_.cycleF);
    if (approxSkip_) {
        // Approx fast-forward: the instruction retires (architectural
        // progress and epoch boundaries stay exact) but the timing
        // model is skipped; the sampler extrapolates its cost later.
        counts_.add(Event::InstRetired);
        retireTail();
        return;
    }
    issueTimed(op, acc_);

    // Observability: one predictable null check per retired op when
    // tracing is off, a counter decrement when epoch-sampling is on.
    retireTail();
}

void
PipelineModel::issueBlock(const DynOp *ops, std::size_t n)
{
    CHERI_ASSERT(!finished_, "issue after finish");
    std::size_t i = 0;
    while (i < n) {
        // Any per-op observer — retire hook, lane-switch arbitration,
        // approx skip — or batch_issue=off keeps the op-at-a-time
        // path with its per-op dispatch points. Re-checked every
        // chunk: an epoch hook fired at a chunk boundary may flip
        // approxSkip (the --approx sampler), and the remaining ops
        // must then take issue()'s skip path exactly as the unbatched
        // loop would.
        if (!config_.batch_issue || retireHook_ != nullptr ||
            laneHook_ != nullptr || approxSkip_) {
            issue(ops[i]);
            ++i;
            continue;
        }
        std::size_t chunk = n - i;
        if (epochEvery_ != 0)
            chunk = std::min<std::size_t>(
                chunk, static_cast<std::size_t>(instsToEpoch_));
        // The chunk runs over a local accumulator: same ops, same
        // order, same `+=` sequence on the same doubles — bit-
        // identical to issuing through the member state, but the hot
        // values live in registers across the whole chunk. The spec
        // counters stage into a chunk-local batch the same way and
        // flush before the epoch hook (the only observer that can
        // run) fires.
        Accum a = acc_;
        SpecBatch batch;
        const std::size_t end = i + chunk;
        for (; i < end; ++i)
            issueTimed(ops[i], a, &batch);
        acc_ = a;
        flushSpec(batch);
        retired_ += chunk;
        ++batchCalls_;
        batchOps_ += chunk;
        if (epochEvery_ != 0) {
            instsToEpoch_ -= chunk;
            if (instsToEpoch_ == 0) {
                instsToEpoch_ = epochEvery_;
                epochHook_->onEpochBoundary(*this);
            }
        }
    }
}

PipelineModel::LiveStats
PipelineModel::liveStats() const
{
    LiveStats live;
    live.cycles = acc_.cycleF;
    live.stallFrontend = acc_.stallFrontendF;
    live.stallPcc = acc_.stallPccF;
    live.stallBadSpec = acc_.stallBadSpecF;
    live.stallMemL1 = acc_.stallMemL1F;
    live.stallMemL2 = acc_.stallMemL2F;
    live.stallMemExt = acc_.stallMemExtF;
    live.stallCore = acc_.stallCoreF;
    live.uopsRetired = acc_.uopsRetired;
    return live;
}

void
PipelineModel::finish()
{
    CHERI_TRACE_SCOPE("uarch/pipeline.finish");
    CHERI_ASSERT(!finished_, "finish called twice");
    finished_ = true;

    // Per-run telemetry flush: batched-issue stats land inside the
    // finishing run's snapshot window.
    telemetry::addBatchIssue(batchCalls_ - batchCallsFlushed_,
                             batchOps_ - batchOpsFlushed_);
    batchCallsFlushed_ = batchCalls_;
    batchOpsFlushed_ = batchOps_;

    const auto cyc = static_cast<u64>(std::llround(acc_.cycleF));
    counts_.add(Event::CpuCycles, cyc);

    const double backend = acc_.stallMemL1F + acc_.stallMemL2F +
                           acc_.stallMemExtF + acc_.stallCoreF;
    counts_.add(Event::StallFrontend,
                static_cast<u64>(acc_.stallFrontendF + 0.5));
    counts_.add(Event::StallBackend, static_cast<u64>(backend + 0.5));
    counts_.add(Event::StallMemL1,
                static_cast<u64>(acc_.stallMemL1F + 0.5));
    counts_.add(Event::StallMemL2,
                static_cast<u64>(acc_.stallMemL2F + 0.5));
    counts_.add(Event::StallMemExt,
                static_cast<u64>(acc_.stallMemExtF + 0.5));
    counts_.add(Event::StallCore, static_cast<u64>(acc_.stallCoreF + 0.5));
    counts_.add(Event::PccStall, static_cast<u64>(acc_.stallPccF + 0.5));

    const u64 slots_total = cyc * config_.width;
    counts_.add(Event::SlotsTotal, slots_total);
    counts_.add(Event::SlotsRetired, acc_.uopsRetired);
    counts_.add(Event::SlotsBadSpec,
                static_cast<u64>(acc_.stallBadSpecF * config_.width + 0.5));
    counts_.add(Event::SlotsFrontend,
                static_cast<u64>(acc_.stallFrontendF * config_.width + 0.5));
    counts_.add(Event::SlotsBackend,
                static_cast<u64>(backend * config_.width + 0.5));
}

} // namespace cheri::uarch
