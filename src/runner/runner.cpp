#include "runner/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "support/logging.hpp"
#include "trace/profile.hpp"
#include "workloads/registry.hpp"

namespace cheri::runner {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Execute one resolved cell: cache replay when possible, otherwise a
 * fresh Machine simulation, plus the derived-metric views.
 */
RunResult
runCell(const RunRequest &request, const workloads::Workload &workload,
        const ResultCache *cache, u32 worker)
{
    CHERI_TRACE_SCOPE("runner/cell");
    const auto start = Clock::now();
    RunResult out;
    out.request = request;
    out.workerThread = worker;

    if (workload.supports(request.abi)) {
        // Traced cells always simulate: the on-disk record format
        // does not round-trip epoch series, and their fingerprint is
        // disjoint from untraced cells anyway.
        const bool traced = request.trace.enabled;
        const ResultCache *cell_cache = traced ? nullptr : cache;
        const u64 key = cell_cache ? cellFingerprint(request) : 0;
        if (cell_cache)
            out.sim = cell_cache->load(request, key);
        if (out.sim) {
            out.cacheHit = true;
        } else {
            const auto config = request.resolvedConfig();
            out.sim = workloads::detail::executeWorkload(
                workload, request.abi, request.scale, &config,
                request.seed, traced ? &request.trace : nullptr,
                traced ? &out.epochs : nullptr);
            if (cell_cache && out.sim)
                cell_cache->store(request, key, *out.sim);
        }
        if (out.sim) {
            out.metrics =
                analysis::DerivedMetrics::compute(out.sim->counts);
            out.topdownTruth =
                analysis::TopDown::fromModelTruth(out.sim->counts);
            out.topdownPaper =
                analysis::TopDown::fromPaperFormulas(out.sim->counts);
        }
    }

    out.wallSeconds = secondsSince(start);
    return out;
}

} // namespace

ExperimentPlan &
ExperimentPlan::addAbiSweep(const std::string &workload,
                            workloads::Scale scale, u64 seed)
{
    for (abi::Abi abi : abi::kAllAbis) {
        RunRequest request;
        request.workload = workload;
        request.abi = abi;
        request.scale = scale;
        request.seed = seed;
        cells_.push_back(std::move(request));
    }
    return *this;
}

ExperimentPlan
ExperimentPlan::fullSweep(const std::vector<std::string> &names,
                          workloads::Scale scale, u64 seed)
{
    ExperimentPlan plan;
    if (names.empty()) {
        for (const auto &w : workloads::allWorkloads())
            plan.addAbiSweep(w->info().name, scale, seed);
    } else {
        for (const auto &name : names)
            plan.addAbiSweep(name, scale, seed);
    }
    return plan;
}

std::string
PlanStats::summary() const
{
    std::ostringstream os;
    os << cells << " cells (" << naCells << " NA), " << cacheHits
       << " cache hits / " << simulated << " simulated, " << jobs
       << " jobs, ";
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.3f", wallSeconds);
    os << wall << "s wall";
    return os.str();
}

const RunResult *
PlanOutcome::find(const std::string &workload, abi::Abi abi) const
{
    for (const auto &result : results)
        if (result.request.workload == workload &&
            result.request.abi == abi)
            return &result;
    return nullptr;
}

u32
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<u32>(hw) : 1;
}

PlanOutcome
runPlan(const ExperimentPlan &plan, const RunnerOptions &options)
{
    const auto start = Clock::now();
    PlanOutcome outcome;
    outcome.results.resize(plan.size());
    if (plan.empty())
        return outcome;

    // Resolve every cell before any worker starts: an unknown
    // workload is a user error and must not surface mid-plan from an
    // arbitrary thread.
    const auto pool = workloads::allWorkloads();
    std::vector<const workloads::Workload *> targets;
    targets.reserve(plan.size());
    for (const auto &cell : plan.cells()) {
        const auto *workload =
            workloads::findWorkload(pool, cell.workload);
        if (!workload)
            CHERI_FATAL("unknown workload '", cell.workload,
                        "' in experiment plan (try 'cheriperf list')");
        targets.push_back(workload);
    }

    const ResultCache cache(options.cache_dir);
    const ResultCache *cachePtr = options.cache ? &cache : nullptr;

    u32 jobs = options.jobs ? options.jobs : hardwareJobs();
    jobs = std::min<u32>(jobs, static_cast<u32>(plan.size()));
    jobs = std::max<u32>(jobs, 1);

    std::atomic<std::size_t> next{0};
    const auto worker = [&](u32 tid) {
        for (std::size_t i = next.fetch_add(1); i < plan.size();
             i = next.fetch_add(1)) {
            outcome.results[i] =
                runCell(plan.cells()[i], *targets[i], cachePtr, tid);
            if (options.progress) {
                const auto &r = outcome.results[i];
                std::fprintf(
                    stderr, "  [runner] %s/%s %s (%.3fs, t%u)\n",
                    r.request.workload.c_str(),
                    abi::abiName(r.request.abi),
                    !r.ok()        ? "NA"
                    : r.cacheHit   ? "cached"
                                   : "simulated",
                    r.wallSeconds, tid);
            }
        }
    };

    if (jobs == 1) {
        worker(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (u32 t = 0; t < jobs; ++t)
            threads.emplace_back(worker, t);
        for (auto &thread : threads)
            thread.join();
    }

    PlanStats &stats = outcome.stats;
    stats.cells = plan.size();
    stats.jobs = jobs;
    for (const auto &result : outcome.results) {
        if (!result.ok())
            ++stats.naCells;
        else if (result.cacheHit)
            ++stats.cacheHits;
        else
            ++stats.simulated;
    }
    stats.wallSeconds = secondsSince(start);
    return outcome;
}

RunResult
run(const RunRequest &request)
{
    const auto pool = workloads::allWorkloads();
    const auto *workload = workloads::findWorkload(pool, request.workload);
    if (!workload)
        CHERI_FATAL("unknown workload '", request.workload,
                    "' (try 'cheriperf list')");
    return runCell(request, *workload, nullptr, 0);
}

RunResult
run(const RunRequest &request, const RunnerOptions &options)
{
    ExperimentPlan plan;
    plan.add(request);
    RunnerOptions serial = options;
    serial.jobs = 1;
    auto outcome = runPlan(plan, serial);
    return std::move(outcome.results.front());
}

} // namespace cheri::runner
