#include "runner/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <thread>

#include "support/logging.hpp"
#include "trace/profile.hpp"
#include "workloads/registry.hpp"

namespace cheri::runner {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

std::atomic<ResultHook> gResultHook{nullptr};
std::atomic<RunObserver *> gRunObserver{nullptr};

/**
 * Resolve a cell's lane workloads against the registry. Fatal on an
 * unknown name — a user error that must surface before any worker
 * starts. Expects a normalized() request (no single-entry lanes).
 */
std::vector<const workloads::Workload *>
resolveLanes(const std::vector<std::unique_ptr<workloads::Workload>> &pool,
             const RunRequest &request)
{
    std::vector<const workloads::Workload *> out;
    for (const Lane &lane : request.resolvedLanes()) {
        const auto *workload = workloads::findWorkload(pool, lane.workload);
        if (!workload)
            CHERI_FATAL("unknown workload '", lane.workload,
                        "' (try 'cheriperf list')");
        out.push_back(workload);
    }
    return out;
}

/**
 * Execute one resolved co-run cell: always a fresh multi-core
 * simulation (the on-disk record format does not carry per-lane
 * results), producing per-lane outcomes plus the SoC aggregate.
 */
RunResult
runCorunCell(const RunRequest &request,
             const std::vector<const workloads::Workload *> &targets,
             u32 worker)
{
    CHERI_TRACE_SCOPE("runner/corun-cell");
    if (request.approx.enabled)
        CHERI_FATAL("--approx does not support co-run cells: sampled "
                    "lanes would skew the shared-uncore interleaving");
    const auto start = Clock::now();
    RunResult out;
    out.request = request;
    out.workerThread = worker;

    const auto lanes = request.resolvedLanes();
    std::vector<workloads::detail::CorunLane> wl;
    wl.reserve(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i)
        wl.push_back({targets[i], lanes[i].abi});

    const auto config = request.resolvedConfig();
    const bool traced = request.trace.enabled;
    std::vector<trace::EpochSeries> epochs;
    auto sims = workloads::detail::executeCoRun(
        wl, request.scale, &config, request.seed,
        traced ? &request.trace : nullptr, traced ? &epochs : nullptr,
        &request.allocator);

    sim::SimResult aggregate;
    bool any = false;
    Cycles makespan = 0;
    out.lanes.reserve(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        LaneOutcome lane;
        lane.lane = lanes[i];
        lane.sim = std::move(sims[i]);
        if (lane.ok()) {
            lane.metrics =
                analysis::DerivedMetrics::compute(lane.sim->counts);
            lane.topdownTruth =
                analysis::TopDown::fromModelTruth(lane.sim->counts);
            lane.topdownPaper =
                analysis::TopDown::fromPaperFormulas(lane.sim->counts);
            aggregate.counts += lane.sim->counts;
            aggregate.instructions += lane.sim->instructions;
            makespan = std::max(makespan, lane.sim->cycles);
            any = true;
        }
        if (traced)
            lane.epochs = std::move(epochs[i]);
        out.lanes.push_back(std::move(lane));
    }
    if (any) {
        aggregate.cycles = makespan;
        aggregate.seconds =
            static_cast<double>(makespan) / (config.clock_ghz * 1e9);
        out.sim = std::move(aggregate);
        out.metrics = analysis::DerivedMetrics::compute(out.sim->counts);
        out.topdownTruth =
            analysis::TopDown::fromModelTruth(out.sim->counts);
        out.topdownPaper =
            analysis::TopDown::fromPaperFormulas(out.sim->counts);
    }
    out.wallSeconds = secondsSince(start);
    return out;
}

/**
 * Per-metric standard error of the mean across sampled epochs: each
 * DerivedMetrics member of the returned struct holds the stderr of
 * that metric's per-epoch values. Fewer than two epochs -> all zero
 * (no variance estimate to report).
 */
analysis::DerivedMetrics
metricStderr(const std::vector<pmu::EventCounts> &epochs)
{
    analysis::DerivedMetrics out{};
    const std::size_t n = epochs.size();
    if (n < 2)
        return out;

    std::vector<analysis::DerivedMetrics> per;
    per.reserve(n);
    for (const auto &counts : epochs)
        per.push_back(analysis::DerivedMetrics::compute(counts));

    for (const auto &field : analysis::allMetricFields()) {
        double mean = 0;
        for (const auto &m : per)
            mean += m.*(field.member);
        mean /= static_cast<double>(n);
        double var = 0;
        for (const auto &m : per) {
            const double d = m.*(field.member) - mean;
            var += d * d;
        }
        var /= static_cast<double>(n - 1);
        out.*(field.member) = std::sqrt(var / static_cast<double>(n));
    }
    return out;
}

/**
 * Execute one resolved solo cell: cache replay when possible,
 * otherwise a fresh Machine simulation, plus the derived-metric
 * views.
 */
RunResult
runSoloCell(const RunRequest &request,
            const std::vector<const workloads::Workload *> &targets,
            const ResultCache *cache, u32 worker)
{
    CHERI_TRACE_SCOPE("runner/cell");
    const auto start = Clock::now();
    RunResult out;
    out.request = request;
    out.workerThread = worker;
    const workloads::Workload &workload = *targets.front();

    if (workload.supports(request.abi)) {
        // Traced and approx cells always simulate: the on-disk record
        // format does not round-trip epoch series, extrapolated
        // estimates must never be replayed as ground truth, and their
        // fingerprints are disjoint from exact cells anyway.
        const bool traced = request.trace.enabled;
        const bool approx = request.approx.enabled;
        const ResultCache *cell_cache =
            (traced || approx) ? nullptr : cache;
        const u64 key = cell_cache ? cellFingerprint(request) : 0;
        if (cell_cache)
            out.sim = cell_cache->load(request, key);
        if (out.sim) {
            out.cacheHit = true;
        } else {
            const auto config = request.resolvedConfig();
            trace::ApproxReport report;
            out.sim = workloads::detail::executeWorkload(
                workload, request.abi, request.scale, &config,
                request.seed, traced ? &request.trace : nullptr,
                traced ? &out.epochs : nullptr,
                approx ? &request.approx : nullptr,
                approx ? &report : nullptr, &request.allocator);
            if (approx && out.sim) {
                ApproxOutcome ao;
                ao.stderr_ = metricStderr(report.epochCounts);
                ao.report = std::move(report);
                out.approx = std::move(ao);
            }
            if (cell_cache && out.sim)
                cell_cache->store(request, key, *out.sim);
        }
        if (out.sim) {
            out.metrics =
                analysis::DerivedMetrics::compute(out.sim->counts);
            out.topdownTruth =
                analysis::TopDown::fromModelTruth(out.sim->counts);
            out.topdownPaper =
                analysis::TopDown::fromPaperFormulas(out.sim->counts);
        }
    }

    out.wallSeconds = secondsSince(start);
    return out;
}

/** Solo/co-run dispatch plus the process-wide observation hook. */
RunResult
runCell(const RunRequest &request,
        const std::vector<const workloads::Workload *> &targets,
        const ResultCache *cache, u32 worker)
{
    RunResult out = request.corun()
                        ? runCorunCell(request, targets, worker)
                        : runSoloCell(request, targets, cache, worker);
    if (RunObserver *observer =
            gRunObserver.load(std::memory_order_acquire))
        observer->onResult(out);
    if (ResultHook hook = gResultHook.load(std::memory_order_acquire))
        hook(out);
    return out;
}

} // namespace

RunObserver *
setRunObserver(RunObserver *observer)
{
    return gRunObserver.exchange(observer, std::memory_order_acq_rel);
}

RunObserver *
runObserver()
{
    return gRunObserver.load(std::memory_order_acquire);
}

ResultHook
setResultHook(ResultHook hook)
{
    return gResultHook.exchange(hook, std::memory_order_acq_rel);
}

ResultHook
resultHook()
{
    return gResultHook.load(std::memory_order_acquire);
}

ExperimentPlan &
ExperimentPlan::addAbiSweep(const std::string &workload,
                            workloads::Scale scale, u64 seed)
{
    return addScenarioSweep(workload, scale, seed,
                            {alloc::AllocatorConfig{}});
}

ExperimentPlan &
ExperimentPlan::addScenarioSweep(
    const std::string &workload, workloads::Scale scale, u64 seed,
    const std::vector<alloc::AllocatorConfig> &allocators)
{
    // Allocator-major, ABI-minor: every axis expansion keeps the
    // historical three-ABI run order within one allocator, which is
    // what keeps default sweeps byte-identical to pre-axis output.
    for (const alloc::AllocatorConfig &allocator : allocators) {
        for (abi::Abi abi : abi::kAllAbis) {
            RunRequest request;
            request.workload = workload;
            request.abi = abi;
            request.scale = scale;
            request.seed = seed;
            request.allocator = allocator;
            cells_.push_back(std::move(request));
        }
    }
    return *this;
}

ExperimentPlan
ExperimentPlan::fullSweep(const std::vector<std::string> &names,
                          workloads::Scale scale, u64 seed)
{
    ExperimentPlan plan;
    if (names.empty()) {
        for (const auto &w : workloads::allWorkloads())
            plan.addAbiSweep(w->info().name, scale, seed);
    } else {
        for (const auto &name : names)
            plan.addAbiSweep(name, scale, seed);
    }
    return plan;
}

std::string
PlanStats::summary() const
{
    std::ostringstream os;
    os << cells << " cells (" << naCells << " NA), " << cacheHits
       << " cache hits / " << simulated << " simulated, " << jobs
       << " jobs, ";
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.3f", wallSeconds);
    os << wall << "s wall";
    return os.str();
}

const RunResult *
PlanOutcome::find(const std::string &workload, abi::Abi abi) const
{
    for (const auto &result : results)
        if (result.request.workload == workload &&
            result.request.abi == abi)
            return &result;
    return nullptr;
}

u32
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<u32>(hw) : 1;
}

PlanOutcome
runPlan(const ExperimentPlan &plan, const RunnerOptions &options)
{
    const auto start = Clock::now();
    PlanOutcome outcome;
    outcome.results.resize(plan.size());
    if (plan.empty())
        return outcome;

    // Canonicalize first (single-entry lane vectors collapse to their
    // solo cell), then resolve every cell (and every co-run lane)
    // before any worker starts: an unknown workload is a user error
    // and must not surface mid-plan from an arbitrary thread.
    std::vector<RunRequest> cells;
    cells.reserve(plan.size());
    for (const auto &cell : plan.cells())
        cells.push_back(cell.normalized());

    const auto pool = workloads::allWorkloads();
    std::vector<std::vector<const workloads::Workload *>> targets;
    targets.reserve(plan.size());
    for (const auto &cell : cells)
        targets.push_back(resolveLanes(pool, cell));

    const ResultCache cache(options.cache_dir);
    const ResultCache *cachePtr = options.cache ? &cache : nullptr;

    u32 jobs = options.jobs ? options.jobs : hardwareJobs();
    jobs = std::min<u32>(jobs, static_cast<u32>(plan.size()));
    jobs = std::max<u32>(jobs, 1);

    std::atomic<std::size_t> next{0};
    const auto worker = [&](u32 tid) {
        for (std::size_t i = next.fetch_add(1); i < plan.size();
             i = next.fetch_add(1)) {
            outcome.results[i] =
                runCell(cells[i], targets[i], cachePtr, tid);
            if (options.progress) {
                const auto &r = outcome.results[i];
                std::fprintf(
                    stderr, "  [runner] %s/%s %s (%.3fs, t%u)\n",
                    r.request.displayName().c_str(),
                    abi::abiName(r.request.abi),
                    !r.ok()        ? "NA"
                    : r.cacheHit   ? "cached"
                                   : "simulated",
                    r.wallSeconds, tid);
            }
        }
    };

    if (jobs == 1) {
        worker(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (u32 t = 0; t < jobs; ++t)
            threads.emplace_back(worker, t);
        for (auto &thread : threads)
            thread.join();
    }

    PlanStats &stats = outcome.stats;
    stats.cells = plan.size();
    stats.jobs = jobs;
    for (const auto &result : outcome.results) {
        if (!result.ok())
            ++stats.naCells;
        else if (result.cacheHit)
            ++stats.cacheHits;
        else
            ++stats.simulated;
    }
    stats.wallSeconds = secondsSince(start);
    return outcome;
}

RunResult
run(const RunRequest &request)
{
    const RunRequest cell = request.normalized();
    const auto pool = workloads::allWorkloads();
    return runCell(cell, resolveLanes(pool, cell), nullptr, 0);
}

RunResult
run(const RunRequest &request, const RunnerOptions &options)
{
    ExperimentPlan plan;
    plan.add(request);
    RunnerOptions serial = options;
    serial.jobs = 1;
    auto outcome = runPlan(plan, serial);
    return std::move(outcome.results.front());
}

} // namespace cheri::runner
