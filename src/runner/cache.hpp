/**
 * @file
 * Content-addressed on-disk result cache.
 *
 * The key is a 64-bit FNV-1a fingerprint of everything that
 * determines a cell's outcome: workload name, ABI, scale, seed, every
 * MachineConfig knob (memory geometry, latencies, pipeline widths,
 * predictor/store-queue configuration), and a schema version that
 * must be bumped whenever the simulation model changes behaviour.
 * The value is the full serialized EventCounts plus the architectural
 * totals, written as a text record (support/serialize.hpp) named
 * <hex-key>.cpr under the cache directory.
 *
 * Every load is paranoid: magic, version, echoed key, per-event
 * names, and the counts-vs-totals cross-check must all agree, or the
 * entry is treated as a miss and re-simulated. Corruption can cost
 * time, never correctness.
 */

#ifndef CHERI_RUNNER_CACHE_HPP
#define CHERI_RUNNER_CACHE_HPP

#include <optional>
#include <string>

#include "runner/run_request.hpp"

namespace cheri::runner {

/**
 * Bump when simulation semantics change, so stale caches from older
 * models self-invalidate instead of replaying outdated numbers.
 * v3: core/uncore split — fingerprints cover co-run lanes, cores,
 * corun_quantum and the uncore arbitration penalties.
 * v4: decoded-block/fast-path execution redesign + --approx sampling
 * — fingerprints cover the approx knobs (approx cells never alias
 * exact ones). The mem fast-path and block-cache toggles are
 * deliberately NOT hashed: they are bit-identical accelerations of
 * the same model, proven by the equivalence regression suite.
 * v5: allocator axis. Non-default AllocatorConfig cells mix an
 * allocator extension block into the hash; default-allocator cells
 * hash nothing new. The constant below stays 4 BY DESIGN — v5 is a
 * strict superset of v4, defined so that cells whose outcome did not
 * change (every pre-axis cell) keep their exact v4 fingerprints and
 * their warm cache entries. Bump the constant only when simulation
 * semantics change for existing cells.
 */
inline constexpr u64 kCacheSchemaVersion = 4;

/** The cache key for @p request (see file comment for coverage). */
u64 cellFingerprint(const RunRequest &request);

/**
 * Advisory flock(2) lock on a cache directory.
 *
 * A long-lived daemon holds the lock Shared for its whole run;
 * destructive maintenance (`cheriperf clear-cache`) must take it
 * Exclusive and therefore refuses to race live `.cpr` writes. The
 * lock file itself (".lock") lives inside the cache dir and is never
 * treated as a cache entry.
 */
class CacheDirLock
{
  public:
    enum class Mode { Shared, Exclusive };

    /**
     * Try to take the lock without blocking. nullopt when another
     * process holds a conflicting lock (or the dir cannot be
     * created). Held until the returned object is destroyed.
     */
    static std::optional<CacheDirLock> tryAcquire(const std::string &dir,
                                                  Mode mode);

    /** Path of the lock file guarding @p dir. */
    static std::string lockPath(const std::string &dir);

    CacheDirLock(CacheDirLock &&other) noexcept;
    CacheDirLock &operator=(CacheDirLock &&other) noexcept;
    CacheDirLock(const CacheDirLock &) = delete;
    CacheDirLock &operator=(const CacheDirLock &) = delete;
    ~CacheDirLock();

  private:
    explicit CacheDirLock(int fd) : fd_(fd) {}
    int fd_ = -1;
};

class ResultCache
{
  public:
    /** @p dir Empty = defaultDir(). Created lazily on first store. */
    explicit ResultCache(std::string dir = {});

    /**
     * Replay @p request's result from disk. nullopt on miss or on
     * any validation failure. @p key must be cellFingerprint(request)
     * (passed in so callers hash once per cell).
     */
    std::optional<sim::SimResult> load(const RunRequest &request,
                                       u64 key) const;

    /** Persist @p result under @p key; best-effort (IO errors are
     *  swallowed — the cache is an accelerator, not a database). */
    void store(const RunRequest &request, u64 key,
               const sim::SimResult &result) const;

    /** Path of the entry for @p key (exists or not). */
    std::string entryPath(u64 key) const;

    const std::string &dir() const { return dir_; }

    /** Delete all cache entries; returns how many were removed. */
    std::size_t clear() const;

    /**
     * $CHERIPERF_CACHE_DIR when set, else ".cheriperf-cache" in the
     * working directory.
     */
    static std::string defaultDir();

  private:
    std::string dir_;
};

} // namespace cheri::runner

#endif // CHERI_RUNNER_CACHE_HPP
