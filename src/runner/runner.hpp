/**
 * @file
 * The parallel experiment runner.
 *
 * An ExperimentPlan is an ordered list of RunRequest cells (workload
 * x ABI x scale x seed x knobs). runPlan() executes it on a
 * fixed-size std::thread pool — every Machine is fully independent
 * state, so cells are embarrassingly parallel — and aggregates
 * results in plan order regardless of completion order, so output is
 * byte-identical for any job count. A content-addressed on-disk
 * cache (cache.hpp) replays unchanged cells instead of re-simulating
 * them, which is what makes knob ablations that share a baseline and
 * repeated full-table sweeps cheap.
 *
 * This API replaces the positional workloads::runWorkload() helper;
 * see README.md "Running experiments".
 */

#ifndef CHERI_RUNNER_RUNNER_HPP
#define CHERI_RUNNER_RUNNER_HPP

#include <string>
#include <vector>

#include "runner/cache.hpp"
#include "runner/run_request.hpp"
#include "runner/run_result.hpp"

namespace cheri::runner {

class ExperimentPlan
{
  public:
    ExperimentPlan() = default;

    ExperimentPlan &
    add(RunRequest request)
    {
        cells_.push_back(std::move(request));
        return *this;
    }

    /** One cell per ABI the three-ABI comparison needs. */
    ExperimentPlan &addAbiSweep(const std::string &workload,
                                workloads::Scale scale,
                                u64 seed = 42);

    /**
     * The scenario grid for one workload: allocator-major x
     * ABI-minor cells, one per (allocator, abi) pair. With the
     * single default allocator this IS addAbiSweep (which delegates
     * here), so default plans keep their historical cell order.
     */
    ExperimentPlan &addScenarioSweep(
        const std::string &workload, workloads::Scale scale, u64 seed,
        const std::vector<alloc::AllocatorConfig> &allocators);

    /**
     * The paper's standard sweep: @p names (empty = all 20
     * registered workloads) x all three ABIs, name-major order.
     */
    static ExperimentPlan
    fullSweep(const std::vector<std::string> &names = {},
              workloads::Scale scale = workloads::Scale::Small,
              u64 seed = 42);

    const std::vector<RunRequest> &cells() const { return cells_; }
    std::size_t size() const { return cells_.size(); }
    bool empty() const { return cells_.empty(); }

  private:
    std::vector<RunRequest> cells_;
};

struct RunnerOptions
{
    /** Worker threads. 0 = min(hardware threads, plan size). */
    u32 jobs = 0;

    bool cache = true;          //!< Consult/populate the result cache.
    std::string cache_dir = {}; //!< Empty = ResultCache::defaultDir().

    /** Per-cell completion lines on stderr. */
    bool progress = false;
};

/** Aggregate accounting for one runPlan() invocation. */
struct PlanStats
{
    std::size_t cells = 0;
    std::size_t cacheHits = 0;
    std::size_t simulated = 0;
    std::size_t naCells = 0;
    u32 jobs = 1;
    double wallSeconds = 0;

    /** One-line human summary ("12 cells, 9 cache hits, ..."). */
    std::string summary() const;
};

struct PlanOutcome
{
    /** results[i] answers plan.cells()[i]. */
    std::vector<RunResult> results;
    PlanStats stats;

    const RunResult *find(const std::string &workload,
                          abi::Abi abi) const;
};

/**
 * Execute @p plan. Unknown workload names are a fatal user error,
 * reported before any cell runs.
 */
PlanOutcome runPlan(const ExperimentPlan &plan,
                    const RunnerOptions &options = {});

/**
 * Runner-level observer, the plan-granularity companion of
 * sim::ExecHooks: onResult fires with every completed cell result
 * (solo and co-run, cache hits included), on the worker thread that
 * produced it. Installed process-wide; the verification layer
 * registers its invariant gate here so every result the test suite
 * produces is audited without threading a parameter through every
 * call site. Observers must be thread-safe and must not re-enter the
 * runner.
 */
class RunObserver
{
  public:
    virtual ~RunObserver() = default;
    virtual void onResult(const RunResult &result) = 0;
};

/** Install @p observer (nullptr clears). Returns the previous one. */
RunObserver *setRunObserver(RunObserver *observer);

/** The currently installed observer, or nullptr. */
RunObserver *runObserver();

/**
 * @deprecated Pre-ExecHooks seam kept for out-of-tree callers: a bare
 * function pointer fired after the RunObserver. New code should
 * implement RunObserver.
 */
using ResultHook = void (*)(const RunResult &);

/** @deprecated Install @p hook (nullptr clears); returns previous. */
ResultHook setResultHook(ResultHook hook);

/** @deprecated The currently installed legacy hook, or nullptr. */
ResultHook resultHook();

/**
 * Execute one cell synchronously on the calling thread, without
 * touching the cache — the drop-in replacement for the deprecated
 * workloads::runWorkload().
 */
RunResult run(const RunRequest &request);

/** One cell with caching per @p options. */
RunResult run(const RunRequest &request, const RunnerOptions &options);

/** The pool width "jobs = 0" resolves to (>= 1). */
u32 hardwareJobs();

} // namespace cheri::runner

#endif // CHERI_RUNNER_RUNNER_HPP
