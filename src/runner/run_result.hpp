/**
 * @file
 * RunResult — one experiment cell's complete outcome: the raw
 * SimResult, the paper's derived metrics and top-down decompositions
 * precomputed, and provenance (cache hit, wall time, worker thread)
 * so sweep reports can show where each number came from.
 */

#ifndef CHERI_RUNNER_RUN_RESULT_HPP
#define CHERI_RUNNER_RUN_RESULT_HPP

#include <optional>

#include "analysis/metrics.hpp"
#include "analysis/topdown.hpp"
#include "runner/run_request.hpp"
#include "trace/trace.hpp"

namespace cheri::runner {

struct RunResult
{
    RunRequest request; //!< The cell this result answers.

    /**
     * Empty when the workload does not support the requested ABI —
     * the paper's "NA" cells (QuickJS under purecap-benchmark).
     */
    std::optional<sim::SimResult> sim;

    // Derived views, valid when ok().
    analysis::DerivedMetrics metrics{};
    analysis::TopDown topdownTruth{};
    analysis::TopDown topdownPaper{};

    /**
     * Epoch timeline, non-empty only when request.trace.enabled.
     * Deterministic for the cell (byte-identical JSONL across job
     * counts and repeat runs).
     */
    trace::EpochSeries epochs{};

    // Provenance.
    bool cacheHit = false;   //!< Replayed from the result cache.
    double wallSeconds = 0;  //!< Host wall time for this cell.
    u32 workerThread = 0;    //!< Runner thread that produced it.

    bool ok() const { return sim.has_value(); }

    /** Simulated seconds, or a negative sentinel for NA cells. */
    double
    seconds() const
    {
        return ok() ? sim->seconds : -1.0;
    }
};

} // namespace cheri::runner

#endif // CHERI_RUNNER_RUN_RESULT_HPP
