/**
 * @file
 * RunResult — one experiment cell's complete outcome: the raw
 * SimResult, the paper's derived metrics and top-down decompositions
 * precomputed, and provenance (cache hit, wall time, worker thread)
 * so sweep reports can show where each number came from.
 */

#ifndef CHERI_RUNNER_RUN_RESULT_HPP
#define CHERI_RUNNER_RUN_RESULT_HPP

#include <optional>

#include "analysis/metrics.hpp"
#include "analysis/topdown.hpp"
#include "runner/run_request.hpp"
#include "trace/trace.hpp"

namespace cheri::runner {

/**
 * What an --approx cell measured beyond the extrapolated SimResult:
 * the sampling accounting plus per-metric error bars. The stderr
 * struct reuses DerivedMetrics field-for-field — each member holds
 * the standard error of the mean of that metric across the sampled
 * epochs (0 when fewer than two full epochs were sampled).
 */
struct ApproxOutcome
{
    trace::ApproxReport report;
    analysis::DerivedMetrics stderr_{};
};

/** One lane's complete outcome within a co-run cell. */
struct LaneOutcome
{
    Lane lane;

    /** Empty for NA lanes (workload does not support the ABI). */
    std::optional<sim::SimResult> sim;

    // Derived views, valid when ok().
    analysis::DerivedMetrics metrics{};
    analysis::TopDown topdownTruth{};
    analysis::TopDown topdownPaper{};

    /** Per-core epoch timeline (request.trace.enabled co-runs). */
    trace::EpochSeries epochs{};

    bool ok() const { return sim.has_value(); }
};

struct RunResult
{
    RunRequest request; //!< The cell this result answers.

    /**
     * Empty when the workload does not support the requested ABI —
     * the paper's "NA" cells (QuickJS under purecap-benchmark). For
     * co-run cells this is the SoC aggregate: counts summed across
     * lanes (so counts[CpuCycles] is total core-cycles burned),
     * instructions summed, and cycles/seconds the makespan (slowest
     * lane) — the wall-clock view of the co-schedule. Empty when no
     * lane is runnable.
     */
    std::optional<sim::SimResult> sim;

    // Derived views, valid when ok().
    analysis::DerivedMetrics metrics{};
    analysis::TopDown topdownTruth{};
    analysis::TopDown topdownPaper{};

    /**
     * Epoch timeline, non-empty only when request.trace.enabled.
     * Deterministic for the cell (byte-identical JSONL across job
     * counts and repeat runs).
     */
    trace::EpochSeries epochs{};

    /**
     * Per-core outcomes; non-empty only for co-run cells
     * (request.corun()), one entry per lane in lane order.
     */
    std::vector<LaneOutcome> lanes;

    /**
     * Sampling accounting + error bars, present only for --approx
     * cells (request.approx.enabled). The sim counts above are then
     * extrapolated estimates, not ground truth.
     */
    std::optional<ApproxOutcome> approx;

    // Provenance.
    bool cacheHit = false;   //!< Replayed from the result cache.
    double wallSeconds = 0;  //!< Host wall time for this cell.
    u32 workerThread = 0;    //!< Runner thread that produced it.

    bool ok() const { return sim.has_value(); }

    /** Simulated seconds, or a negative sentinel for NA cells. */
    double
    seconds() const
    {
        return ok() ? sim->seconds : -1.0;
    }
};

} // namespace cheri::runner

#endif // CHERI_RUNNER_RUN_RESULT_HPP
