#include "runner/cache.hpp"

#include <cstdlib>
#include <filesystem>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "pmu/events.hpp"
#include "support/hash.hpp"
#include "support/serialize.hpp"

namespace cheri::runner {

namespace {

constexpr const char *kMagic = "cheriperf-result";

void
hashCache(Fnv1a &h, const mem::CacheConfig &c)
{
    h.add(c.size_bytes).add(static_cast<u64>(c.ways))
        .add(static_cast<u64>(c.line_bytes));
}

void
hashTlb(Fnv1a &h, const mem::TlbConfig &t)
{
    h.add(static_cast<u64>(t.entries)).add(static_cast<u64>(t.ways))
        .add(static_cast<u64>(t.page_bytes));
}

void
hashConfig(Fnv1a &h, const sim::MachineConfig &config)
{
    h.add(static_cast<u64>(config.abi));
    h.add(config.max_insts);
    h.add(config.clock_ghz);

    const mem::MemConfig &m = config.mem;
    hashCache(h, m.l1i);
    hashCache(h, m.l1d);
    hashCache(h, m.l2);
    hashCache(h, m.llc);
    hashTlb(h, m.l1i_tlb);
    hashTlb(h, m.l1d_tlb);
    hashTlb(h, m.l2_tlb);
    h.add(m.l1_latency).add(m.l2_latency).add(m.llc_latency)
        .add(m.dram_latency).add(m.walk_latency)
        .add(m.tag_extra_latency);
    h.add(m.llc_arb_penalty).add(m.dram_arb_penalty);
    h.add(static_cast<u64>(config.cores)).add(config.corun_quantum);

    const uarch::PipelineConfig &p = config.pipe;
    h.add(static_cast<u64>(p.width)).add(static_cast<u64>(p.mlp));
    h.add(p.mispredict_penalty).add(p.pcc_stall_penalty)
        .add(p.div_latency);
    h.add(p.dp_ports).add(p.load_ports).add(p.store_ports)
        .add(p.fp_ports).add(p.branch_ports);
    h.add(static_cast<u64>(p.bp.pht_entries))
        .add(static_cast<u64>(p.bp.history_bits))
        .add(static_cast<u64>(p.bp.btb_entries))
        .add(static_cast<u64>(p.bp.ras_depth))
        .add(p.bp.cap_aware);
    h.add(static_cast<u64>(p.sq.entries)).add(p.sq.wide_entries);
}

} // namespace

u64
cellFingerprint(const RunRequest &raw)
{
    // Canonicalize so the two spellings of a solo cell (plain
    // workload/abi vs a single-entry lane vector) share cache entries.
    const RunRequest request = raw.normalized();
    Fnv1a h;
    h.add(kCacheSchemaVersion);
    h.add(std::string_view(request.workload));
    h.add(static_cast<u64>(request.abi));
    h.add(static_cast<u64>(request.scale));
    h.add(request.seed);
    // Trace options are part of the cell identity: a traced run is a
    // different experiment (and never shares entries with untraced
    // runs). epoch_insts only matters while tracing is on.
    h.add(request.trace.enabled);
    h.add(request.trace.enabled ? request.trace.epoch_insts : 0);
    // Approx knobs likewise: a sampled run is a different experiment.
    // normalized() already folded a disabled config to the default,
    // and the rate/epoch knobs only matter while sampling is on.
    h.add(request.approx.enabled);
    h.add(request.approx.enabled ? request.approx.rate : 0);
    h.add(request.approx.enabled ? request.approx.epoch_insts : 0);
    // v5 allocator-axis extension: hashed only for non-default
    // configurations, so every pre-axis cell keeps its v4 key (the
    // schema-v5 compatibility rule, see cache.hpp). normalized()
    // already folded the quarantine knob of non-revoking configs.
    if (!request.allocator.isDefault()) {
        h.add(std::string_view("alloc"));
        h.add(static_cast<u64>(request.allocator.strategy));
        h.add(request.allocator.revoke);
        h.add(request.allocator.quarantine_kib);
    }
    // Co-run lane composition (count, order, per-lane workload+ABI)
    // is part of the cell identity; the cores/quantum/arbitration
    // knobs it resolves to are hashed with the config below.
    h.add(static_cast<u64>(request.lanes.size()));
    for (const Lane &lane : request.lanes) {
        h.add(std::string_view(lane.workload));
        h.add(static_cast<u64>(lane.abi));
    }
    hashConfig(h, request.resolvedConfig());
    return h.value();
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        dir_ = defaultDir();
}

std::string
ResultCache::defaultDir()
{
    if (const char *env = std::getenv("CHERIPERF_CACHE_DIR");
        env && *env)
        return env;
    return ".cheriperf-cache";
}

std::string
ResultCache::entryPath(u64 key) const
{
    return dir_ + "/" + toHex64(key) + ".cpr";
}

std::optional<sim::SimResult>
ResultCache::load(const RunRequest &request, u64 key) const
{
    const auto text = readFile(entryPath(key));
    if (!text)
        return std::nullopt;
    const RecordReader record(*text);
    if (!record.ok())
        return std::nullopt;

    // Header validation: any mismatch means a different schema, a
    // colliding key, or torn bytes — all of them cache misses.
    if (record.find("magic") != std::optional<std::string>(kMagic))
        return std::nullopt;
    if (record.findU64("version") != kCacheSchemaVersion)
        return std::nullopt;
    if (record.find("key") != std::optional<std::string>(toHex64(key)))
        return std::nullopt;
    if (record.find("workload") !=
        std::optional<std::string>(request.workload))
        return std::nullopt;

    const auto instructions = record.findU64("instructions");
    const auto cycles = record.findU64("cycles");
    const auto halted = record.findU64("halted");
    if (!instructions || !cycles || !halted || *halted > 1)
        return std::nullopt;

    // Event lines must cover the current enum exactly, in order.
    sim::SimResult result;
    std::size_t event_index = 0;
    for (const auto &[k, v] : record.entries()) {
        if (k.rfind("ev.", 0) != 0)
            continue;
        if (event_index >= pmu::kNumEvents)
            return std::nullopt;
        const auto event = static_cast<pmu::Event>(event_index);
        if (k.substr(3) != pmu::eventName(event))
            return std::nullopt;
        const auto count = parseU64(v);
        if (!count)
            return std::nullopt;
        result.counts.add(event, *count);
        ++event_index;
    }
    if (event_index != pmu::kNumEvents)
        return std::nullopt;

    // Cross-check the stored totals against the counts vector.
    if (result.counts.get(pmu::Event::InstRetired) != *instructions ||
        result.counts.get(pmu::Event::CpuCycles) != *cycles)
        return std::nullopt;

    result.instructions = *instructions;
    result.cycles = *cycles;
    result.halted = *halted == 1;
    // Same expression Machine::finalize uses, so the replayed double
    // is bit-identical to the simulated one.
    result.seconds = static_cast<double>(result.cycles) /
                     (request.resolvedConfig().clock_ghz * 1e9);
    return result;
}

void
ResultCache::store(const RunRequest &request, u64 key,
                   const sim::SimResult &result) const
{
    // Faulting runs carry state (the CapFault) the record does not
    // round-trip; they are rare and cheap enough to re-simulate.
    if (result.fault)
        return;

    RecordWriter record;
    record.field("magic", kMagic);
    record.field("version", kCacheSchemaVersion);
    record.field("key", toHex64(key));
    record.field("workload", request.workload);
    record.field("abi", abi::abiName(request.abi));
    record.field("scale", static_cast<u64>(request.scale));
    record.field("seed", request.seed);
    // Informational (identity lives in the key); absent for default
    // cells so their records stay byte-identical to pre-axis ones.
    if (!request.allocator.isDefault())
        record.field("allocator",
                     alloc::allocatorName(request.allocator));
    record.field("halted", result.halted ? u64{1} : u64{0});
    record.field("instructions", result.instructions);
    record.field("cycles", result.cycles);
    for (std::size_t i = 0; i < pmu::kNumEvents; ++i) {
        const auto event = static_cast<pmu::Event>(i);
        record.field(std::string("ev.") + pmu::eventName(event),
                     result.counts.get(event));
    }
    writeFileAtomic(entryPath(key), record.text());
}

std::string
CacheDirLock::lockPath(const std::string &dir)
{
    return dir + "/.lock";
}

std::optional<CacheDirLock>
CacheDirLock::tryAcquire(const std::string &dir, Mode mode)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return std::nullopt;

    const int fd = ::open(lockPath(dir).c_str(),
                          O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd < 0)
        return std::nullopt;
    const int op = (mode == Mode::Shared ? LOCK_SH : LOCK_EX) | LOCK_NB;
    if (::flock(fd, op) != 0) {
        ::close(fd);
        return std::nullopt;
    }
    return CacheDirLock(fd);
}

CacheDirLock::CacheDirLock(CacheDirLock &&other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

CacheDirLock &
CacheDirLock::operator=(CacheDirLock &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

CacheDirLock::~CacheDirLock()
{
    // Closing the descriptor releases the flock.
    if (fd_ >= 0)
        ::close(fd_);
}

std::size_t
ResultCache::clear() const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    std::size_t removed = 0;
    for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (it->path().extension() == ".cpr" &&
            fs::remove(it->path(), ec))
            ++removed;
    }
    return removed;
}

} // namespace cheri::runner
