/**
 * @file
 * RunRequest — the unified description of one experiment cell.
 *
 * Everything the old positional runWorkload(workload, abi, scale,
 * base, seed) signature and the CLI's loose Options fields used to
 * encode travels in one value: the workload (by registry name), the
 * ABI, the problem scale, the RNG seed, and (optionally) a full
 * MachineConfig overriding the per-ABI defaults. A RunRequest is
 * plain data — hashable, comparable, storable — which is what lets
 * the runner fingerprint cells for the on-disk result cache and ship
 * them to worker threads.
 */

#ifndef CHERI_RUNNER_RUN_REQUEST_HPP
#define CHERI_RUNNER_RUN_REQUEST_HPP

#include <optional>
#include <string>
#include <vector>

#include "alloc/policy.hpp"
#include "sim/machine.hpp"
#include "trace/trace.hpp"
#include "workloads/workload.hpp"

namespace cheri::runner {

/** One co-run lane: a workload (registry name) bound to an ABI. */
struct Lane
{
    std::string workload;
    abi::Abi abi = abi::Abi::Purecap;

    bool operator==(const Lane &) const = default;
};

struct RunRequest
{
    std::string workload;                //!< Registry name ("519.lbm_r").
    abi::Abi abi = abi::Abi::Purecap;
    workloads::Scale scale = workloads::Scale::Small;
    u64 seed = 42;

    /**
     * The allocator-axis point of the cell's scenario. The default
     * value is the historical allocator, and default cells are
     * defined to be the same experiment as before the axis existed:
     * they fingerprint, replay and render byte-identically (schema-v5
     * compatibility rule, see cache.hpp). In a co-run the one config
     * applies to every lane.
     */
    alloc::AllocatorConfig allocator{};

    /**
     * Epoch-trace collection (off by default). Part of the cell's
     * identity: trace options enter the cache fingerprint, and traced
     * cells always simulate (the on-disk record format does not carry
     * epoch series).
     */
    trace::TraceConfig trace{};

    /**
     * Sampled-simulation mode (off by default). Part of the cell's
     * identity: the knobs enter the cache fingerprint (folded exactly
     * once via normalized()), and approx cells always simulate — the
     * on-disk record format carries ground truth, never extrapolated
     * estimates, so an approx cell can never alias an exact one.
     * Incompatible with co-run lanes and with epoch tracing (both
     * enforced by the executor).
     */
    trace::ApproxConfig approx{};

    /**
     * Multi-programmed co-run lanes. Empty (the default) describes
     * the classic single-lane cell given by workload/abi above. With
     * two or more entries, lane i runs on core i of one N-core
     * machine over the shared uncore and the cell's result carries
     * per-lane outcomes plus an SoC aggregate. Part of the cell's
     * identity (fingerprinted); co-run cells always simulate — the
     * on-disk record format does not carry per-lane results. A
     * single-entry vector degrades to the solo cell it describes:
     * normalized() folds the lone lane into workload/abi, so it runs
     * the single-core path, fingerprints identically to the
     * equivalent solo cell, and is cache-eligible.
     */
    std::vector<Lane> lanes{};

    /**
     * Microarchitectural knobs. Empty = MachineConfig::forAbi(abi).
     * The abi member of a supplied config is ignored; the request's
     * abi field is authoritative.
     */
    std::optional<sim::MachineConfig> config = std::nullopt;

    /** True when this cell is a multi-programmed co-run. */
    bool corun() const { return lanes.size() >= 2; }

    /**
     * The canonical form of this request: a degenerate single-entry
     * lane vector collapses into workload/abi (a one-lane "co-run" IS
     * the solo experiment — same machine, same uncore contention of
     * one core), and disabled approx knobs collapse to the default
     * ApproxConfig so every spelling of "approx off" is one identity
     * (the rate/epoch knobs of a disabled config are folded away
     * exactly once — they carry no information). The allocator's
     * quarantine knob likewise folds to its default while revocation
     * is off — it only means something during sweeps. Already-
     * canonical requests return unchanged; normalized() is
     * idempotent. The runner and the cache fingerprint both
     * normalize, so equivalent spellings of a cell share results.
     */
    RunRequest
    normalized() const
    {
        const bool alloc_canonical =
            allocator.revoke ||
            allocator.quarantine_kib ==
                alloc::AllocatorConfig{}.quarantine_kib;
        if (lanes.size() != 1 && alloc_canonical &&
            (approx.enabled || approx == trace::ApproxConfig{}))
            return *this;
        RunRequest out = *this;
        if (!out.approx.enabled)
            out.approx = trace::ApproxConfig{};
        if (!out.allocator.revoke)
            out.allocator.quarantine_kib =
                alloc::AllocatorConfig{}.quarantine_kib;
        if (out.lanes.size() == 1) {
            out.workload = out.lanes.front().workload;
            out.abi = out.lanes.front().abi;
            out.lanes.clear();
        }
        return out;
    }

    /** The lanes this cell runs: the co-run vector, or workload/abi. */
    std::vector<Lane>
    resolvedLanes() const
    {
        if (corun())
            return lanes;
        return {Lane{workload, abi}};
    }

    /** The cell's display name ("w1+w2" for co-runs). */
    std::string
    displayName() const
    {
        if (!corun())
            return workload;
        std::string out;
        for (const Lane &lane : lanes) {
            if (!out.empty())
                out += '+';
            out += lane.workload;
        }
        return out;
    }

    /** The config this request resolves to (knobs or ABI defaults). */
    sim::MachineConfig
    resolvedConfig() const
    {
        sim::MachineConfig out =
            config ? *config
                   : sim::MachineConfig::forAbi(
                         corun() ? lanes.front().abi : abi);
        out.abi = corun() ? lanes.front().abi : abi;
        if (corun())
            out.cores = static_cast<u32>(lanes.size());
        return out;
    }
};

} // namespace cheri::runner

#endif // CHERI_RUNNER_RUN_REQUEST_HPP
