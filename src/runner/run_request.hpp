/**
 * @file
 * RunRequest — the unified description of one experiment cell.
 *
 * Everything the old positional runWorkload(workload, abi, scale,
 * base, seed) signature and the CLI's loose Options fields used to
 * encode travels in one value: the workload (by registry name), the
 * ABI, the problem scale, the RNG seed, and (optionally) a full
 * MachineConfig overriding the per-ABI defaults. A RunRequest is
 * plain data — hashable, comparable, storable — which is what lets
 * the runner fingerprint cells for the on-disk result cache and ship
 * them to worker threads.
 */

#ifndef CHERI_RUNNER_RUN_REQUEST_HPP
#define CHERI_RUNNER_RUN_REQUEST_HPP

#include <optional>
#include <string>

#include "sim/machine.hpp"
#include "trace/trace.hpp"
#include "workloads/workload.hpp"

namespace cheri::runner {

struct RunRequest
{
    std::string workload;                //!< Registry name ("519.lbm_r").
    abi::Abi abi = abi::Abi::Purecap;
    workloads::Scale scale = workloads::Scale::Small;
    u64 seed = 42;

    /**
     * Epoch-trace collection (off by default). Part of the cell's
     * identity: trace options enter the cache fingerprint, and traced
     * cells always simulate (the on-disk record format does not carry
     * epoch series).
     */
    trace::TraceConfig trace{};

    /**
     * Microarchitectural knobs. Empty = MachineConfig::forAbi(abi).
     * The abi member of a supplied config is ignored; the request's
     * abi field is authoritative.
     */
    std::optional<sim::MachineConfig> config = std::nullopt;

    /** The config this request resolves to (knobs or ABI defaults). */
    sim::MachineConfig
    resolvedConfig() const
    {
        sim::MachineConfig out =
            config ? *config : sim::MachineConfig::forAbi(abi);
        out.abi = abi;
        return out;
    }
};

} // namespace cheri::runner

#endif // CHERI_RUNNER_RUN_REQUEST_HPP
