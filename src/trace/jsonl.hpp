/**
 * @file
 * Deterministic JSONL rendering of epoch traces.
 *
 * One epoch = one line, fixed key order, integers verbatim and every
 * double printed with "%.6f" — so a trace for a fixed (workload, ABI,
 * seed, knobs) cell is byte-identical across repeat runs and across
 * any --jobs value, which is what lets CI diff and gate on the
 * artifact. Nothing host-dependent (wall time, thread ids, paths)
 * ever enters a line.
 */

#ifndef CHERI_TRACE_JSONL_HPP
#define CHERI_TRACE_JSONL_HPP

#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"

namespace cheri::trace {

/** Minimal single-object JSON line builder with a fixed field order. */
class JsonlWriter
{
  public:
    JsonlWriter() : text_("{") {}

    /** @p value must be printable ASCII; quotes/backslashes escaped. */
    JsonlWriter &field(std::string_view key, std::string_view value);
    JsonlWriter &field(std::string_view key, u64 value);
    /** Fixed "%.6f" formatting; never locale- or precision-dependent. */
    JsonlWriter &field(std::string_view key, double value);

    /** Close the object and return the line (with trailing newline). */
    std::string finish();

  private:
    void comma();

    std::string text_;
    bool first_ = true;
};

/**
 * Render one epoch as a JSONL line. The (workload, abi, seed) triple
 * identifies the cell inside multi-cell trace files (sweep
 * --emit-epochs concatenates all cells in plan order).
 */
std::string epochToJsonl(const EpochRecord &epoch,
                         std::string_view workload, std::string_view abi,
                         u64 seed);

/** All of @p series, one line per epoch. Empty series = empty string. */
std::string seriesToJsonl(const EpochSeries &series,
                          std::string_view workload, std::string_view abi,
                          u64 seed);

/**
 * Per-core variants for co-run traces: identical to the above except
 * a "core_id" field follows "epoch", tagging the line with the core
 * slice that produced it. (The plain overloads stay byte-identical
 * for single-lane traces — the CI golden contract.)
 */
std::string epochToJsonl(const EpochRecord &epoch,
                         std::string_view workload, std::string_view abi,
                         u64 seed, u32 core_id);
std::string seriesToJsonl(const EpochSeries &series,
                          std::string_view workload, std::string_view abi,
                          u64 seed, u32 core_id);

/** One lane's whole-run totals, for the co-run aggregate summary. */
struct CorunLaneSummary
{
    std::string workload;
    std::string abi; //!< abi::abiName, or "NA" for unrunnable lanes.
    u32 core = 0;
    u64 instructions = 0;
    u64 cycles = 0;
    double ipc = 0.0;
    u64 llc_rd_misses = 0;
    double seconds = 0.0;
};

/**
 * Render a co-run cell's aggregate stream: one "lane-total" line per
 * lane plus one trailing "soc-total" line (summed instructions,
 * makespan cycles). Deterministic like the epoch lines.
 */
std::string corunSummaryJsonl(const std::vector<CorunLaneSummary> &lanes,
                              u64 seed);

} // namespace cheri::trace

#endif // CHERI_TRACE_JSONL_HPP
