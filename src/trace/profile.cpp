#include "trace/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace cheri::trace {

std::atomic<bool> Profiler::enabled_{false};

namespace detail {

namespace {

// Head of the intrusive site list. Sites are never freed: call-site
// statics reference them for the life of the process.
std::atomic<Site *> g_sites{nullptr};
std::mutex g_register_mutex;

} // namespace

Site *
registerSite(const char *name)
{
    const std::lock_guard<std::mutex> lock(g_register_mutex);
    auto *site = new Site;
    site->name = name;
    site->next = g_sites.load(std::memory_order_relaxed);
    g_sites.store(site, std::memory_order_release);
    return site;
}

} // namespace detail

void
Profiler::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

bool
Profiler::envRequested()
{
    const char *env = std::getenv("CHERIPERF_PROFILE");
    return env != nullptr && *env != '\0' && *env != '0';
}

void
Profiler::reset()
{
    for (auto *site = detail::g_sites.load(std::memory_order_acquire);
         site != nullptr; site = site->next) {
        site->calls.store(0, std::memory_order_relaxed);
        site->nanos.store(0, std::memory_order_relaxed);
    }
}

std::vector<ScopeStats>
Profiler::snapshot()
{
    std::vector<ScopeStats> out;
    for (auto *site = detail::g_sites.load(std::memory_order_acquire);
         site != nullptr; site = site->next) {
        ScopeStats stats;
        stats.name = site->name;
        stats.calls = site->calls.load(std::memory_order_relaxed);
        stats.nanos = site->nanos.load(std::memory_order_relaxed);
        if (stats.calls > 0)
            out.push_back(std::move(stats));
    }
    std::sort(out.begin(), out.end(),
              [](const ScopeStats &a, const ScopeStats &b) {
                  if (a.nanos != b.nanos)
                      return a.nanos > b.nanos;
                  return a.name < b.name;
              });
    return out;
}

std::string
Profiler::report()
{
    const auto stats = snapshot();
    std::string out = "[trace] wall-clock hotspots (self+children):\n";
    if (stats.empty()) {
        out += "  (no scopes recorded; is profiling enabled?)\n";
        return out;
    }
    for (const auto &s : stats) {
        char line[160];
        const double ms = static_cast<double>(s.nanos) / 1e6;
        const double avg_ns = static_cast<double>(s.nanos) /
                              static_cast<double>(s.calls);
        std::snprintf(line, sizeof(line),
                      "  %-28s %12llu calls %12.3f ms %10.1f ns/call\n",
                      s.name.c_str(),
                      static_cast<unsigned long long>(s.calls), ms,
                      avg_ns);
        out += line;
    }
    return out;
}

} // namespace cheri::trace
