/**
 * @file
 * Scoped wall-clock profiling of the simulator itself.
 *
 * CHERI_TRACE_SCOPE("layer/what") drops an RAII TraceScope into a hot
 * function; every scope accumulates call count and nanoseconds into a
 * per-site record. Two gates keep it out of the way:
 *
 *  - compile time: building with CHERIPERF_TRACE_SCOPES=0 (CMake
 *    option) compiles every scope to nothing;
 *  - run time: even when compiled in, a disabled Profiler reduces a
 *    scope to one relaxed atomic load and a predictable branch — no
 *    clock reads, no stores — so sweep throughput is unchanged.
 *
 * Enable with `cheriperf ... --profile` or CHERIPERF_PROFILE=1; the
 * report goes to stderr, never into the deterministic JSONL/CSV
 * artifacts (wall time is host noise by definition).
 */

#ifndef CHERI_TRACE_PROFILE_HPP
#define CHERI_TRACE_PROFILE_HPP

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace cheri::trace {

namespace detail {

/**
 * One static call-site. Registered once (thread-safe, on first
 * execution of the enclosing scope macro) into a global intrusive
 * list; accumulation is two relaxed atomic adds.
 */
struct Site
{
    const char *name = nullptr;
    std::atomic<u64> calls{0};
    std::atomic<u64> nanos{0};
    Site *next = nullptr;
};

/** Create + link a site. The pointer stays valid for process life. */
Site *registerSite(const char *name);

} // namespace detail

/** Aggregated numbers of one site, for reports and tests. */
struct ScopeStats
{
    std::string name;
    u64 calls = 0;
    u64 nanos = 0;
};

class Profiler
{
  public:
    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    static void setEnabled(bool on);

    /** True when CHERIPERF_PROFILE=1 (checked once per call). */
    static bool envRequested();

    /** Zero every site's accumulators. */
    static void reset();

    /**
     * All sites with at least one call, sorted by total time
     * descending (ties by name, for stable output).
     */
    static std::vector<ScopeStats> snapshot();

    /** Human-readable table of snapshot(), one line per site. */
    static std::string report();

  private:
    static std::atomic<bool> enabled_;
};

/** RAII timer accumulating into a Site while the Profiler is enabled. */
class TraceScope
{
  public:
    explicit TraceScope(detail::Site &site)
    {
        if (Profiler::enabled()) {
            site_ = &site;
            start_ = std::chrono::steady_clock::now();
        }
    }

    ~TraceScope()
    {
        if (site_ != nullptr) {
            const auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
            site_->calls.fetch_add(1, std::memory_order_relaxed);
            site_->nanos.fetch_add(static_cast<u64>(ns),
                                   std::memory_order_relaxed);
        }
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    detail::Site *site_ = nullptr;
    std::chrono::steady_clock::time_point start_{};
};

} // namespace cheri::trace

#define CHERI_TRACE_CONCAT2(a, b) a##b
#define CHERI_TRACE_CONCAT(a, b) CHERI_TRACE_CONCAT2(a, b)

#if defined(CHERIPERF_TRACE_SCOPES) && CHERIPERF_TRACE_SCOPES
#define CHERI_TRACE_SCOPE(name)                                         \
    static ::cheri::trace::detail::Site &CHERI_TRACE_CONCAT(            \
        cheri_trace_site_, __LINE__) =                                  \
        *::cheri::trace::detail::registerSite(name);                    \
    ::cheri::trace::TraceScope CHERI_TRACE_CONCAT(cheri_trace_scope_,   \
                                                  __LINE__)(            \
        CHERI_TRACE_CONCAT(cheri_trace_site_, __LINE__))
#else
#define CHERI_TRACE_SCOPE(name)                                         \
    do {                                                                \
    } while (0)
#endif

#endif // CHERI_TRACE_PROFILE_HPP
