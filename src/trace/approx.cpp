#include "trace/approx.hpp"

#include <array>
#include <cmath>

#include "support/logging.hpp"

namespace cheri::trace {

using pmu::Event;

namespace {

/** splitmix64 finalizer: a well-mixed 64-bit hash of seed ^ epoch. */
u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

u64
roundCycles(double value)
{
    return value > 0 ? static_cast<u64>(std::llround(value)) : 0;
}

} // namespace

ApproxSampler::ApproxSampler(const ApproxConfig &config, u64 seed,
                             uarch::PipelineModel &pipe)
    : config_(config), seed_(seed), pipe_(pipe)
{
    CHERI_ASSERT(config.enabled, "ApproxSampler on a disabled config");
    CHERI_ASSERT(config.rate >= 1, "approx rate must be >= 1");
    CHERI_ASSERT(config.epoch_insts > 0,
                 "approx epoch size must be positive");
    // Epoch 0 is always simulated; the pipeline starts un-skipped.
}

/**
 * Which epoch of stratum `stratum` is measured. Stratum 0 avoids
 * offset 0: epoch 0's cold-start cost is counted exactly and must
 * never be scaled into the steady-state estimate.
 */
u64
ApproxSampler::measuredOffset(u64 stratum) const
{
    const u64 h = mix64(seed_ ^ stratum);
    if (stratum == 0)
        return 1 + h % (config_.rate - 1);
    return h % config_.rate;
}

bool
ApproxSampler::measuredEpoch(u64 epoch) const
{
    if (epoch == 0)
        return false; // Cold start: counted exactly, never scaled.
    if (config_.rate == 1)
        return true;
    // Epoch 2 is always measured (epochs 0-1 serve as its warm-up):
    // at high rates a short run might otherwise end before any
    // stratum's systematic pick, leaving no steady-state sample at
    // all and forcing the biased uniform fallback.
    if (epoch == 2)
        return true;
    return epoch % config_.rate == measuredOffset(epoch / config_.rate);
}

bool
ApproxSampler::simulatedEpoch(u64 epoch) const
{
    if (epoch == 0 || config_.rate == 1)
        return true;
    // Simulate the two epochs before each measured one as detailed
    // warm-up, so the measured epoch sees re-converged caches and
    // predictors rather than state frozen at the last simulated
    // interval.
    return measuredEpoch(epoch) || measuredEpoch(epoch + 1) ||
           measuredEpoch(epoch + 2);
}

void
ApproxSampler::onEpochBoundary(const uarch::PipelineModel &pipe)
{
    const u64 now = pipe.liveCounts().get(Event::InstRetired);
    if (curSimulated_) {
        sampledInsts_ += now - prevInst_;
        ++epochsSimulated_;
        pmu::EventCounts delta = closeDelta(pipe);
        simulatedTotals_ += delta;
        if (measuredEpoch(epoch_))
            measured_.push_back(
                {epoch_ / config_.rate, std::move(delta)});
        prevInst_ = now;
    } else {
        resync(pipe, now);
    }

    ++epoch_;
    curSimulated_ = simulatedEpoch(epoch_);
    pipe_.setApproxSkip(!curSimulated_);
}

/**
 * Event delta since the previous boundary, with the finish()-time
 * totals synthesized in (same rounding as trace::EpochCollector::
 * closeEpoch) so the interval feeds DerivedMetrics like a whole run.
 * Leaves prevCounts_/prevLive_ resynced to now.
 */
pmu::EventCounts
ApproxSampler::closeDelta(const uarch::PipelineModel &pipe)
{
    const auto live = pipe.liveStats();
    const pmu::EventCounts &counts = pipe.liveCounts();
    pmu::EventCounts delta = counts.diff(prevCounts_);

    const double cycles = live.cycles - prevLive_.cycles;
    const double frontend = live.stallFrontend - prevLive_.stallFrontend;
    const double pcc = live.stallPcc - prevLive_.stallPcc;
    const double bad_spec = live.stallBadSpec - prevLive_.stallBadSpec;
    const double mem_l1 = live.stallMemL1 - prevLive_.stallMemL1;
    const double mem_l2 = live.stallMemL2 - prevLive_.stallMemL2;
    const double mem_ext = live.stallMemExt - prevLive_.stallMemExt;
    const double core = live.stallCore - prevLive_.stallCore;
    const double backend = mem_l1 + mem_l2 + mem_ext + core;
    const u64 uops = live.uopsRetired - prevLive_.uopsRetired;
    const u64 cyc = roundCycles(cycles);
    const u32 width = pipe.config().width;

    delta.add(Event::CpuCycles, cyc);
    delta.add(Event::StallFrontend, static_cast<u64>(frontend + 0.5));
    delta.add(Event::StallBackend, static_cast<u64>(backend + 0.5));
    delta.add(Event::StallMemL1, static_cast<u64>(mem_l1 + 0.5));
    delta.add(Event::StallMemL2, static_cast<u64>(mem_l2 + 0.5));
    delta.add(Event::StallMemExt, static_cast<u64>(mem_ext + 0.5));
    delta.add(Event::StallCore, static_cast<u64>(core + 0.5));
    delta.add(Event::PccStall, static_cast<u64>(pcc + 0.5));
    delta.add(Event::SlotsTotal, cyc * width);
    delta.add(Event::SlotsRetired, uops);
    delta.add(Event::SlotsBadSpec,
              static_cast<u64>(bad_spec * width + 0.5));
    delta.add(Event::SlotsFrontend,
              static_cast<u64>(frontend * width + 0.5));
    delta.add(Event::SlotsBackend,
              static_cast<u64>(backend * width + 0.5));

    prevCounts_ = counts;
    prevLive_ = live;
    return delta;
}

void
ApproxSampler::resync(const uarch::PipelineModel &pipe, u64 inst_now)
{
    prevInst_ = inst_now;
    prevCounts_ = pipe.liveCounts();
    prevLive_ = pipe.liveStats();
}

ApproxReport
ApproxSampler::finish(const uarch::PipelineModel &pipe)
{
    CHERI_ASSERT(!taken_, "ApproxSampler::finish called twice");
    taken_ = true;
    pipe_.setApproxSkip(false);

    const u64 now = pipe.liveCounts().get(Event::InstRetired);
    const bool tail = now > prevInst_;

    ApproxReport report;
    report.rate = config_.rate;
    report.epochInsts = config_.epoch_insts;
    report.epochsTotal = epoch_ + (tail ? 1 : 0);
    report.epochsSimulated = epochsSimulated_;
    if (tail) {
        report.tailInsts = now - prevInst_;
        report.tailSimulated = curSimulated_;
        if (curSimulated_) {
            // The partial tail's events are counted exactly, but it
            // never enters the across-epoch sample: it is shorter
            // than a full epoch and would skew mean and variance.
            sampledInsts_ += report.tailInsts;
            report.tailCounts = closeDelta(pipe);
        }
    }
    report.epochsSampled = measured_.size();
    report.sampledInsts = sampledInsts_;
    report.totalInsts = now;
    report.scale = sampledInsts_ > 0
                       ? static_cast<double>(now) /
                             static_cast<double>(sampledInsts_)
                       : 1.0;
    report.simulatedTotals = simulatedTotals_;

    // Whole-run estimate: exact simulated intervals plus each skipped
    // epoch priced at its stratum's measured epoch. Fractional (tail)
    // weights force double accumulation; one deterministic llround at
    // the end.
    const u64 full_epochs = epoch_;
    std::vector<double> skipped(full_epochs / config_.rate + 1, 0.0);
    u64 skipped_any = 0;
    for (u64 e = 0; e < full_epochs; ++e)
        if (!simulatedEpoch(e)) {
            skipped[e / config_.rate] += 1.0;
            ++skipped_any;
        }
    if (tail && !curSimulated_)
        skipped[full_epochs / config_.rate] +=
            static_cast<double>(report.tailInsts) /
            static_cast<double>(config_.epoch_insts);

    const bool anything_skipped =
        skipped_any > 0 || (tail && !curSimulated_);
    if (anything_skipped && !measured_.empty()) {
        std::array<double, pmu::kNumEvents> est{};
        for (std::size_t i = 0; i < pmu::kNumEvents; ++i) {
            const auto event = static_cast<Event>(i);
            est[i] = simulatedTotals_.getF(event) +
                     report.tailCounts.getF(event);
        }
        for (u64 s = 0; s < skipped.size(); ++s) {
            if (skipped[s] <= 0.0)
                continue;
            // Nearest measured stratum (prefer lower on ties) — a
            // stratum can lack a sample when the run ended before its
            // measured epoch.
            const MeasuredEpoch *best = &measured_.front();
            u64 best_dist = ~u64{0};
            for (const auto &m : measured_) {
                const u64 dist =
                    m.stratum > s ? m.stratum - s : s - m.stratum;
                if (dist < best_dist) {
                    best_dist = dist;
                    best = &m;
                }
            }
            for (std::size_t i = 0; i < pmu::kNumEvents; ++i)
                est[i] += best->delta.getF(static_cast<Event>(i)) *
                          skipped[s];
        }
        for (std::size_t i = 0; i < pmu::kNumEvents; ++i)
            report.estimatedTotals.set(
                static_cast<Event>(i),
                est[i] > 0 ? static_cast<u64>(std::llround(est[i]))
                           : 0);
        // Retired instructions are architecturally exact regardless.
        report.estimatedTotals.set(Event::InstRetired, now);
        report.estimated = true;
    }

    report.epochCounts.reserve(measured_.size());
    for (auto &m : measured_)
        report.epochCounts.push_back(std::move(m.delta));
    measured_.clear();
    return report;
}

} // namespace cheri::trace
