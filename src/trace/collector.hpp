/**
 * @file
 * EpochCollector — the ExecHooks observer that slices a run into
 * fixed-size retired-instruction epochs.
 *
 * Attached to a PipelineModel before the workload issues its first
 * op, the collector registers an epochInstructions() interval and,
 * at every onEpochBoundary, snapshots the live count vector and the
 * pipeline's un-finalized cycle attribution. Each epoch's record is
 * the delta between consecutive snapshots, with the model-truth
 * totals (CpuCycles, Slots*, Stall*) synthesized into the delta
 * counts so the analysis layer treats an epoch like a miniature run.
 *
 * Epoch boundaries land on exact instruction counts because the
 * pipeline retires exactly one instruction per issue() and counts
 * down to the boundary internally — the collector no longer pays (or
 * imposes) a per-retire virtual call.
 */

#ifndef CHERI_TRACE_COLLECTOR_HPP
#define CHERI_TRACE_COLLECTOR_HPP

#include "trace/trace.hpp"
#include "uarch/pipeline.hpp"

namespace cheri::trace {

class EpochCollector final : public uarch::ExecHooks
{
  public:
    explicit EpochCollector(const TraceConfig &config);

    /** Exact boundary callback (the pipeline counts down for us). */
    void onEpochBoundary(const uarch::PipelineModel &pipe) override;

    /** Claim the epoch slot at our configured interval. */
    u64 epochInstructions() const override { return config_.epoch_insts; }

    /**
     * Close the trailing partial epoch (if any) and take the series.
     * Must be called before PipelineModel::finish(), whose bulk count
     * write-back would pollute the final epoch's deltas.
     *
     * @param faulted True when the run ended in a capability fault;
     *        attributed to the final epoch.
     */
    EpochSeries finish(const uarch::PipelineModel &pipe,
                       bool faulted = false);

    const TraceConfig &config() const { return config_; }

  private:
    void closeEpoch(const uarch::PipelineModel &pipe, u64 inst_now);

    TraceConfig config_;
    EpochSeries series_;
    u64 prevInst_ = 0;
    u64 prevSqFullStalls_ = 0;
    pmu::EventCounts prevCounts_{};
    uarch::PipelineModel::LiveStats prevLive_{};
    bool taken_ = false;
};

} // namespace cheri::trace

#endif // CHERI_TRACE_COLLECTOR_HPP
