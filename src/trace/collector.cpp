#include "trace/collector.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace cheri::trace {

using pmu::Event;

namespace {

u64
roundCycles(double value)
{
    return value > 0 ? static_cast<u64>(std::llround(value)) : 0;
}

} // namespace

EpochCollector::EpochCollector(const TraceConfig &config)
    : config_(config)
{
    CHERI_ASSERT(config.epoch_insts > 0,
                 "trace epoch size must be positive");
}

void
EpochCollector::onEpochBoundary(const uarch::PipelineModel &pipe)
{
    closeEpoch(pipe, pipe.liveCounts().get(Event::InstRetired));
}

void
EpochCollector::closeEpoch(const uarch::PipelineModel &pipe, u64 inst_now)
{
    const auto live = pipe.liveStats();
    const pmu::EventCounts &counts = pipe.liveCounts();

    EpochRecord rec;
    rec.index = series_.epochs.size();
    rec.instStart = prevInst_;
    rec.instEnd = inst_now;
    rec.counts = counts.diff(prevCounts_);

    const double cycles = live.cycles - prevLive_.cycles;
    const double frontend = live.stallFrontend - prevLive_.stallFrontend;
    const double pcc = live.stallPcc - prevLive_.stallPcc;
    const double bad_spec = live.stallBadSpec - prevLive_.stallBadSpec;
    const double mem_l1 = live.stallMemL1 - prevLive_.stallMemL1;
    const double mem_l2 = live.stallMemL2 - prevLive_.stallMemL2;
    const double mem_ext = live.stallMemExt - prevLive_.stallMemExt;
    const double core = live.stallCore - prevLive_.stallCore;
    const double backend = mem_l1 + mem_l2 + mem_ext + core;
    const u64 uops = live.uopsRetired - prevLive_.uopsRetired;

    rec.cycles = roundCycles(cycles);

    // Synthesize the finish()-time totals into the delta vector so
    // DerivedMetrics::compute / TopDown::fromModelTruth read an epoch
    // exactly like a whole run.
    const u32 width = pipe.config().width;
    rec.counts.add(Event::CpuCycles, rec.cycles);
    rec.counts.add(Event::StallFrontend, static_cast<u64>(frontend + 0.5));
    rec.counts.add(Event::StallBackend, static_cast<u64>(backend + 0.5));
    rec.counts.add(Event::StallMemL1, static_cast<u64>(mem_l1 + 0.5));
    rec.counts.add(Event::StallMemL2, static_cast<u64>(mem_l2 + 0.5));
    rec.counts.add(Event::StallMemExt, static_cast<u64>(mem_ext + 0.5));
    rec.counts.add(Event::StallCore, static_cast<u64>(core + 0.5));
    rec.counts.add(Event::PccStall, static_cast<u64>(pcc + 0.5));
    rec.counts.add(Event::SlotsTotal, rec.cycles * width);
    rec.counts.add(Event::SlotsRetired, uops);
    rec.counts.add(Event::SlotsBadSpec,
                   static_cast<u64>(bad_spec * width + 0.5));
    rec.counts.add(Event::SlotsFrontend,
                   static_cast<u64>(frontend * width + 0.5));
    rec.counts.add(Event::SlotsBackend,
                   static_cast<u64>(backend * width + 0.5));

    if (cycles > 0) {
        const double slots = cycles * width;
        rec.retiring = static_cast<double>(uops) / slots;
        rec.badSpeculation = bad_spec / cycles;
        rec.frontendBound = frontend / cycles;
        rec.backendBound = backend / cycles;
        rec.memL1Bound = mem_l1 / cycles;
        rec.memL2Bound = mem_l2 / cycles;
        rec.memExtBound = mem_ext / cycles;
        rec.coreBound = core / cycles;
        rec.pccStallShare = pcc / cycles;
    }

    const u64 sq_full = pipe.storeQueue().fullStalls();
    rec.sqFullStalls = sq_full - prevSqFullStalls_;
    rec.sqOccupancy =
        pipe.storeQueue().occupancyAt(static_cast<Cycles>(live.cycles));

    series_.epochs.push_back(std::move(rec));
    if (config_.sink != nullptr)
        config_.sink->onEpoch(series_.epochs.back());

    prevInst_ = inst_now;
    prevCounts_ = counts;
    prevLive_ = live;
    prevSqFullStalls_ = sq_full;
}

EpochSeries
EpochCollector::finish(const uarch::PipelineModel &pipe, bool faulted)
{
    CHERI_ASSERT(!taken_, "EpochCollector::finish called twice");
    taken_ = true;

    const u64 inst = pipe.liveCounts().get(Event::InstRetired);
    if (inst > prevInst_)
        closeEpoch(pipe, inst);
    if (faulted && !series_.epochs.empty())
        series_.epochs.back().capFaults += 1;
    return std::move(series_);
}

} // namespace cheri::trace
