/**
 * @file
 * ApproxSampler — the ExecHooks observer behind --approx sampled
 * simulation.
 *
 * The sampler claims the pipeline's epoch slot (like the trace
 * collector does — the two are mutually exclusive, which is why
 * --approx forbids --trace=epochs) and, at every exact
 * retired-instruction boundary, decides whether the NEXT epoch runs
 * through the full timing model or is skipped: a skipped epoch's
 * instructions still retire architecturally (register/memory state
 * and InstRetired stay exact, so workload control flow is unchanged),
 * but the pipeline timing, memory hierarchy and speculation models
 * are bypassed at zero model cost.
 *
 * Epoch selection is deterministic and seed-derived, stratified
 * systematic sampling in the SMARTS tradition of sampled
 * microarchitecture simulation:
 *
 *  - the run is divided into STRATA of `rate` consecutive epochs;
 *    each stratum k measures exactly one epoch, at a seed-derived
 *    offset splitmix64(seed ^ k) % rate — one clean sample per
 *    stratum tracks phase drift that a global random pick would
 *    alias;
 *  - the epoch before each measured epoch is SIMULATED as detailed
 *    warm-up (caches, TLBs and predictors re-converge after the
 *    skip), but excluded from the sample — its own miss rates carry
 *    the staleness bias the warm-up exists to absorb;
 *  - epoch 0 is always simulated (cold-start cost is real and is
 *    counted exactly once) but never enters the sample — scaling a
 *    cold epoch by the sampling rate is how naive samplers
 *    overestimate warm-up-heavy workloads; stratum 0's measured
 *    offset is drawn from [1, rate).
 *
 * Every simulated interval's events are counted exactly; only the
 * skipped epochs are estimated, each priced at its own stratum's
 * measured epoch (nearest measured stratum when its own never
 * completed). Same seed, same rate -> same epochs, byte-identical
 * extrapolated results across repeat runs and job counts. rate == 1
 * degrades to exact simulation (nothing skipped, nothing scaled).
 */

#ifndef CHERI_TRACE_APPROX_HPP
#define CHERI_TRACE_APPROX_HPP

#include "trace/trace.hpp"
#include "uarch/pipeline.hpp"

namespace cheri::trace {

class ApproxSampler final : public uarch::ExecHooks
{
  public:
    /**
     * @param pipe The pipeline this sampler will be attached to; the
     *        sampler toggles its approx-skip state at boundaries
     *        (ExecHooks callbacks only see a const view).
     */
    ApproxSampler(const ApproxConfig &config, u64 seed,
                  uarch::PipelineModel &pipe);

    /** Simulate/skip decision + epoch bookkeeping at boundaries. */
    void onEpochBoundary(const uarch::PipelineModel &pipe) override;

    /** Claim the epoch slot at our configured interval. */
    u64 epochInstructions() const override { return config_.epoch_insts; }

    /**
     * Close the (possibly partial) trailing epoch and take the
     * report. Must be called after detaching and before
     * PipelineModel::finish().
     */
    ApproxReport finish(const uarch::PipelineModel &pipe);

    const ApproxConfig &config() const { return config_; }

  private:
    /** One steady-state sample: a measured epoch and its stratum. */
    struct MeasuredEpoch
    {
        u64 stratum = 0;
        pmu::EventCounts delta;
    };

    u64 measuredOffset(u64 stratum) const;
    bool simulatedEpoch(u64 epoch) const;
    bool measuredEpoch(u64 epoch) const;
    pmu::EventCounts closeDelta(const uarch::PipelineModel &pipe);
    void resync(const uarch::PipelineModel &pipe, u64 inst_now);

    ApproxConfig config_;
    u64 seed_;
    uarch::PipelineModel &pipe_;

    u64 epoch_ = 0;            //!< Index of the epoch now executing.
    bool curSimulated_ = true; //!< Epoch 0 is always simulated.
    u64 epochsSimulated_ = 0;
    u64 sampledInsts_ = 0;
    pmu::EventCounts simulatedTotals_{};

    u64 prevInst_ = 0;
    pmu::EventCounts prevCounts_{};
    uarch::PipelineModel::LiveStats prevLive_{};
    std::vector<MeasuredEpoch> measured_;
    bool taken_ = false;
};

} // namespace cheri::trace

#endif // CHERI_TRACE_APPROX_HPP
