/**
 * @file
 * Run-telemetry data model: the per-interval (epoch) snapshots the
 * observability layer collects while a cell simulates.
 *
 * The paper's contribution is cycle *attribution* — explaining where
 * Morello cycles go through PMC top-down analysis — but an aggregate
 * count vector can only attribute a whole run. An epoch trace slices
 * the same attribution by retired-instruction interval, so when a
 * run's IPC or purecap overhead moves, the phase, cache level or
 * capability mechanism that moved it is visible. Everything in an
 * EpochRecord is derived from deterministic simulation state; traces
 * are byte-identical across repeat runs and any runner job count.
 */

#ifndef CHERI_TRACE_TRACE_HPP
#define CHERI_TRACE_TRACE_HPP

#include <vector>

#include "pmu/counts.hpp"
#include "support/types.hpp"

namespace cheri::trace {

struct EpochRecord;

/**
 * Live epoch observer. The experiment service attaches one so closed
 * epochs stream to subscribed clients while the cell still runs; the
 * collector invokes it synchronously on the simulating thread right
 * after an epoch is appended to the series.
 */
class EpochSink
{
  public:
    virtual ~EpochSink() = default;
    virtual void onEpoch(const EpochRecord &epoch) = 0;
};

/**
 * Per-request tracing knobs. Carried inside runner::RunRequest and
 * folded into the result-cache fingerprint: a traced cell is a
 * different experiment than an untraced one.
 */
struct TraceConfig
{
    bool enabled = false;

    /** Retired-instruction interval per epoch. */
    u64 epoch_insts = 100'000;

    /**
     * Optional live observer. NOT part of request identity: a
     * streamed run and a buffered run are the same experiment, so
     * equality (and therefore the cache fingerprint) ignores it.
     */
    EpochSink *sink = nullptr;

    bool
    operator==(const TraceConfig &other) const
    {
        return enabled == other.enabled && epoch_insts == other.epoch_insts;
    }
};

/**
 * Sampled-simulation knobs (the CLI's --approx mode). Carried inside
 * runner::RunRequest and folded into the cache fingerprint exactly
 * once; approx cells never alias exact cells (they also bypass the
 * on-disk cache entirely — extrapolated counts are estimates, not
 * replayable ground truth).
 *
 * When enabled, only a deterministic, seed-derived subset of
 * retired-instruction epochs runs through the full timing model
 * (1-in-rate, epoch 0 always sampled for warmup fidelity); skipped
 * epochs retire architecturally at zero model cost. Totals are
 * extrapolated from the sampled epochs, with per-metric error bars
 * from the across-epoch variance.
 */
struct ApproxConfig
{
    bool enabled = false;

    /** Simulate 1 epoch in @c rate (>= 1; 1 = exact coverage). */
    u64 rate = 10;

    /** Retired-instruction interval per sampling epoch. */
    u64 epoch_insts = 100'000;

    bool operator==(const ApproxConfig &) const = default;
};

/**
 * What an approx run measured: the sampling accounting the runner
 * needs to extrapolate totals and derive error bars.
 */
struct ApproxReport
{
    u64 rate = 0;
    u64 epochInsts = 0;
    u64 epochsTotal = 0;     //!< Epochs the run retired (incl. tail).
    u64 epochsSampled = 0;   //!< Measured full epochs (the sample).
    u64 epochsSimulated = 0; //!< All full epochs through the timing
                             //!< model: epoch 0 + warm-ups + sample.
    u64 sampledInsts = 0;    //!< Instructions under the full model.
    u64 totalInsts = 0;      //!< All architecturally retired insts.
    double scale = 1.0;      //!< totalInsts / sampledInsts.

    /**
     * Sum of every fully simulated epoch's event deltas (synthesized
     * totals included, tail excluded). These intervals — epoch 0's
     * cold start, the detailed warm-ups, the measured sample — were
     * really simulated, so the extrapolation counts them exactly and
     * estimates only the skipped epochs.
     */
    pmu::EventCounts simulatedTotals{};

    /** Partial trailing epoch: length, and whether it was simulated
     *  (its delta is then in tailCounts and counted exactly). */
    u64 tailInsts = 0;
    bool tailSimulated = false;
    pmu::EventCounts tailCounts{};

    /**
     * The sampler's whole-run estimate, built stratum by stratum:
     * simulated intervals exact, each skipped epoch priced at its
     * stratum's measured epoch. Only valid when `estimated` — false
     * when nothing was skipped (the run is exact as-is) or when no
     * measured epoch completed (short run; the caller falls back to
     * uniform instruction-ratio scaling).
     */
    bool estimated = false;
    pmu::EventCounts estimatedTotals{};

    /**
     * Per-measured-epoch event deltas (steady-state sample only:
     * epoch 0, warm-up epochs and the tail are excluded), with the
     * model-truth totals synthesized in — each entry feeds
     * analysis::DerivedMetrics like a miniature run, and the mean
     * over them prices the skipped epochs.
     */
    std::vector<pmu::EventCounts> epochCounts;
};

/**
 * One epoch: the count deltas and cycle attribution for a contiguous
 * retired-instruction interval [instStart, instEnd).
 *
 * counts holds the PMU event deltas for the interval, with the
 * model-truth totals (CpuCycles, Slots*, Stall*) synthesized from the
 * pipeline's live accounting so the analysis helpers
 * (analysis::DerivedMetrics::compute, analysis::TopDown::
 * fromModelTruth) work on an epoch exactly as they do on a whole run.
 */
struct EpochRecord
{
    u64 index = 0;
    u64 instStart = 0;
    u64 instEnd = 0;

    u64 cycles = 0;          //!< Model cycles spent in the epoch.
    pmu::EventCounts counts; //!< Event deltas + synthesized totals.

    // Top-down slot attribution (fractions of the epoch's slots).
    double retiring = 0;
    double badSpeculation = 0;
    double frontendBound = 0;
    double backendBound = 0;

    // Backend drill-down (fractions of the epoch's cycles).
    double memL1Bound = 0;
    double memL2Bound = 0;
    double memExtBound = 0;
    double coreBound = 0;
    double pccStallShare = 0; //!< Frontend share lost to PCC installs.

    // Capability / store-queue mechanisms.
    u32 sqOccupancy = 0;  //!< Store-queue entries live at epoch close.
    u64 sqFullStalls = 0; //!< Store-queue full events in the epoch.
    u64 capFaults = 0;    //!< Capability faults raised in the epoch.

    u64 instructions() const { return instEnd - instStart; }

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions()) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** The ordered epoch timeline of one run. */
struct EpochSeries
{
    std::vector<EpochRecord> epochs;

    bool empty() const { return epochs.empty(); }
    std::size_t size() const { return epochs.size(); }
};

} // namespace cheri::trace

#endif // CHERI_TRACE_TRACE_HPP
