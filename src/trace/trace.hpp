/**
 * @file
 * Run-telemetry data model: the per-interval (epoch) snapshots the
 * observability layer collects while a cell simulates.
 *
 * The paper's contribution is cycle *attribution* — explaining where
 * Morello cycles go through PMC top-down analysis — but an aggregate
 * count vector can only attribute a whole run. An epoch trace slices
 * the same attribution by retired-instruction interval, so when a
 * run's IPC or purecap overhead moves, the phase, cache level or
 * capability mechanism that moved it is visible. Everything in an
 * EpochRecord is derived from deterministic simulation state; traces
 * are byte-identical across repeat runs and any runner job count.
 */

#ifndef CHERI_TRACE_TRACE_HPP
#define CHERI_TRACE_TRACE_HPP

#include <vector>

#include "pmu/counts.hpp"
#include "support/types.hpp"

namespace cheri::trace {

/**
 * Per-request tracing knobs. Carried inside runner::RunRequest and
 * folded into the result-cache fingerprint: a traced cell is a
 * different experiment than an untraced one.
 */
struct TraceConfig
{
    bool enabled = false;

    /** Retired-instruction interval per epoch. */
    u64 epoch_insts = 100'000;

    bool operator==(const TraceConfig &) const = default;
};

/**
 * One epoch: the count deltas and cycle attribution for a contiguous
 * retired-instruction interval [instStart, instEnd).
 *
 * counts holds the PMU event deltas for the interval, with the
 * model-truth totals (CpuCycles, Slots*, Stall*) synthesized from the
 * pipeline's live accounting so the analysis helpers
 * (analysis::DerivedMetrics::compute, analysis::TopDown::
 * fromModelTruth) work on an epoch exactly as they do on a whole run.
 */
struct EpochRecord
{
    u64 index = 0;
    u64 instStart = 0;
    u64 instEnd = 0;

    u64 cycles = 0;          //!< Model cycles spent in the epoch.
    pmu::EventCounts counts; //!< Event deltas + synthesized totals.

    // Top-down slot attribution (fractions of the epoch's slots).
    double retiring = 0;
    double badSpeculation = 0;
    double frontendBound = 0;
    double backendBound = 0;

    // Backend drill-down (fractions of the epoch's cycles).
    double memL1Bound = 0;
    double memL2Bound = 0;
    double memExtBound = 0;
    double coreBound = 0;
    double pccStallShare = 0; //!< Frontend share lost to PCC installs.

    // Capability / store-queue mechanisms.
    u32 sqOccupancy = 0;  //!< Store-queue entries live at epoch close.
    u64 sqFullStalls = 0; //!< Store-queue full events in the epoch.
    u64 capFaults = 0;    //!< Capability faults raised in the epoch.

    u64 instructions() const { return instEnd - instStart; }

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions()) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** The ordered epoch timeline of one run. */
struct EpochSeries
{
    std::vector<EpochRecord> epochs;

    bool empty() const { return epochs.empty(); }
    std::size_t size() const { return epochs.size(); }
};

} // namespace cheri::trace

#endif // CHERI_TRACE_TRACE_HPP
