#include "trace/jsonl.hpp"

#include <algorithm>
#include <cstdio>

#include "analysis/metrics.hpp"
#include "support/fmt.hpp"
#include "support/logging.hpp"

namespace cheri::trace {

using pmu::Event;

void
JsonlWriter::comma()
{
    if (!first_)
        text_ += ',';
    first_ = false;
}

JsonlWriter &
JsonlWriter::field(std::string_view key, std::string_view value)
{
    comma();
    text_ += '"';
    text_ += key;
    text_ += "\":\"";
    for (char c : value) {
        if (c == '"' || c == '\\')
            text_ += '\\';
        text_ += c;
    }
    text_ += '"';
    return *this;
}

JsonlWriter &
JsonlWriter::field(std::string_view key, u64 value)
{
    comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    text_ += '"';
    text_ += key;
    text_ += "\":";
    text_ += buf;
    return *this;
}

JsonlWriter &
JsonlWriter::field(std::string_view key, double value)
{
    comma();
    text_ += '"';
    text_ += key;
    text_ += "\":";
    text_ += fmt::metric(value);
    return *this;
}

std::string
JsonlWriter::finish()
{
    text_ += "}\n";
    return std::move(text_);
}

namespace {

/**
 * Shared epoch renderer. @p core_id null for the classic single-lane
 * stream (whose bytes CI goldens pin down); non-null inserts a
 * "core_id" field right after "epoch". The key is "core_id", not
 * "core" — that name is already taken by the core-bound top-down
 * fraction below.
 */
std::string
epochLine(const EpochRecord &epoch, std::string_view workload,
          std::string_view abi, u64 seed, const u32 *core_id)
{
    // Per-epoch cache/TLB rates via the same Table 1 formulas the
    // aggregate report uses (the synthesized totals make this valid).
    const auto metrics = analysis::DerivedMetrics::compute(epoch.counts);

    JsonlWriter w;
    w.field("workload", workload)
        .field("abi", abi)
        .field("seed", seed)
        .field("epoch", epoch.index);
    if (core_id != nullptr)
        w.field("core_id", static_cast<u64>(*core_id));
    w.field("inst_start", epoch.instStart)
        .field("inst_end", epoch.instEnd)
        .field("cycles", epoch.cycles)
        .field("ipc", epoch.ipc())
        .field("retiring", epoch.retiring)
        .field("bad_spec", epoch.badSpeculation)
        .field("frontend", epoch.frontendBound)
        .field("backend", epoch.backendBound)
        .field("mem_l1", epoch.memL1Bound)
        .field("mem_l2", epoch.memL2Bound)
        .field("mem_ext", epoch.memExtBound)
        .field("core", epoch.coreBound)
        .field("pcc", epoch.pccStallShare)
        .field("l1i_mr", metrics.l1iMissRate)
        .field("l1d_mr", metrics.l1dMissRate)
        .field("l2_mr", metrics.l2MissRate)
        .field("llc_rd_mr", metrics.llcReadMissRate)
        .field("branch_mr", metrics.branchMissRate)
        .field("itlb_walks", epoch.counts.get(Event::ItlbWalk))
        .field("dtlb_walks", epoch.counts.get(Event::DtlbWalk))
        .field("sq_occ", static_cast<u64>(epoch.sqOccupancy))
        .field("sq_full_stalls", epoch.sqFullStalls)
        .field("cap_rd", epoch.counts.get(Event::CapMemAccessRd))
        .field("cap_wr", epoch.counts.get(Event::CapMemAccessWr))
        .field("cap_faults", epoch.capFaults);
    return w.finish();
}

} // namespace

std::string
epochToJsonl(const EpochRecord &epoch, std::string_view workload,
             std::string_view abi, u64 seed)
{
    return epochLine(epoch, workload, abi, seed, nullptr);
}

std::string
epochToJsonl(const EpochRecord &epoch, std::string_view workload,
             std::string_view abi, u64 seed, u32 core_id)
{
    return epochLine(epoch, workload, abi, seed, &core_id);
}

std::string
seriesToJsonl(const EpochSeries &series, std::string_view workload,
              std::string_view abi, u64 seed)
{
    std::string out;
    for (const auto &epoch : series.epochs)
        out += epochToJsonl(epoch, workload, abi, seed);
    return out;
}

std::string
seriesToJsonl(const EpochSeries &series, std::string_view workload,
              std::string_view abi, u64 seed, u32 core_id)
{
    std::string out;
    for (const auto &epoch : series.epochs)
        out += epochToJsonl(epoch, workload, abi, seed, core_id);
    return out;
}

std::string
corunSummaryJsonl(const std::vector<CorunLaneSummary> &lanes, u64 seed)
{
    std::string out;
    u64 total_insts = 0;
    u64 makespan = 0;
    for (const CorunLaneSummary &lane : lanes) {
        JsonlWriter w;
        w.field("record", "lane-total")
            .field("workload", lane.workload)
            .field("abi", lane.abi)
            .field("seed", seed)
            .field("core_id", static_cast<u64>(lane.core))
            .field("instructions", lane.instructions)
            .field("cycles", lane.cycles)
            .field("ipc", lane.ipc)
            .field("llc_rd_misses", lane.llc_rd_misses)
            .field("seconds", lane.seconds);
        out += w.finish();
        total_insts += lane.instructions;
        makespan = std::max(makespan, lane.cycles);
    }
    JsonlWriter w;
    w.field("record", "soc-total")
        .field("seed", seed)
        .field("lanes", static_cast<u64>(lanes.size()))
        .field("instructions", total_insts)
        .field("makespan_cycles", makespan);
    out += w.finish();
    return out;
}

} // namespace cheri::trace
