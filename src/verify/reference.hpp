/**
 * @file
 * Differential reference models: naive, obviously-correct
 * reimplementations of the compressed-bounds decoder, the
 * set-associative cache and the TLB, used to cross-check the
 * production models access-by-access on fuzzed inputs.
 *
 * Each reference deliberately uses a different formulation from the
 * production code so that shared-bug blindness is unlikely:
 *
 *  - refDecodeBounds() reconstructs bounds by materializing the whole
 *    representable-space window in 128-bit arithmetic and placing both
 *    mantissas inside it modularly, instead of the per-field +/-1
 *    high-bit corrections mem::decodeBounds applies.
 *  - RefCache keeps an explicit MRU-ordered vector per set (front =
 *    most recent) instead of timestamped lines with a victim scan.
 *  - RefTlb does the same for translations.
 *
 * The reference models are presence-equivalent, not timing models:
 * they answer only "would this access hit?".
 */

#ifndef CHERI_VERIFY_REFERENCE_HPP
#define CHERI_VERIFY_REFERENCE_HPP

#include <vector>

#include "cap/bounds.hpp"
#include "mem/cache.hpp"
#include "mem/tlb.hpp"
#include "support/types.hpp"

namespace cheri::verify {

/**
 * Decode compressed bounds relative to @p address using the
 * representable-space-window formulation. Must agree bit-for-bit with
 * cap::decodeBounds for every (fields, address) pair — including
 * corrupted fields, since both decoders are fed the same bits.
 */
cap::DecodedBounds refDecodeBounds(const cap::BoundsFields &fields,
                                   u64 address);

/**
 * Reference set-associative cache: one MRU-ordered list of line
 * addresses per set, truncated to the way count. Same hit/miss and
 * victim behaviour as mem::SetAssocCache by construction.
 */
class RefCache
{
  public:
    explicit RefCache(const mem::CacheConfig &config);

    /** @return True on hit. Allocates on miss (write-allocate). */
    bool access(Addr addr, bool is_write);

    u64 accesses() const { return accesses_; }
    u64 misses() const { return misses_; }

  private:
    mem::CacheConfig config_;
    u32 numSets_;
    std::vector<std::vector<Addr>> sets_; //!< Per-set MRU line lists.
    u64 accesses_ = 0;
    u64 misses_ = 0;
};

/** Reference TLB, same MRU-list construction over page numbers. */
class RefTlb
{
  public:
    explicit RefTlb(const mem::TlbConfig &config);

    /** @return True on hit. Allocates on miss. */
    bool access(Addr addr);

    u64 accesses() const { return accesses_; }
    u64 misses() const { return misses_; }

  private:
    mem::TlbConfig config_;
    u32 numSets_;
    u32 ways_;
    std::vector<std::vector<Addr>> sets_; //!< Per-set MRU VPN lists.
    u64 accesses_ = 0;
    u64 misses_ = 0;
};

} // namespace cheri::verify

#endif // CHERI_VERIFY_REFERENCE_HPP
