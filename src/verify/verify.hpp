/**
 * @file
 * The model-verification orchestrator behind `cheriperf verify`.
 *
 * Three suites, all deterministic for a fixed seed (no wall-clock, no
 * host state, byte-identical reports across repeat runs and any
 * --jobs count):
 *
 *  - cap: property-based fuzzing of the capability layer (fuzz.hpp).
 *    Iterations are split into fixed-size chunks, each chunk's RNG
 *    seeded from (seed, chunk index), and workers pull chunks from an
 *    atomic counter — the set of tuples checked is independent of the
 *    thread count, and failures are aggregated in chunk order.
 *  - mem: differential testing of the cache/TLB models against the
 *    naive reference models (reference.hpp), access-by-access on
 *    seeded traces over a menu of geometries.
 *  - invariants: a fixed miniature experiment plan is run through the
 *    real runner and every result audited with checkRunInvariants();
 *    the cell set includes a solo sweep, a traced cell and a co-run,
 *    plus a cold/warm result-cache round trip that must be
 *    bit-identical.
 */

#ifndef CHERI_VERIFY_VERIFY_HPP
#define CHERI_VERIFY_VERIFY_HPP

#include <optional>
#include <string>
#include <vector>

#include "support/types.hpp"
#include "verify/fuzz.hpp"
#include "verify/invariants.hpp"

namespace cheri::verify {

enum class Suite : u8 {
    Cap,        //!< Capability-law property fuzzing.
    Mem,        //!< Cache/TLB differential reference models.
    Invariants, //!< Run-invariant audits on real runner results.
    All,
};

/** CLI name of a suite ("cap", "mem", "invariants", "all"). */
const char *suiteName(Suite suite);

/** Parse a CLI suite name; nullopt on an unknown one. */
std::optional<Suite> parseSuite(const std::string &name);

struct VerifyOptions
{
    u64 seed = 1;
    u64 iters = 100'000; //!< Cap tuples; mem traces scale from this.
    u32 jobs = 1;        //!< Worker threads for the cap suite.
    Suite suite = Suite::All;

    /** Harness-level bug injection (CI's negative test). */
    FuzzConfig fuzz{};

    /**
     * Non-empty: replay this one repro line (see reproLine()) instead
     * of fuzzing, so a shrunk failure from CI re-executes exactly.
     */
    std::string replay;

    /** Non-empty: write each shrunk cap failure here as a .repro file. */
    std::string corpus_dir;

    /**
     * Scratch directory for the invariant suite's cache round-trip.
     * Empty = a fixed subdirectory of the system temp dir. Cleared
     * before use; never printed in the report.
     */
    std::string cache_dir;
};

struct VerifyReport
{
    bool passed = false;

    /**
     * The full human-readable report. Deterministic: contains the
     * seed, iteration counts and failures, but no wall-clock times,
     * no thread counts and no absolute paths.
     */
    std::string text;

    /** Shrunk cap-law failures, at most kMaxReportedFailures. */
    std::vector<LawFailure> capFailures;

    /** Mem-suite mismatch descriptions (first per trace). */
    std::vector<std::string> memMismatches;

    /** Invariant violations across the audited runs. */
    std::vector<InvariantViolation> violations;
};

/** Run the selected suites. Never throws; failures land in the report. */
VerifyReport runVerify(const VerifyOptions &options);

} // namespace cheri::verify

#endif // CHERI_VERIFY_VERIFY_HPP
