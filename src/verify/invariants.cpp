#include "verify/invariants.hpp"

#include <cstdlib>
#include <string>

#include "pmu/events.hpp"

namespace cheri::verify {

namespace {

using pmu::Event;
using pmu::EventCounts;

std::string
num(u64 v)
{
    return std::to_string(v);
}

/** "lhs <name> rhs" violation with both sides spelled out. */
void
fail(std::vector<InvariantViolation> &out, const char *name,
     const std::string &detail)
{
    out.push_back({name, detail});
}

void
requireEq(std::vector<InvariantViolation> &out, const char *name,
          const char *lhs_name, u64 lhs, const char *rhs_name, u64 rhs)
{
    if (lhs != rhs)
        fail(out, name,
             std::string(lhs_name) + "=" + num(lhs) + " != " +
                 rhs_name + "=" + num(rhs));
}

void
requireLe(std::vector<InvariantViolation> &out, const char *name,
          const char *lhs_name, u64 lhs, const char *rhs_name, u64 rhs)
{
    if (lhs > rhs)
        fail(out, name,
             std::string(lhs_name) + "=" + num(lhs) + " > " + rhs_name +
                 "=" + num(rhs));
}

void
requireNear(std::vector<InvariantViolation> &out, const char *name,
            const char *lhs_name, u64 lhs, const char *rhs_name, u64 rhs,
            u64 slack)
{
    const u64 gap = lhs > rhs ? lhs - rhs : rhs - lhs;
    if (gap > slack)
        fail(out, name,
             std::string(lhs_name) + "=" + num(lhs) + " vs " + rhs_name +
                 "=" + num(rhs) + " differ by " + num(gap) +
                 " (slack " + num(slack) + ")");
}

/**
 * The events the epoch collector live-counts: deltas of the model's
 * running counters, so their epoch sum must reproduce the finals
 * exactly. CpuCycles and the two architectural stall counters are
 * synthesized per epoch from float accumulators instead and only sum
 * within rounding.
 */
bool
isLiveCounted(Event event)
{
    if (!pmu::isArchitectural(event))
        return false;
    return event != Event::CpuCycles && event != Event::StallFrontend &&
           event != Event::StallBackend;
}

/** Epoch-series conservation against the finals it was sliced from. */
void
checkEpochSeries(std::vector<InvariantViolation> &out,
                 const trace::EpochSeries &series,
                 const EventCounts &finals, u64 cycles, u64 instructions,
                 u32 width)
{
    if (series.empty())
        return;

    EventCounts summed;
    u64 cycle_sum = 0;
    u64 prev_end = 0;
    for (const trace::EpochRecord &epoch : series.epochs) {
        if (epoch.instStart != prev_end)
            fail(out, "epoch-contiguous",
                 "epoch " + num(epoch.index) + " starts at " +
                     num(epoch.instStart) + " but previous ended at " +
                     num(prev_end));
        if (epoch.instEnd <= epoch.instStart)
            fail(out, "epoch-nonempty",
                 "epoch " + num(epoch.index) + " spans [" +
                     num(epoch.instStart) + ", " + num(epoch.instEnd) +
                     ")");
        prev_end = epoch.instEnd;
        summed += epoch.counts;
        cycle_sum += epoch.cycles;
        requireEq(out, "epoch-slots-width", "epoch SlotsTotal",
                  epoch.counts.get(Event::SlotsTotal), "cycles*width",
                  epoch.cycles * width);
    }
    requireEq(out, "epoch-covers-run", "last epoch instEnd", prev_end,
              "instructions", instructions);

    for (std::size_t i = 0; i < pmu::kNumEvents; ++i) {
        const Event event = static_cast<Event>(i);
        if (!isLiveCounted(event))
            continue;
        requireEq(out, "epoch-delta-sum",
                  (std::string("sum of epoch ") + pmu::eventName(event))
                      .c_str(),
                  summed.get(event), "final", finals.get(event));
    }

    // CpuCycles per epoch is llround() of a float delta; each epoch can
    // be off by one, plus the final partial epoch's clamp.
    requireNear(out, "epoch-cycle-sum", "sum of epoch cycles", cycle_sum,
                "run cycles", cycles, series.size() + 2);
}

} // namespace

std::vector<InvariantViolation>
checkCountInvariants(const pmu::EventCounts &counts, u32 width, u32 lanes)
{
    std::vector<InvariantViolation> out;
    const auto get = [&](Event e) { return counts.get(e); };

    // --- Exact hierarchy conservation --------------------------------
    requireEq(out, "l2-is-l1-refills", "L2D_CACHE", get(Event::L2dCache),
              "L1I_CACHE_REFILL + L1D_CACHE_REFILL",
              get(Event::L1iCacheRefill) + get(Event::L1dCacheRefill));
    requireEq(out, "walks-are-l2tlb-refills", "L2D_TLB_REFILL",
              get(Event::L2dTlbRefill), "ITLB_WALK + DTLB_WALK",
              get(Event::ItlbWalk) + get(Event::DtlbWalk));
    requireEq(out, "cap-reads-are-ctag-reads", "CAP_MEM_ACCESS_RD",
              get(Event::CapMemAccessRd), "MEM_ACCESS_RD_CTAG",
              get(Event::MemAccessRdCtag));
    requireEq(out, "cap-writes-are-ctag-writes", "CAP_MEM_ACCESS_WR",
              get(Event::CapMemAccessWr), "MEM_ACCESS_WR_CTAG",
              get(Event::MemAccessWrCtag));
    requireEq(out, "slots-are-cycles-times-width", "SLOTS_TOTAL",
              get(Event::SlotsTotal), "CPU_CYCLES * width",
              get(Event::CpuCycles) * width);

    // --- Ordering laws ----------------------------------------------
    requireLe(out, "l1i-refills-within-accesses", "L1I_CACHE_REFILL",
              get(Event::L1iCacheRefill), "L1I_CACHE",
              get(Event::L1iCache));
    requireLe(out, "l1d-refills-within-accesses", "L1D_CACHE_REFILL",
              get(Event::L1dCacheRefill), "L1D_CACHE",
              get(Event::L1dCache));
    requireLe(out, "l2-refills-within-accesses", "L2D_CACHE_REFILL",
              get(Event::L2dCacheRefill), "L2D_CACHE",
              get(Event::L2dCache));
    requireLe(out, "llc-reads-within-l2-refills", "LL_CACHE_RD",
              get(Event::LlCacheRd), "L2D_CACHE_REFILL",
              get(Event::L2dCacheRefill));
    requireLe(out, "llc-misses-within-reads", "LL_CACHE_MISS_RD",
              get(Event::LlCacheMissRd), "LL_CACHE_RD",
              get(Event::LlCacheRd));
    requireLe(out, "l2tlb-within-l1tlbs", "L2D_TLB", get(Event::L2dTlb),
              "L1I_TLB + L1D_TLB",
              get(Event::L1iTlb) + get(Event::L1dTlb));
    requireLe(out, "l2tlb-refills-within-accesses", "L2D_TLB_REFILL",
              get(Event::L2dTlbRefill), "L2D_TLB", get(Event::L2dTlb));
    requireLe(out, "retired-within-spec", "INST_RETIRED",
              get(Event::InstRetired), "INST_SPEC",
              get(Event::InstSpec));
    requireLe(out, "branch-misses-within-branches", "BR_MIS_PRED_RETIRED",
              get(Event::BrMisPredRetired), "BR_RETIRED",
              get(Event::BrRetired));
    requireLe(out, "branches-within-retired", "BR_RETIRED",
              get(Event::BrRetired), "INST_RETIRED",
              get(Event::InstRetired));
    requireLe(out, "retired-slots-cover-insts", "INST_RETIRED",
              get(Event::InstRetired), "SLOTS_RETIRED",
              get(Event::SlotsRetired));

    // --- Float-accumulated partitions (rounding slack scales with the
    // number of independently rounded accumulators: one per lane) ----
    const u64 stall_sum = get(Event::StallMemL1) + get(Event::StallMemL2) +
                          get(Event::StallMemExt) + get(Event::StallCore);
    requireNear(out, "backend-stall-partition",
                "STALL_MEM_* + STALL_CORE", stall_sum, "STALL_BACKEND",
                get(Event::StallBackend), 3ULL * lanes);
    requireLe(out, "pcc-stalls-within-frontend", "PCC_STALL",
              get(Event::PccStall), "STALL_FRONTEND + slack",
              get(Event::StallFrontend) + 2ULL * lanes);

    const u64 slot_sum = get(Event::SlotsRetired) +
                         get(Event::SlotsBadSpec) +
                         get(Event::SlotsFrontend) +
                         get(Event::SlotsBackend);
    const u64 slot_slack = u64(lanes) * (2ULL * width + 2) +
                           get(Event::SlotsTotal) / 1'000'000;
    requireNear(out, "slot-partition",
                "SLOTS_{RETIRED,BAD_SPEC,FRONTEND,BACKEND}", slot_sum,
                "SLOTS_TOTAL", get(Event::SlotsTotal), slot_slack);

    return out;
}

std::vector<InvariantViolation>
checkRunInvariants(const runner::RunResult &result)
{
    std::vector<InvariantViolation> out;
    if (!result.ok() || result.sim->fault)
        return out;

    const sim::MachineConfig config = result.request.resolvedConfig();
    const u32 width = config.pipe.width;
    const u32 lane_count =
        result.lanes.empty() ? 1u : static_cast<u32>(result.lanes.size());

    for (const InvariantViolation &v :
         checkCountInvariants(result.sim->counts, width, lane_count))
        out.push_back(
            {v.name, "aggregate: " + v.detail});

    requireEq(out, "instructions-are-retired", "sim.instructions",
              result.sim->instructions, "INST_RETIRED",
              result.sim->counts.get(pmu::Event::InstRetired));

    if (result.lanes.empty()) {
        // Solo cell: the run's cycles ARE the count vector's cycles.
        requireEq(out, "cycles-match-counts", "sim.cycles",
                  result.sim->cycles, "CPU_CYCLES",
                  result.sim->counts.get(pmu::Event::CpuCycles));
        checkEpochSeries(out, result.epochs, result.sim->counts,
                         result.sim->cycles, result.sim->instructions,
                         width);
        return out;
    }

    // Co-run cell: per-lane audits plus SoC-aggregate conservation.
    pmu::EventCounts lane_sum;
    u64 inst_sum = 0;
    u64 makespan = 0;
    for (std::size_t i = 0; i < result.lanes.size(); ++i) {
        const runner::LaneOutcome &lane = result.lanes[i];
        if (!lane.ok())
            continue;
        const std::string tag = "lane " + std::to_string(i) + " (" +
                                lane.lane.workload + "): ";
        if (lane.sim->fault)
            continue;
        for (const InvariantViolation &v :
             checkCountInvariants(lane.sim->counts, width, 1))
            out.push_back({v.name, tag + v.detail});
        requireEq(out, "lane-cycles-match-counts",
                  (tag + "sim.cycles").c_str(), lane.sim->cycles,
                  "CPU_CYCLES",
                  lane.sim->counts.get(pmu::Event::CpuCycles));
        checkEpochSeries(out, lane.epochs, lane.sim->counts,
                         lane.sim->cycles, lane.sim->instructions, width);
        lane_sum += lane.sim->counts;
        inst_sum += lane.sim->instructions;
        makespan = std::max<u64>(makespan, lane.sim->cycles);
    }

    for (std::size_t i = 0; i < pmu::kNumEvents; ++i) {
        const auto event = static_cast<pmu::Event>(i);
        requireEq(out, "lanes-sum-to-aggregate",
                  (std::string("sum of lane ") + pmu::eventName(event))
                      .c_str(),
                  lane_sum.get(event), "aggregate",
                  result.sim->counts.get(event));
    }
    requireEq(out, "lane-insts-sum-to-aggregate", "sum of lane insts",
              inst_sum, "aggregate instructions",
              result.sim->instructions);
    requireEq(out, "aggregate-cycles-are-makespan", "max lane cycles",
              makespan, "aggregate cycles", result.sim->cycles);

    return out;
}

} // namespace cheri::verify
