/**
 * @file
 * Property-based fuzzing of the capability layer (src/cap).
 *
 * A CapTuple (base, length, offset, perms) is enough to exercise the
 * whole derivation surface: CHERI-Concentrate bounds compression,
 * representability rounding, pointer arithmetic, permission
 * intersection, sealing and tag clearing. checkCapLaws() runs every
 * algebraic law the model must obey against one tuple and returns the
 * first violated law; shrinkCapTuple() greedily minimizes a failing
 * tuple (while preserving the failing law) down to a one-line repro
 * that `cheriperf verify --replay "<line>"` re-executes exactly.
 *
 * Everything here is deterministic: tuples come from a seeded
 * Xoshiro256**, laws are pure functions, and the shrinker's candidate
 * order is fixed — no wall-clock, no host dependence.
 */

#ifndef CHERI_VERIFY_FUZZ_HPP
#define CHERI_VERIFY_FUZZ_HPP

#include <optional>
#include <string>

#include "support/rng.hpp"
#include "support/types.hpp"

namespace cheri::verify {

/** One fuzzed capability scenario. */
struct CapTuple
{
    u64 base = 0;   //!< Requested region base.
    u64 length = 0; //!< Requested region length (clamped to 2^64-base).
    u64 offset = 0; //!< Pointer-arithmetic displacement to exercise.
    u16 perms = 0;  //!< Permission mask to intersect with.

    bool operator==(const CapTuple &) const = default;
};

/**
 * Deliberate model perturbations for CI's negative test: the verify
 * job must prove the fuzzer actually catches the class of bug it
 * exists for, so the harness can corrupt the checked value on the way
 * into the law — the model itself is never modified.
 */
struct FuzzConfig
{
    /**
     * Corrupt the encoded top mantissa whenever representability
     * rounding occurred (the exact bug class CHERI-Concentrate's
     * corrections exist to prevent). Makes the bounds-cover law fail.
     */
    bool injectRepresentabilityBug = false;
};

/** One violated law: which law, on which (shrunk) tuple, and why. */
struct LawFailure
{
    std::string law;    //!< Law identifier, e.g. "bounds-cover".
    CapTuple tuple;     //!< The tuple that violates it.
    std::string detail; //!< Human-readable mismatch description.
};

/** Draw one tuple, biased toward boundary values (powers of two,
 *  top-of-address-space, tiny lengths). */
CapTuple genCapTuple(Xoshiro256StarStar &rng);

/**
 * Check every capability law against @p tuple. Returns the first
 * violated law, or nullopt when all hold. Pure and deterministic.
 */
std::optional<LawFailure> checkCapLaws(const CapTuple &tuple,
                                       const FuzzConfig &config = {});

/**
 * Greedily minimize @p failing while the same law keeps failing.
 * Deterministic (fixed candidate order) and guaranteed to terminate
 * (every accepted step strictly decreases a field).
 */
CapTuple shrinkCapTuple(const CapTuple &failing,
                        const FuzzConfig &config = {});

/** The replayable one-line repro for a tuple:
 *  "cap base=0x... length=0x... offset=0x... perms=0x...". */
std::string reproLine(const CapTuple &tuple);

/** Parse a reproLine() back into a tuple; nullopt on malformed text. */
std::optional<CapTuple> parseReproLine(const std::string &line);

} // namespace cheri::verify

#endif // CHERI_VERIFY_FUZZ_HPP
