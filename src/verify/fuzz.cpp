#include "verify/fuzz.hpp"

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "cap/bounds.hpp"
#include "cap/capability.hpp"
#include "cap/perms.hpp"
#include "verify/reference.hpp"

namespace cheri::verify {

namespace {

using cap::BoundsFields;
using cap::Capability;
using cap::DecodedBounds;
using cap::EncodeResult;
using cap::PermSet;
using u128 = unsigned __int128;

constexpr u128 kTop64 = u128(1) << 64;
constexpr u32 kMantissaMask = (1u << cap::kMantissaWidth) - 1;

/** The requested region as exact 128-bit [base, top). */
struct Region
{
    u64 base = 0;
    u128 top = 0;

    bool topIsMax() const { return top == kTop64; }
    u64 top64() const { return static_cast<u64>(top); }
};

/**
 * A tuple's region with the length clamped so base+length never
 * exceeds 2^64 — the largest region the ISA can even request.
 */
Region
regionOf(const CapTuple &t)
{
    Region r;
    r.base = t.base;
    r.top = u128(t.base) + t.length;
    if (r.top > kTop64)
        r.top = kTop64;
    return r;
}

u128
decodedTop(const DecodedBounds &d)
{
    return d.topIsMax ? kTop64 : u128(d.top);
}

std::string
hex64(u64 v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
    return buf;
}

/** Encode the tuple's region, applying the harness's injected bug. */
EncodeResult
encodeRegion(const Region &r, const FuzzConfig &config)
{
    EncodeResult enc =
        cap::encodeBounds(r.base, r.top64(), r.topIsMax());
    if (config.injectRepresentabilityBug && !enc.exact)
        enc.fields.t = (enc.fields.t - 1) & kMantissaMask;
    return enc;
}

bool
sameBounds(const DecodedBounds &a, const DecodedBounds &b)
{
    return a.base == b.base && a.top == b.top && a.topIsMax == b.topIsMax;
}

/**
 * Each law returns nullopt on success. They are checked in a fixed
 * order, so a tuple violating several laws always reports the same
 * one — which is what lets the shrinker pin "the same bug".
 */
using Law = std::optional<std::string> (*)(const CapTuple &,
                                           const FuzzConfig &);

/** Law: the encoded region always covers the requested one. */
std::optional<std::string>
lawBoundsCover(const CapTuple &t, const FuzzConfig &config)
{
    const Region r = regionOf(t);
    const EncodeResult enc = encodeRegion(r, config);
    const DecodedBounds dec = cap::decodeBounds(enc.fields, r.base);
    if (dec.base > r.base)
        return "decoded base " + hex64(dec.base) +
               " above requested base " + hex64(r.base);
    if (decodedTop(dec) < r.top)
        return "decoded top " + hex64(dec.top) +
               " below requested top " + hex64(r.top64()) +
               (r.topIsMax() ? " (2^64)" : "");
    return std::nullopt;
}

/** Law: an exact encoding round-trips bit-for-bit. */
std::optional<std::string>
lawExactRoundTrip(const CapTuple &t, const FuzzConfig &config)
{
    const Region r = regionOf(t);
    const EncodeResult enc = encodeRegion(r, config);
    if (!enc.exact)
        return std::nullopt;
    const DecodedBounds dec = cap::decodeBounds(enc.fields, r.base);
    if (dec.base != r.base || decodedTop(dec) != r.top)
        return "exact encoding decodes to [" + hex64(dec.base) + ", " +
               hex64(dec.top) + ") instead of the request";
    return std::nullopt;
}

/**
 * Law: decode is address-invariant across the representable range —
 * any address isRepresentable() admits reconstructs identical bounds.
 */
std::optional<std::string>
lawRepresentableRange(const CapTuple &t, const FuzzConfig &config)
{
    const Region r = regionOf(t);
    const EncodeResult enc = encodeRegion(r, config);
    const DecodedBounds ref = cap::decodeBounds(enc.fields, r.base);
    const u64 probes[] = {r.base, r.base + t.offset,
                          r.base + t.length / 2,
                          r.top64() - (t.length ? 1 : 0)};
    for (const u64 addr : probes) {
        if (!cap::isRepresentable(enc.fields, r.base, addr))
            continue;
        const DecodedBounds alt = cap::decodeBounds(enc.fields, addr);
        if (!sameBounds(ref, alt))
            return "representable address " + hex64(addr) +
                   " decodes different bounds";
    }
    return std::nullopt;
}

/** Law: CRRL/CRAM — aligning to the reported mask and length makes
 *  the region exactly representable. */
std::optional<std::string>
lawCrrlCram(const CapTuple &t, const FuzzConfig &)
{
    const u64 mask = cap::representableAlignmentMask(t.length);
    const u64 rlen = cap::representableLength(t.length);
    // CRRL is modulo 2^64: a zero result with a nonzero request means
    // the rounded length is the whole address space.
    const u128 rlen128 =
        (rlen == 0 && t.length != 0) ? kTop64 : u128(rlen);
    if (rlen128 < t.length)
        return "CRRL " + hex64(rlen) + " below requested length";
    if ((rlen & ~mask) != 0)
        return "CRRL " + hex64(rlen) + " not a multiple of CRAM granule";
    const u64 aligned = t.base & mask;
    const u128 top = u128(aligned) + rlen128;
    if (top > kTop64)
        return std::nullopt; // rounded region passes 2^64 at this base
    const EncodeResult enc = cap::encodeBounds(
        aligned, static_cast<u64>(top), top == kTop64);
    if (!enc.exact)
        return "CRAM-aligned [" + hex64(aligned) + ", +" + hex64(rlen) +
               ") does not encode exactly";
    return std::nullopt;
}

/** Law: the independent u128 reference decoder agrees everywhere. */
std::optional<std::string>
lawReferenceDecode(const CapTuple &t, const FuzzConfig &config)
{
    const Region r = regionOf(t);
    const EncodeResult enc = encodeRegion(r, config);
    const u64 probes[] = {r.base, r.base + t.offset, t.offset};
    for (const u64 addr : probes) {
        const DecodedBounds model = cap::decodeBounds(enc.fields, addr);
        const DecodedBounds ref = refDecodeBounds(enc.fields, addr);
        if (!sameBounds(model, ref))
            return "model decode [" + hex64(model.base) + ", " +
                   hex64(model.top) + ") != reference [" +
                   hex64(ref.base) + ", " + hex64(ref.top) + ") at " +
                   hex64(addr);
    }
    return std::nullopt;
}

/** Law: setBounds is monotonic — a derived child never gains bounds
 *  beyond its parent, and a tagged child covers its request. */
std::optional<std::string>
lawSetBoundsMonotonic(const CapTuple &t, const FuzzConfig &)
{
    const Region r = regionOf(t);
    const u64 length =
        r.topIsMax() ? (0 - r.base) : (r.top64() - r.base);
    const Capability parent =
        Capability::root().withAddress(r.base).setBounds(length);
    if (!parent.tag())
        return "root-derived parent lost its tag";
    if (parent.base() > r.base)
        return "parent base above request";

    // A sub-range of the requested region must derive monotonically.
    const u64 off = t.length ? t.offset % t.length : 0;
    const u64 inner_base = r.base + off;
    const u64 inner_len = t.length ? t.length - off : 0;
    const Capability child =
        parent.withAddress(inner_base).setBounds(inner_len);
    if (!child.tag())
        return std::nullopt; // refusing (tag clear) is always legal
    if (child.base() < parent.base())
        return "child base " + hex64(child.base()) +
               " below parent base " + hex64(parent.base());
    if (child.top() > parent.top())
        return "child top " + hex64(child.top()) +
               " above parent top " + hex64(parent.top());
    if (child.base() > inner_base)
        return "tagged child does not cover its requested base";
    if (!child.inBounds(inner_base, inner_len))
        return "tagged child does not cover its requested region";
    if (!child.perms().subsetOf(parent.perms()))
        return "child gained permissions through setBounds";
    return std::nullopt;
}

/** Law: withPerms only ever clears permission bits. */
std::optional<std::string>
lawPermsMonotonic(const CapTuple &t, const FuzzConfig &)
{
    const Capability parent = Capability::root()
                                  .withAddress(t.base)
                                  .setBounds(regionOf(t).topIsMax()
                                                 ? (0 - t.base)
                                                 : t.length);
    const PermSet mask(static_cast<u16>(t.perms & PermSet::all().bits()));
    const Capability derived = parent.withPerms(mask);
    if (!derived.perms().subsetOf(parent.perms()))
        return "withPerms set a bit the parent lacked";
    if (!derived.perms().subsetOf(mask))
        return "withPerms kept a bit outside the mask";
    const Capability again = derived.withPerms(mask);
    if (!(again.perms() == derived.perms()))
        return "withPerms is not idempotent";
    return std::nullopt;
}

/** Law: seal/unseal round-trips; mutating a sealed cap clears tag. */
std::optional<std::string>
lawSealUnseal(const CapTuple &t, const FuzzConfig &)
{
    const Region r = regionOf(t);
    const u64 length = r.topIsMax() ? (0 - r.base) : t.length;
    const Capability c =
        Capability::root().withAddress(r.base).setBounds(length);
    const u16 otype =
        static_cast<u16>(1 + (t.perms % cap::kOtypeMax));
    const Capability sealer = Capability::root().withAddress(otype);

    const Capability sealed = c.sealWith(sealer);
    if (!sealed.tag())
        return "sealing a valid cap with a valid sealer cleared tag";
    if (!sealed.sealed() || sealed.otype() != otype)
        return "sealed otype mismatch";

    if (sealed.withAddress(r.base + t.offset).tag())
        return "withAddress on a sealed cap kept the tag";
    if (sealed.setBounds(t.length).tag())
        return "setBounds on a sealed cap kept the tag";
    if (sealed.withPerms(PermSet::all()).tag())
        return "withPerms on a sealed cap kept the tag";
    if (!sealed.checkAccess(r.base, 1, false))
        return "access through a sealed cap passed the check";

    const Capability unsealed =
        sealed.unsealWith(Capability::root().withAddress(otype));
    if (!unsealed.tag() || unsealed.sealed())
        return "matched unseal did not restore an unsealed cap";
    if (!(unsealed == c))
        return "seal/unseal round trip changed the capability";

    const u16 wrong = otype == cap::kOtypeMax
                          ? static_cast<u16>(1)
                          : static_cast<u16>(otype + 1);
    if (sealed.unsealWith(Capability::root().withAddress(wrong)).tag())
        return "unseal with the wrong otype kept the tag";
    return std::nullopt;
}

/** Law: tags only die; an untagged cap fails every check and every
 *  derivation from it stays untagged. */
std::optional<std::string>
lawTagClearing(const CapTuple &t, const FuzzConfig &)
{
    const Region r = regionOf(t);
    const u64 length = r.topIsMax() ? (0 - r.base) : t.length;
    const Capability c =
        Capability::root().withAddress(r.base).setBounds(length);
    const Capability dead = c.withoutTag();
    if (dead.tag())
        return "withoutTag left the tag set";
    const auto fault = dead.checkAccess(r.base, 1, false);
    if (!fault || fault->kind != cap::CapFaultKind::TagViolation)
        return "untagged access did not raise TagViolation";
    if (dead.setBounds(t.length).tag() ||
        dead.withPerms(PermSet::all()).tag() ||
        dead.sealWith(Capability::root().withAddress(1)).tag())
        return "derivation from an untagged cap resurrected the tag";
    return std::nullopt;
}

/** Law: pack/unpack round-trips the full 129-bit image. */
std::optional<std::string>
lawPackRoundTrip(const CapTuple &t, const FuzzConfig &)
{
    const Region r = regionOf(t);
    const u64 length = r.topIsMax() ? (0 - r.base) : t.length;
    const PermSet mask(static_cast<u16>(t.perms & PermSet::all().bits()));
    const Capability c = Capability::root()
                             .withAddress(r.base)
                             .setBounds(length)
                             .withPerms(mask)
                             .withAddress(r.base + t.offset);
    const Capability back = Capability::unpack(c.pack(), c.tag());
    if (!(back == c))
        return "pack/unpack round trip changed the capability";
    return std::nullopt;
}

/** Law: checkAccess honors tag, perms and bounds in that order. */
std::optional<std::string>
lawCheckAccess(const CapTuple &t, const FuzzConfig &)
{
    const Region r = regionOf(t);
    const u64 length = r.topIsMax() ? (0 - r.base) : t.length;
    const Capability c =
        Capability::root().withAddress(r.base).setBounds(length);
    if (t.length > 0 && c.checkAccess(r.base, 1, false))
        return "in-bounds load through a full-perm cap faulted";

    const Capability no_perms = c.withPerms(PermSet(0));
    const auto fault = no_perms.checkAccess(r.base, 1, false);
    if (!fault || fault->kind != cap::CapFaultKind::PermitLoadViolation)
        return "load without Load permission did not raise "
               "PermitLoadViolation";

    // The decoded top is the hard edge (the request may have rounded
    // outward, so probe the capability's own bound, not the tuple's).
    if (c.top() != ~0ULL) {
        const auto oob = c.checkAccess(c.top(), 1, false);
        if (!oob || oob->kind != cap::CapFaultKind::BoundsViolation)
            return "access at the decoded top did not raise "
                   "BoundsViolation";
    }
    return std::nullopt;
}

struct NamedLaw
{
    const char *name;
    Law law;
};

constexpr NamedLaw kLaws[] = {
    {"bounds-cover", lawBoundsCover},
    {"exact-roundtrip", lawExactRoundTrip},
    {"representable-range", lawRepresentableRange},
    {"crrl-cram", lawCrrlCram},
    {"reference-decode", lawReferenceDecode},
    {"setbounds-monotonic", lawSetBoundsMonotonic},
    {"perms-monotonic", lawPermsMonotonic},
    {"seal-unseal", lawSealUnseal},
    {"tag-clearing", lawTagClearing},
    {"pack-roundtrip", lawPackRoundTrip},
    {"check-access", lawCheckAccess},
};

/** Boundary-biased 64-bit draw (powers of two, near-2^64, tiny). */
u64
interestingU64(Xoshiro256StarStar &rng)
{
    switch (rng.nextBelow(6)) {
      case 0:
        return rng.nextBelow(17);
      case 1: {
          const u64 bit = 1ULL << rng.nextBelow(64);
          return bit + rng.nextBelow(5) - 2; // may wrap: still valid
      }
      case 2:
        return ~0ULL - rng.nextBelow(17);
      case 3:
        return rng.next() & 0xffff;
      case 4:
        return rng.next() & ((1ULL << (1 + rng.nextBelow(63))) - 1);
      default:
        return rng.next();
    }
}

} // namespace

CapTuple
genCapTuple(Xoshiro256StarStar &rng)
{
    CapTuple t;
    t.base = interestingU64(rng);
    t.length = interestingU64(rng);
    if (t.base != 0 && u128(t.base) + t.length > kTop64)
        t.length = 0 - t.base; // clamp: top lands exactly on 2^64
    t.offset = interestingU64(rng);
    t.perms = static_cast<u16>(rng.next());
    return t;
}

std::optional<LawFailure>
checkCapLaws(const CapTuple &tuple, const FuzzConfig &config)
{
    CapTuple t = tuple;
    if (t.base != 0 && u128(t.base) + t.length > kTop64)
        t.length = 0 - t.base;
    for (const NamedLaw &entry : kLaws) {
        if (auto detail = entry.law(t, config))
            return LawFailure{entry.name, t, std::move(*detail)};
    }
    return std::nullopt;
}

CapTuple
shrinkCapTuple(const CapTuple &failing, const FuzzConfig &config)
{
    const auto original = checkCapLaws(failing, config);
    if (!original)
        return failing;
    const std::string law = original->law;
    const auto stillFails = [&](const CapTuple &candidate) {
        const auto f = checkCapLaws(candidate, config);
        return f && f->law == law;
    };

    // Candidate moves for one 64-bit field, all strictly decreasing:
    // zero, halve, decrement, drop lowest set bit, drop highest set
    // bit. Strict decrease bounds the loop; the fixed order makes the
    // shrink deterministic.
    const auto moves = [](u64 v) {
        std::vector<u64> out;
        if (v == 0)
            return out;
        out.push_back(0);
        out.push_back(v >> 1);
        out.push_back(v - 1);
        out.push_back(v & (v - 1));
        u64 high = v;
        while (high & (high - 1))
            high &= high - 1;
        out.push_back(v & ~high);
        return out;
    };

    CapTuple t = original->tuple;
    bool progress = true;
    while (progress) {
        progress = false;
        u64 *fields[] = {&t.base, &t.length, &t.offset};
        for (u64 *field : fields) {
            for (const u64 candidate : moves(*field)) {
                if (candidate >= *field)
                    continue;
                const u64 saved = *field;
                *field = candidate;
                if (stillFails(t)) {
                    progress = true;
                    break;
                }
                *field = saved;
            }
        }
        for (const u64 candidate : moves(t.perms)) {
            if (candidate >= t.perms)
                continue;
            const u16 saved = t.perms;
            t.perms = static_cast<u16>(candidate);
            if (stillFails(t)) {
                progress = true;
                break;
            }
            t.perms = saved;
        }
    }
    return t;
}

std::string
reproLine(const CapTuple &tuple)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "cap base=0x%016" PRIx64 " length=0x%016" PRIx64
                  " offset=0x%016" PRIx64 " perms=0x%04x",
                  tuple.base, tuple.length, tuple.offset,
                  static_cast<unsigned>(tuple.perms));
    return buf;
}

std::optional<CapTuple>
parseReproLine(const std::string &line)
{
    CapTuple t;
    unsigned perms = 0;
    const int n = std::sscanf(
        line.c_str(),
        "cap base=%" SCNx64 " length=%" SCNx64 " offset=%" SCNx64
        " perms=%x",
        &t.base, &t.length, &t.offset, &perms);
    if (n != 4 || perms > 0xffff)
        return std::nullopt;
    t.perms = static_cast<u16>(perms);
    return t;
}

} // namespace cheri::verify
