/**
 * @file
 * Run-invariant checking: conservation laws every simulated run must
 * obey, checked on real RunResults rather than fuzzed inputs.
 *
 * Two layers:
 *
 *  - checkCountInvariants() audits one PMU count vector: hierarchy
 *    conservation (L2 accesses are exactly the L1 refills, TLB walks
 *    are exactly the L2-TLB refills, capability traffic equals tagged
 *    traffic), ordering laws (refills never exceed accesses, retired
 *    never exceeds speculated), and the top-down slot partition
 *    (retired + bad-spec + frontend + backend slots account for every
 *    issued slot, within the pipeline's documented rounding slack).
 *
 *  - checkRunInvariants() audits a whole runner::RunResult: the count
 *    laws on the aggregate and on every lane, lane-sum/makespan
 *    consistency for co-runs, and epoch-series conservation (live
 *    event deltas sum exactly to the final counts; synthesized cycle
 *    totals sum within rounding of the run's cycles).
 *
 * Violations are returned, not asserted, so callers decide severity:
 * tests FAIL_ADD them, `cheriperf verify` prints and exits non-zero.
 */

#ifndef CHERI_VERIFY_INVARIANTS_HPP
#define CHERI_VERIFY_INVARIANTS_HPP

#include <string>
#include <vector>

#include "pmu/counts.hpp"
#include "runner/run_result.hpp"
#include "support/types.hpp"

namespace cheri::verify {

/** One violated conservation law. */
struct InvariantViolation
{
    std::string name;   //!< Law identifier, e.g. "l2-is-l1-refills".
    std::string detail; //!< The two sides that failed to balance.
};

/**
 * Check the conservation laws on one count vector.
 *
 * @param counts The vector to audit (a run's finals, a lane's finals,
 *        or a co-run SoC aggregate).
 * @param width Pipeline issue width the counts were produced under.
 * @param lanes Number of summed lanes (1 for a single core). Scales
 *        the rounding slack of the float-accumulated stall laws.
 */
std::vector<InvariantViolation>
checkCountInvariants(const pmu::EventCounts &counts, u32 width,
                     u32 lanes = 1);

/**
 * Check every invariant a completed RunResult must satisfy. NA cells
 * and faulted runs are skipped (a fault legitimately truncates the
 * final epoch and the slot partition).
 */
std::vector<InvariantViolation>
checkRunInvariants(const runner::RunResult &result);

} // namespace cheri::verify

#endif // CHERI_VERIFY_INVARIANTS_HPP
