#include "verify/verify.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <thread>

#include "runner/runner.hpp"
#include "support/hash.hpp"
#include "support/serialize.hpp"
#include "tune/knobs.hpp"
#include "verify/reference.hpp"

namespace cheri::verify {

namespace {

/** Tuples per fuzz chunk: the unit of work-stealing. Chunk seeds are
 *  derived from (seed, chunk index), so the tuple set is identical
 *  for every --jobs value. */
constexpr u64 kChunkTuples = 2048;

/** At most this many shrunk failures are reported / written out. */
constexpr std::size_t kMaxReportedFailures = 8;

u64
chunkSeed(u64 seed, u64 chunk, u64 salt)
{
    Fnv1a h;
    h.add(seed).add(salt).add(chunk);
    return h.value();
}

// ---------------------------------------------------------------- cap

void
runCapSuite(const VerifyOptions &options, VerifyReport &report)
{
    const u64 iters = std::max<u64>(options.iters, 1);
    const u64 chunks = (iters + kChunkTuples - 1) / kChunkTuples;
    std::vector<std::vector<LawFailure>> perChunk(chunks);

    std::atomic<u64> next{0};
    const auto worker = [&]() {
        for (u64 c = next.fetch_add(1); c < chunks; c = next.fetch_add(1)) {
            Xoshiro256StarStar rng(chunkSeed(options.seed, c, 0xCA9));
            const u64 count =
                std::min<u64>(kChunkTuples, iters - c * kChunkTuples);
            for (u64 i = 0; i < count; ++i) {
                const CapTuple tuple = genCapTuple(rng);
                if (auto failure = checkCapLaws(tuple, options.fuzz)) {
                    if (perChunk[c].size() < kMaxReportedFailures)
                        perChunk[c].push_back(std::move(*failure));
                }
            }
        }
    };

    const u32 jobs = std::max<u32>(options.jobs, 1);
    if (jobs == 1 || chunks == 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (u32 t = 0; t < jobs; ++t)
            threads.emplace_back(worker);
        for (auto &thread : threads)
            thread.join();
    }

    // Aggregate in chunk order (not completion order), shrink on this
    // thread, and dedupe by repro line: byte-identical output for any
    // thread count.
    std::vector<std::string> seen;
    for (const auto &chunk : perChunk) {
        for (const LawFailure &failure : chunk) {
            if (report.capFailures.size() >= kMaxReportedFailures)
                break;
            const CapTuple shrunk =
                shrinkCapTuple(failure.tuple, options.fuzz);
            const std::string line = reproLine(shrunk);
            if (std::find(seen.begin(), seen.end(), line) != seen.end())
                continue;
            seen.push_back(line);
            auto detail = checkCapLaws(shrunk, options.fuzz);
            report.capFailures.push_back(
                detail ? std::move(*detail)
                       : LawFailure{failure.law, shrunk, failure.detail});
        }
    }

    report.text += "cap: " + std::to_string(iters) + " tuples, " +
                   std::to_string(report.capFailures.size()) +
                   " failing laws\n";
    for (const LawFailure &failure : report.capFailures) {
        report.text += "cap: FAIL " + failure.law + ": " +
                       failure.detail + "\n";
        report.text += "  repro: " + reproLine(failure.tuple) + "\n";
    }

    if (!options.corpus_dir.empty() && !report.capFailures.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options.corpus_dir, ec);
        for (const LawFailure &failure : report.capFailures) {
            Fnv1a h;
            h.add(failure.tuple.base)
                .add(failure.tuple.length)
                .add(failure.tuple.offset)
                .add(static_cast<u64>(failure.tuple.perms));
            const std::string name =
                failure.law + "-" + toHex64(h.value()) + ".repro";
            writeFileAtomic(options.corpus_dir + "/" + name,
                            reproLine(failure.tuple) + "\n");
            report.text += "  corpus: " + name + "\n";
        }
    }
}

// ---------------------------------------------------------------- mem

/** Addresses for one differential trace: a mix of patterns so hits,
 *  conflict misses and capacity misses all occur. */
u64
traceAddress(Xoshiro256StarStar &rng, u64 pattern, u64 step)
{
    switch (pattern) {
      case 0: // small uniform window: mostly hits
        return rng.nextBelow(1ULL << 12);
      case 1: // large uniform window: mostly misses
        return rng.nextBelow(1ULL << 24);
      case 2: // strided sweep with jitter: conflict pressure
        return step * 4096 + rng.nextBelow(64);
      case 3: // skewed hot set
        return rng.nextZipf(1ULL << 16, 1.1) * 32;
      default: // pathological high addresses
        return ~0ULL - rng.nextBelow(1ULL << 20);
    }
}

void
runMemSuite(const VerifyOptions &options, VerifyReport &report)
{
    const mem::CacheConfig cacheMenu[] = {
        {1 * kKiB, 2, 64},
        {4 * kKiB, 4, 64},
        {512, 1, 32},
        {2 * kKiB, 8, 64},
    };
    const mem::TlbConfig tlbMenu[] = {
        {8, 0, 4096},
        {16, 4, 4096},
        {32, 8, 4096},
    };
    constexpr u64 kAccessesPerTrace = 512;

    const u64 traces =
        std::clamp<u64>(options.iters / 1000, 8, 256);
    u64 mismatched_traces = 0;

    for (u64 t = 0; t < traces; ++t) {
        Xoshiro256StarStar rng(chunkSeed(options.seed, t, 0x3E3));
        const auto &cc = cacheMenu[rng.nextBelow(std::size(cacheMenu))];
        const auto &l1c = tlbMenu[rng.nextBelow(std::size(tlbMenu))];
        const auto &l2c = tlbMenu[rng.nextBelow(std::size(tlbMenu))];
        const u64 pattern = rng.nextBelow(5);

        mem::SetAssocCache cache(cc);
        RefCache refCache(cc);
        mem::Tlb l1(l1c), l2(l2c);
        RefTlb refL1(l1c), refL2(l2c);

        std::string mismatch;
        for (u64 i = 0; i < kAccessesPerTrace && mismatch.empty(); ++i) {
            const u64 addr = traceAddress(rng, pattern, i);
            const bool is_write = rng.nextBelow(4) == 0;

            if (cache.access(addr, is_write) !=
                refCache.access(addr, is_write))
                mismatch = "cache hit/miss diverged at access " +
                           std::to_string(i) + " addr " + toHex64(addr);

            // Two-level translation with the production short-circuit:
            // the L2 TLB is consulted only on an L1 miss, on both
            // sides, so allocation order is compared too.
            const bool l1_hit = l1.access(addr);
            if (l1_hit != refL1.access(addr)) {
                if (mismatch.empty())
                    mismatch = "L1 TLB diverged at access " +
                               std::to_string(i) + " addr " +
                               toHex64(addr);
            } else if (!l1_hit && l2.access(addr) != refL2.access(addr)) {
                if (mismatch.empty())
                    mismatch = "L2 TLB diverged at access " +
                               std::to_string(i) + " addr " +
                               toHex64(addr);
            }
        }
        if (mismatch.empty() &&
            (cache.accesses() != refCache.accesses() ||
             cache.misses() != refCache.misses()))
            mismatch = "cache totals diverged: model " +
                       std::to_string(cache.misses()) + "/" +
                       std::to_string(cache.accesses()) + " vs ref " +
                       std::to_string(refCache.misses()) + "/" +
                       std::to_string(refCache.accesses());

        if (!mismatch.empty()) {
            ++mismatched_traces;
            if (report.memMismatches.size() < kMaxReportedFailures)
                report.memMismatches.push_back(
                    "trace " + std::to_string(t) + ": " + mismatch);
        }
    }

    report.text += "mem: " + std::to_string(traces) + " traces, " +
                   std::to_string(mismatched_traces) + " mismatches\n";
    for (const std::string &m : report.memMismatches)
        report.text += "mem: FAIL " + m + "\n";
}

// --------------------------------------------------------- invariants

void
runInvariantsSuite(const VerifyOptions &options, VerifyReport &report)
{
    using runner::RunRequest;

    // A fixed miniature plan covering every result shape the runner
    // produces: a solo ABI pair, an NA cell, a traced cell, a co-run,
    // and a single-entry lane vector (which must degrade to solo).
    runner::ExperimentPlan plan;
    {
        RunRequest r;
        r.workload = "519.lbm_r";
        r.abi = abi::Abi::Purecap;
        r.scale = workloads::Scale::Tiny;
        plan.add(r);
        r.abi = abi::Abi::Hybrid;
        plan.add(r);
    }
    {
        RunRequest r;
        r.workload = "SQLite";
        r.abi = abi::Abi::Purecap;
        r.scale = workloads::Scale::Tiny;
        plan.add(r);
    }
    {
        RunRequest r; // the paper's NA cell
        r.workload = "QuickJS";
        r.abi = abi::Abi::Benchmark;
        r.scale = workloads::Scale::Tiny;
        plan.add(r);
    }
    {
        RunRequest r; // traced: exercises epoch conservation
        r.workload = "SQLite";
        r.abi = abi::Abi::Purecap;
        r.scale = workloads::Scale::Tiny;
        r.trace.enabled = true;
        r.trace.epoch_insts = 20'000;
        plan.add(r);
    }
    {
        RunRequest r; // co-run: exercises lane-sum/makespan laws
        r.scale = workloads::Scale::Tiny;
        r.lanes = {{"519.lbm_r", abi::Abi::Purecap},
                   {"SQLite", abi::Abi::Purecap}};
        plan.add(r);
    }
    {
        RunRequest r; // single-entry lanes: must normalize to solo
        r.scale = workloads::Scale::Tiny;
        r.lanes = {{"519.lbm_r", abi::Abi::Purecap}};
        plan.add(r);
    }

    // Scratch cache for the cold/warm round trip. Never printed: the
    // report must be byte-identical across hosts.
    std::string scratch = options.cache_dir;
    if (scratch.empty())
        scratch = (std::filesystem::temp_directory_path() /
                   "cheriperf-verify-cache")
                      .string();
    runner::ResultCache(scratch).clear();

    runner::RunnerOptions ropts;
    ropts.jobs = std::max<u32>(options.jobs, 1);
    ropts.cache_dir = scratch;

    const auto cold = runner::runPlan(plan, ropts);
    const auto warm = runner::runPlan(plan, ropts);

    std::size_t audited = 0;
    const auto audit = [&](const runner::RunResult &result,
                           const char *pass) {
        ++audited;
        for (const InvariantViolation &v : checkRunInvariants(result))
            report.violations.push_back(
                {v.name, result.request.displayName() + "/" +
                             abi::abiName(result.request.abi) + " (" +
                             pass + "): " + v.detail});
    };
    for (const auto &result : cold.results)
        audit(result, "cold");
    for (const auto &result : warm.results)
        audit(result, "warm");

    // Bit-identical replay: warm solo untraced cells must come from
    // the cache and reproduce the cold pass exactly.
    for (std::size_t i = 0; i < plan.size(); ++i) {
        const auto &a = cold.results[i];
        const auto &b = warm.results[i];
        const std::string cell = a.request.displayName() + "/" +
                                 abi::abiName(a.request.abi);
        const bool eligible =
            a.ok() && !a.request.corun() && !a.request.trace.enabled;
        if (eligible && !b.cacheHit)
            report.violations.push_back(
                {"cache-replay-missed",
                 cell + ": warm pass re-simulated a cacheable cell"});
        if (a.ok() != b.ok()) {
            report.violations.push_back(
                {"cold-warm-divergence", cell + ": NA status changed"});
            continue;
        }
        if (a.ok() &&
            (!(a.sim->counts == b.sim->counts) ||
             a.sim->instructions != b.sim->instructions ||
             a.sim->cycles != b.sim->cycles ||
             a.sim->seconds != b.sim->seconds))
            report.violations.push_back(
                {"cold-warm-divergence",
                 cell + ": cached replay is not bit-identical"});
    }

    // The normalized single-lane cell must equal the plain solo cell.
    const auto &solo = cold.results[0];
    const auto &folded = cold.results[plan.size() - 1];
    if (!folded.lanes.empty() || !folded.ok() || !solo.ok() ||
        !(folded.sim->counts == solo.sim->counts))
        report.violations.push_back(
            {"single-lane-degradation",
             "single-entry lane cell did not reproduce the solo cell"});

    // Acceleration-escape equivalence: every non-fingerprint knob is
    // an audited bit-identical acceleration toggle — turning it off
    // must reproduce the accelerated cell exactly. Runs with the
    // result cache disabled: the escapes share one fingerprint by
    // design, so a cached comparison would replay the same entry and
    // prove nothing.
    {
        runner::ExperimentPlan escPlan;
        RunRequest accel;
        accel.workload = "SQLite";
        accel.abi = abi::Abi::Purecap;
        accel.scale = workloads::Scale::Tiny;
        escPlan.add(accel);
        std::vector<std::string> escapeNames;
        for (const tune::Knob &knob : tune::knobRegistry()) {
            if (knob.fingerprint)
                continue;
            escapeNames.push_back(knob.name);
            RunRequest r = accel;
            r.config = sim::MachineConfig::forAbi(r.abi);
            knob.set(*r.config, 0);
            escPlan.add(r);
        }
        runner::RunnerOptions eopts;
        eopts.jobs = ropts.jobs;
        eopts.cache = false;
        const auto esc = runner::runPlan(escPlan, eopts);
        const auto &fast = esc.results[0];
        for (std::size_t i = 0; i < escapeNames.size(); ++i) {
            const auto &slow = esc.results[i + 1];
            if (!fast.ok() || !slow.ok() ||
                !(fast.sim->counts == slow.sim->counts) ||
                fast.sim->instructions != slow.sim->instructions ||
                fast.sim->cycles != slow.sim->cycles)
                report.violations.push_back(
                    {"acceleration-escape-divergence",
                     escapeNames[i] +
                         "=off changed results vs the accelerated cell"});
        }
        audited += esc.results.size();
    }

    report.text += "invariants: " + std::to_string(audited) +
                   " results audited, " +
                   std::to_string(report.violations.size()) +
                   " violations\n";
    for (const InvariantViolation &v : report.violations)
        report.text +=
            "invariants: FAIL " + v.name + ": " + v.detail + "\n";
}

void
runReplay(const VerifyOptions &options, VerifyReport &report)
{
    const auto tuple = parseReproLine(options.replay);
    if (!tuple) {
        report.text += "replay: malformed repro line\n";
        return;
    }
    if (auto failure = checkCapLaws(*tuple, options.fuzz)) {
        report.capFailures.push_back(*failure);
        report.text += "replay: FAIL " + failure->law + ": " +
                       failure->detail + "\n";
        report.text += "  repro: " + reproLine(failure->tuple) + "\n";
    } else {
        report.text += "replay: PASS " + reproLine(*tuple) + "\n";
    }
}

} // namespace

const char *
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::Cap:
        return "cap";
      case Suite::Mem:
        return "mem";
      case Suite::Invariants:
        return "invariants";
      case Suite::All:
        return "all";
    }
    return "?";
}

std::optional<Suite>
parseSuite(const std::string &name)
{
    for (Suite s :
         {Suite::Cap, Suite::Mem, Suite::Invariants, Suite::All})
        if (name == suiteName(s))
            return s;
    return std::nullopt;
}

VerifyReport
runVerify(const VerifyOptions &options)
{
    VerifyReport report;
    report.text = "cheriperf verify: seed=" +
                  std::to_string(options.seed) +
                  " iters=" + std::to_string(options.iters) +
                  " suite=" + suiteName(options.suite) + "\n";

    if (!options.replay.empty()) {
        runReplay(options, report);
    } else {
        const auto want = [&](Suite s) {
            return options.suite == Suite::All || options.suite == s;
        };
        if (want(Suite::Cap))
            runCapSuite(options, report);
        if (want(Suite::Mem))
            runMemSuite(options, report);
        if (want(Suite::Invariants))
            runInvariantsSuite(options, report);
    }

    report.passed = report.capFailures.empty() &&
                    report.memMismatches.empty() &&
                    report.violations.empty() &&
                    (options.replay.empty() ||
                     report.text.find("malformed") == std::string::npos);
    report.text += std::string("verify: ") +
                   (report.passed ? "PASS" : "FAIL") + "\n";
    return report;
}

} // namespace cheri::verify
