#include "verify/reference.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace cheri::verify {

namespace {

using u128 = unsigned __int128;
using s128 = __int128;

constexpr u32 kMask = (1u << cap::kMantissaWidth) - 1;

/** MRU-list lookup shared by RefCache and RefTlb: hit moves the key
 *  to the front, miss inserts at the front and truncates to ways. */
bool
mruAccess(std::vector<Addr> &set, Addr key, u32 ways)
{
    const auto it = std::find(set.begin(), set.end(), key);
    if (it != set.end()) {
        std::rotate(set.begin(), it, it + 1);
        return true;
    }
    set.insert(set.begin(), key);
    if (set.size() > ways)
        set.pop_back();
    return false;
}

} // namespace

cap::DecodedBounds
refDecodeBounds(const cap::BoundsFields &fields, u64 address)
{
    const unsigned e = fields.e;
    const unsigned window_bits = e + cap::kMantissaWidth;
    const u128 span = u128(1) << window_bits;

    // The representable limit R in mantissa units: one eighth-space
    // below the base mantissa's aligned chunk.
    const u32 r = (((fields.b >> (cap::kMantissaWidth - 3)) - 1)
                   << (cap::kMantissaWidth - 3)) &
                  kMask;

    // Materialize the representable window holding the address: it
    // starts at the R boundary at or below the address. The window
    // may start below zero (signed 128-bit), which the final mod-2^64
    // reduction absorbs.
    const u64 a_hi = window_bits >= 64 ? 0 : address >> window_bits;
    const u64 a_mid = (address >> e) & kMask;
    s128 window = static_cast<s128>((u128(a_hi) << window_bits) +
                                    (u128(r) << e));
    if (a_mid < r)
        window -= static_cast<s128>(span);

    // Both mantissas live inside the window, at their modular distance
    // above R. This places each field independently — the reference
    // never computes the production decoder's +/-1 corrections.
    const auto place = [&](u32 mantissa) -> u128 {
        const u32 above_r = (mantissa - r) & kMask;
        return static_cast<u128>(window + s128(u128(above_r) << e));
    };

    const u128 base128 = place(fields.b) & ((u128(1) << 64) - 1);
    const u128 top128 = place(fields.t) & ((u128(1) << 65) - 1);

    cap::DecodedBounds out;
    out.base = static_cast<u64>(base128);
    out.topIsMax = top128 >= (u128(1) << 64);
    out.top = out.topIsMax ? ~0ULL : static_cast<u64>(top128);
    return out;
}

RefCache::RefCache(const mem::CacheConfig &config) : config_(config)
{
    const u64 lines = config.size_bytes / config.line_bytes;
    CHERI_ASSERT(config.ways > 0 && lines % config.ways == 0,
                 "RefCache geometry mismatch");
    numSets_ = static_cast<u32>(lines / config.ways);
    sets_.resize(numSets_);
}

bool
RefCache::access(Addr addr, bool is_write)
{
    (void)is_write; // presence model: dirtiness never affects hits
    ++accesses_;
    const Addr line = addr / config_.line_bytes;
    const u32 set = static_cast<u32>(line & (numSets_ - 1));
    if (mruAccess(sets_[set], line, config_.ways))
        return true;
    ++misses_;
    return false;
}

RefTlb::RefTlb(const mem::TlbConfig &config) : config_(config)
{
    ways_ = config.ways == 0 ? config.entries : config.ways;
    CHERI_ASSERT(ways_ > 0 && config.entries % ways_ == 0,
                 "RefTlb geometry mismatch");
    numSets_ = config.entries / ways_;
    sets_.resize(numSets_);
}

bool
RefTlb::access(Addr addr)
{
    ++accesses_;
    const Addr vpn = addr / config_.page_bytes;
    const u32 set = static_cast<u32>(vpn & (numSets_ - 1));
    if (mruAccess(sets_[set], vpn, ways_))
        return true;
    ++misses_;
    return false;
}

} // namespace cheri::verify
