#include "isa/builder.hpp"

#include "support/logging.hpp"

namespace cheri::isa {

FuncId
ProgramBuilder::beginFunction(std::string name, LibId lib)
{
    currentFunc_ = program_.addFunction(std::move(name), lib);
    current_ = program_.addBlock(currentFunc_);
    return currentFunc_;
}

BlockId
ProgramBuilder::newBlock()
{
    return program_.addBlock(currentFunc_);
}

void
ProgramBuilder::atBlock(BlockId id)
{
    CHERI_ASSERT(id < program_.blockCount(), "atBlock: bad block");
    current_ = id;
    currentFunc_ = program_.block(id).func;
}

ProgramBuilder &
ProgramBuilder::emit(Inst inst)
{
    CHERI_ASSERT(current_ != kNoBlock, "emit before beginFunction");
    program_.block(current_).insts.push_back(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::nop()
{
    return emit(Inst{.op = Opcode::Nop});
}

ProgramBuilder &
ProgramBuilder::movImm(u8 rd, s64 imm)
{
    return emit(Inst{.op = Opcode::MovImm, .rd = rd, .imm = imm});
}

ProgramBuilder &
ProgramBuilder::movReg(u8 rd, u8 rn)
{
    return emit(Inst{.op = Opcode::MovReg, .rd = rd, .rn = rn});
}

ProgramBuilder &
ProgramBuilder::add(u8 rd, u8 rn, u8 rm)
{
    return emit(Inst{.op = Opcode::Add, .rd = rd, .rn = rn, .rm = rm});
}

ProgramBuilder &
ProgramBuilder::addImm(u8 rd, u8 rn, s64 imm)
{
    return emit(Inst{.op = Opcode::AddImm, .rd = rd, .rn = rn, .imm = imm});
}

ProgramBuilder &
ProgramBuilder::sub(u8 rd, u8 rn, u8 rm)
{
    return emit(Inst{.op = Opcode::Sub, .rd = rd, .rn = rn, .rm = rm});
}

ProgramBuilder &
ProgramBuilder::subImm(u8 rd, u8 rn, s64 imm)
{
    return emit(Inst{.op = Opcode::SubImm, .rd = rd, .rn = rn, .imm = imm});
}

ProgramBuilder &
ProgramBuilder::mul(u8 rd, u8 rn, u8 rm)
{
    return emit(Inst{.op = Opcode::Mul, .rd = rd, .rn = rn, .rm = rm});
}

ProgramBuilder &
ProgramBuilder::madd(u8 rd, u8 rn, u8 rm, u8 ra)
{
    return emit(
        Inst{.op = Opcode::Madd, .rd = rd, .rn = rn, .rm = rm, .ra = ra});
}

ProgramBuilder &
ProgramBuilder::cmpImm(u8 rn, s64 imm)
{
    return emit(Inst{.op = Opcode::CmpImm, .rn = rn, .imm = imm});
}

ProgramBuilder &
ProgramBuilder::cmp(u8 rn, u8 rm)
{
    return emit(Inst{.op = Opcode::Cmp, .rn = rn, .rm = rm});
}

ProgramBuilder &
ProgramBuilder::fadd(u8 rd, u8 rn, u8 rm)
{
    return emit(Inst{.op = Opcode::FAdd, .rd = rd, .rn = rn, .rm = rm});
}

ProgramBuilder &
ProgramBuilder::fmul(u8 rd, u8 rn, u8 rm)
{
    return emit(Inst{.op = Opcode::FMul, .rd = rd, .rn = rn, .rm = rm});
}

ProgramBuilder &
ProgramBuilder::ldr(u8 rd, u8 rn, s64 offset, u8 size)
{
    return emit(Inst{
        .op = Opcode::Ldr, .rd = rd, .rn = rn, .imm = offset, .size = size});
}

ProgramBuilder &
ProgramBuilder::str(u8 rd, u8 rn, s64 offset, u8 size)
{
    return emit(Inst{
        .op = Opcode::Str, .rd = rd, .rn = rn, .imm = offset, .size = size});
}

ProgramBuilder &
ProgramBuilder::ldrCap(u8 cd, u8 cn, s64 offset)
{
    return emit(Inst{.op = Opcode::LdrCap,
                     .rd = cd,
                     .rn = cn,
                     .imm = offset,
                     .size = 16});
}

ProgramBuilder &
ProgramBuilder::strCap(u8 cd, u8 cn, s64 offset)
{
    return emit(Inst{.op = Opcode::StrCap,
                     .rd = cd,
                     .rn = cn,
                     .imm = offset,
                     .size = 16});
}

ProgramBuilder &
ProgramBuilder::csetboundsImm(u8 cd, u8 cn, s64 length)
{
    return emit(
        Inst{.op = Opcode::CSetBoundsImm, .rd = cd, .rn = cn, .imm = length});
}

ProgramBuilder &
ProgramBuilder::cincoffsetImm(u8 cd, u8 cn, s64 delta)
{
    return emit(
        Inst{.op = Opcode::CIncOffsetImm, .rd = cd, .rn = cn, .imm = delta});
}

ProgramBuilder &
ProgramBuilder::cmove(u8 cd, u8 cn)
{
    return emit(Inst{.op = Opcode::CMove, .rd = cd, .rn = cn});
}

ProgramBuilder &
ProgramBuilder::cgetaddr(u8 rd, u8 cn)
{
    return emit(Inst{.op = Opcode::CGetAddr, .rd = rd, .rn = cn});
}

ProgramBuilder &
ProgramBuilder::jump(BlockId target)
{
    return emit(Inst{.op = Opcode::B, .target = target});
}

ProgramBuilder &
ProgramBuilder::branchCond(Cond cond, BlockId target)
{
    return emit(Inst{.op = Opcode::BCond, .cond = cond, .target = target});
}

ProgramBuilder &
ProgramBuilder::call(const Program &view, FuncId callee, bool cap_branch)
{
    return callBlock(view.function(callee).entry, cap_branch);
}

ProgramBuilder &
ProgramBuilder::callBlock(BlockId entry, bool cap_branch)
{
    return emit(
        Inst{.op = Opcode::Bl, .target = entry, .capBranch = cap_branch});
}

ProgramBuilder &
ProgramBuilder::indirectCall(u8 cn, bool cap_branch)
{
    return emit(Inst{.op = Opcode::Blr, .rn = cn, .capBranch = cap_branch});
}

ProgramBuilder &
ProgramBuilder::ret(bool cap_branch)
{
    return emit(Inst{.op = Opcode::Ret, .rn = kRegLr, .capBranch = cap_branch});
}

ProgramBuilder &
ProgramBuilder::halt()
{
    return emit(Inst{.op = Opcode::Halt});
}

ProgramBuilder &
ProgramBuilder::brk()
{
    return emit(Inst{.op = Opcode::Brk});
}

Program
ProgramBuilder::finish(Addr code_base)
{
    program_.validate();
    program_.layout(code_base);
    return std::move(program_);
}

} // namespace cheri::isa
