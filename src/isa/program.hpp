/**
 * @file
 * A MorelloLite program: functions made of basic blocks, grouped into
 * "libraries" (link units). Library boundaries matter on Morello: a
 * purecap cross-library call installs new PCC bounds, which the N1
 * branch predictor does not track — the stall the purecap-benchmark
 * ABI exists to remove.
 */

#ifndef CHERI_ISA_PROGRAM_HPP
#define CHERI_ISA_PROGRAM_HPP

#include <string>
#include <vector>

#include "isa/inst.hpp"
#include "support/types.hpp"

namespace cheri::isa {

using FuncId = u32;
using LibId = u16;

/** A straight-line run of instructions ending in at most one branch. */
struct BasicBlock
{
    std::vector<Inst> insts;
    FuncId func = 0;    //!< Owning function.
    Addr address = 0;   //!< Assigned by Program::layout().
};

/** A function: entry block plus metadata. */
struct Function
{
    std::string name;
    BlockId entry = kNoBlock;
    LibId lib = 0;      //!< Link unit (0 = main executable).
};

/**
 * A complete program. Blocks are owned flat; functions and libraries
 * are metadata over them. Call layout() after construction to assign
 * code addresses (used by the I-cache/ITLB models and the binary-size
 * model).
 */
class Program
{
  public:
    /** Create a function; returns its id. */
    FuncId addFunction(std::string name, LibId lib = 0);

    /** Create an empty block inside @p func; returns its id. */
    BlockId addBlock(FuncId func);

    /** Set a function's entry block. */
    void setEntry(FuncId func, BlockId block);

    BasicBlock &block(BlockId id);
    const BasicBlock &block(BlockId id) const;
    Function &function(FuncId id);
    const Function &function(FuncId id) const;

    std::size_t blockCount() const { return blocks_.size(); }
    std::size_t functionCount() const { return funcs_.size(); }

    /** Library id of the function owning @p block. */
    LibId libOf(BlockId block) const;

    /**
     * Assign code addresses. Each library occupies a contiguous,
     * page-aligned region starting at @p code_base; blocks within a
     * library are laid out in creation order, 4 bytes per instruction.
     * Returns one past the highest assigned address.
     */
    Addr layout(Addr code_base = 0x10000);

    /** Total instruction count (static). */
    u64 staticInstCount() const;

    /** Basic validation: entries exist, targets in range. */
    void validate() const;

    /** Disassembly listing. */
    std::string disassemble() const;

  private:
    std::vector<BasicBlock> blocks_;
    std::vector<Function> funcs_;
};

} // namespace cheri::isa

#endif // CHERI_ISA_PROGRAM_HPP
