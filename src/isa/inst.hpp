/**
 * @file
 * The decoded instruction record and register names.
 */

#ifndef CHERI_ISA_INST_HPP
#define CHERI_ISA_INST_HPP

#include <string>

#include "isa/opcode.hpp"
#include "support/types.hpp"

namespace cheri::isa {

/** Register indices. X31/C31 reads as zero and ignores writes. */
inline constexpr u8 kRegZero = 31;
/** Frame pointer by convention. */
inline constexpr u8 kRegFp = 29;
/** Link register: BL/BLR write the return address/capability here. */
inline constexpr u8 kRegLr = 30;
/** Number of architectural registers (excluding PCC/DDC/CSP). */
inline constexpr u8 kNumRegs = 32;

/** Identifies a basic block within a Program. */
using BlockId = u32;
inline constexpr BlockId kNoBlock = ~0u;

/**
 * One decoded MorelloLite instruction. Fixed 4-byte footprint in the
 * simulated code image (Morello keeps the A64 fixed-width encoding).
 */
struct Inst
{
    Opcode op = Opcode::Nop;
    u8 rd = kRegZero;  //!< Destination register.
    u8 rn = kRegZero;  //!< First source.
    u8 rm = kRegZero;  //!< Second source.
    u8 ra = kRegZero;  //!< Third source (Madd accumulate).
    s64 imm = 0;       //!< Immediate operand / memory displacement.
    u8 size = 8;       //!< Memory access size in bytes (Ldr/Str).
    Cond cond = Cond::Eq; //!< Condition for BCond.
    BlockId target = kNoBlock; //!< Direct-branch target block.

    /**
     * For branches: true when this is the capability form (e.g. BLR
     * Cn, RET C30) that installs new PCC bounds. Under the
     * purecap-benchmark ABI the compiler emits the integer form
     * instead; under hybrid there are no capability branches at all.
     */
    bool capBranch = false;

    std::string toString() const;
};

} // namespace cheri::isa

#endif // CHERI_ISA_INST_HPP
