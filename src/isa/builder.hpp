/**
 * @file
 * Fluent construction of MorelloLite programs.
 *
 * The builder appends to a "current block"; control-flow helpers
 * create and switch blocks. Example:
 *
 * @code
 *   ProgramBuilder pb;
 *   auto f = pb.beginFunction("sum");
 *   pb.movImm(1, 0);             // x1 = 0 (accumulator)
 *   auto loop = pb.newBlock();
 *   pb.jump(loop);
 *   pb.atBlock(loop);
 *   ...
 * @endcode
 */

#ifndef CHERI_ISA_BUILDER_HPP
#define CHERI_ISA_BUILDER_HPP

#include <string>
#include <utility>

#include "isa/program.hpp"

namespace cheri::isa {

class ProgramBuilder
{
  public:
    /** Start a function (creates and selects its entry block). */
    FuncId beginFunction(std::string name, LibId lib = 0);

    /** Create a new (empty) block in the current function. */
    BlockId newBlock();

    /** Select the block subsequent instructions append to. */
    void atBlock(BlockId id);

    BlockId currentBlock() const { return current_; }

    /** Append an arbitrary instruction. */
    ProgramBuilder &emit(Inst inst);

    // Convenience emitters --------------------------------------------
    ProgramBuilder &nop();
    ProgramBuilder &movImm(u8 rd, s64 imm);
    ProgramBuilder &movReg(u8 rd, u8 rn);
    ProgramBuilder &add(u8 rd, u8 rn, u8 rm);
    ProgramBuilder &addImm(u8 rd, u8 rn, s64 imm);
    ProgramBuilder &sub(u8 rd, u8 rn, u8 rm);
    ProgramBuilder &subImm(u8 rd, u8 rn, s64 imm);
    ProgramBuilder &mul(u8 rd, u8 rn, u8 rm);
    ProgramBuilder &madd(u8 rd, u8 rn, u8 rm, u8 ra);
    ProgramBuilder &cmpImm(u8 rn, s64 imm);
    ProgramBuilder &cmp(u8 rn, u8 rm);
    ProgramBuilder &fadd(u8 rd, u8 rn, u8 rm);
    ProgramBuilder &fmul(u8 rd, u8 rn, u8 rm);

    ProgramBuilder &ldr(u8 rd, u8 rn, s64 offset, u8 size = 8);
    ProgramBuilder &str(u8 rd, u8 rn, s64 offset, u8 size = 8);
    ProgramBuilder &ldrCap(u8 cd, u8 cn, s64 offset);
    ProgramBuilder &strCap(u8 cd, u8 cn, s64 offset);

    ProgramBuilder &csetboundsImm(u8 cd, u8 cn, s64 length);
    ProgramBuilder &cincoffsetImm(u8 cd, u8 cn, s64 delta);
    ProgramBuilder &cmove(u8 cd, u8 cn);
    ProgramBuilder &cgetaddr(u8 rd, u8 cn);

    ProgramBuilder &jump(BlockId target);
    ProgramBuilder &branchCond(Cond cond, BlockId target);
    /** Direct call to a function's entry block. */
    ProgramBuilder &call(const Program &view, FuncId callee,
                         bool cap_branch);
    ProgramBuilder &callBlock(BlockId entry, bool cap_branch);
    ProgramBuilder &indirectCall(u8 cn, bool cap_branch);
    ProgramBuilder &ret(bool cap_branch);
    ProgramBuilder &halt();
    ProgramBuilder &brk();

    /** Access the program under construction. */
    Program &program() { return program_; }
    const Program &program() const { return program_; }

    /** Validate and hand over the finished program. */
    Program finish(Addr code_base = 0x10000);

  private:
    Program program_;
    FuncId currentFunc_ = 0;
    BlockId current_ = kNoBlock;
};

} // namespace cheri::isa

#endif // CHERI_ISA_BUILDER_HPP
