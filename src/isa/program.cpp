#include "isa/program.hpp"

#include <map>
#include <sstream>

#include "support/logging.hpp"

namespace cheri::isa {

FuncId
Program::addFunction(std::string name, LibId lib)
{
    funcs_.push_back(Function{std::move(name), kNoBlock, lib});
    return static_cast<FuncId>(funcs_.size() - 1);
}

BlockId
Program::addBlock(FuncId func)
{
    CHERI_ASSERT(func < funcs_.size(), "addBlock: bad function ", func);
    blocks_.push_back(BasicBlock{{}, func, 0});
    const BlockId id = static_cast<BlockId>(blocks_.size() - 1);
    if (funcs_[func].entry == kNoBlock)
        funcs_[func].entry = id;
    return id;
}

void
Program::setEntry(FuncId func, BlockId block)
{
    CHERI_ASSERT(func < funcs_.size(), "setEntry: bad function");
    CHERI_ASSERT(block < blocks_.size(), "setEntry: bad block");
    funcs_[func].entry = block;
}

BasicBlock &
Program::block(BlockId id)
{
    CHERI_ASSERT(id < blocks_.size(), "block: bad id ", id);
    return blocks_[id];
}

const BasicBlock &
Program::block(BlockId id) const
{
    CHERI_ASSERT(id < blocks_.size(), "block: bad id ", id);
    return blocks_[id];
}

Function &
Program::function(FuncId id)
{
    CHERI_ASSERT(id < funcs_.size(), "function: bad id ", id);
    return funcs_[id];
}

const Function &
Program::function(FuncId id) const
{
    CHERI_ASSERT(id < funcs_.size(), "function: bad id ", id);
    return funcs_[id];
}

LibId
Program::libOf(BlockId block_id) const
{
    return funcs_[block(block_id).func].lib;
}

Addr
Program::layout(Addr code_base)
{
    constexpr Addr kPage = 4096;

    // Group blocks by library, preserving creation order within each.
    std::map<LibId, std::vector<BlockId>> by_lib;
    for (BlockId id = 0; id < blocks_.size(); ++id)
        by_lib[libOf(id)].push_back(id);

    Addr cursor = code_base;
    for (auto &[lib, ids] : by_lib) {
        cursor = (cursor + kPage - 1) & ~(kPage - 1);
        for (BlockId id : ids) {
            blocks_[id].address = cursor;
            cursor += blocks_[id].insts.size() * 4;
        }
    }
    return cursor;
}

u64
Program::staticInstCount() const
{
    u64 total = 0;
    for (const auto &b : blocks_)
        total += b.insts.size();
    return total;
}

void
Program::validate() const
{
    for (const auto &f : funcs_)
        CHERI_ASSERT(f.entry != kNoBlock && f.entry < blocks_.size(),
                     "function '", f.name, "' has no entry block");
    for (const auto &b : blocks_) {
        CHERI_ASSERT(b.func < funcs_.size(), "block with bad function id");
        for (const auto &inst : b.insts) {
            if (isBranch(inst.op) && inst.target != kNoBlock)
                CHERI_ASSERT(inst.target < blocks_.size(),
                             "branch target out of range");
        }
    }
}

std::string
Program::disassemble() const
{
    std::ostringstream os;
    for (BlockId id = 0; id < blocks_.size(); ++id) {
        const BasicBlock &b = blocks_[id];
        const Function &f = funcs_[b.func];
        if (f.entry == id)
            os << f.name << ": (lib " << f.lib << ")\n";
        os << ".bb" << id << ":\n";
        for (const auto &inst : b.insts)
            os << "    " << inst.toString() << '\n';
    }
    return os.str();
}

} // namespace cheri::isa
