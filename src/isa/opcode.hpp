/**
 * @file
 * The MorelloLite instruction set.
 *
 * MorelloLite is a decoded-form, RISC-style ISA modelled on the subset
 * of Morello (ARMv8.2-A + CHERI) behaviour the paper's PMU analysis
 * observes: integer data processing, scalar FP, SIMD ("ASE"), loads
 * and stores of 1..8-byte scalars and 16-byte capabilities, capability
 * manipulation, and the branch taxonomy the Neoverse N1 PMU
 * distinguishes (immediate / indirect / return).
 *
 * Instructions are kept in decoded structural form (no binary
 * encoding): the simulator studies microarchitectural behaviour, not
 * instruction decoding.
 */

#ifndef CHERI_ISA_OPCODE_HPP
#define CHERI_ISA_OPCODE_HPP

#include "support/types.hpp"

namespace cheri::isa {

enum class Opcode : u8 {
    // Integer data processing.
    Nop,
    MovImm,   //!< rd = imm
    MovReg,   //!< rd = rn
    Add,      //!< rd = rn + rm
    AddImm,   //!< rd = rn + imm
    Sub,      //!< rd = rn - rm
    SubImm,
    And,
    Orr,
    Eor,
    Lsl,      //!< rd = rn << (imm & 63)
    Lsr,
    Mul,
    Madd,     //!< rd = ra + rn * rm (no capability-aware form on Morello)
    Udiv,
    Cmp,      //!< set flags from rn - rm
    CmpImm,

    // Scalar floating point (VFP_SPEC) — values modelled as u64 bits.
    FAdd,
    FMul,
    FMadd,
    FDiv,

    // Advanced SIMD (ASE_SPEC) — behaviour abstracted, timing counted.
    VAdd,
    VMul,
    VFma,
    VDot,     //!< quantized dot-product step (LLaMA.cpp proxy kernels)

    // Memory.
    Ldr,      //!< rd = mem[rn + imm], size bytes (1/2/4/8)
    Str,      //!< mem[rn + imm] = rd
    LdrCap,   //!< cd = mem[rn + imm], 16-byte tagged capability
    StrCap,

    // Capability manipulation (executes in the integer DP pipes).
    CSetBounds,      //!< cd = setBounds(cn, rm)
    CSetBoundsImm,   //!< cd = setBounds(cn, imm)
    CIncOffset,      //!< cd = cn.add(rm)
    CIncOffsetImm,
    CSetAddr,        //!< cd = cn.withAddress(rm)
    CAndPerm,
    CClearTag,
    CSeal,
    CUnseal,
    CGetBase,        //!< rd = cn.base()
    CGetLen,
    CGetTag,
    CGetAddr,
    CMove,
    /**
     * Materialize a code capability (or plain address under hybrid)
     * for a function: rd = &function(imm). Stands in for the
     * ADRP+ADD / GOT-load sequences real code uses.
     */
    LeaFunc,

    // Branches. Direct targets name a basic block; the call/return
    // variants exist in integer (B/BL/BR/RET) and capability
    // (PCC-bounds-installing) forms, selected by Inst::capBranch.
    B,        //!< unconditional, direct
    BCond,    //!< conditional, direct (cond in Inst::cond)
    Bl,       //!< direct call
    Br,       //!< indirect jump through register
    Blr,      //!< indirect call through register
    Ret,

    // System.
    Halt,     //!< stop simulation (normal exit)
    Brk,      //!< trap (abnormal exit)
};

/** Condition codes for BCond (subset of the A64 set). */
enum class Cond : u8 { Eq, Ne, Lt, Ge, Le, Gt };

/** Instruction class for PMU accounting (\*_SPEC events). */
enum class InstClass : u8 {
    Dp,       //!< integer data processing, incl. capability manipulation
    Vfp,      //!< scalar floating point
    Ase,      //!< advanced SIMD
    Load,
    Store,
    BranchImmed,
    BranchIndirect,
    BranchReturn,
    Other,
};

/** Map an opcode to its PMU instruction class (branch class depends on
 *  the opcode alone: Br/Blr are indirect, Ret is return).
 *
 * Inline: the pipeline classifies every DynOp it issues, so this and
 * isMemory() sit on the hottest per-op path in the simulator. */
inline InstClass
opcodeClass(Opcode op)
{
    switch (op) {
      case Opcode::Ldr:
      case Opcode::LdrCap:
        return InstClass::Load;
      case Opcode::Str:
      case Opcode::StrCap:
        return InstClass::Store;
      case Opcode::FAdd:
      case Opcode::FMul:
      case Opcode::FMadd:
      case Opcode::FDiv:
        return InstClass::Vfp;
      case Opcode::VAdd:
      case Opcode::VMul:
      case Opcode::VFma:
      case Opcode::VDot:
        return InstClass::Ase;
      case Opcode::B:
      case Opcode::BCond:
      case Opcode::Bl:
        return InstClass::BranchImmed;
      case Opcode::Br:
      case Opcode::Blr:
        return InstClass::BranchIndirect;
      case Opcode::Ret:
        return InstClass::BranchReturn;
      case Opcode::Halt:
      case Opcode::Brk:
        return InstClass::Other;
      default:
        return InstClass::Dp;
    }
}

/** True for opcodes that read or write memory. */
inline bool
isMemory(Opcode op)
{
    switch (op) {
      case Opcode::Ldr:
      case Opcode::Str:
      case Opcode::LdrCap:
      case Opcode::StrCap:
        return true;
      default:
        return false;
    }
}

/** True for capability-manipulation opcodes. */
bool isCapManip(Opcode op);

/** True for all branch opcodes. */
bool isBranch(Opcode op);

/** Mnemonic string. */
const char *opcodeName(Opcode op);

} // namespace cheri::isa

#endif // CHERI_ISA_OPCODE_HPP
