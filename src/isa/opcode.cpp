#include "isa/opcode.hpp"

#include "support/logging.hpp"

namespace cheri::isa {

bool
isCapManip(Opcode op)
{
    switch (op) {
      case Opcode::CSetBounds:
      case Opcode::CSetBoundsImm:
      case Opcode::CIncOffset:
      case Opcode::CIncOffsetImm:
      case Opcode::CSetAddr:
      case Opcode::CAndPerm:
      case Opcode::CClearTag:
      case Opcode::CSeal:
      case Opcode::CUnseal:
      case Opcode::CGetBase:
      case Opcode::CGetLen:
      case Opcode::CGetTag:
      case Opcode::CGetAddr:
      case Opcode::CMove:
        return true;
      default:
        return false;
    }
}

bool
isBranch(Opcode op)
{
    switch (op) {
      case Opcode::B:
      case Opcode::BCond:
      case Opcode::Bl:
      case Opcode::Br:
      case Opcode::Blr:
      case Opcode::Ret:
        return true;
      default:
        return false;
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::MovImm: return "mov";
      case Opcode::MovReg: return "mov";
      case Opcode::Add: return "add";
      case Opcode::AddImm: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::SubImm: return "sub";
      case Opcode::And: return "and";
      case Opcode::Orr: return "orr";
      case Opcode::Eor: return "eor";
      case Opcode::Lsl: return "lsl";
      case Opcode::Lsr: return "lsr";
      case Opcode::Mul: return "mul";
      case Opcode::Madd: return "madd";
      case Opcode::Udiv: return "udiv";
      case Opcode::Cmp: return "cmp";
      case Opcode::CmpImm: return "cmp";
      case Opcode::FAdd: return "fadd";
      case Opcode::FMul: return "fmul";
      case Opcode::FMadd: return "fmadd";
      case Opcode::FDiv: return "fdiv";
      case Opcode::VAdd: return "vadd";
      case Opcode::VMul: return "vmul";
      case Opcode::VFma: return "vfma";
      case Opcode::VDot: return "vdot";
      case Opcode::Ldr: return "ldr";
      case Opcode::Str: return "str";
      case Opcode::LdrCap: return "ldr.c";
      case Opcode::StrCap: return "str.c";
      case Opcode::CSetBounds: return "csetbounds";
      case Opcode::CSetBoundsImm: return "csetbounds";
      case Opcode::CIncOffset: return "cincoffset";
      case Opcode::CIncOffsetImm: return "cincoffset";
      case Opcode::CSetAddr: return "csetaddr";
      case Opcode::CAndPerm: return "candperm";
      case Opcode::CClearTag: return "ccleartag";
      case Opcode::CSeal: return "cseal";
      case Opcode::CUnseal: return "cunseal";
      case Opcode::CGetBase: return "cgetbase";
      case Opcode::CGetLen: return "cgetlen";
      case Opcode::CGetTag: return "cgettag";
      case Opcode::CGetAddr: return "cgetaddr";
      case Opcode::CMove: return "cmove";
      case Opcode::LeaFunc: return "lea.fn";
      case Opcode::B: return "b";
      case Opcode::BCond: return "b";
      case Opcode::Bl: return "bl";
      case Opcode::Br: return "br";
      case Opcode::Blr: return "blr";
      case Opcode::Ret: return "ret";
      case Opcode::Halt: return "halt";
      case Opcode::Brk: return "brk";
    }
    CHERI_PANIC("unknown opcode ", static_cast<int>(op));
}

} // namespace cheri::isa
