#include <sstream>

#include "isa/inst.hpp"

namespace cheri::isa {

namespace {

const char *
condName(Cond c)
{
    switch (c) {
      case Cond::Eq: return "eq";
      case Cond::Ne: return "ne";
      case Cond::Lt: return "lt";
      case Cond::Ge: return "ge";
      case Cond::Le: return "le";
      case Cond::Gt: return "gt";
    }
    return "??";
}

std::string
reg(u8 index, bool cap)
{
    if (index == kRegZero)
        return cap ? "czr" : "xzr";
    return (cap ? "c" : "x") + std::to_string(index);
}

} // namespace

std::string
Inst::toString() const
{
    std::ostringstream os;
    const bool cap_regs = isCapManip(op) || op == Opcode::LdrCap ||
                          op == Opcode::StrCap;
    os << opcodeName(op);
    if (op == Opcode::BCond)
        os << '.' << condName(cond);

    switch (op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::Brk:
        break;
      case Opcode::MovImm:
        os << ' ' << reg(rd, false) << ", #" << imm;
        break;
      case Opcode::MovReg:
      case Opcode::CMove:
      case Opcode::CClearTag:
      case Opcode::CGetBase:
      case Opcode::CGetLen:
      case Opcode::CGetTag:
      case Opcode::CGetAddr:
        os << ' ' << reg(rd, cap_regs) << ", " << reg(rn, cap_regs);
        break;
      case Opcode::AddImm:
      case Opcode::SubImm:
      case Opcode::Lsl:
      case Opcode::Lsr:
      case Opcode::CSetBoundsImm:
      case Opcode::CIncOffsetImm:
        os << ' ' << reg(rd, cap_regs) << ", " << reg(rn, cap_regs)
           << ", #" << imm;
        break;
      case Opcode::CmpImm:
        os << ' ' << reg(rn, false) << ", #" << imm;
        break;
      case Opcode::Cmp:
        os << ' ' << reg(rn, false) << ", " << reg(rm, false);
        break;
      case Opcode::Madd:
        os << ' ' << reg(rd, false) << ", " << reg(rn, false) << ", "
           << reg(rm, false) << ", " << reg(ra, false);
        break;
      case Opcode::Ldr:
      case Opcode::LdrCap:
        os << ' ' << reg(rd, cap_regs) << ", [" << reg(rn, true) << ", #"
           << imm << "]";
        break;
      case Opcode::Str:
      case Opcode::StrCap:
        os << ' ' << reg(rd, cap_regs) << ", [" << reg(rn, true) << ", #"
           << imm << "]";
        break;
      case Opcode::B:
      case Opcode::Bl:
      case Opcode::BCond:
        os << " .bb" << target;
        break;
      case Opcode::Br:
      case Opcode::Blr:
        os << ' ' << reg(rn, capBranch);
        break;
      case Opcode::Ret:
        os << ' ' << reg(rn == kRegZero ? kRegLr : rn, capBranch);
        break;
      default:
        os << ' ' << reg(rd, cap_regs) << ", " << reg(rn, cap_regs) << ", "
           << reg(rm, cap_regs);
        break;
    }
    return os.str();
}

} // namespace cheri::isa
