#include "support/socket.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace cheri::net {

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::setIoTimeout(u32 seconds)
{
    if (fd_ < 0)
        return;
    struct timeval tv;
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = 0;
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool
ListenSocket::listen(u16 port, std::string *error)
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sock_ = Socket(fd);

    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        if (error)
            *error = std::string("bind 127.0.0.1:") + std::to_string(port) +
                     ": " + std::strerror(errno);
        sock_.close();
        return false;
    }
    if (::listen(fd, 128) != 0) {
        if (error)
            *error = std::string("listen: ") + std::strerror(errno);
        sock_.close();
        return false;
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&addr), &len) !=
        0) {
        if (error)
            *error = std::string("getsockname: ") + std::strerror(errno);
        sock_.close();
        return false;
    }
    port_ = ntohs(addr.sin_port);
    return true;
}

std::optional<Socket>
ListenSocket::accept(int wake_fd)
{
    for (;;) {
        struct pollfd fds[2];
        fds[0].fd = sock_.fd();
        fds[0].events = POLLIN;
        fds[0].revents = 0;
        fds[1].fd = wake_fd;
        fds[1].events = POLLIN;
        fds[1].revents = 0;
        int n = ::poll(fds, wake_fd >= 0 ? 2 : 1, -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return std::nullopt;
        }
        if (wake_fd >= 0 && (fds[1].revents & POLLIN) != 0)
            return std::nullopt; // woken for shutdown
        if ((fds[0].revents & (POLLIN | POLLERR | POLLHUP)) == 0)
            continue;
        int fd = ::accept4(sock_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            return std::nullopt;
        }
        return Socket(fd);
    }
}

Socket
connectLoopback(u16 port, std::string *error)
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return Socket();
    }
    Socket sock(fd);

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = std::string("connect 127.0.0.1:") + std::to_string(port) +
                     ": " + std::strerror(errno);
        return Socket();
    }
    return sock;
}

bool
sendAll(Socket &sock, std::string_view data)
{
    const char *p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
        ssize_t n = ::send(sock.fd(), p, left, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    return true;
}

long
recvSome(Socket &sock, char *out, std::size_t max)
{
    for (;;) {
        ssize_t n = ::recv(sock.fd(), out, max, 0);
        if (n < 0 && errno == EINTR)
            continue;
        return static_cast<long>(n);
    }
}

bool
WakePipe::open()
{
    int fds[2];
    if (::pipe2(fds, O_CLOEXEC) != 0)
        return false;
    // The write end is poked from a signal handler: it must never block.
    int flags = ::fcntl(fds[1], F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fds[1], F_SETFL, flags | O_NONBLOCK);
    read_end = Socket(fds[0]);
    write_end = Socket(fds[1]);
    return true;
}

void
WakePipe::notify()
{
    if (!write_end.valid())
        return;
    char byte = 1;
    // Best effort: a full pipe already means a pending wakeup.
    [[maybe_unused]] ssize_t n = ::write(write_end.fd(), &byte, 1);
}

} // namespace cheri::net
