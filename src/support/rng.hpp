/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Everything in cheriperf that needs randomness takes an explicit
 * Xoshiro256StarStar so that simulations are bit-reproducible: identical
 * seeds yield identical instruction streams, memory traces and therefore
 * identical PMU counts across hosts and runs.
 */

#ifndef CHERI_SUPPORT_RNG_HPP
#define CHERI_SUPPORT_RNG_HPP

#include <array>

#include "support/types.hpp"

namespace cheri {

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain reference
 * implementation re-expressed in C++). Fast, 256-bit state, passes
 * BigCrush; more than adequate for workload synthesis.
 */
class Xoshiro256StarStar
{
  public:
    using result_type = u64;

    /** Seed via splitmix64 so that small seeds give good states. */
    explicit Xoshiro256StarStar(u64 seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    u64 next();

    u64 operator()() { return next(); }

    /** Uniform value in [0, bound), bias-free via rejection. */
    u64 nextBelow(u64 bound);

    /** Uniform value in [lo, hi] inclusive. */
    u64 nextRange(u64 lo, u64 hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /**
     * A draw from a truncated zipf-like distribution over [0, n).
     * Used for skewed key popularity in the SQL and interpreter proxies.
     */
    u64 nextZipf(u64 n, double skew);

    static constexpr u64 min() { return 0; }
    static constexpr u64 max() { return ~0ULL; }

  private:
    std::array<u64, 4> state_;
};

} // namespace cheri

#endif // CHERI_SUPPORT_RNG_HPP
