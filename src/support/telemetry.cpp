#include "support/telemetry.hpp"

#include <atomic>

namespace cheri::telemetry {

namespace {

struct Totals
{
    std::atomic<u64> data_fast{0};
    std::atomic<u64> data_full{0};
    std::atomic<u64> fetch_fast{0};
    std::atomic<u64> fetch_full{0};
    std::atomic<u64> uncore_fast{0};
    std::atomic<u64> uncore_full{0};
    std::atomic<u64> block_hits{0};
    std::atomic<u64> block_misses{0};
    std::atomic<u64> block_ops{0};
};

Totals &
totals()
{
    static Totals t;
    return t;
}

void
bump(std::atomic<u64> &slot, u64 n)
{
    if (n)
        slot.fetch_add(n, std::memory_order_relaxed);
}

} // namespace

void
addMemFastPath(u64 data_fast, u64 data_full, u64 fetch_fast, u64 fetch_full)
{
    Totals &t = totals();
    bump(t.data_fast, data_fast);
    bump(t.data_full, data_full);
    bump(t.fetch_fast, fetch_fast);
    bump(t.fetch_full, fetch_full);
}

void
addUncoreFastPath(u64 fast, u64 full)
{
    Totals &t = totals();
    bump(t.uncore_fast, fast);
    bump(t.uncore_full, full);
}

void
addBlockCache(u64 hits, u64 misses, u64 ops_replayed)
{
    Totals &t = totals();
    bump(t.block_hits, hits);
    bump(t.block_misses, misses);
    bump(t.block_ops, ops_replayed);
}

HotPathStats
snapshot()
{
    const Totals &t = totals();
    HotPathStats s;
    s.data_fast = t.data_fast.load(std::memory_order_relaxed);
    s.data_full = t.data_full.load(std::memory_order_relaxed);
    s.fetch_fast = t.fetch_fast.load(std::memory_order_relaxed);
    s.fetch_full = t.fetch_full.load(std::memory_order_relaxed);
    s.uncore_fast = t.uncore_fast.load(std::memory_order_relaxed);
    s.uncore_full = t.uncore_full.load(std::memory_order_relaxed);
    s.block_hits = t.block_hits.load(std::memory_order_relaxed);
    s.block_misses = t.block_misses.load(std::memory_order_relaxed);
    s.block_ops_replayed = t.block_ops.load(std::memory_order_relaxed);
    return s;
}

void
reset()
{
    Totals &t = totals();
    t.data_fast.store(0, std::memory_order_relaxed);
    t.data_full.store(0, std::memory_order_relaxed);
    t.fetch_fast.store(0, std::memory_order_relaxed);
    t.fetch_full.store(0, std::memory_order_relaxed);
    t.uncore_fast.store(0, std::memory_order_relaxed);
    t.uncore_full.store(0, std::memory_order_relaxed);
    t.block_hits.store(0, std::memory_order_relaxed);
    t.block_misses.store(0, std::memory_order_relaxed);
    t.block_ops.store(0, std::memory_order_relaxed);
}

void
report(std::FILE *out)
{
    const HotPathStats s = snapshot();
    const bool mem = s.data_fast + s.data_full + s.fetch_fast +
                         s.fetch_full + s.uncore_fast + s.uncore_full >
                     0;
    const bool blocks = s.block_hits + s.block_misses > 0;
    if (!mem && !blocks)
        return;
    std::fprintf(out, "[hotpath]\n");
    if (mem) {
        std::fprintf(out,
                     "  mem data    : %llu fast / %llu full (%.1f%% fast)\n",
                     static_cast<unsigned long long>(s.data_fast),
                     static_cast<unsigned long long>(s.data_full),
                     100.0 * s.dataCoverage());
        std::fprintf(out,
                     "  mem fetch   : %llu fast / %llu full (%.1f%% fast)\n",
                     static_cast<unsigned long long>(s.fetch_fast),
                     static_cast<unsigned long long>(s.fetch_full),
                     100.0 * s.fetchCoverage());
        std::fprintf(out, "  uncore      : %llu fast / %llu full\n",
                     static_cast<unsigned long long>(s.uncore_fast),
                     static_cast<unsigned long long>(s.uncore_full));
    }
    if (blocks)
        std::fprintf(
            out,
            "  block cache : %llu hits / %llu misses (%.1f%% hit), "
            "%llu ops replayed\n",
            static_cast<unsigned long long>(s.block_hits),
            static_cast<unsigned long long>(s.block_misses),
            100.0 * s.blockHitRate(),
            static_cast<unsigned long long>(s.block_ops_replayed));
}

} // namespace cheri::telemetry
