#include "support/telemetry.hpp"

#include <algorithm>
#include <atomic>

namespace cheri::telemetry {

namespace {

struct Totals
{
    std::atomic<u64> data_fast{0};
    std::atomic<u64> data_full{0};
    std::atomic<u64> fetch_fast{0};
    std::atomic<u64> fetch_full{0};
    std::atomic<u64> uncore_fast{0};
    std::atomic<u64> uncore_full{0};
    std::atomic<u64> block_hits{0};
    std::atomic<u64> block_misses{0};
    std::atomic<u64> block_ops{0};
    std::atomic<u64> chain_hits{0};
    std::atomic<u64> chain_misses{0};
    std::atomic<u64> batch_calls{0};
    std::atomic<u64> batch_ops{0};

    struct CoreSlice
    {
        std::atomic<u64> data_fast{0};
        std::atomic<u64> data_full{0};
        std::atomic<u64> fetch_fast{0};
        std::atomic<u64> fetch_full{0};
    };
    CoreSlice cores[kMaxCoreSlices];
};

Totals &
totals()
{
    static Totals t;
    return t;
}

void
bump(std::atomic<u64> &slot, u64 n)
{
    if (n)
        slot.fetch_add(n, std::memory_order_relaxed);
}

u32
sliceFor(u32 core)
{
    return std::min(core, kMaxCoreSlices - 1);
}

} // namespace

void
addMemFastPath(u64 data_fast, u64 data_full, u64 fetch_fast, u64 fetch_full,
               u32 core)
{
    Totals &t = totals();
    bump(t.data_fast, data_fast);
    bump(t.data_full, data_full);
    bump(t.fetch_fast, fetch_fast);
    bump(t.fetch_full, fetch_full);
    Totals::CoreSlice &slice = t.cores[sliceFor(core)];
    bump(slice.data_fast, data_fast);
    bump(slice.data_full, data_full);
    bump(slice.fetch_fast, fetch_fast);
    bump(slice.fetch_full, fetch_full);
}

void
addUncoreFastPath(u64 fast, u64 full)
{
    Totals &t = totals();
    bump(t.uncore_fast, fast);
    bump(t.uncore_full, full);
}

void
addBlockCache(u64 hits, u64 misses, u64 ops_replayed)
{
    Totals &t = totals();
    bump(t.block_hits, hits);
    bump(t.block_misses, misses);
    bump(t.block_ops, ops_replayed);
}

void
addBlockChain(u64 hits, u64 misses)
{
    Totals &t = totals();
    bump(t.chain_hits, hits);
    bump(t.chain_misses, misses);
}

void
addBatchIssue(u64 calls, u64 ops)
{
    Totals &t = totals();
    bump(t.batch_calls, calls);
    bump(t.batch_ops, ops);
}

HotPathStats
snapshot()
{
    const Totals &t = totals();
    HotPathStats s;
    s.data_fast = t.data_fast.load(std::memory_order_relaxed);
    s.data_full = t.data_full.load(std::memory_order_relaxed);
    s.fetch_fast = t.fetch_fast.load(std::memory_order_relaxed);
    s.fetch_full = t.fetch_full.load(std::memory_order_relaxed);
    s.uncore_fast = t.uncore_fast.load(std::memory_order_relaxed);
    s.uncore_full = t.uncore_full.load(std::memory_order_relaxed);
    s.block_hits = t.block_hits.load(std::memory_order_relaxed);
    s.block_misses = t.block_misses.load(std::memory_order_relaxed);
    s.block_ops_replayed = t.block_ops.load(std::memory_order_relaxed);
    s.chain_hits = t.chain_hits.load(std::memory_order_relaxed);
    s.chain_misses = t.chain_misses.load(std::memory_order_relaxed);
    s.batch_calls = t.batch_calls.load(std::memory_order_relaxed);
    s.batch_ops = t.batch_ops.load(std::memory_order_relaxed);
    return s;
}

CoreMemStats
coreSnapshot(u32 core)
{
    const Totals::CoreSlice &slice = totals().cores[sliceFor(core)];
    CoreMemStats s;
    s.data_fast = slice.data_fast.load(std::memory_order_relaxed);
    s.data_full = slice.data_full.load(std::memory_order_relaxed);
    s.fetch_fast = slice.fetch_fast.load(std::memory_order_relaxed);
    s.fetch_full = slice.fetch_full.load(std::memory_order_relaxed);
    return s;
}

void
reset()
{
    Totals &t = totals();
    t.data_fast.store(0, std::memory_order_relaxed);
    t.data_full.store(0, std::memory_order_relaxed);
    t.fetch_fast.store(0, std::memory_order_relaxed);
    t.fetch_full.store(0, std::memory_order_relaxed);
    t.uncore_fast.store(0, std::memory_order_relaxed);
    t.uncore_full.store(0, std::memory_order_relaxed);
    t.block_hits.store(0, std::memory_order_relaxed);
    t.block_misses.store(0, std::memory_order_relaxed);
    t.block_ops.store(0, std::memory_order_relaxed);
    t.chain_hits.store(0, std::memory_order_relaxed);
    t.chain_misses.store(0, std::memory_order_relaxed);
    t.batch_calls.store(0, std::memory_order_relaxed);
    t.batch_ops.store(0, std::memory_order_relaxed);
    for (auto &slice : t.cores) {
        slice.data_fast.store(0, std::memory_order_relaxed);
        slice.data_full.store(0, std::memory_order_relaxed);
        slice.fetch_fast.store(0, std::memory_order_relaxed);
        slice.fetch_full.store(0, std::memory_order_relaxed);
    }
}

void
report(std::FILE *out)
{
    const HotPathStats s = snapshot();
    const bool mem = s.data_fast + s.data_full + s.fetch_fast +
                         s.fetch_full + s.uncore_fast + s.uncore_full >
                     0;
    const bool blocks = s.block_hits + s.block_misses > 0;
    const bool chain = s.chain_hits + s.chain_misses > 0;
    const bool batch = s.batch_calls > 0;
    if (!mem && !blocks && !chain && !batch)
        return;
    std::fprintf(out, "[hotpath]\n");
    if (mem) {
        std::fprintf(out,
                     "  mem data    : %llu fast / %llu full (%.1f%% fast)\n",
                     static_cast<unsigned long long>(s.data_fast),
                     static_cast<unsigned long long>(s.data_full),
                     100.0 * s.dataCoverage());
        std::fprintf(out,
                     "  mem fetch   : %llu fast / %llu full (%.1f%% fast)\n",
                     static_cast<unsigned long long>(s.fetch_fast),
                     static_cast<unsigned long long>(s.fetch_full),
                     100.0 * s.fetchCoverage());
        std::fprintf(out, "  uncore      : %llu fast / %llu full\n",
                     static_cast<unsigned long long>(s.uncore_fast),
                     static_cast<unsigned long long>(s.uncore_full));
        // Per-core attribution only when more than one core was active
        // (a co-run); solo runs would just repeat the totals.
        u32 active = 0;
        for (u32 c = 0; c < kMaxCoreSlices; ++c) {
            const CoreMemStats cs = coreSnapshot(c);
            if (cs.data_fast + cs.data_full + cs.fetch_fast +
                    cs.fetch_full >
                0)
                ++active;
        }
        if (active > 1) {
            for (u32 c = 0; c < kMaxCoreSlices; ++c) {
                const CoreMemStats cs = coreSnapshot(c);
                const u64 data = cs.data_fast + cs.data_full;
                const u64 fetch = cs.fetch_fast + cs.fetch_full;
                if (data + fetch == 0)
                    continue;
                const double dcov =
                    data ? 100.0 * static_cast<double>(cs.data_fast) /
                               static_cast<double>(data)
                         : 0.0;
                const double fcov =
                    fetch ? 100.0 * static_cast<double>(cs.fetch_fast) /
                                static_cast<double>(fetch)
                          : 0.0;
                std::fprintf(out,
                             "    core %u    : data %.1f%% fast, "
                             "fetch %.1f%% fast\n",
                             c, dcov, fcov);
            }
        }
    }
    if (blocks)
        std::fprintf(
            out,
            "  block cache : %llu hits / %llu misses (%.1f%% hit), "
            "%llu ops replayed\n",
            static_cast<unsigned long long>(s.block_hits),
            static_cast<unsigned long long>(s.block_misses),
            100.0 * s.blockHitRate(),
            static_cast<unsigned long long>(s.block_ops_replayed));
    if (chain)
        std::fprintf(
            out,
            "  block chain : %llu chained / %llu probed (%.1f%% chained)\n",
            static_cast<unsigned long long>(s.chain_hits),
            static_cast<unsigned long long>(s.chain_misses),
            100.0 * s.chainHitRate());
    if (batch)
        std::fprintf(out,
                     "  batch issue : %llu calls, %llu ops (%.1f ops/call)\n",
                     static_cast<unsigned long long>(s.batch_calls),
                     static_cast<unsigned long long>(s.batch_ops),
                     s.opsPerBatch());
}

} // namespace cheri::telemetry
