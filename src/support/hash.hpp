/**
 * @file
 * Streaming FNV-1a content hashing for fingerprinting experiment
 * cells (workload + ABI + scale + seed + every machine knob). Not
 * cryptographic — collision resistance only has to beat the handful
 * of thousands of distinct configurations a sweep campaign produces,
 * and every cache entry echoes its full key for verification anyway.
 */

#ifndef CHERI_SUPPORT_HASH_HPP
#define CHERI_SUPPORT_HASH_HPP

#include <cstring>
#include <string>
#include <string_view>

#include "support/types.hpp"

namespace cheri {

/** Streaming 64-bit FNV-1a hasher. */
class Fnv1a
{
  public:
    static constexpr u64 kOffsetBasis = 1469598103934665603ULL;
    static constexpr u64 kPrime = 1099511628211ULL;

    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= kPrime;
        }
    }

    Fnv1a &
    add(u64 value)
    {
        bytes(&value, sizeof(value));
        return *this;
    }

    /** Hash a double through its bit pattern (exact, not rounded). */
    Fnv1a &
    add(double value)
    {
        u64 bits;
        static_assert(sizeof(bits) == sizeof(value));
        std::memcpy(&bits, &value, sizeof(bits));
        return add(bits);
    }

    Fnv1a &
    add(bool value)
    {
        return add(static_cast<u64>(value ? 1 : 0));
    }

    /** Length-prefixed so "ab","c" and "a","bc" hash differently. */
    Fnv1a &
    add(std::string_view text)
    {
        add(static_cast<u64>(text.size()));
        bytes(text.data(), text.size());
        return *this;
    }

    u64 value() const { return hash_; }

  private:
    u64 hash_ = kOffsetBasis;
};

/** Lower-case 16-digit hex of a 64-bit hash (cache file names). */
std::string toHex64(u64 value);

} // namespace cheri

#endif // CHERI_SUPPORT_HASH_HPP
