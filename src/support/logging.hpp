/**
 * @file
 * Status-message and error helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant of the simulator itself was violated.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments).
 * warn()   - something works well enough but deserves attention.
 * inform() - a neutral status message.
 */

#ifndef CHERI_SUPPORT_LOGGING_HPP
#define CHERI_SUPPORT_LOGGING_HPP

#include <sstream>
#include <string>

namespace cheri {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &message);
void warnImpl(const std::string &message);
void informImpl(const std::string &message);

/** Enable or disable inform()/warn() output (tests silence it). */
void setLogQuiet(bool quiet);
bool logQuiet();

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
formatAll(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

} // namespace cheri

#define CHERI_PANIC(...) \
    ::cheri::panicImpl(__FILE__, __LINE__, \
                       ::cheri::detail::formatAll(__VA_ARGS__))

#define CHERI_FATAL(...) \
    ::cheri::fatalImpl(__FILE__, __LINE__, \
                       ::cheri::detail::formatAll(__VA_ARGS__))

#define CHERI_WARN(...) \
    ::cheri::warnImpl(::cheri::detail::formatAll(__VA_ARGS__))

#define CHERI_INFORM(...) \
    ::cheri::informImpl(::cheri::detail::formatAll(__VA_ARGS__))

/** Internal-consistency check that survives NDEBUG builds. */
#define CHERI_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            CHERI_PANIC("assertion failed: " #cond " ", \
                        ::cheri::detail::formatAll(__VA_ARGS__)); \
        } \
    } while (0)

#endif // CHERI_SUPPORT_LOGGING_HPP
