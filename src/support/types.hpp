/**
 * @file
 * Fundamental scalar type aliases shared across the cheriperf libraries.
 */

#ifndef CHERI_SUPPORT_TYPES_HPP
#define CHERI_SUPPORT_TYPES_HPP

#include <cstddef>
#include <cstdint>

namespace cheri {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

/** A simulated virtual (or physical) byte address. */
using Addr = u64;

/** A count of processor clock cycles. */
using Cycles = u64;

/** Number of bytes in one kibibyte / mebibyte. */
inline constexpr u64 kKiB = 1024;
inline constexpr u64 kMiB = 1024 * kKiB;

} // namespace cheri

#endif // CHERI_SUPPORT_TYPES_HPP
