/**
 * @file
 * Small statistics helpers used by the analysis library and the
 * benchmark harnesses: means, deviations, geometric means, Pearson
 * correlation and a streaming accumulator.
 */

#ifndef CHERI_SUPPORT_STATS_HPP
#define CHERI_SUPPORT_STATS_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace cheri {

/** Arithmetic mean; 0 for an empty span. */
double mean(std::span<const double> xs);

/** Sample standard deviation (n-1 denominator); 0 if fewer than 2. */
double stdev(std::span<const double> xs);

/** Geometric mean; requires strictly positive inputs. */
double geomean(std::span<const double> xs);

/** Pearson correlation coefficient; 0 if either side is constant. */
double pearson(std::span<const double> xs, std::span<const double> ys);

/** Median (of a copy); 0 for an empty span. */
double median(std::span<const double> xs);

/**
 * Welford-style streaming accumulator for means/variances of metric
 * samples collected across repeated simulation runs.
 */
class OnlineStats
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stdev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Coefficient of variation (stdev / mean); 0 when mean is 0. */
    double cov() const;

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace cheri

#endif // CHERI_SUPPORT_STATS_HPP
