/**
 * @file
 * Plain-text table and CSV rendering used by the benchmark harnesses to
 * print paper-shaped tables (Table 2/3/4, Figures 1-7 series data).
 */

#ifndef CHERI_SUPPORT_TABLE_HPP
#define CHERI_SUPPORT_TABLE_HPP

#include <string>
#include <vector>

namespace cheri {

/**
 * A simple column-aligned ASCII table. Cells are strings; numeric
 * convenience overloads format with a fixed precision.
 */
class AsciiTable
{
  public:
    explicit AsciiTable(std::vector<std::string> headers);

    /** Begin a new row. */
    void beginRow();

    /** Append one cell to the current row. */
    void cell(std::string text);
    void cell(double value, int precision = 3);
    void cell(long long value);
    void cell(unsigned long long value);

    /** Convenience: add a complete row at once. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment and a header separator. */
    std::string render() const;

    /** Render as CSV (no alignment, comma-separated, quoted as needed). */
    std::string renderCsv() const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (helper for table cells). */
std::string formatFixed(double value, int precision);

/** Format a ratio as a percentage string, e.g. 0.1234 -> "12.34". */
std::string formatPercent(double ratio, int precision = 2);

} // namespace cheri

#endif // CHERI_SUPPORT_TABLE_HPP
