#include "support/serialize.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/logging.hpp"

namespace cheri {

void
RecordWriter::field(std::string_view key, std::string_view value)
{
    CHERI_ASSERT(!key.empty(), "record field needs a key");
    CHERI_ASSERT(key.find_first_of(" \n") == std::string_view::npos,
                 "record key must not contain spaces/newlines: ", key);
    CHERI_ASSERT(value.find('\n') == std::string_view::npos,
                 "record value must be single-line under key ", key);
    text_.append(key);
    text_.push_back(' ');
    text_.append(value);
    text_.push_back('\n');
}

void
RecordWriter::field(std::string_view key, u64 value)
{
    field(key, std::to_string(value));
}

RecordReader::RecordReader(std::string_view text)
{
    if (text.empty() || text.back() != '\n')
        return;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const std::string_view line = text.substr(pos, eol - pos);
        pos = eol + 1;
        const std::size_t sep = line.find(' ');
        if (sep == 0 || sep == std::string_view::npos)
            return; // Empty key or no separator: not a record.
        entries_.emplace_back(std::string(line.substr(0, sep)),
                              std::string(line.substr(sep + 1)));
    }
    ok_ = true;
}

std::optional<std::string>
RecordReader::find(std::string_view key) const
{
    for (const auto &[k, v] : entries_)
        if (k == key)
            return v;
    return std::nullopt;
}

std::optional<u64>
RecordReader::findU64(std::string_view key) const
{
    const auto value = find(key);
    if (!value)
        return std::nullopt;
    return parseU64(*value);
}

std::optional<u64>
parseU64(std::string_view text)
{
    if (text.empty() || text.size() > 20)
        return std::nullopt;
    u64 out = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return std::nullopt;
        const u64 digit = static_cast<u64>(c - '0');
        if (out > (~0ULL - digit) / 10)
            return std::nullopt; // Overflow.
        out = out * 10 + digit;
    }
    return out;
}

std::optional<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof())
        return std::nullopt;
    return buffer.str();
}

bool
writeFileAtomic(const std::string &path, std::string_view content)
{
    namespace fs = std::filesystem;
    static std::atomic<u64> sequence{0};
    std::error_code ec;

    const fs::path target(path);
    if (target.has_parent_path()) {
        fs::create_directories(target.parent_path(), ec);
        if (ec)
            return false;
    }

    const fs::path tmp =
        target.parent_path() /
        (target.filename().string() + ".tmp" +
         std::to_string(sequence.fetch_add(1)));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        if (!out.good())
            return false;
    }
    fs::rename(tmp, target, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace cheri
