/**
 * @file
 * Minimal line-oriented record serialization plus atomic file IO —
 * the storage layer under the runner's on-disk result cache.
 *
 * A record is a sequence of "key value\n" lines; keys may repeat
 * (the cache uses one line per PMU event). The format is trivially
 * greppable and diffable, and the reader treats any malformed input
 * as "not a record" rather than guessing — corruption must degrade
 * to a cache miss, never to a wrong result.
 */

#ifndef CHERI_SUPPORT_SERIALIZE_HPP
#define CHERI_SUPPORT_SERIALIZE_HPP

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/types.hpp"

namespace cheri {

/** Append-only "key value" line writer. */
class RecordWriter
{
  public:
    /** @p value must not contain newlines; keys must be non-empty. */
    void field(std::string_view key, std::string_view value);
    void field(std::string_view key, u64 value);

    const std::string &text() const { return text_; }

  private:
    std::string text_;
};

/** Parsed record: ordered key/value pairs with lookup helpers. */
class RecordReader
{
  public:
    /**
     * Parse @p text. ok() is false when any line is not a
     * "key value" pair (missing separator, empty key, or the record
     * does not end in a newline).
     */
    explicit RecordReader(std::string_view text);

    bool ok() const { return ok_; }

    /** First value under @p key; nullopt when absent. */
    std::optional<std::string> find(std::string_view key) const;

    /** find() parsed as decimal u64; nullopt when absent/garbled. */
    std::optional<u64> findU64(std::string_view key) const;

    const std::vector<std::pair<std::string, std::string>> &
    entries() const
    {
        return entries_;
    }

  private:
    bool ok_ = false;
    std::vector<std::pair<std::string, std::string>> entries_;
};

/** Parse a full decimal u64; nullopt on any trailing garbage. */
std::optional<u64> parseU64(std::string_view text);

/** Whole-file read; nullopt when unreadable. */
std::optional<std::string> readFile(const std::string &path);

/**
 * Write @p content to @p path via a unique temp file + rename, so
 * concurrent readers (and writers racing on the same key) only ever
 * observe complete records. Returns false on any filesystem error.
 */
bool writeFileAtomic(const std::string &path, std::string_view content);

} // namespace cheri

#endif // CHERI_SUPPORT_SERIALIZE_HPP
