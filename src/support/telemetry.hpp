/**
 * @file
 * Process-wide hot-path self-statistics.
 *
 * The decoded-block cache, the chained execution loop, the batched
 * pipeline issue path and the memory fast path keep per-instance
 * plain counters on their own hot paths (no atomics, no sharing).
 * Each owner flushes *deltas* here at run boundaries — sim::Core::
 * finalize() for the memory hierarchy and chain stats, PipelineModel::
 * finish() for batch-issue stats, decode time for block-cache misses —
 * with the destructor flushing any remainder. Flushing per run (not
 * only on destruction) keeps the totals attributable: a BlockCache or
 * Machine shared across runs contributes each run's work inside that
 * run's snapshot window, so `--trace=profile` coverage numbers and
 * the bench harness's per-phase reset()/snapshot() brackets see
 * exactly the work of their own phase.
 *
 * Memory fast-path counters are additionally sliced per core id so a
 * co-run's lanes are individually attributable.
 *
 * Telemetry is observational only: nothing model-visible reads it,
 * so it can never perturb simulated counts or cycles.
 */

#ifndef CHERI_SUPPORT_TELEMETRY_HPP
#define CHERI_SUPPORT_TELEMETRY_HPP

#include <cstdio>

#include "support/types.hpp"

namespace cheri::telemetry {

/** Per-core ids at or above this alias into the last slice. */
constexpr u32 kMaxCoreSlices = 8;

/** Snapshot of the process-wide hot-path totals. */
struct HotPathStats
{
    // mem::PrivateHierarchy data()/fetch() inline-cache replays vs
    // full hierarchy walks.
    u64 data_fast = 0;
    u64 data_full = 0;
    u64 fetch_fast = 0;
    u64 fetch_full = 0;
    // mem::Uncore MRU replays vs full LLC lookups.
    u64 uncore_fast = 0;
    u64 uncore_full = 0;
    // sim::BlockCache decoded-block lookups.
    u64 block_hits = 0;
    u64 block_misses = 0;
    u64 block_ops_replayed = 0; //!< DynOps issued from cached blocks.
    // sim::Core chained-trace execution: block→block transitions
    // resolved through successor links vs those needing the pc→block
    // hash probe (indirect-memo misses and chain-disabled runs).
    u64 chain_hits = 0;
    u64 chain_misses = 0;
    // uarch::PipelineModel::issueBlock batched path.
    u64 batch_calls = 0; //!< issueBlock calls that took the batch path.
    u64 batch_ops = 0;   //!< DynOps retired through those calls.

    double
    dataCoverage() const
    {
        const u64 total = data_fast + data_full;
        return total ? static_cast<double>(data_fast) / total : 0.0;
    }
    double
    fetchCoverage() const
    {
        const u64 total = fetch_fast + fetch_full;
        return total ? static_cast<double>(fetch_fast) / total : 0.0;
    }
    double
    blockHitRate() const
    {
        const u64 total = block_hits + block_misses;
        return total ? static_cast<double>(block_hits) / total : 0.0;
    }
    double
    chainHitRate() const
    {
        const u64 total = chain_hits + chain_misses;
        return total ? static_cast<double>(chain_hits) / total : 0.0;
    }
    double
    opsPerBatch() const
    {
        return batch_calls ? static_cast<double>(batch_ops) / batch_calls
                           : 0.0;
    }
};

/** One core's slice of the memory fast-path counters. */
struct CoreMemStats
{
    u64 data_fast = 0;
    u64 data_full = 0;
    u64 fetch_fast = 0;
    u64 fetch_full = 0;
};

/**
 * Flush one memory hierarchy's counter deltas, attributed to
 * @p core (sim::Core::finalize() per run; PrivateHierarchy dtor for
 * the remainder).
 */
void addMemFastPath(u64 data_fast, u64 data_full, u64 fetch_fast,
                    u64 fetch_full, u32 core = 0);

/** Flush one uncore's counters (Uncore dtor). */
void addUncoreFastPath(u64 fast, u64 full);

/** Flush one block cache's counter deltas. */
void addBlockCache(u64 hits, u64 misses, u64 ops_replayed);

/** Flush one run's chained-execution transition counters. */
void addBlockChain(u64 hits, u64 misses);

/** Flush one pipeline's batched-issue counter deltas. */
void addBatchIssue(u64 calls, u64 ops);

/** Read the current totals. */
HotPathStats snapshot();

/** Read one core's memory fast-path slice. */
CoreMemStats coreSnapshot(u32 core);

/** Zero the totals (tests and the bench harness between phases). */
void reset();

/** Human-readable dump (the --profile report), if any activity. */
void report(std::FILE *out);

} // namespace cheri::telemetry

#endif // CHERI_SUPPORT_TELEMETRY_HPP
