/**
 * @file
 * Process-wide hot-path self-statistics.
 *
 * The decoded-block cache and the memory fast path keep per-instance
 * plain counters on their own hot paths (no atomics, no sharing);
 * each instance flushes them here exactly once, from its destructor,
 * into process-wide atomic totals. `--profile` prints the aggregate
 * next to the wall-clock profiler so a sweep reports its own
 * block-cache hit rate and fast-path coverage, and the bench
 * harness (tools/bench_throughput) emits the same numbers into
 * BENCH_throughput.json.
 *
 * Telemetry is observational only: nothing model-visible reads it,
 * so it can never perturb simulated counts or cycles.
 */

#ifndef CHERI_SUPPORT_TELEMETRY_HPP
#define CHERI_SUPPORT_TELEMETRY_HPP

#include <cstdio>

#include "support/types.hpp"

namespace cheri::telemetry {

/** Snapshot of the process-wide hot-path totals. */
struct HotPathStats
{
    // mem::PrivateHierarchy data()/fetch() fast-path replays vs full
    // hierarchy walks.
    u64 data_fast = 0;
    u64 data_full = 0;
    u64 fetch_fast = 0;
    u64 fetch_full = 0;
    // mem::Uncore MRU replays vs full LLC lookups.
    u64 uncore_fast = 0;
    u64 uncore_full = 0;
    // sim::BlockCache decoded-block lookups.
    u64 block_hits = 0;
    u64 block_misses = 0;
    u64 block_ops_replayed = 0; //!< DynOps issued from cached blocks.

    double
    dataCoverage() const
    {
        const u64 total = data_fast + data_full;
        return total ? static_cast<double>(data_fast) / total : 0.0;
    }
    double
    fetchCoverage() const
    {
        const u64 total = fetch_fast + fetch_full;
        return total ? static_cast<double>(fetch_fast) / total : 0.0;
    }
    double
    blockHitRate() const
    {
        const u64 total = block_hits + block_misses;
        return total ? static_cast<double>(block_hits) / total : 0.0;
    }
};

/** Flush one memory hierarchy's counters (PrivateHierarchy dtor). */
void addMemFastPath(u64 data_fast, u64 data_full, u64 fetch_fast,
                    u64 fetch_full);

/** Flush one uncore's counters (Uncore dtor). */
void addUncoreFastPath(u64 fast, u64 full);

/** Flush one block cache's counters (BlockCache dtor). */
void addBlockCache(u64 hits, u64 misses, u64 ops_replayed);

/** Read the current totals. */
HotPathStats snapshot();

/** Zero the totals (tests and the bench harness between phases). */
void reset();

/** Human-readable dump (the --profile report), if any activity. */
void report(std::FILE *out);

} // namespace cheri::telemetry

#endif // CHERI_SUPPORT_TELEMETRY_HPP
