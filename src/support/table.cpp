#include "support/table.hpp"

#include <algorithm>
#include <sstream>

#include "support/fmt.hpp"
#include "support/logging.hpp"

namespace cheri {

std::string
formatFixed(double value, int precision)
{
    return fmt::fixed(value, precision);
}

std::string
formatPercent(double ratio, int precision)
{
    return formatFixed(ratio * 100.0, precision);
}

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    CHERI_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
AsciiTable::beginRow()
{
    rows_.emplace_back();
}

void
AsciiTable::cell(std::string text)
{
    CHERI_ASSERT(!rows_.empty(), "cell() before beginRow()");
    CHERI_ASSERT(rows_.back().size() < headers_.size(),
                 "row has more cells than headers");
    rows_.back().push_back(std::move(text));
}

void
AsciiTable::cell(double value, int precision)
{
    cell(formatFixed(value, precision));
}

void
AsciiTable::cell(long long value)
{
    cell(std::to_string(value));
}

void
AsciiTable::cell(unsigned long long value)
{
    cell(std::to_string(value));
}

void
AsciiTable::addRow(std::vector<std::string> cells)
{
    CHERI_ASSERT(cells.size() <= headers_.size(),
                 "row has more cells than headers");
    rows_.push_back(std::move(cells));
}

std::string
AsciiTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](std::ostringstream &os,
                        const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &text = c < cells.size() ? cells[c] : "";
            os << text;
            if (c + 1 < headers_.size())
                os << std::string(widths[c] - text.size() + 2, ' ');
        }
        os << '\n';
    };

    std::ostringstream os;
    emit_row(os, headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(os, row);
    return os.str();
}

std::string
AsciiTable::renderCsv() const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << quote(cells[c]);
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

} // namespace cheri
