/**
 * @file
 * The one place numeric text formatting lives.
 *
 * Every golden-checked surface (sweep/corun CSV, JSONL traces,
 * make_report tables, the interference matrix) must round and print
 * doubles identically, or byte-level diffs against committed goldens
 * turn into noise. These helpers all reduce to snprintf("%.*f") with
 * a fixed precision — never locale-, width- or build-dependent — so
 * routing a call site through them cannot change its bytes, only pin
 * them.
 */

#ifndef CHERI_SUPPORT_FMT_HPP
#define CHERI_SUPPORT_FMT_HPP

#include <string>

namespace cheri::fmt {

/** "%.*f" with @p precision digits; the primitive under the rest. */
std::string fixed(double value, int precision);

/** Derived-metric precision (CSV metric columns, JSONL doubles). */
std::string metric(double value);

/** Model-seconds precision (CSV "seconds" columns). */
std::string seconds(double value);

/** Ratio/share precision (top-down fractions, interference "x"). */
std::string ratio(double value);

} // namespace cheri::fmt

#endif // CHERI_SUPPORT_FMT_HPP
