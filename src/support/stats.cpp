#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace cheri {

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stdev(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double
geomean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double logsum = 0.0;
    for (double x : xs) {
        CHERI_ASSERT(x > 0.0, "geomean requires positive values, got ", x);
        logsum += std::log(x);
    }
    return std::exp(logsum / static_cast<double>(xs.size()));
}

double
pearson(std::span<const double> xs, std::span<const double> ys)
{
    CHERI_ASSERT(xs.size() == ys.size(), "pearson size mismatch");
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
median(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    std::vector<double> copy(xs.begin(), xs.end());
    std::sort(copy.begin(), copy.end());
    const std::size_t n = copy.size();
    if (n % 2 == 1)
        return copy[n / 2];
    return 0.5 * (copy[n / 2 - 1] + copy[n / 2]);
}

void
OnlineStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
OnlineStats::stdev() const
{
    return std::sqrt(variance());
}

double
OnlineStats::cov() const
{
    const double m = mean();
    if (m == 0.0)
        return 0.0;
    return stdev() / m;
}

} // namespace cheri
