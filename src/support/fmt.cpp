#include "support/fmt.hpp"

#include <cstdio>

namespace cheri::fmt {

std::string
fixed(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
metric(double value)
{
    return fixed(value, 6);
}

std::string
seconds(double value)
{
    return fixed(value, 9);
}

std::string
ratio(double value)
{
    return fixed(value, 3);
}

} // namespace cheri::fmt
