#include "support/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cheri {

namespace {

bool quietFlag = false;

} // namespace

void
setLogQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
logQuiet()
{
    return quietFlag;
}

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", message.c_str(), file, line);
    std::fflush(stderr);
    // A panic is a simulator bug: abort so tests and fuzzers notice.
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", message.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &message)
{
    if (!quietFlag)
        std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
informImpl(const std::string &message)
{
    if (!quietFlag)
        std::fprintf(stderr, "info: %s\n", message.c_str());
}

} // namespace cheri
