/**
 * @file
 * Minimal POSIX TCP plumbing for the experiment service.
 *
 * Deliberately loopback-only: `cheriperf serve` is a local experiment
 * daemon, not an internet-facing server, so the listener binds
 * 127.0.0.1 and the client connects to it. Everything here is a thin
 * RAII veneer over socket(2)/accept(2)/poll(2); protocol framing
 * (HTTP request lines, JSONL bodies) lives in src/serve, which is the
 * only consumer.
 */

#ifndef CHERI_SUPPORT_SOCKET_HPP
#define CHERI_SUPPORT_SOCKET_HPP

#include <optional>
#include <string>
#include <string_view>

#include "support/types.hpp"

namespace cheri::net {

/** Owning file-descriptor handle (sockets, pipe ends). */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    void close();

    /** Bound send/recv so a stalled peer cannot wedge a thread. */
    void setIoTimeout(u32 seconds);

  private:
    int fd_ = -1;
};

/** Loopback TCP listener; port 0 asks the kernel for an ephemeral one. */
class ListenSocket
{
  public:
    /** Bind+listen on 127.0.0.1:@p port. False (with @p error) on failure. */
    bool listen(u16 port, std::string *error);

    /** The actual bound port (resolves port 0). */
    u16 boundPort() const { return port_; }

    /**
     * Block until a connection arrives or @p wake_fd becomes readable
     * (the self-pipe a signal handler writes to). nullopt = woken or
     * listener error; transient accept failures retry internally.
     */
    std::optional<Socket> accept(int wake_fd);

    bool valid() const { return sock_.valid(); }
    void close() { sock_.close(); }

  private:
    Socket sock_;
    u16 port_ = 0;
};

/** Connect to 127.0.0.1:@p port. Invalid socket (+ @p error) on failure. */
Socket connectLoopback(u16 port, std::string *error);

/** Write all of @p data; false on any error (EPIPE included). */
bool sendAll(Socket &sock, std::string_view data);

/**
 * Read some bytes (up to @p max) into @p out. Returns bytes read,
 * 0 on orderly close, negative on error.
 */
long recvSome(Socket &sock, char *out, std::size_t max);

/** A pipe pair for interrupting poll/accept from a signal handler. */
struct WakePipe
{
    Socket read_end;
    Socket write_end;

    /** Create (non-blocking write end). False on failure. */
    bool open();

    /** Async-signal-safe nudge (one byte, best-effort). */
    void notify();
};

} // namespace cheri::net

#endif // CHERI_SUPPORT_SOCKET_HPP
