#include "support/rng.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace cheri {

namespace {

u64
splitmix64(u64 &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Xoshiro256StarStar::Xoshiro256StarStar(u64 seed)
{
    u64 sm = seed;
    for (auto &word : state_)
        word = splitmix64(sm);
    // An all-zero state would be absorbing; splitmix64 cannot produce
    // four zero outputs from any seed, but guard anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
        state_[0] = 1;
}

u64
Xoshiro256StarStar::next()
{
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

u64
Xoshiro256StarStar::nextBelow(u64 bound)
{
    CHERI_ASSERT(bound > 0, "nextBelow(0)");
    // Lemire-style rejection to remove modulo bias.
    const u64 threshold = (~bound + 1) % bound;
    for (;;) {
        u64 r = next();
        if (r >= threshold)
            return r % bound;
    }
}

u64
Xoshiro256StarStar::nextRange(u64 lo, u64 hi)
{
    CHERI_ASSERT(lo <= hi, "nextRange with lo > hi");
    return lo + nextBelow(hi - lo + 1);
}

double
Xoshiro256StarStar::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Xoshiro256StarStar::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

u64
Xoshiro256StarStar::nextZipf(u64 n, double skew)
{
    CHERI_ASSERT(n > 0, "nextZipf(0)");
    // Inverse-transform approximation: adequate for popularity skew in
    // synthetic workloads (we need the shape, not exactness).
    double u = nextDouble();
    double x = std::pow(static_cast<double>(n), 1.0 - skew * u);
    u64 idx = static_cast<u64>(x) - 1;
    if (idx >= n)
        idx = n - 1;
    return idx;
}

} // namespace cheri
