#include "support/hash.hpp"

namespace cheri {

std::string
toHex64(u64 value)
{
    static const char kDigits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
        value >>= 4;
    }
    return out;
}

} // namespace cheri
