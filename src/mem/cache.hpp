/**
 * @file
 * A set-associative cache model with LRU replacement.
 *
 * The model tracks presence only (no data): the functional memory
 * image lives in mem::BackingStore, while caches exist to produce
 * hit/miss behaviour and the PMU refill counts the paper analyzes.
 */

#ifndef CHERI_MEM_CACHE_HPP
#define CHERI_MEM_CACHE_HPP

#include <vector>

#include "support/types.hpp"

namespace cheri::mem {

struct CacheConfig
{
    u64 size_bytes = 64 * kKiB;
    u32 ways = 4;
    u32 line_bytes = 64;
};

class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &config);

    /**
     * Look up the line containing @p addr, allocating it on a miss
     * (write-allocate for both reads and writes).
     *
     * @return True on hit.
     */
    bool access(Addr addr, bool is_write);

    /** Probe without allocating or updating LRU. */
    bool contains(Addr addr) const;

    /**
     * Account one hit the owner's fast path replayed without the set
     * search. Keeps accesses()/missRate() and the LRU tick stream
     * identical to a full-path hit; the hit line's lastUse stays
     * frozen, which cannot change any victim choice as long as the
     * owner touches no other line during the replay streak (ticks are
     * unique, so the frozen value keeps the same relative order
     * against every line last used before the streak and every line
     * touched after it — see DESIGN.md §"Hot path").
     */
    void
    noteFastHit()
    {
        ++accesses_;
        ++tick_;
    }

    /** Invalidate everything. */
    void flush();

    // Statistics -------------------------------------------------------
    u64 accesses() const { return accesses_; }
    u64 misses() const { return misses_; }
    double
    missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) / accesses_ : 0.0;
    }

    const CacheConfig &config() const { return config_; }
    u32 numSets() const { return numSets_; }

  private:
    struct Line
    {
        Addr tag = 0;
        u64 lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    Addr lineAddr(Addr addr) const { return addr / config_.line_bytes; }

    CacheConfig config_;
    u32 numSets_;
    std::vector<Line> lines_; //!< numSets_ x ways, row-major.
    u64 tick_ = 0;
    u64 accesses_ = 0;
    u64 misses_ = 0;
};

} // namespace cheri::mem

#endif // CHERI_MEM_CACHE_HPP
