/**
 * @file
 * A set-associative cache model with LRU replacement.
 *
 * The model tracks presence only (no data): the functional memory
 * image lives in mem::BackingStore, while caches exist to produce
 * hit/miss behaviour and the PMU refill counts the paper analyzes.
 */

#ifndef CHERI_MEM_CACHE_HPP
#define CHERI_MEM_CACHE_HPP

#include <vector>

#include "support/types.hpp"

namespace cheri::mem {

struct CacheConfig
{
    u64 size_bytes = 64 * kKiB;
    u32 ways = 4;
    u32 line_bytes = 64;
};

class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &config);

    /**
     * Look up the line containing @p addr, allocating it on a miss
     * (write-allocate for both reads and writes).
     *
     * @return True on hit.
     */
    bool access(Addr addr, bool is_write);

    /** Probe without allocating or updating LRU. */
    bool contains(Addr addr) const;

    /** Sentinel for probeSlot(): the line is not resident. */
    static constexpr u32 kNoSlot = ~u32{0};

    /**
     * Index of the way currently holding @p addr's line, or kNoSlot.
     * Pure probe: no counters, no LRU movement. The index is only a
     * hint — it stays meaningful until the line is evicted or the
     * cache is flushed, and replayHit() re-validates it before use.
     */
    u32
    probeSlot(Addr addr) const
    {
        const Addr line = lineAddr(addr);
        const u32 set = static_cast<u32>(line & (numSets_ - 1));
        const Line *base =
            &lines_[static_cast<std::size_t>(set) * config_.ways];
        for (u32 w = 0; w < config_.ways; ++w)
            if (base[w].valid && base[w].tag == line)
                return set * config_.ways + w;
        return kNoSlot;
    }

    /**
     * Does @p slot (a probeSlot() hint) still hold @p line (a line
     * address, i.e. addr / line_bytes)? Pure check, no state change —
     * callers validate every structure they are about to replay
     * before mutating any of them, so a stale hint can never leave a
     * half-replayed access behind.
     */
    bool
    slotHolds(u32 slot, Addr line) const
    {
        const Line &entry = lines_[slot];
        return entry.valid && entry.tag == line;
    }

    /**
     * Replay a hit through a slot the caller just validated with
     * slotHolds(): exactly the mutation access() performs on a hit
     * (count, tick, LRU touch, dirty update), minus the set search.
     * A line's tag is its full line address, so a slot that holds the
     * line is necessarily the very slot access() would find — the
     * replay is unconditionally equivalent, for writes as well as
     * reads.
     */
    void
    replayHit(u32 slot, bool is_write)
    {
        Line &entry = lines_[slot];
        ++accesses_;
        ++tick_;
        entry.lastUse = tick_;
        entry.dirty |= is_write;
    }

    /**
     * Account one hit the owner's fast path replayed without the set
     * search. Keeps accesses()/missRate() and the LRU tick stream
     * identical to a full-path hit; the hit line's lastUse stays
     * frozen, which cannot change any victim choice as long as the
     * owner touches no other line during the replay streak (ticks are
     * unique, so the frozen value keeps the same relative order
     * against every line last used before the streak and every line
     * touched after it — see DESIGN.md §"Hot path").
     */
    void
    noteFastHit()
    {
        ++accesses_;
        ++tick_;
    }

    /**
     * Slot the most recent access() touched: the hit way, or the way
     * the miss allocated (write-allocate, so the line is resident
     * either way). Lets the owner arm an inline-cache memo without
     * repeating the set search; only a hint — replay re-validates.
     */
    u32 lastSlot() const { return lastSlot_; }

    /** Invalidate everything. */
    void flush();

    // Statistics -------------------------------------------------------
    u64 accesses() const { return accesses_; }
    u64 misses() const { return misses_; }
    double
    missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) / accesses_ : 0.0;
    }

    const CacheConfig &config() const { return config_; }
    u32 numSets() const { return numSets_; }

  private:
    struct Line
    {
        Addr tag = 0;
        u64 lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    Addr lineAddr(Addr addr) const { return addr / config_.line_bytes; }

    CacheConfig config_;
    u32 numSets_;
    std::vector<Line> lines_; //!< numSets_ x ways, row-major.
    u32 lastSlot_ = 0;
    u64 tick_ = 0;
    u64 accesses_ = 0;
    u64 misses_ = 0;
};

} // namespace cheri::mem

#endif // CHERI_MEM_CACHE_HPP
