/**
 * @file
 * Functional memory image: a sparse byte-addressable store plus the
 * capability tag table. This is the architectural state; the cache and
 * TLB models in MemorySystem provide timing only.
 */

#ifndef CHERI_MEM_BACKING_STORE_HPP
#define CHERI_MEM_BACKING_STORE_HPP

#include <array>
#include <memory>
#include <unordered_map>

#include "cap/capability.hpp"
#include "mem/tag_table.hpp"
#include "support/types.hpp"

namespace cheri::mem {

class BackingStore
{
  public:
    BackingStore();

    /** Read @p size (1..8) bytes little-endian, zero-extended. */
    u64 read(Addr addr, u32 size);

    /**
     * Write @p size (1..8) bytes. Clears any capability tag whose
     * granule the write overlaps (unforgeability).
     */
    void write(Addr addr, u64 value, u32 size);

    /**
     * Load a 16-byte capability. The validity tag comes from the tag
     * table; an untagged granule yields an untagged capability.
     * @p addr must be 16-byte aligned.
     */
    cap::Capability readCap(Addr addr);

    /** Store a 16-byte capability with its tag. 16-byte aligned. */
    void writeCap(Addr addr, const cap::Capability &value);

    TagTable &tags() { return tags_; }
    const TagTable &tags() const { return tags_; }

    /** Bytes of memory touched so far (footprint, page granularity). */
    u64 touchedBytes() const;

  private:
    static constexpr u64 kPageBytes = 4096;

    using Page = std::array<u8, kPageBytes>;

    Page &pageFor(Addr addr);

    std::unordered_map<u64, std::unique_ptr<Page>> pages_;
    // Direct-mapped memo over recently touched pages: workloads
    // alternate between a handful of structures (stack frame, pool,
    // globals), so a small table turns most pageFor() calls into one
    // compare instead of a hash-bucket division. Page objects are
    // heap-stable (owned by unique_ptr, never erased), so the raw
    // pointers cannot dangle across rehashes.
    struct PageMemo
    {
        u64 key = ~0ULL; // ~0 is unreachable: key = addr / 4096 < 2^52
        Page *page = nullptr;
    };
    std::array<PageMemo, 1024> memo_;
    TagTable tags_;
};

} // namespace cheri::mem

#endif // CHERI_MEM_BACKING_STORE_HPP
