#include "mem/tlb.hpp"

#include <bit>

#include "support/logging.hpp"

namespace cheri::mem {

Tlb::Tlb(const TlbConfig &config) : config_(config)
{
    CHERI_ASSERT(config.entries > 0, "TLB needs entries");
    CHERI_ASSERT(std::has_single_bit(config.page_bytes),
                 "page size must be a power of two");
    ways_ = config.ways == 0 ? config.entries : config.ways;
    CHERI_ASSERT(config.entries % ways_ == 0, "entries/ways mismatch");
    numSets_ = config.entries / ways_;
    CHERI_ASSERT(std::has_single_bit(numSets_),
                 "TLB set count must be a power of two");
    entries_.resize(config.entries);
}

bool
Tlb::access(Addr addr)
{
    ++accesses_;
    ++tick_;
    const Addr vpn = addr / config_.page_bytes;
    const u32 set = static_cast<u32>(vpn & (numSets_ - 1));
    Entry *base = &entries_[static_cast<std::size_t>(set) * ways_];

    Entry *victim = base;
    for (u32 w = 0; w < ways_; ++w) {
        Entry &entry = base[w];
        if (entry.valid && entry.vpn == vpn) {
            entry.lastUse = tick_;
            lastSlot_ = set * ways_ + w;
            return true;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid && entry.lastUse < victim->lastUse) {
            victim = &entry;
        }
    }

    ++misses_;
    victim->valid = true;
    victim->vpn = vpn;
    victim->lastUse = tick_;
    lastSlot_ = static_cast<u32>(victim - entries_.data());
    return false;
}

void
Tlb::flush()
{
    for (auto &entry : entries_)
        entry = Entry{};
}

} // namespace cheri::mem
