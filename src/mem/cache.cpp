#include "mem/cache.hpp"

#include <bit>

#include "support/logging.hpp"

namespace cheri::mem {

SetAssocCache::SetAssocCache(const CacheConfig &config) : config_(config)
{
    CHERI_ASSERT(config.line_bytes > 0 &&
                     std::has_single_bit(config.line_bytes),
                 "line size must be a power of two");
    CHERI_ASSERT(config.ways > 0, "cache needs at least one way");
    const u64 lines = config.size_bytes / config.line_bytes;
    CHERI_ASSERT(lines % config.ways == 0, "size/ways mismatch");
    numSets_ = static_cast<u32>(lines / config.ways);
    CHERI_ASSERT(std::has_single_bit(numSets_),
                 "number of sets must be a power of two");
    lines_.resize(lines);
}

bool
SetAssocCache::access(Addr addr, bool is_write)
{
    ++accesses_;
    ++tick_;
    const Addr line = lineAddr(addr);
    const u32 set = static_cast<u32>(line & (numSets_ - 1));
    Line *base = &lines_[static_cast<std::size_t>(set) * config_.ways];

    Line *victim = base;
    for (u32 w = 0; w < config_.ways; ++w) {
        Line &entry = base[w];
        if (entry.valid && entry.tag == line) {
            entry.lastUse = tick_;
            entry.dirty |= is_write;
            lastSlot_ = set * config_.ways + w;
            return true;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid && entry.lastUse < victim->lastUse) {
            victim = &entry;
        }
    }

    ++misses_;
    victim->valid = true;
    victim->tag = line;
    victim->lastUse = tick_;
    victim->dirty = is_write;
    lastSlot_ = static_cast<u32>(victim - lines_.data());
    return false;
}

bool
SetAssocCache::contains(Addr addr) const
{
    const Addr line = lineAddr(addr);
    const u32 set = static_cast<u32>(line & (numSets_ - 1));
    const Line *base = &lines_[static_cast<std::size_t>(set) * config_.ways];
    for (u32 w = 0; w < config_.ways; ++w)
        if (base[w].valid && base[w].tag == line)
            return true;
    return false;
}

void
SetAssocCache::flush()
{
    for (auto &entry : lines_)
        entry = Line{};
}

} // namespace cheri::mem
