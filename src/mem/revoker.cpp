#include "mem/revoker.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace cheri::mem {

void
Revoker::quarantine(Addr base, u64 length)
{
    CHERI_ASSERT(length > 0, "empty quarantine region");
    // Sorted insert, then merge every neighbor the new region touches
    // (adjacent counts: freeing two abutting blocks is one region).
    // The invariant — sorted by base, pairwise disjoint and
    // non-adjacent — keeps quarantinedBytes() and sweep accounting
    // free of double-counted granules on repeated neighboring frees.
    Region region{base, length};
    auto it = std::lower_bound(
        quarantine_.begin(), quarantine_.end(), region,
        [](const Region &a, const Region &b) { return a.base < b.base; });
    if (it != quarantine_.begin()) {
        auto prev = std::prev(it);
        if (prev->base + prev->length >= region.base) {
            const Addr top = std::max(prev->base + prev->length,
                                      region.base + region.length);
            prev->length = top - prev->base;
            region = *prev;
            it = quarantine_.erase(prev);
        }
    }
    while (it != quarantine_.end() &&
           it->base <= region.base + region.length) {
        const Addr top = std::max(region.base + region.length,
                                  it->base + it->length);
        region.length = top - region.base;
        it = quarantine_.erase(it);
    }
    quarantine_.insert(it, region);
}

bool
Revoker::isQuarantined(Addr addr, u64 size) const
{
    for (const Region &region : quarantine_) {
        const Addr lo = std::max(addr, region.base);
        const Addr hi =
            std::min(addr + size, region.base + region.length);
        if (lo < hi)
            return true;
    }
    return false;
}

u64
Revoker::quarantinedBytes() const
{
    u64 total = 0;
    for (const Region &region : quarantine_)
        total += region.length;
    return total;
}

SweepStats
Revoker::sweep(SweepObserver *observer)
{
    SweepStats stats;
    if (quarantine_.empty())
        return stats;

    // Collect first (the tag table must not be mutated mid-visit),
    // then sort: the tag table's iteration order is unspecified, and
    // the observer's traffic must be deterministic.
    std::vector<Addr> tagged;
    store_.tags().forEachTagged(
        [&tagged](Addr addr) { tagged.push_back(addr); });
    std::sort(tagged.begin(), tagged.end());

    for (const Addr addr : tagged) {
        ++stats.granulesVisited;
        if (observer)
            observer->onGranuleVisited(addr);
        const cap::Capability capability = store_.readCap(addr);
        if (!capability.tag())
            continue; // raced with our own revocations: impossible
                      // here, but harmless.
        // Revoke when the capability's authority overlaps quarantine.
        const u64 length = capability.length();
        if (isQuarantined(capability.base(),
                          length ? length : 1)) {
            store_.tags().write(addr, false);
            ++stats.capsRevoked;
            if (observer)
                observer->onCapRevoked(addr);
        }
    }

    stats.bytesReleased = quarantinedBytes();
    quarantine_.clear();
    return stats;
}

} // namespace cheri::mem
