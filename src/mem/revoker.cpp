#include "mem/revoker.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace cheri::mem {

void
Revoker::quarantine(Addr base, u64 length)
{
    CHERI_ASSERT(length > 0, "empty quarantine region");
    quarantine_.push_back({base, length});
}

bool
Revoker::isQuarantined(Addr addr, u64 size) const
{
    for (const Region &region : quarantine_) {
        const Addr lo = std::max(addr, region.base);
        const Addr hi =
            std::min(addr + size, region.base + region.length);
        if (lo < hi)
            return true;
    }
    return false;
}

u64
Revoker::quarantinedBytes() const
{
    u64 total = 0;
    for (const Region &region : quarantine_)
        total += region.length;
    return total;
}

SweepStats
Revoker::sweep()
{
    SweepStats stats;
    if (quarantine_.empty())
        return stats;

    // Collect first (the tag table must not be mutated mid-visit).
    std::vector<Addr> tagged;
    store_.tags().forEachTagged(
        [&tagged](Addr addr) { tagged.push_back(addr); });

    for (const Addr addr : tagged) {
        ++stats.granulesVisited;
        const cap::Capability capability = store_.readCap(addr);
        if (!capability.tag())
            continue; // raced with our own revocations: impossible
                      // here, but harmless.
        // Revoke when the capability's authority overlaps quarantine.
        const u64 length = capability.length();
        if (isQuarantined(capability.base(),
                          length ? length : 1)) {
            store_.tags().write(addr, false);
            ++stats.capsRevoked;
        }
    }

    stats.bytesReleased = quarantinedBytes();
    quarantine_.clear();
    return stats;
}

} // namespace cheri::mem
