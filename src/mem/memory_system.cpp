#include "mem/memory_system.hpp"

#include <algorithm>

#include "trace/profile.hpp"

namespace cheri::mem {

using pmu::Event;

const char *
memLevelName(MemLevel level)
{
    switch (level) {
      case MemLevel::L1: return "L1";
      case MemLevel::L2: return "L2";
      case MemLevel::Llc: return "LLC";
      case MemLevel::Dram: return "DRAM";
    }
    return "?";
}

MemorySystem::MemorySystem(const MemConfig &config, pmu::EventCounts &counts)
    : config_(config), counts_(counts), l1i_(config.l1i), l1d_(config.l1d),
      l2_(config.l2), llc_(config.llc), l1iTlb_(config.l1i_tlb),
      l1dTlb_(config.l1d_tlb), l2Tlb_(config.l2_tlb)
{
}

Cycles
MemorySystem::translate(Addr addr, bool instruction_side, bool &walked)
{
    walked = false;
    Tlb &l1 = instruction_side ? l1iTlb_ : l1dTlb_;
    counts_.add(instruction_side ? Event::L1iTlb : Event::L1dTlb);
    if (l1.access(addr))
        return 0;

    counts_.add(Event::L2dTlb);
    if (l2Tlb_.access(addr))
        return 1; // micro-TLB refill from the unified TLB: ~1 cycle.

    counts_.add(Event::L2dTlbRefill);
    counts_.add(instruction_side ? Event::ItlbWalk : Event::DtlbWalk);
    walked = true;
    return config_.walk_latency;
}

AccessResult
MemorySystem::fetch(Addr pc)
{
    CHERI_TRACE_SCOPE("mem/fetch");
    AccessResult result;
    result.latency = translate(pc, /*instruction_side=*/true,
                               result.tlb_walk);

    counts_.add(Event::L1iCache);
    if (l1i_.access(pc, /*is_write=*/false)) {
        result.level = MemLevel::L1;
        // L1I hits are fully pipelined: no added fetch latency.
        return result;
    }
    counts_.add(Event::L1iCacheRefill);

    counts_.add(Event::L2dCache);
    if (l2_.access(pc, false)) {
        result.level = MemLevel::L2;
        result.latency += config_.l2_latency;
        return result;
    }
    counts_.add(Event::L2dCacheRefill);

    counts_.add(Event::LlCacheRd);
    if (llc_.access(pc, false)) {
        result.level = MemLevel::Llc;
        result.latency += config_.llc_latency;
        return result;
    }
    counts_.add(Event::LlCacheMissRd);
    result.level = MemLevel::Dram;
    result.latency += config_.dram_latency;
    return result;
}

AccessResult
MemorySystem::data(Addr addr, u32 size, bool is_write, bool is_cap)
{
    CHERI_TRACE_SCOPE("mem/data");
    counts_.add(is_write ? Event::MemAccessWr : Event::MemAccessRd);
    if (is_cap) {
        counts_.add(is_write ? Event::CapMemAccessWr
                             : Event::CapMemAccessRd);
        counts_.add(is_write ? Event::MemAccessWrCtag
                             : Event::MemAccessRdCtag);
    }

    AccessResult result;
    result.latency = translate(addr, /*instruction_side=*/false,
                               result.tlb_walk);
    result.latency += config_.tag_extra_latency * (is_cap ? 1 : 0);

    // An access that straddles a line boundary touches two lines; the
    // second access is what the PMU would count as another L1D access.
    const u64 line = config_.l1d.line_bytes;
    const bool straddles = size > 0 && (addr / line) != ((addr + size - 1) / line);

    for (int part = 0; part < (straddles ? 2 : 1); ++part) {
        const Addr a = part == 0 ? addr : (addr / line + 1) * line;
        counts_.add(Event::L1dCache);
        if (l1d_.access(a, is_write)) {
            result.latency += config_.l1_latency;
            continue;
        }
        counts_.add(Event::L1dCacheRefill);

        counts_.add(Event::L2dCache);
        if (l2_.access(a, is_write)) {
            result.level = std::max(result.level, MemLevel::L2);
            result.latency += config_.l2_latency;
            continue;
        }
        counts_.add(Event::L2dCacheRefill);

        if (!is_write)
            counts_.add(Event::LlCacheRd);
        if (llc_.access(a, is_write)) {
            result.level = std::max(result.level, MemLevel::Llc);
            result.latency += config_.llc_latency;
            continue;
        }
        if (!is_write)
            counts_.add(Event::LlCacheMissRd);
        result.level = MemLevel::Dram;
        result.latency += config_.dram_latency;
    }
    return result;
}

} // namespace cheri::mem
