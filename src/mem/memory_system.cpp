#include "mem/memory_system.hpp"

#include <algorithm>

#include "mem/uncore.hpp"
#include "support/telemetry.hpp"
#include "trace/profile.hpp"

namespace cheri::mem {

using pmu::Event;

const char *
memLevelName(MemLevel level)
{
    switch (level) {
      case MemLevel::L1: return "L1";
      case MemLevel::L2: return "L2";
      case MemLevel::Llc: return "LLC";
      case MemLevel::Dram: return "DRAM";
    }
    return "?";
}

PrivateHierarchy::PrivateHierarchy(const MemConfig &config,
                                   pmu::EventCounts &counts, Uncore &uncore,
                                   u32 core_id)
    : config_(config), counts_(counts), l1i_(config.l1i), l1d_(config.l1d),
      l2_(config.l2), l1iTlb_(config.l1i_tlb), l1dTlb_(config.l1d_tlb),
      l2Tlb_(config.l2_tlb), uncore_(&uncore), core_(core_id)
{
}

PrivateHierarchy::PrivateHierarchy(const MemConfig &config,
                                   pmu::EventCounts &counts)
    : config_(config), counts_(counts), l1i_(config.l1i), l1d_(config.l1d),
      l2_(config.l2), l1iTlb_(config.l1i_tlb), l1dTlb_(config.l1d_tlb),
      l2Tlb_(config.l2_tlb), ownedUncore_(std::make_unique<Uncore>(config, 1)),
      uncore_(ownedUncore_.get()), core_(0)
{
}

PrivateHierarchy::~PrivateHierarchy()
{
    telemetry::addMemFastPath(dataFast_, dataFull_, fetchFast_, fetchFull_);
}

const SetAssocCache &
PrivateHierarchy::llc() const
{
    return uncore_->llc();
}

Cycles
PrivateHierarchy::translate(Addr addr, bool instruction_side, bool &walked)
{
    walked = false;
    Tlb &l1 = instruction_side ? l1iTlb_ : l1dTlb_;
    counts_.add(instruction_side ? Event::L1iTlb : Event::L1dTlb);
    if (l1.access(addr))
        return 0;

    counts_.add(Event::L2dTlb);
    if (l2Tlb_.access(addr))
        return 1; // micro-TLB refill from the unified TLB: ~1 cycle.

    counts_.add(Event::L2dTlbRefill);
    counts_.add(instruction_side ? Event::ItlbWalk : Event::DtlbWalk);
    walked = true;
    return config_.walk_latency;
}

AccessResult
PrivateHierarchy::fetch(Addr pc)
{
    // Fast path: an uninterrupted streak of fetches from the MRU L1I
    // line replays the full walk's exact outcome — micro-ITLB hit and
    // L1I hit, zero added latency — without the set searches. The
    // fetch side touches no data-side structure (and vice versa), so
    // the streak survives interleaved data accesses.
    const Addr fline = pc / config_.l1i.line_bytes;
    if (fetchFp_.valid && fline == fetchFp_.line) {
        ++fetchFast_;
        counts_.add(Event::L1iTlb);
        l1iTlb_.noteFastHit();
        counts_.add(Event::L1iCache);
        l1i_.noteFastHit();
        return AccessResult{};
    }
    ++fetchFull_;
    fetchFp_.valid = false;

    CHERI_TRACE_SCOPE("mem/fetch");
    AccessResult result;
    result.latency = translate(pc, /*instruction_side=*/true,
                               result.tlb_walk);

    counts_.add(Event::L1iCache);
    if (l1i_.access(pc, /*is_write=*/false)) {
        result.level = MemLevel::L1;
        if (config_.fast_path && result.latency == 0) {
            fetchFp_.line = fline;
            fetchFp_.valid = true;
        }
        // L1I hits are fully pipelined: no added fetch latency.
        return result;
    }
    counts_.add(Event::L1iCacheRefill);

    counts_.add(Event::L2dCache);
    if (l2_.access(pc, false)) {
        result.level = MemLevel::L2;
        result.latency += config_.l2_latency;
        return result;
    }
    counts_.add(Event::L2dCacheRefill);

    const Uncore::Access shared =
        uncore_->access(core_, pc, /*is_write=*/false, /*is_cap=*/false,
                        counts_);
    result.level = shared.level;
    result.latency += shared.latency;
    return result;
}

AccessResult
PrivateHierarchy::data(Addr addr, u32 size, bool is_write, bool is_cap)
{
    // An access that straddles a line boundary touches two lines; the
    // second access is what the PMU would count as another L1D access.
    const u64 line = config_.l1d.line_bytes;
    const Addr dline = addr / line;
    const bool straddles =
        size > 0 && dline != ((addr + size - 1) / line);

    // Fast path: a streak of same-line accesses whose full walk is
    // provably a micro-DTLB hit plus an L1D hit replays the exact
    // counts, latency and LRU tick stream without the set searches.
    // Writes replay only onto a line already known dirty, so the
    // skipped dirty|=is_write update is a no-op.
    if (dataFp_.valid && dline == dataFp_.line && !straddles &&
        (!is_write || dataFp_.dirty)) {
        ++dataFast_;
        counts_.add(is_write ? Event::MemAccessWr : Event::MemAccessRd);
        if (is_cap) {
            counts_.add(is_write ? Event::CapMemAccessWr
                                 : Event::CapMemAccessRd);
            counts_.add(is_write ? Event::MemAccessWrCtag
                                 : Event::MemAccessRdCtag);
        }
        counts_.add(Event::L1dTlb);
        l1dTlb_.noteFastHit();
        counts_.add(Event::L1dCache);
        l1d_.noteFastHit();
        AccessResult result;
        result.latency = config_.tag_extra_latency * (is_cap ? 1 : 0) +
                         config_.l1_latency;
        return result;
    }
    ++dataFull_;
    dataFp_.valid = false;

    CHERI_TRACE_SCOPE("mem/data");
    counts_.add(is_write ? Event::MemAccessWr : Event::MemAccessRd);
    if (is_cap) {
        counts_.add(is_write ? Event::CapMemAccessWr
                             : Event::CapMemAccessRd);
        counts_.add(is_write ? Event::MemAccessWrCtag
                             : Event::MemAccessRdCtag);
    }

    AccessResult result;
    const Cycles walk = translate(addr, /*instruction_side=*/false,
                                  result.tlb_walk);
    result.latency = walk;
    result.latency += config_.tag_extra_latency * (is_cap ? 1 : 0);

    bool l1d_hit = false;
    for (int part = 0; part < (straddles ? 2 : 1); ++part) {
        const Addr a = part == 0 ? addr : (dline + 1) * line;
        counts_.add(Event::L1dCache);
        if (l1d_.access(a, is_write)) {
            if (part == 0)
                l1d_hit = true;
            result.latency += config_.l1_latency;
            continue;
        }
        counts_.add(Event::L1dCacheRefill);

        counts_.add(Event::L2dCache);
        if (l2_.access(a, is_write)) {
            result.level = std::max(result.level, MemLevel::L2);
            result.latency += config_.l2_latency;
            continue;
        }
        counts_.add(Event::L2dCacheRefill);

        const Uncore::Access shared =
            uncore_->access(core_, a, is_write, is_cap, counts_);
        result.level = std::max(result.level, shared.level);
        result.latency += shared.latency;
    }

    // Arm the fast path when the walk we just did is replayable: one
    // line, micro-DTLB hit, L1D hit.
    if (config_.fast_path && !straddles && walk == 0 && l1d_hit) {
        dataFp_.line = dline;
        dataFp_.valid = true;
        dataFp_.dirty = is_write;
    }
    return result;
}

} // namespace cheri::mem
