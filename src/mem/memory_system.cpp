#include "mem/memory_system.hpp"

#include <algorithm>
#include <bit>

#include "mem/uncore.hpp"
#include "support/logging.hpp"
#include "support/telemetry.hpp"
#include "trace/profile.hpp"

namespace cheri::mem {

using pmu::Event;

const char *
memLevelName(MemLevel level)
{
    switch (level) {
      case MemLevel::L1: return "L1";
      case MemLevel::L2: return "L2";
      case MemLevel::Llc: return "LLC";
      case MemLevel::Dram: return "DRAM";
    }
    return "?";
}

PrivateHierarchy::PrivateHierarchy(const MemConfig &config,
                                   pmu::EventCounts &counts, Uncore &uncore,
                                   u32 core_id)
    : config_(config), counts_(counts), l1i_(config.l1i), l1d_(config.l1d),
      l2_(config.l2), l1iTlb_(config.l1i_tlb), l1dTlb_(config.l1d_tlb),
      l2Tlb_(config.l2_tlb), uncore_(&uncore), core_(core_id),
      dataMemo_(kDataMemoSize), fetchMemo_(kFetchMemoSize)
{
    initShifts();
}

PrivateHierarchy::PrivateHierarchy(const MemConfig &config,
                                   pmu::EventCounts &counts)
    : config_(config), counts_(counts), l1i_(config.l1i), l1d_(config.l1d),
      l2_(config.l2), l1iTlb_(config.l1i_tlb), l1dTlb_(config.l1d_tlb),
      l2Tlb_(config.l2_tlb), ownedUncore_(std::make_unique<Uncore>(config, 1)),
      uncore_(ownedUncore_.get()), core_(0), dataMemo_(kDataMemoSize),
      fetchMemo_(kFetchMemoSize)
{
    initShifts();
}

void
PrivateHierarchy::initShifts()
{
    CHERI_ASSERT(config_.l1d_tlb.page_bytes >= config_.l1d.line_bytes &&
                     config_.l1i_tlb.page_bytes >= config_.l1i.line_bytes,
                 "page smaller than a cache line");
    l1dLineShift_ = static_cast<u32>(std::countr_zero(
        static_cast<u64>(config_.l1d.line_bytes)));
    l1iLineShift_ = static_cast<u32>(std::countr_zero(
        static_cast<u64>(config_.l1i.line_bytes)));
    dataVpnShift_ = static_cast<u32>(std::countr_zero(
                        static_cast<u64>(config_.l1d_tlb.page_bytes))) -
                    l1dLineShift_;
    fetchVpnShift_ = static_cast<u32>(std::countr_zero(
                         static_cast<u64>(config_.l1i_tlb.page_bytes))) -
                     l1iLineShift_;
}

PrivateHierarchy::~PrivateHierarchy()
{
    flushTelemetry();
}

void
PrivateHierarchy::flushTelemetry()
{
    telemetry::addMemFastPath(dataFast_ - dataFastFlushed_,
                              dataFull_ - dataFullFlushed_,
                              fetchFast_ - fetchFastFlushed_,
                              fetchFull_ - fetchFullFlushed_, core_);
    dataFastFlushed_ = dataFast_;
    dataFullFlushed_ = dataFull_;
    fetchFastFlushed_ = fetchFast_;
    fetchFullFlushed_ = fetchFull_;
}

const SetAssocCache &
PrivateHierarchy::llc() const
{
    return uncore_->llc();
}

Cycles
PrivateHierarchy::translate(Addr addr, bool instruction_side, bool &walked)
{
    walked = false;
    Tlb &l1 = instruction_side ? l1iTlb_ : l1dTlb_;
    counts_.add(instruction_side ? Event::L1iTlb : Event::L1dTlb);
    if (l1.access(addr))
        return 0;

    counts_.add(Event::L2dTlb);
    if (l2Tlb_.access(addr))
        return 1; // micro-TLB refill from the unified TLB: ~1 cycle.

    counts_.add(Event::L2dTlbRefill);
    counts_.add(instruction_side ? Event::ItlbWalk : Event::DtlbWalk);
    walked = true;
    return config_.walk_latency;
}

AccessResult
PrivateHierarchy::fetchSlow(Addr pc, Addr fline)
{
    ++fetchFull_;

    CHERI_TRACE_SCOPE("mem/fetch");
    AccessResult result;
    result.latency = translate(pc, /*instruction_side=*/true,
                               result.tlb_walk);

    counts_.add(Event::L1iCache);
    if (l1i_.access(pc, /*is_write=*/false)) {
        // L1I hits are fully pipelined: no added fetch latency.
        result.level = MemLevel::L1;
    } else {
        counts_.add(Event::L1iCacheRefill);

        counts_.add(Event::L2dCache);
        if (l2_.access(pc, false)) {
            result.level = MemLevel::L2;
            result.latency += config_.l2_latency;
        } else {
            counts_.add(Event::L2dCacheRefill);

            const Uncore::Access shared = uncore_->access(
                core_, pc, /*is_write=*/false, /*is_cap=*/false, counts_);
            result.level = shared.level;
            result.latency += shared.latency;
        }
    }

    // Arm on every fetch, miss included: the micro-ITLB refilled on a
    // walk and the L1I allocated on a miss, so the next fetch of this
    // line would take the hit/hit path the replay reproduces — see
    // the matching comment in data().
    if (config_.fast_path) {
        InlineMemo &memo = fetchMemo_[fline & (kFetchMemoSize - 1)];
        memo.line = fline;
        memo.vpn = fline >> fetchVpnShift_;
        memo.cacheSlot = l1i_.lastSlot();
        memo.tlbSlot = l1iTlb_.lastSlot();
        memo.valid = true;
    }
    return result;
}

AccessResult
PrivateHierarchy::dataSlow(Addr addr, bool is_write, bool is_cap,
                           Addr dline, bool straddles)
{
    ++dataFull_;

    CHERI_TRACE_SCOPE("mem/data");
    counts_.add(is_write ? Event::MemAccessWr : Event::MemAccessRd);
    if (is_cap) {
        counts_.add(is_write ? Event::CapMemAccessWr
                             : Event::CapMemAccessRd);
        counts_.add(is_write ? Event::MemAccessWrCtag
                             : Event::MemAccessRdCtag);
    }

    AccessResult result;
    const Cycles walk = translate(addr, /*instruction_side=*/false,
                                  result.tlb_walk);
    result.latency = walk;
    result.latency += config_.tag_extra_latency * (is_cap ? 1 : 0);

    for (int part = 0; part < (straddles ? 2 : 1); ++part) {
        const Addr a = part == 0 ? addr : (dline + 1) << l1dLineShift_;
        counts_.add(Event::L1dCache);
        if (l1d_.access(a, is_write)) {
            result.latency += config_.l1_latency;
            continue;
        }
        counts_.add(Event::L1dCacheRefill);

        counts_.add(Event::L2dCache);
        if (l2_.access(a, is_write)) {
            result.level = std::max(result.level, MemLevel::L2);
            result.latency += config_.l2_latency;
            continue;
        }
        counts_.add(Event::L2dCacheRefill);

        const Uncore::Access shared =
            uncore_->access(core_, a, is_write, is_cap, counts_);
        result.level = std::max(result.level, shared.level);
        result.latency += shared.latency;
    }

    // Arm the inline cache after every single-line access, hits and
    // misses alike: the micro-DTLB refills on a walk and the L1D
    // write-allocates on a miss, so by this point the page and the
    // line are both resident and the NEXT access to this line — the
    // one the memo predicts — would take exactly the hit/hit path the
    // replay reproduces. lastSlot() is the entry access() just
    // touched, so arming repeats no associative search; validation
    // re-checks both slots on every replay, so a stale memo can only
    // fall through, never lie.
    if (config_.fast_path && !straddles) {
        InlineMemo &memo = dataMemo_[dline & (kDataMemoSize - 1)];
        memo.line = dline;
        memo.vpn = dline >> dataVpnShift_;
        memo.cacheSlot = l1d_.lastSlot();
        memo.tlbSlot = l1dTlb_.lastSlot();
        memo.valid = true;
    }
    return result;
}

} // namespace cheri::mem
