/**
 * @file
 * Two-level TLB model matching the Neoverse N1 organisation: small
 * fully-associative L1 instruction and data micro-TLBs backed by a
 * large set-associative unified L2 TLB, with a fixed-cost page walker
 * behind it.
 */

#ifndef CHERI_MEM_TLB_HPP
#define CHERI_MEM_TLB_HPP

#include <vector>

#include "support/types.hpp"

namespace cheri::mem {

struct TlbConfig
{
    u32 entries = 48;
    u32 ways = 0;        //!< 0 = fully associative.
    u32 page_bytes = 4096;
};

class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /** Translate the page containing @p addr; allocate on miss. */
    bool access(Addr addr);

    /**
     * Account one hit replayed by the owner's fast path; same
     * contract as SetAssocCache::noteFastHit().
     */
    void
    noteFastHit()
    {
        ++accesses_;
        ++tick_;
    }

    void flush();

    u64 accesses() const { return accesses_; }
    u64 misses() const { return misses_; }
    double
    missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) / accesses_ : 0.0;
    }

    const TlbConfig &config() const { return config_; }

  private:
    struct Entry
    {
        Addr vpn = 0;
        u64 lastUse = 0;
        bool valid = false;
    };

    TlbConfig config_;
    u32 numSets_;
    u32 ways_;
    std::vector<Entry> entries_;
    u64 tick_ = 0;
    u64 accesses_ = 0;
    u64 misses_ = 0;
};

} // namespace cheri::mem

#endif // CHERI_MEM_TLB_HPP
