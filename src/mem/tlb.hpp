/**
 * @file
 * Two-level TLB model matching the Neoverse N1 organisation: small
 * fully-associative L1 instruction and data micro-TLBs backed by a
 * large set-associative unified L2 TLB, with a fixed-cost page walker
 * behind it.
 */

#ifndef CHERI_MEM_TLB_HPP
#define CHERI_MEM_TLB_HPP

#include <vector>

#include "support/types.hpp"

namespace cheri::mem {

struct TlbConfig
{
    u32 entries = 48;
    u32 ways = 0;        //!< 0 = fully associative.
    u32 page_bytes = 4096;
};

class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /** Translate the page containing @p addr; allocate on miss. */
    bool access(Addr addr);

    /** Sentinel for probeSlot(): the page is not resident. */
    static constexpr u32 kNoSlot = ~u32{0};

    /**
     * Index of the entry currently mapping @p addr's page, or
     * kNoSlot. Pure probe: no counters, no LRU movement; the hint is
     * re-validated by replayHit() before use.
     */
    u32
    probeSlot(Addr addr) const
    {
        const Addr vpn = addr / config_.page_bytes;
        const u32 set = static_cast<u32>(vpn & (numSets_ - 1));
        const Entry *base = &entries_[static_cast<std::size_t>(set) * ways_];
        for (u32 w = 0; w < ways_; ++w)
            if (base[w].valid && base[w].vpn == vpn)
                return set * ways_ + w;
        return kNoSlot;
    }

    /**
     * Does @p slot (a probeSlot() hint) still map @p vpn (a virtual
     * page number, i.e. addr / page_bytes)? Pure check; see
     * SetAssocCache::slotHolds().
     */
    bool
    slotHolds(u32 slot, Addr vpn) const
    {
        const Entry &entry = entries_[slot];
        return entry.valid && entry.vpn == vpn;
    }

    /**
     * Replay a hit through a slot the caller just validated with
     * slotHolds(): exactly the mutation access() performs on a hit
     * (count, tick, LRU touch), minus the associative search — the
     * search this skips is the expensive one: the N1 micro-TLBs are
     * 48-entry fully-associative linear scans. Same equivalence
     * argument as SetAssocCache::replayHit().
     */
    void
    replayHit(u32 slot)
    {
        Entry &entry = entries_[slot];
        ++accesses_;
        ++tick_;
        entry.lastUse = tick_;
    }

    /**
     * Account one hit replayed by the owner's fast path; same
     * contract as SetAssocCache::noteFastHit().
     */
    void
    noteFastHit()
    {
        ++accesses_;
        ++tick_;
    }

    /**
     * Entry the most recent access() touched: the hit entry, or the
     * one the miss refilled (the walker always refills, so the page
     * is resident either way). A memo-arming hint, re-validated by
     * slotHolds() before any replay — see SetAssocCache::lastSlot().
     */
    u32 lastSlot() const { return lastSlot_; }

    void flush();

    u64 accesses() const { return accesses_; }
    u64 misses() const { return misses_; }
    double
    missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) / accesses_ : 0.0;
    }

    const TlbConfig &config() const { return config_; }

  private:
    struct Entry
    {
        Addr vpn = 0;
        u64 lastUse = 0;
        bool valid = false;
    };

    TlbConfig config_;
    u32 numSets_;
    u32 ways_;
    std::vector<Entry> entries_;
    u32 lastSlot_ = 0;
    u64 tick_ = 0;
    u64 accesses_ = 0;
    u64 misses_ = 0;
};

} // namespace cheri::mem

#endif // CHERI_MEM_TLB_HPP
