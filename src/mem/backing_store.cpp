#include "mem/backing_store.hpp"

#include <bit>
#include <cstring>

#include "support/logging.hpp"

namespace cheri::mem {

BackingStore::BackingStore() = default;

BackingStore::Page &
BackingStore::pageFor(Addr addr)
{
    const u64 key = addr / kPageBytes;
    PageMemo &memo = memo_[key & (memo_.size() - 1)];
    if (memo.key == key)
        return *memo.page;
    auto &slot = pages_[key];
    if (!slot)
        slot = std::make_unique<Page>(Page{});
    memo.key = key;
    memo.page = slot.get();
    return *slot;
}

u64
BackingStore::read(Addr addr, u32 size)
{
    CHERI_ASSERT(size >= 1 && size <= 8, "scalar read size ", size);
    const u64 off = addr % kPageBytes;
    if (off + size <= kPageBytes) {
        // Page-local access (the common case): one page lookup for
        // the whole value instead of one per byte.
        const Page &page = pageFor(addr);
        if constexpr (std::endian::native == std::endian::little) {
            // The byte loop assembles little-endian; on a
            // little-endian host that is a plain copy.
            if (size == 8) {
                u64 value;
                std::memcpy(&value, page.data() + off, 8);
                return value;
            }
        }
        u64 value = 0;
        for (u32 i = 0; i < size; ++i)
            value |= static_cast<u64>(page[off + i]) << (8 * i);
        return value;
    }
    u64 value = 0;
    for (u32 i = 0; i < size; ++i) {
        const Addr byte_addr = addr + i;
        const Page &page = pageFor(byte_addr);
        value |= static_cast<u64>(page[byte_addr % kPageBytes]) << (8 * i);
    }
    return value;
}

void
BackingStore::write(Addr addr, u64 value, u32 size)
{
    CHERI_ASSERT(size >= 1 && size <= 8, "scalar write size ", size);
    const u64 off = addr % kPageBytes;
    if (off + size <= kPageBytes) {
        Page &page = pageFor(addr);
        if constexpr (std::endian::native == std::endian::little) {
            if (size == 8) {
                std::memcpy(page.data() + off, &value, 8);
                tags_.clobber(addr, size);
                return;
            }
        }
        for (u32 i = 0; i < size; ++i)
            page[off + i] = static_cast<u8>(value >> (8 * i));
    } else {
        for (u32 i = 0; i < size; ++i) {
            const Addr byte_addr = addr + i;
            Page &page = pageFor(byte_addr);
            page[byte_addr % kPageBytes] =
                static_cast<u8>(value >> (8 * i));
        }
    }
    tags_.clobber(addr, size);
}

cap::Capability
BackingStore::readCap(Addr addr)
{
    CHERI_ASSERT(addr % kCapGranule == 0, "unaligned capability load at 0x",
                 std::hex, addr);
    cap::PackedCap packed;
    packed.address = read(addr, 8);
    packed.metadata = read(addr + 8, 8);
    const bool tag = tags_.read(addr);
    return cap::Capability::unpack(packed, tag);
}

void
BackingStore::writeCap(Addr addr, const cap::Capability &value)
{
    CHERI_ASSERT(addr % kCapGranule == 0, "unaligned capability store at 0x",
                 std::hex, addr);
    const cap::PackedCap packed = value.pack();
    // Scalar writes clobber the granule tag; set the real tag after.
    write(addr, packed.address, 8);
    write(addr + 8, packed.metadata, 8);
    tags_.write(addr, value.tag());
}

u64
BackingStore::touchedBytes() const
{
    return pages_.size() * kPageBytes;
}

} // namespace cheri::mem
