/**
 * @file
 * The shared uncore: the 1 MiB system-level cache, capability
 * tag-table fill traffic, the flat DRAM latency, and a deterministic
 * bandwidth/occupancy contention model. One Uncore is shared by every
 * sim::Core slice of a Machine; each L2 miss from a core's
 * PrivateHierarchy arrives here tagged with its core id.
 *
 * Contention model (deterministic by construction): an access pays
 * `contenders * llc_arb_penalty` extra cycles at the LLC and another
 * `contenders * dram_arb_penalty` on a DRAM fill, where `contenders`
 * is the number of OTHER cores that have started issuing and not yet
 * finished their lane. Co-running cores therefore lengthen each
 * other's LLC/DRAM latencies by a fixed per-access toll — an
 * occupancy proxy, not a timed queue (no MSHRs, no coherence; see
 * DESIGN.md "Core/uncore model").
 *
 * LLC capacity sharing: lookups are framed per core
 * (addr + core * kLaneAddrStride) so distinct lanes never alias into
 * the same line yet do fight for the same sets and ways. Under LRU
 * this makes a co-running lane's miss count monotonically >= its solo
 * miss count. Core 0's frame offset is zero, so single-core runs are
 * bit-identical to the pre-split MemorySystem.
 */

#ifndef CHERI_MEM_UNCORE_HPP
#define CHERI_MEM_UNCORE_HPP

#include <atomic>
#include <memory>

#include "mem/cache.hpp"
#include "mem/memory_system.hpp"
#include "pmu/counts.hpp"
#include "support/types.hpp"

namespace cheri::mem {

class Uncore
{
  public:
    /**
     * Address-frame stride between cores' LLC views. Workload virtual
     * addresses live far below bit 44, so frames never collide.
     */
    static constexpr Addr kLaneAddrStride = Addr{1} << 44;

    explicit Uncore(const MemConfig &config, u32 cores = 1);

    ~Uncore();

    /** Timing outcome of an uncore access (level is Llc or Dram). */
    struct Access
    {
        Cycles latency = 0;
        MemLevel level = MemLevel::Llc;
    };

    /**
     * An L2 miss from @p core. Counts LL_CACHE_RD / LL_CACHE_MISS_RD
     * into @p counts for reads (the N1 LLC events are read-side only,
     * matching the pre-split model); writes still update LLC state.
     * @p is_cap marks capability-width traffic so DRAM fills can be
     * attributed to tag-table line fills.
     */
    Access access(u32 core, Addr addr, bool is_write, bool is_cap,
                  pmu::EventCounts &counts);

    /**
     * Lane @p core is done issuing: it stops counting as a contender
     * for the remaining lanes. Must be called at a point that is
     * deterministic in the co-run interleave — in practice while the
     * lane still holds (or never took) the CorunGate token.
     */
    void coreFinished(u32 core);

    u32 cores() const { return cores_; }
    const SetAssocCache &llc() const { return llc_; }

    /** Per-lane uncore traffic, for interference reporting. */
    struct LaneStats
    {
        u64 llc_accesses = 0;
        u64 llc_hits = 0;
        u64 dram_fills = 0;
        /** DRAM fills of capability-width traffic (tag-table fills). */
        u64 tag_line_fills = 0;
        /** Cycles added by the arbitration (contention) model. */
        Cycles contention_cycles = 0;
    };
    const LaneStats &laneStats(u32 core) const;

  private:
    u32 contenders(u32 core) const;

    struct Lane
    {
        LaneStats stats;
        /**
         * Lifecycle flags are atomic only so a lane that never touches
         * the uncore can be marked finished from its own thread
         * without a data race; transitions that matter for timing are
         * serialized by the CorunGate token.
         */
        std::atomic<bool> started{false};
        std::atomic<bool> finished{false};
    };

    MemConfig config_;
    SetAssocCache llc_;
    u32 cores_;
    std::unique_ptr<Lane[]> lanes_;

    /**
     * One MRU fast-path entry for the whole uncore (accesses are
     * serialized — by construction solo, by the CorunGate token in a
     * co-run). Valid during an uninterrupted streak of LLC-hit
     * accesses from one core to one framed line; the arbitration toll
     * is recomputed per replay because the contender set can shrink
     * mid-streak. See PrivateHierarchy for the replay argument.
     */
    struct FastEntry
    {
        Addr line = 0; //!< Framed line index.
        u32 core = 0;
        bool valid = false;
        bool dirty = false;
    };
    FastEntry fp_;
    u64 fast_ = 0;
    u64 full_ = 0;
};

} // namespace cheri::mem

#endif // CHERI_MEM_UNCORE_HPP
