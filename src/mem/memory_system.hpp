/**
 * @file
 * The Morello memory hierarchy timing model, split along the SoC's
 * core/uncore boundary:
 *
 *  - PrivateHierarchy: one core's L1I/L1D, private L2, and two-level
 *    TLBs with a page walker (geometry per §2.2 of the paper:
 *    64 KiB 4-way L1s, 1 MiB 8-way private L2, 64 B lines).
 *  - Uncore (uncore.hpp): the shared 1 MiB 16-way system-level cache,
 *    tag-table traffic, and flat DRAM latency, arbitrated between
 *    cores. (§2.2 gives the LLC capacity but not its associativity;
 *    we model 16 ways — the SLC organisation of CMN-600-class mesh
 *    uncores — and pin the choice with a geometry test.)
 *
 * Each PrivateHierarchy counts PMU events into its core's
 * EventCounts as accesses flow through; it models timing and
 * presence only — functional data lives in BackingStore.
 */

#ifndef CHERI_MEM_MEMORY_SYSTEM_HPP
#define CHERI_MEM_MEMORY_SYSTEM_HPP

#include <memory>

#include "mem/cache.hpp"
#include "mem/tlb.hpp"
#include "pmu/counts.hpp"
#include "support/types.hpp"

namespace cheri::mem {

class Uncore;

/** Which level serviced an access. */
enum class MemLevel : u8 { L1, L2, Llc, Dram };

const char *memLevelName(MemLevel level);

struct MemConfig
{
    CacheConfig l1i{64 * kKiB, 4, 64};
    CacheConfig l1d{64 * kKiB, 4, 64};
    CacheConfig l2{1 * kMiB, 8, 64};
    /** Shared system-level cache; 16-way, see the file comment. */
    CacheConfig llc{1 * kMiB, 16, 64};

    TlbConfig l1i_tlb{48, 0, 4096};
    TlbConfig l1d_tlb{48, 0, 4096};
    TlbConfig l2_tlb{1280, 5, 4096};

    Cycles l1_latency = 4;
    Cycles l2_latency = 11;
    Cycles llc_latency = 35;
    Cycles dram_latency = 190;
    Cycles walk_latency = 22;

    /**
     * Extra latency applied to capability-width accesses, modelling a
     * hypothetical serial tag-storage lookup. 0 on Morello (tags ride
     * the data path); exposed as an ablation knob.
     */
    Cycles tag_extra_latency = 0;

    /**
     * Uncore arbitration penalties (co-run contention model): every
     * LLC lookup, respectively DRAM fill, pays this many extra cycles
     * per OTHER core that is currently mid-run. A deterministic
     * occupancy proxy for shared-bandwidth queueing — see
     * DESIGN.md "Core/uncore model" for what it does not capture.
     * With one core (or solo lanes) the penalty is always zero, so
     * single-core results are bit-identical to the pre-split model.
     */
    Cycles llc_arb_penalty = 6;
    Cycles dram_arb_penalty = 18;

    /**
     * DMI-style fast path: replay repeat accesses to the MRU L1 line
     * without the TLB/cache set searches when the outcome is provably
     * identical (same line, no straddle, micro-TLB and L1 hit, write
     * only onto an already-dirty line). Counts, latencies and LRU
     * victim choices are bit-identical either way — the regression
     * suite toggles this over the whole workload registry. Deliberately
     * NOT part of the result-cache fingerprint.
     */
    bool fast_path = true;
};

/** Timing outcome of one access. */
struct AccessResult
{
    Cycles latency = 0;
    MemLevel level = MemLevel::L1;
    bool tlb_walk = false;
};

/**
 * One core's private slice of the hierarchy: L1I/L1D, private L2 and
 * the TLBs. Misses past the L2 are forwarded to the shared Uncore.
 */
class PrivateHierarchy
{
  public:
    /**
     * SoC mode: a per-core slice over a shared @p uncore. @p core_id
     * selects the uncore arbitration lane and frames LLC addresses so
     * distinct cores' working sets contend for LLC capacity without
     * aliasing into shared lines.
     */
    PrivateHierarchy(const MemConfig &config, pmu::EventCounts &counts,
                     Uncore &uncore, u32 core_id);

    /**
     * Standalone mode: owns a private single-core Uncore. Equivalent
     * to the pre-split MemorySystem; used by unit tests and
     * microbenchmarks that exercise the hierarchy in isolation.
     */
    PrivateHierarchy(const MemConfig &config, pmu::EventCounts &counts);

    ~PrivateHierarchy();

    /**
     * Instruction fetch of the 16-byte fetch group at @p pc.
     * Counts L1I/ITLB events; refills propagate into the unified L2
     * and beyond, as on the N1.
     */
    AccessResult fetch(Addr pc);

    /**
     * Data access.
     *
     * @param addr Effective address.
     * @param size Bytes (16 for capability-width).
     * @param is_write Store if true.
     * @param is_cap Capability-width access: counts the Morello
     *        CAP_MEM_ACCESS / MEM_ACCESS_CTAG events and pays
     *        tag_extra_latency.
     */
    AccessResult data(Addr addr, u32 size, bool is_write, bool is_cap);

    const MemConfig &config() const { return config_; }
    u32 coreId() const { return core_; }

    // Component access for tests and diagnostics.
    const SetAssocCache &l1i() const { return l1i_; }
    const SetAssocCache &l1d() const { return l1d_; }
    const SetAssocCache &l2() const { return l2_; }
    /** The shared LLC (lives in the Uncore). */
    const SetAssocCache &llc() const;
    const Tlb &l1iTlb() const { return l1iTlb_; }
    const Tlb &l1dTlb() const { return l1dTlb_; }
    const Tlb &l2Tlb() const { return l2Tlb_; }
    Uncore &uncore() { return *uncore_; }
    const Uncore &uncore() const { return *uncore_; }

    /** Fast-path self-stats (telemetry; not model-visible). */
    u64 dataFastHits() const { return dataFast_; }
    u64 fetchFastHits() const { return fetchFast_; }

  private:
    /** Translate; returns walk latency contribution (0 on TLB hit). */
    Cycles translate(Addr addr, bool instruction_side, bool &walked);

    /**
     * One MRU fast-path entry. Valid only during an uninterrupted
     * streak of accesses to the same L1 line on this side (any
     * non-matching access invalidates it before walking the full
     * hierarchy), which is what makes the frozen-lastUse replay
     * argument airtight: during the streak no other line of the
     * replayed structures is touched.
     */
    struct FastEntry
    {
        Addr line = 0;
        bool valid = false;
        bool dirty = false; //!< Line known dirty (write at arm time).
    };

    MemConfig config_;
    pmu::EventCounts &counts_;
    SetAssocCache l1i_;
    SetAssocCache l1d_;
    SetAssocCache l2_;
    Tlb l1iTlb_;
    Tlb l1dTlb_;
    Tlb l2Tlb_;
    std::unique_ptr<Uncore> ownedUncore_; //!< Standalone mode only.
    Uncore *uncore_;
    u32 core_ = 0;

    FastEntry dataFp_;
    FastEntry fetchFp_;
    u64 dataFast_ = 0;
    u64 dataFull_ = 0;
    u64 fetchFast_ = 0;
    u64 fetchFull_ = 0;
};

/** Pre-split name; single-core call sites use the two-arg ctor. */
using MemorySystem = PrivateHierarchy;

} // namespace cheri::mem

#endif // CHERI_MEM_MEMORY_SYSTEM_HPP
