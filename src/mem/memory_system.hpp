/**
 * @file
 * The Morello memory hierarchy timing model, split along the SoC's
 * core/uncore boundary:
 *
 *  - PrivateHierarchy: one core's L1I/L1D, private L2, and two-level
 *    TLBs with a page walker (geometry per §2.2 of the paper:
 *    64 KiB 4-way L1s, 1 MiB 8-way private L2, 64 B lines).
 *  - Uncore (uncore.hpp): the shared 1 MiB 16-way system-level cache,
 *    tag-table traffic, and flat DRAM latency, arbitrated between
 *    cores. (§2.2 gives the LLC capacity but not its associativity;
 *    we model 16 ways — the SLC organisation of CMN-600-class mesh
 *    uncores — and pin the choice with a geometry test.)
 *
 * Each PrivateHierarchy counts PMU events into its core's
 * EventCounts as accesses flow through; it models timing and
 * presence only — functional data lives in BackingStore.
 */

#ifndef CHERI_MEM_MEMORY_SYSTEM_HPP
#define CHERI_MEM_MEMORY_SYSTEM_HPP

#include <memory>

#include "mem/cache.hpp"
#include "mem/tlb.hpp"
#include "pmu/counts.hpp"
#include "support/types.hpp"

namespace cheri::mem {

class Uncore;

/** Which level serviced an access. */
enum class MemLevel : u8 { L1, L2, Llc, Dram };

const char *memLevelName(MemLevel level);

struct MemConfig
{
    CacheConfig l1i{64 * kKiB, 4, 64};
    CacheConfig l1d{64 * kKiB, 4, 64};
    CacheConfig l2{1 * kMiB, 8, 64};
    /** Shared system-level cache; 16-way, see the file comment. */
    CacheConfig llc{1 * kMiB, 16, 64};

    TlbConfig l1i_tlb{48, 0, 4096};
    TlbConfig l1d_tlb{48, 0, 4096};
    TlbConfig l2_tlb{1280, 5, 4096};

    Cycles l1_latency = 4;
    Cycles l2_latency = 11;
    Cycles llc_latency = 35;
    Cycles dram_latency = 190;
    Cycles walk_latency = 22;

    /**
     * Extra latency applied to capability-width accesses, modelling a
     * hypothetical serial tag-storage lookup. 0 on Morello (tags ride
     * the data path); exposed as an ablation knob.
     */
    Cycles tag_extra_latency = 0;

    /**
     * Uncore arbitration penalties (co-run contention model): every
     * LLC lookup, respectively DRAM fill, pays this many extra cycles
     * per OTHER core that is currently mid-run. A deterministic
     * occupancy proxy for shared-bandwidth queueing — see
     * DESIGN.md "Core/uncore model" for what it does not capture.
     * With one core (or solo lanes) the penalty is always zero, so
     * single-core results are bit-identical to the pre-split model.
     */
    Cycles llc_arb_penalty = 6;
    Cycles dram_arb_penalty = 18;

    /**
     * Inline-cache fast path: line-indexed memo tables remember the
     * (line, page, cache way, TLB entry) of recent L1 hits; a repeat
     * access whose memo still validates replays the full walk's
     * exact outcome — same counts, same latency, same LRU mutations —
     * without the TLB/cache associative searches. The replay performs
     * the identical hit-side state update the search would (it is an
     * exact replay, not a frozen streak), so counts, latencies and
     * every later victim choice are bit-identical either way — the
     * regression suite toggles this over the whole workload registry.
     * Deliberately NOT part of the result-cache fingerprint.
     */
    bool fast_path = true;
};

/** Timing outcome of one access. */
struct AccessResult
{
    Cycles latency = 0;
    MemLevel level = MemLevel::L1;
    bool tlb_walk = false;
};

/**
 * One core's private slice of the hierarchy: L1I/L1D, private L2 and
 * the TLBs. Misses past the L2 are forwarded to the shared Uncore.
 */
class PrivateHierarchy
{
  public:
    /**
     * SoC mode: a per-core slice over a shared @p uncore. @p core_id
     * selects the uncore arbitration lane and frames LLC addresses so
     * distinct cores' working sets contend for LLC capacity without
     * aliasing into shared lines.
     */
    PrivateHierarchy(const MemConfig &config, pmu::EventCounts &counts,
                     Uncore &uncore, u32 core_id);

    /**
     * Standalone mode: owns a private single-core Uncore. Equivalent
     * to the pre-split MemorySystem; used by unit tests and
     * microbenchmarks that exercise the hierarchy in isolation.
     */
    PrivateHierarchy(const MemConfig &config, pmu::EventCounts &counts);

    ~PrivateHierarchy();

    /**
     * Instruction fetch of the 16-byte fetch group at @p pc.
     * Counts L1I/ITLB events; refills propagate into the unified L2
     * and beyond, as on the N1.
     *
     * Defined inline so the inline-cache replay — the outcome of
     * ~99% of fetches under fast_path — costs no cross-module call:
     * a fetch whose line's memo still validates (the recorded
     * micro-ITLB entry maps the page, the recorded L1I way holds the
     * line) replays the full walk's exact outcome with the identical
     * hit-side mutations, minus the associative searches. Both slots
     * validate before either mutates, so a stale memo falls through
     * to the out-of-line slow path with no state change.
     */
    AccessResult
    fetch(Addr pc)
    {
        const Addr fline = pc >> l1iLineShift_;
        if (config_.fast_path) {
            const InlineMemo &memo =
                fetchMemo_[fline & (kFetchMemoSize - 1)];
            if (memo.valid && memo.line == fline &&
                l1iTlb_.slotHolds(memo.tlbSlot, memo.vpn) &&
                l1i_.slotHolds(memo.cacheSlot, fline)) {
                ++fetchFast_;
                counts_.add(pmu::Event::L1iTlb);
                l1iTlb_.replayHit(memo.tlbSlot);
                counts_.add(pmu::Event::L1iCache);
                l1i_.replayHit(memo.cacheSlot, /*is_write=*/false);
                return AccessResult{};
            }
        }
        return fetchSlow(pc, fline);
    }

    /**
     * Data access.
     *
     * @param addr Effective address.
     * @param size Bytes (16 for capability-width).
     * @param is_write Store if true.
     * @param is_cap Capability-width access: counts the Morello
     *        CAP_MEM_ACCESS / MEM_ACCESS_CTAG events and pays
     *        tag_extra_latency.
     *
     * Inline for the same reason as fetch(): the memo replay — the
     * common outcome under fast_path — reproduces the full walk's
     * micro-DTLB-hit + L1D-hit path exactly, including the dirty
     * update (stores replay as readily as loads), without the
     * associative searches or the call into the slow path. Both
     * slots validate before either mutates.
     */
    AccessResult
    data(Addr addr, u32 size, bool is_write, bool is_cap)
    {
        // An access that straddles a line boundary touches two
        // lines; the second access is what the PMU would count as
        // another L1D access. Straddles never replay.
        const Addr dline = addr >> l1dLineShift_;
        const bool straddles =
            size > 0 && dline != ((addr + size - 1) >> l1dLineShift_);
        if (config_.fast_path && !straddles) {
            const InlineMemo &memo =
                dataMemo_[dline & (kDataMemoSize - 1)];
            if (memo.valid && memo.line == dline &&
                l1dTlb_.slotHolds(memo.tlbSlot, memo.vpn) &&
                l1d_.slotHolds(memo.cacheSlot, dline)) {
                ++dataFast_;
                counts_.add(is_write ? pmu::Event::MemAccessWr
                                     : pmu::Event::MemAccessRd);
                if (is_cap) {
                    counts_.add(is_write ? pmu::Event::CapMemAccessWr
                                         : pmu::Event::CapMemAccessRd);
                    counts_.add(is_write ? pmu::Event::MemAccessWrCtag
                                         : pmu::Event::MemAccessRdCtag);
                }
                counts_.add(pmu::Event::L1dTlb);
                l1dTlb_.replayHit(memo.tlbSlot);
                counts_.add(pmu::Event::L1dCache);
                l1d_.replayHit(memo.cacheSlot, is_write);
                AccessResult result;
                result.latency =
                    config_.tag_extra_latency * (is_cap ? 1 : 0) +
                    config_.l1_latency;
                return result;
            }
        }
        return dataSlow(addr, is_write, is_cap, dline, straddles);
    }

    const MemConfig &config() const { return config_; }
    u32 coreId() const { return core_; }

    // Component access for tests and diagnostics.
    const SetAssocCache &l1i() const { return l1i_; }
    const SetAssocCache &l1d() const { return l1d_; }
    const SetAssocCache &l2() const { return l2_; }
    /** The shared LLC (lives in the Uncore). */
    const SetAssocCache &llc() const;
    const Tlb &l1iTlb() const { return l1iTlb_; }
    const Tlb &l1dTlb() const { return l1dTlb_; }
    const Tlb &l2Tlb() const { return l2Tlb_; }
    Uncore &uncore() { return *uncore_; }
    const Uncore &uncore() const { return *uncore_; }

    /** Fast-path self-stats (telemetry; not model-visible). */
    u64 dataFastHits() const { return dataFast_; }
    u64 fetchFastHits() const { return fetchFast_; }

    /**
     * Flush fast-path telemetry deltas accumulated since the last
     * flush into the process-wide totals, attributed to this core.
     * sim::Core::finalize() calls this once per run so a Machine
     * reused across runs reports each run's coverage inside that
     * run's snapshot window; the destructor flushes any remainder.
     */
    void flushTelemetry();

  private:
    /** Translate; returns walk latency contribution (0 on TLB hit). */
    Cycles translate(Addr addr, bool instruction_side, bool &walked);

    /** Derive the shift forms of the line/page geometry (ctors). */
    void initShifts();

    /** Full fetch walk: everything past the inline memo replay. */
    AccessResult fetchSlow(Addr pc, Addr fline);

    /** Full data walk: everything past the inline memo replay. */
    AccessResult dataSlow(Addr addr, bool is_write, bool is_cap,
                          Addr dline, bool straddles);

    /**
     * One inline-cache memo: the slots a recent L1 hit to this line
     * went through. Purely a hint — the fast path re-validates both
     * slots (tag compare each) before mutating anything, so eviction
     * or flush can never make a replay wrong, only make it fall back.
     * vpn is recorded at arm time so validation needs no division:
     * same line implies same page.
     */
    struct InlineMemo
    {
        Addr line = 0; //!< L1 line address this memo predicts.
        Addr vpn = 0;  //!< That line's virtual page number.
        u32 cacheSlot = 0;
        u32 tlbSlot = 0;
        bool valid = false;
    };
    // Memo tables are direct-mapped by line; sizing them well above
    // the L1 line count keeps two resident-but-aliasing hot lines
    // from thrashing each other's memo (the L1 itself is set
    // associative, so both lines can coexist there).
    static constexpr u32 kDataMemoSize = 8192;
    static constexpr u32 kFetchMemoSize = 2048;

    MemConfig config_;
    pmu::EventCounts &counts_;
    SetAssocCache l1i_;
    SetAssocCache l1d_;
    SetAssocCache l2_;
    Tlb l1iTlb_;
    Tlb l1dTlb_;
    Tlb l2Tlb_;
    std::unique_ptr<Uncore> ownedUncore_; //!< Standalone mode only.
    Uncore *uncore_;
    u32 core_ = 0;

    // Shift forms of the power-of-two line and page geometry (both
    // asserted at construction): `addr >> lineShift` is exactly
    // `addr / line_bytes` for unsigned addresses, and nesting the
    // divisions gives `vpn = line >> vpnShift`. Pure strength
    // reduction — the hot path sheds its runtime-divisor divides
    // without changing a single quotient.
    u32 l1dLineShift_ = 0;
    u32 l1iLineShift_ = 0;
    u32 dataVpnShift_ = 0;
    u32 fetchVpnShift_ = 0;

    std::vector<InlineMemo> dataMemo_;
    std::vector<InlineMemo> fetchMemo_;
    u64 dataFast_ = 0;
    u64 dataFull_ = 0;
    u64 fetchFast_ = 0;
    u64 fetchFull_ = 0;
    // Already-flushed telemetry baselines (per-run delta reporting).
    u64 dataFastFlushed_ = 0;
    u64 dataFullFlushed_ = 0;
    u64 fetchFastFlushed_ = 0;
    u64 fetchFullFlushed_ = 0;
};

/** Pre-split name; single-core call sites use the two-arg ctor. */
using MemorySystem = PrivateHierarchy;

} // namespace cheri::mem

#endif // CHERI_MEM_MEMORY_SYSTEM_HPP
