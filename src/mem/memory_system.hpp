/**
 * @file
 * The Morello memory hierarchy timing model: per-core L1I/L1D, private
 * L2, shared last-level cache, two-level TLBs with a page walker, and
 * a flat DRAM latency. Geometry defaults follow §2.2 of the paper
 * (64 KiB 4-way L1s, 1 MiB 8-way L2, 1 MiB shared LLC, 64 B lines).
 *
 * The MemorySystem counts PMU events as accesses flow through it; it
 * models timing and presence only — functional data lives in
 * BackingStore.
 */

#ifndef CHERI_MEM_MEMORY_SYSTEM_HPP
#define CHERI_MEM_MEMORY_SYSTEM_HPP

#include "mem/cache.hpp"
#include "mem/tlb.hpp"
#include "pmu/counts.hpp"
#include "support/types.hpp"

namespace cheri::mem {

/** Which level serviced an access. */
enum class MemLevel : u8 { L1, L2, Llc, Dram };

const char *memLevelName(MemLevel level);

struct MemConfig
{
    CacheConfig l1i{64 * kKiB, 4, 64};
    CacheConfig l1d{64 * kKiB, 4, 64};
    CacheConfig l2{1 * kMiB, 8, 64};
    CacheConfig llc{1 * kMiB, 16, 64};

    TlbConfig l1i_tlb{48, 0, 4096};
    TlbConfig l1d_tlb{48, 0, 4096};
    TlbConfig l2_tlb{1280, 5, 4096};

    Cycles l1_latency = 4;
    Cycles l2_latency = 11;
    Cycles llc_latency = 35;
    Cycles dram_latency = 190;
    Cycles walk_latency = 22;

    /**
     * Extra latency applied to capability-width accesses, modelling a
     * hypothetical serial tag-storage lookup. 0 on Morello (tags ride
     * the data path); exposed as an ablation knob.
     */
    Cycles tag_extra_latency = 0;
};

/** Timing outcome of one access. */
struct AccessResult
{
    Cycles latency = 0;
    MemLevel level = MemLevel::L1;
    bool tlb_walk = false;
};

class MemorySystem
{
  public:
    MemorySystem(const MemConfig &config, pmu::EventCounts &counts);

    /**
     * Instruction fetch of the 16-byte fetch group at @p pc.
     * Counts L1I/ITLB events; refills propagate into the unified L2
     * and beyond, as on the N1.
     */
    AccessResult fetch(Addr pc);

    /**
     * Data access.
     *
     * @param addr Effective address.
     * @param size Bytes (16 for capability-width).
     * @param is_write Store if true.
     * @param is_cap Capability-width access: counts the Morello
     *        CAP_MEM_ACCESS / MEM_ACCESS_CTAG events and pays
     *        tag_extra_latency.
     */
    AccessResult data(Addr addr, u32 size, bool is_write, bool is_cap);

    const MemConfig &config() const { return config_; }

    // Component access for tests and diagnostics.
    const SetAssocCache &l1i() const { return l1i_; }
    const SetAssocCache &l1d() const { return l1d_; }
    const SetAssocCache &l2() const { return l2_; }
    const SetAssocCache &llc() const { return llc_; }
    const Tlb &l1iTlb() const { return l1iTlb_; }
    const Tlb &l1dTlb() const { return l1dTlb_; }
    const Tlb &l2Tlb() const { return l2Tlb_; }

  private:
    /** Translate; returns walk latency contribution (0 on TLB hit). */
    Cycles translate(Addr addr, bool instruction_side, bool &walked);

    MemConfig config_;
    pmu::EventCounts &counts_;
    SetAssocCache l1i_;
    SetAssocCache l1d_;
    SetAssocCache l2_;
    SetAssocCache llc_;
    Tlb l1iTlb_;
    Tlb l1dTlb_;
    Tlb l2Tlb_;
};

} // namespace cheri::mem

#endif // CHERI_MEM_MEMORY_SYSTEM_HPP
