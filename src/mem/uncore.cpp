#include "mem/uncore.hpp"

#include "support/logging.hpp"
#include "support/telemetry.hpp"

namespace cheri::mem {

using pmu::Event;

Uncore::Uncore(const MemConfig &config, u32 cores)
    : config_(config), llc_(config.llc), cores_(cores > 0 ? cores : 1),
      lanes_(std::make_unique<Lane[]>(cores_))
{
}

Uncore::~Uncore()
{
    telemetry::addUncoreFastPath(fast_, full_);
}

u32
Uncore::contenders(u32 core) const
{
    u32 n = 0;
    for (u32 o = 0; o < cores_; ++o) {
        if (o == core)
            continue;
        const Lane &lane = lanes_[o];
        if (lane.started.load(std::memory_order_relaxed) &&
            !lane.finished.load(std::memory_order_relaxed))
            ++n;
    }
    return n;
}

Uncore::Access
Uncore::access(u32 core, Addr addr, bool is_write, bool is_cap,
               pmu::EventCounts &counts)
{
    CHERI_ASSERT(core < cores_, "uncore access from core ", core, " of ",
                 cores_);
    Lane &lane = lanes_[core];
    if (!lane.started.load(std::memory_order_relaxed))
        lane.started.store(true, std::memory_order_relaxed);
    ++lane.stats.llc_accesses;

    const Cycles toll =
        static_cast<Cycles>(contenders(core)) * config_.llc_arb_penalty;
    const Addr framed = addr + static_cast<Addr>(core) * kLaneAddrStride;
    const Addr fline = framed / config_.llc.line_bytes;

    // Fast path: replay a same-core same-line LLC-hit streak without
    // the 16-way set search (toll recomputed — contenders may leave).
    if (fp_.valid && fp_.core == core && fp_.line == fline &&
        (!is_write || fp_.dirty)) {
        ++fast_;
        if (!is_write)
            counts.add(Event::LlCacheRd);
        llc_.noteFastHit();
        ++lane.stats.llc_hits;
        lane.stats.contention_cycles += toll;
        Access out;
        out.level = MemLevel::Llc;
        out.latency = config_.llc_latency + toll;
        return out;
    }
    ++full_;
    fp_.valid = false;

    Access out;
    if (!is_write)
        counts.add(Event::LlCacheRd);
    if (llc_.access(framed, is_write)) {
        ++lane.stats.llc_hits;
        out.level = MemLevel::Llc;
        out.latency = config_.llc_latency + toll;
        lane.stats.contention_cycles += toll;
        if (config_.fast_path) {
            fp_.line = fline;
            fp_.core = core;
            fp_.valid = true;
            fp_.dirty = is_write;
        }
        return out;
    }
    if (!is_write)
        counts.add(Event::LlCacheMissRd);
    ++lane.stats.dram_fills;
    if (is_cap)
        ++lane.stats.tag_line_fills;
    const Cycles dram_toll =
        static_cast<Cycles>(contenders(core)) * config_.dram_arb_penalty;
    out.level = MemLevel::Dram;
    out.latency = config_.dram_latency + toll + dram_toll;
    lane.stats.contention_cycles += toll + dram_toll;
    return out;
}

void
Uncore::coreFinished(u32 core)
{
    CHERI_ASSERT(core < cores_, "coreFinished(", core, ") of ", cores_);
    lanes_[core].finished.store(true, std::memory_order_relaxed);
}

const Uncore::LaneStats &
Uncore::laneStats(u32 core) const
{
    CHERI_ASSERT(core < cores_, "laneStats(", core, ") of ", cores_);
    return lanes_[core].stats;
}

} // namespace cheri::mem
