/**
 * @file
 * Heap temporal safety: a Cornucopia-style revocation sweeper.
 *
 * CHERI's spatial protection cannot by itself stop use-after-free:
 * a capability to a freed-and-reused allocation still has valid
 * bounds. CheriBSD's answer (Cornucopia / Cornucopia Reloaded, which
 * the paper cites as the temporal-safety direction, and whose
 * store-side data-dependent exceptions §2.2 names as an N1 pain
 * point) is quarantine + revocation: freed memory is quarantined
 * rather than reused, and a background sweep clears the tag of every
 * capability in memory that still points into quarantined space —
 * only then may the memory be reused.
 *
 * The Revoker implements that protocol over the simulated memory
 * image and tag table, with a simple cost model for the sweep (the
 * overhead source of the revocation approach).
 */

#ifndef CHERI_MEM_REVOKER_HPP
#define CHERI_MEM_REVOKER_HPP

#include <vector>

#include "mem/backing_store.hpp"
#include "support/types.hpp"

namespace cheri::mem {

struct SweepStats
{
    u64 granulesVisited = 0; //!< Tagged granules inspected.
    u64 capsRevoked = 0;     //!< Tags cleared (dangling capabilities).
    u64 bytesReleased = 0;   //!< Quarantined bytes returned for reuse.

    /**
     * Modeled sweep cost: one capability-width load per tagged
     * granule plus a tag write per revocation (the load-barrier
     * variant visits only tagged memory, not the whole heap).
     */
    Cycles
    modeledCycles(Cycles load_cost = 4, Cycles revoke_cost = 5) const
    {
        return granulesVisited * load_cost + capsRevoked * revoke_cost;
    }
};

/**
 * Observation hook for the sweep's memory traffic: one granuleVisited
 * per tagged granule inspected (a capability-width load) and one
 * capRevoked per tag cleared (a tag write). A revoking allocator
 * bridges these into the simulated core's lowering engine so sweep
 * cost lands in the modeled pipeline and mem::Uncore tag-table
 * counters instead of the side-channel modeledCycles() estimate.
 */
class SweepObserver
{
  public:
    virtual ~SweepObserver() = default;
    virtual void onGranuleVisited(Addr addr) = 0;
    virtual void onCapRevoked(Addr addr) = 0;
};

class Revoker
{
  public:
    explicit Revoker(BackingStore &store) : store_(store) {}

    /**
     * Mark a freed region as quarantined: it must not be handed out
     * again until a sweep has revoked every capability into it.
     * Adjacent and overlapping regions coalesce — freeing neighboring
     * blocks yields one merged region, so quarantinedBytes() and the
     * sweep's bytesReleased never double-count granules.
     */
    void quarantine(Addr base, u64 length);

    /** True when [addr, addr+size) overlaps quarantined space. */
    bool isQuarantined(Addr addr, u64 size = 1) const;

    /** Total bytes currently in quarantine. */
    u64 quarantinedBytes() const;

    /**
     * The revocation pass: visit every tagged granule in the memory
     * image, load the capability stored there, and clear its tag if
     * it can authorize access to quarantined memory (its
     * [base, top) overlaps a quarantined region). On completion the
     * quarantine empties — the memory is safe to reuse.
     *
     * @param observer When non-null, receives one onGranuleVisited
     *        per tagged granule inspected and one onCapRevoked per
     *        tag cleared, in address order (deterministic).
     */
    SweepStats sweep(SweepObserver *observer = nullptr);

    /** Number of (coalesced) quarantined regions — test visibility. */
    std::size_t regionCount() const { return quarantine_.size(); }

  private:
    struct Region
    {
        Addr base;
        u64 length;
    };

    BackingStore &store_;
    std::vector<Region> quarantine_; //!< Sorted by base, disjoint.
};

} // namespace cheri::mem

#endif // CHERI_MEM_REVOKER_HPP
