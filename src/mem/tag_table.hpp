/**
 * @file
 * Out-of-band capability tag storage.
 *
 * CHERI stores one validity bit per capability-aligned (16-byte)
 * granule of physical memory, inaccessible to data loads and stores.
 * Morello carries the bits alongside the data through the cache
 * hierarchy and DRAM. The table also keeps the access statistics
 * behind the MEM_ACCESS_*_CTAG PMU events.
 */

#ifndef CHERI_MEM_TAG_TABLE_HPP
#define CHERI_MEM_TAG_TABLE_HPP

#include <functional>
#include <unordered_map>

#include "support/types.hpp"

namespace cheri::mem {

/** Capability granule size: one tag bit per 16 bytes. */
inline constexpr u64 kCapGranule = 16;

class TagTable
{
  public:
    /** Read the tag covering @p addr (must be granule-aligned). */
    bool read(Addr addr);

    /** Write the tag covering @p addr. */
    void write(Addr addr, bool tag);

    /**
     * Clear the tag of the granule containing @p addr if a plain data
     * write of @p size bytes overlaps it — the hardware rule that
     * makes capabilities unforgeable through byte stores.
     */
    void clobber(Addr addr, u64 size);

    u64 tagReads() const { return reads_; }
    u64 tagWrites() const { return writes_; }

    /** Number of granules currently tagged (for tests/diagnostics). */
    u64 taggedCount() const;

    /**
     * Visit the address of every currently-tagged granule. The
     * visitation order is unspecified; the callback must not mutate
     * the table (collect first, then write). Used by the revocation
     * sweeper, which — like Cornucopia's load barriers — only needs
     * to find live capabilities, not scan untagged memory.
     */
    void forEachTagged(const std::function<void(Addr)> &visit) const;

  private:
    /** 64 granule bits per map entry: covers 1 KiB of memory. */
    std::unordered_map<u64, u64> bits_;
    u64 reads_ = 0;
    u64 writes_ = 0;
};

} // namespace cheri::mem

#endif // CHERI_MEM_TAG_TABLE_HPP
