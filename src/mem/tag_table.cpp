#include "mem/tag_table.hpp"

#include <bit>

namespace cheri::mem {

namespace {

u64
granuleIndex(Addr addr)
{
    return addr / kCapGranule;
}

} // namespace

bool
TagTable::read(Addr addr)
{
    ++reads_;
    const u64 granule = granuleIndex(addr);
    const auto it = bits_.find(granule / 64);
    if (it == bits_.end())
        return false;
    return (it->second >> (granule % 64)) & 1;
}

void
TagTable::write(Addr addr, bool tag)
{
    ++writes_;
    const u64 granule = granuleIndex(addr);
    const u64 key = granule / 64;
    const u64 mask = 1ULL << (granule % 64);
    if (tag) {
        bits_[key] |= mask;
    } else {
        const auto it = bits_.find(key);
        if (it != bits_.end()) {
            it->second &= ~mask;
            if (it->second == 0)
                bits_.erase(it);
        }
    }
}

void
TagTable::clobber(Addr addr, u64 size)
{
    if (bits_.empty()) // nothing tagged, nothing to unforge
        return;
    const u64 first = granuleIndex(addr);
    const u64 last = size ? granuleIndex(addr + size - 1) : first;
    for (u64 granule = first; granule <= last; ++granule) {
        const u64 key = granule / 64;
        const auto it = bits_.find(key);
        if (it != bits_.end()) {
            it->second &= ~(1ULL << (granule % 64));
            if (it->second == 0)
                bits_.erase(it);
        }
    }
}

u64
TagTable::taggedCount() const
{
    u64 total = 0;
    for (const auto &[key, word] : bits_)
        total += static_cast<u64>(std::popcount(word));
    return total;
}

void
TagTable::forEachTagged(const std::function<void(Addr)> &visit) const
{
    for (const auto &[key, word] : bits_) {
        for (int bit = 0; bit < 64; ++bit) {
            if ((word >> bit) & 1) {
                const u64 granule = key * 64 + static_cast<u64>(bit);
                visit(granule * kCapGranule);
            }
        }
    }
}

} // namespace cheri::mem
