/**
 * @file
 * Compressed bounds encoding in the style of CHERI Concentrate.
 *
 * A capability's [base, top) region is not stored as two full 64-bit
 * words; it is compressed into two MW-bit mantissas (B and T) plus a
 * shared exponent E, and reconstructed relative to the capability's
 * current address. Large or misaligned regions may not be exactly
 * representable: encode() rounds the base down and the top up to the
 * nearest representable boundary, exactly as CSetBounds does in
 * hardware.
 *
 * The reconstruction uses the "representable space" correction of the
 * CHERI Concentrate paper (Woodruff et al., IEEE TC 2019): the address
 * bits above E+MW may differ from those of base/top by at most one,
 * with the sign decided by comparison against the representable limit
 * R = (B_top3 - 1) << (MW-3).
 */

#ifndef CHERI_CAP_BOUNDS_HPP
#define CHERI_CAP_BOUNDS_HPP

#include "support/types.hpp"

namespace cheri::cap {

/** Mantissa width of the B and T fields (CHERI-128 uses 14). */
inline constexpr unsigned kMantissaWidth = 14;

/** Maximum exponent: beyond this the region covers the address space. */
inline constexpr unsigned kMaxExponent = 64 - kMantissaWidth + 2;

/** The compressed bounds fields as stored in the capability word. */
struct BoundsFields
{
    u32 b = 0;   //!< Base mantissa, kMantissaWidth bits.
    u32 t = 0;   //!< Top mantissa, kMantissaWidth bits.
    u8 e = 0;    //!< Shared exponent.

    bool operator==(const BoundsFields &) const = default;
};

/** Result of decoding bounds against a concrete address. */
struct DecodedBounds
{
    u64 base = 0;
    /**
     * Exclusive top. A top of exactly 2^64 is representable in CHERI
     * (the root capability); we saturate to ~0 and track it with
     * topIsMax to keep the interface on 64-bit arithmetic.
     */
    u64 top = 0;
    bool topIsMax = false; //!< True when top == 2^64.

    u64
    length() const
    {
        if (topIsMax)
            return ~base + 1 == 0 ? ~0ULL : (0ULL - base);
        return top - base;
    }
};

/** Result of encoding a requested [base, base+length) region. */
struct EncodeResult
{
    BoundsFields fields;
    bool exact = false; //!< True when no rounding was necessary.
};

/**
 * Encode the requested region. If the region is not exactly
 * representable at the required exponent, base is rounded down and top
 * rounded up (monotonic: the encoded region always contains the
 * requested one).
 *
 * @param base Requested base address.
 * @param top Requested exclusive top; pass topIsMax for 2^64.
 */
EncodeResult encodeBounds(u64 base, u64 top, bool topIsMax = false);

/**
 * Decode the bounds fields relative to an address.
 *
 * @param fields Compressed fields.
 * @param address The capability's current address.
 */
DecodedBounds decodeBounds(const BoundsFields &fields, u64 address);

/**
 * True if @p address decodes to the same region as @p reference does,
 * i.e. the address lies within the representable space of the bounds.
 * Out-of-representable-range addresses must clear the tag on pointer
 * arithmetic, per the CHERI ISA.
 */
bool isRepresentable(const BoundsFields &fields, u64 reference,
                     u64 address);

/**
 * The alignment mask CRRL/CRAM would report for a requested length:
 * aligning base to this mask guarantees exact representability.
 */
u64 representableAlignmentMask(u64 length);

/**
 * The rounded-up length CRRL would report for a requested length.
 * Like the hardware result register the value is modulo 2^64: a
 * request within one granule of 2^64 rounds up to the whole address
 * space and reads back as 0.
 */
u64 representableLength(u64 length);

} // namespace cheri::cap

#endif // CHERI_CAP_BOUNDS_HPP
