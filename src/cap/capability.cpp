#include "cap/capability.hpp"

#include <sstream>

#include "support/logging.hpp"

namespace cheri::cap {

namespace {

using u128 = unsigned __int128;

} // namespace

Capability::Capability(bool tag, u64 address, BoundsFields fields,
                       PermSet perms, u16 otype)
    : tag_(tag), address_(address), fields_(fields), perms_(perms),
      otype_(otype)
{
}

Capability
Capability::root()
{
    const EncodeResult enc = encodeBounds(0, 0, /*topIsMax=*/true);
    CHERI_ASSERT(enc.exact, "root bounds must encode exactly");
    return Capability(true, 0, enc.fields, PermSet::all(), kOtypeUnsealed);
}

Capability
Capability::codeRegion(u64 base, u64 length)
{
    return root().withAddress(base).setBounds(length).withPerms(
        PermSet::code());
}

Capability
Capability::dataRegion(u64 base, u64 length)
{
    return root().withAddress(base).setBounds(length).withPerms(
        PermSet::data());
}

u64
Capability::base() const
{
    return decodeBounds(fields_, address_).base;
}

u64
Capability::top() const
{
    const DecodedBounds d = decodeBounds(fields_, address_);
    return d.topIsMax ? ~0ULL : d.top;
}

u64
Capability::length() const
{
    const DecodedBounds d = decodeBounds(fields_, address_);
    if (d.topIsMax)
        return d.base == 0 ? ~0ULL : (0ULL - d.base);
    return d.top - d.base;
}

bool
Capability::inBounds(u64 addr, u64 size) const
{
    const DecodedBounds d = decodeBounds(fields_, address_);
    const u128 access_end = u128(addr) + size;
    const u128 top = d.topIsMax ? (u128(1) << 64) : u128(d.top);
    return addr >= d.base && access_end <= top;
}

Capability
Capability::withAddress(u64 addr) const
{
    Capability out = *this;
    if (sealed() || !isRepresentable(fields_, address_, addr))
        out.tag_ = false;
    out.address_ = addr;
    return out;
}

Capability
Capability::add(s64 delta) const
{
    return withAddress(address_ + static_cast<u64>(delta));
}

Capability
Capability::setBounds(u64 length, bool exact) const
{
    const u64 req_base = address_;
    const u128 req_top = u128(req_base) + length;

    Capability out = *this;
    bool ok = tag_ && !sealed();

    // The requested region must lie within the parent's bounds.
    const DecodedBounds parent = decodeBounds(fields_, address_);
    const u128 parent_top =
        parent.topIsMax ? (u128(1) << 64) : u128(parent.top);
    if (req_base < parent.base || req_top > parent_top)
        ok = false;

    const bool top_is_max = req_top == (u128(1) << 64);
    const EncodeResult enc =
        encodeBounds(req_base, static_cast<u64>(req_top), top_is_max);
    if (exact && !enc.exact)
        ok = false;

    // Conservative monotonicity: if representability rounding pushed
    // the child outside the parent region, refuse (clear the tag).
    const DecodedBounds child = decodeBounds(enc.fields, req_base);
    const u128 child_top = child.topIsMax ? (u128(1) << 64) : u128(child.top);
    if (child.base < parent.base || child_top > parent_top)
        ok = false;

    out.tag_ = ok;
    out.fields_ = enc.fields;
    out.address_ = req_base;
    return out;
}

Capability
Capability::withPerms(PermSet mask) const
{
    Capability out = *this;
    if (sealed())
        out.tag_ = false;
    out.perms_ = perms_.intersect(mask);
    return out;
}

Capability
Capability::withoutTag() const
{
    Capability out = *this;
    out.tag_ = false;
    return out;
}

Capability
Capability::sealWith(const Capability &sealer) const
{
    Capability out = *this;
    const bool sealer_ok = sealer.tag() && !sealer.sealed() &&
                           sealer.perms().has(Perm::Seal) &&
                           sealer.inBounds(sealer.address(), 1) &&
                           sealer.address() >= 1 &&
                           sealer.address() <= kOtypeMax;
    if (!tag_ || sealed() || !sealer_ok) {
        out.tag_ = false;
        return out;
    }
    out.otype_ = static_cast<u16>(sealer.address());
    return out;
}

Capability
Capability::unsealWith(const Capability &unsealer) const
{
    Capability out = *this;
    const bool unsealer_ok = unsealer.tag() && !unsealer.sealed() &&
                             unsealer.perms().has(Perm::Unseal) &&
                             unsealer.address() == otype_;
    if (!tag_ || !sealed() || !unsealer_ok) {
        out.tag_ = false;
        return out;
    }
    out.otype_ = kOtypeUnsealed;
    return out;
}

MaybeFault
Capability::checkAccess(u64 addr, u64 size, bool wantStore,
                        bool capWidth) const
{
    if (!tag_)
        return CapFault{CapFaultKind::TagViolation, addr, size};
    if (sealed())
        return CapFault{CapFaultKind::SealViolation, addr, size};
    if (wantStore) {
        if (!perms_.has(Perm::Store))
            return CapFault{CapFaultKind::PermitStoreViolation, addr, size};
        if (capWidth && !perms_.has(Perm::StoreCap))
            return CapFault{CapFaultKind::PermitStoreCapViolation, addr,
                            size};
    } else {
        if (!perms_.has(Perm::Load))
            return CapFault{CapFaultKind::PermitLoadViolation, addr, size};
        if (capWidth && !perms_.has(Perm::LoadCap))
            return CapFault{CapFaultKind::PermitLoadCapViolation, addr,
                            size};
    }
    if (!inBounds(addr, size))
        return CapFault{CapFaultKind::BoundsViolation, addr, size};
    return std::nullopt;
}

MaybeFault
Capability::checkExecute(u64 addr) const
{
    if (!tag_)
        return CapFault{CapFaultKind::TagViolation, addr, 0};
    if (sealed())
        return CapFault{CapFaultKind::SealViolation, addr, 0};
    if (!perms_.has(Perm::Execute))
        return CapFault{CapFaultKind::PermitExecuteViolation, addr, 0};
    // Instructions are 4 bytes in MorelloLite.
    if (!inBounds(addr, 4))
        return CapFault{CapFaultKind::BoundsViolation, addr, 4};
    return std::nullopt;
}

PackedCap
Capability::pack() const
{
    PackedCap packed;
    packed.address = address_;
    packed.metadata = (u64(perms_.bits()) << 48) |
                      (u64(otype_ & 0x3fff) << 34) |
                      (u64(fields_.e & 0x3f) << 28) |
                      (u64(fields_.b & 0x3fff) << 14) |
                      u64(fields_.t & 0x3fff);
    return packed;
}

Capability
Capability::unpack(const PackedCap &packed, bool tag)
{
    BoundsFields fields;
    fields.t = static_cast<u32>(packed.metadata & 0x3fff);
    fields.b = static_cast<u32>((packed.metadata >> 14) & 0x3fff);
    fields.e = static_cast<u8>((packed.metadata >> 28) & 0x3f);
    const u16 otype = static_cast<u16>((packed.metadata >> 34) & 0x3fff);
    const PermSet perms(static_cast<u16>(packed.metadata >> 48));
    return Capability(tag, packed.address, fields, perms, otype);
}

std::string
Capability::toString() const
{
    std::ostringstream os;
    os << "cap[" << (tag_ ? "valid" : "invalid") << " addr=0x" << std::hex
       << address_ << " base=0x" << base() << " top=0x" << top()
       << std::dec;
    if (sealed())
        os << " otype=" << otype_;
    os << " perms=" << perms_.toString() << "]";
    return os.str();
}

std::string
PermSet::toString() const
{
    static const struct
    {
        Perm perm;
        char tag;
    } kNames[] = {
        {Perm::Global, 'G'},    {Perm::Execute, 'x'},
        {Perm::Load, 'r'},      {Perm::Store, 'w'},
        {Perm::LoadCap, 'R'},   {Perm::StoreCap, 'W'},
        {Perm::StoreLocalCap, 'L'}, {Perm::Seal, 's'},
        {Perm::Unseal, 'u'},    {Perm::System, 'S'},
        {Perm::BranchSealedPair, 'b'}, {Perm::CompartmentId, 'c'},
        {Perm::MutableLoad, 'm'},
    };
    std::string out;
    for (const auto &entry : kNames)
        if (has(entry.perm))
            out += entry.tag;
    return out.empty() ? "-" : out;
}

} // namespace cheri::cap
