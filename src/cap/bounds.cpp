#include "cap/bounds.hpp"

#include "support/logging.hpp"

namespace cheri::cap {

namespace {

using u128 = unsigned __int128;

constexpr u32 kMask = (1u << kMantissaWidth) - 1;

/**
 * The largest mantissa-unit region size we encode at a given exponent:
 * 3/4 of the mantissa space. The base sits at most 1/4 space above the
 * representable limit R, so a 3/4-space region keeps the top below
 * R + 2^MW and the reconstruction corrections within +/-1. The slack
 * also gives every capability a representable out-of-bounds buffer, as
 * in CHERI Concentrate.
 */
constexpr u32 kMantissaLimit =
    (1u << kMantissaWidth) - (1u << (kMantissaWidth - 2));

u128
ceilShift(u128 value, unsigned e)
{
    const u128 one = 1;
    return (value + ((one << e) - 1)) >> e;
}

} // namespace

EncodeResult
encodeBounds(u64 base, u64 top, bool topIsMax)
{
    const u128 top128 = topIsMax ? (u128(1) << 64) : u128(top);
    CHERI_ASSERT(u128(base) <= top128, "encodeBounds: base above top");
    const u128 length = top128 - base;

    unsigned e = 0;
    // Smallest exponent at which the region (with worst-case rounding)
    // fits within the representable fraction of the mantissa space.
    while (e < kMaxExponent) {
        const u128 b_full = u128(base) >> e;
        const u128 t_full = ceilShift(top128, e);
        if (t_full - b_full <= kMantissaLimit)
            break;
        ++e;
    }

    const u128 b_full = u128(base) >> e;
    const u128 t_full = ceilShift(top128, e);

    EncodeResult result;
    result.fields.e = static_cast<u8>(e);
    result.fields.b = static_cast<u32>(b_full) & kMask;
    result.fields.t = static_cast<u32>(t_full) & kMask;
    result.exact = (b_full << e) == u128(base) && (t_full << e) == top128;
    (void)length;
    return result;
}

DecodedBounds
decodeBounds(const BoundsFields &fields, u64 address)
{
    const unsigned e = fields.e;
    const u64 a_mid = (address >> e) & kMask;
    const u64 a_hi =
        (e + kMantissaWidth >= 64) ? 0 : (address >> (e + kMantissaWidth));

    // Representable limit R: one 1/8-chunk below the base mantissa.
    const u32 r = ((fields.b >> (kMantissaWidth - 3)) - 1)
                  << (kMantissaWidth - 3);
    const u32 r_masked = r & kMask;

    auto correction = [&](u32 x) -> int {
        const bool x_below = (x & kMask) < r_masked;
        const bool a_below = a_mid < r_masked;
        if (x_below == a_below)
            return 0;
        // If x wraps below R while the address does not, x lives one
        // representable space above the address's, and vice versa.
        return x_below ? 1 : -1;
    };

    const s64 b_hi = static_cast<s64>(a_hi) + correction(fields.b);
    const s64 t_hi = static_cast<s64>(a_hi) + correction(fields.t);

    const u128 one = 1;
    u128 base128 = ((u128(static_cast<u64>(b_hi)) << kMantissaWidth) |
                    fields.b)
                   << e;
    u128 top128 = ((u128(static_cast<u64>(t_hi)) << kMantissaWidth) |
                   fields.t)
                  << e;
    // Addresses are modulo 2^64; the top may legitimately reach 2^64.
    base128 &= (one << 64) - 1;
    top128 &= (one << 65) - 1;

    DecodedBounds out;
    out.base = static_cast<u64>(base128);
    out.topIsMax = top128 >= (one << 64);
    out.top = out.topIsMax ? ~0ULL : static_cast<u64>(top128);
    return out;
}

bool
isRepresentable(const BoundsFields &fields, u64 reference, u64 address)
{
    const DecodedBounds ref = decodeBounds(fields, reference);
    const DecodedBounds alt = decodeBounds(fields, address);
    return ref.base == alt.base && ref.top == alt.top &&
           ref.topIsMax == alt.topIsMax;
}

u64
representableAlignmentMask(u64 length)
{
    unsigned e = 0;
    while (e < kMaxExponent && ceilShift(length, e) > kMantissaLimit)
        ++e;
    if (e == 0)
        return ~0ULL;
    return ~((1ULL << e) - 1);
}

u64
representableLength(u64 length)
{
    const u64 mask = representableAlignmentMask(length);
    if (mask == ~0ULL)
        return length;
    const u64 granule = ~mask + 1;
    // 128-bit so lengths within one granule of 2^64 round up to 2^64
    // instead of wrapping; like the hardware CRRL result register the
    // return value is modulo 2^64, so "whole address space" reads 0.
    const u128 rounded = (u128(length) + granule - 1) & u128(mask);
    CHERI_ASSERT(rounded >= length || rounded == 0,
                 "representableLength overflow");
    return static_cast<u64>(rounded);
}

} // namespace cheri::cap
