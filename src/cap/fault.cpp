#include "cap/fault.hpp"

#include <sstream>

namespace cheri::cap {

const char *
capFaultKindName(CapFaultKind kind)
{
    switch (kind) {
      case CapFaultKind::None:
        return "none";
      case CapFaultKind::TagViolation:
        return "tag violation";
      case CapFaultKind::SealViolation:
        return "seal violation";
      case CapFaultKind::BoundsViolation:
        return "bounds violation";
      case CapFaultKind::PermitLoadViolation:
        return "permit-load violation";
      case CapFaultKind::PermitStoreViolation:
        return "permit-store violation";
      case CapFaultKind::PermitExecuteViolation:
        return "permit-execute violation";
      case CapFaultKind::PermitLoadCapViolation:
        return "permit-load-capability violation";
      case CapFaultKind::PermitStoreCapViolation:
        return "permit-store-capability violation";
      case CapFaultKind::RepresentabilityLoss:
        return "representability loss";
    }
    return "unknown";
}

std::string
CapFault::toString() const
{
    std::ostringstream os;
    os << "in-address-space security exception: " << capFaultKindName(kind)
       << " at 0x" << std::hex << address;
    if (size)
        os << std::dec << " (size " << size << ")";
    return os.str();
}

} // namespace cheri::cap
