/**
 * @file
 * Capability permission bits, modelled on the Morello/CHERI permission
 * set (CHERI ISA v9). Permissions are a monotonically decreasing set:
 * derived capabilities can only clear bits, never set them.
 */

#ifndef CHERI_CAP_PERMS_HPP
#define CHERI_CAP_PERMS_HPP

#include <string>

#include "support/types.hpp"

namespace cheri::cap {

/** Permission bit positions within the 16-bit permission field. */
enum class Perm : u16 {
    Global = 1u << 0,          //!< May be stored via non-local caps.
    Execute = 1u << 1,         //!< May be installed as PCC / branched to.
    Load = 1u << 2,            //!< May load data.
    Store = 1u << 3,           //!< May store data.
    LoadCap = 1u << 4,         //!< May load tagged capabilities.
    StoreCap = 1u << 5,        //!< May store tagged capabilities.
    StoreLocalCap = 1u << 6,   //!< May store local (non-global) caps.
    Seal = 1u << 7,            //!< May seal other capabilities.
    Unseal = 1u << 8,          //!< May unseal sealed capabilities.
    System = 1u << 9,          //!< Access to system registers.
    BranchSealedPair = 1u << 10, //!< CInvoke-style sealed-pair branch.
    CompartmentId = 1u << 11,  //!< Usable as a compartment id.
    MutableLoad = 1u << 12,    //!< Loaded caps keep store permission.
};

/** A set of permissions, stored as a 16-bit mask. */
class PermSet
{
  public:
    constexpr PermSet() = default;
    constexpr explicit PermSet(u16 bits) : bits_(bits) {}

    static constexpr PermSet
    all()
    {
        return PermSet(0x1fff);
    }

    /** The usual data capability: load/store data and capabilities. */
    static constexpr PermSet
    data()
    {
        return PermSet(static_cast<u16>(Perm::Global) |
                       static_cast<u16>(Perm::Load) |
                       static_cast<u16>(Perm::Store) |
                       static_cast<u16>(Perm::LoadCap) |
                       static_cast<u16>(Perm::StoreCap) |
                       static_cast<u16>(Perm::StoreLocalCap));
    }

    /** The usual code capability: load + execute. */
    static constexpr PermSet
    code()
    {
        return PermSet(static_cast<u16>(Perm::Global) |
                       static_cast<u16>(Perm::Load) |
                       static_cast<u16>(Perm::Execute));
    }

    constexpr bool
    has(Perm p) const
    {
        return (bits_ & static_cast<u16>(p)) != 0;
    }

    /** Monotonic restriction: intersect with a mask. */
    constexpr PermSet
    intersect(PermSet other) const
    {
        return PermSet(bits_ & other.bits_);
    }

    /** Clear one permission. */
    constexpr PermSet
    without(Perm p) const
    {
        return PermSet(bits_ & static_cast<u16>(~static_cast<u16>(p)));
    }

    /** True if this set is a subset of (or equal to) other. */
    constexpr bool
    subsetOf(PermSet other) const
    {
        return (bits_ & ~other.bits_) == 0;
    }

    constexpr u16 bits() const { return bits_; }
    constexpr bool operator==(const PermSet &) const = default;

    std::string toString() const;

  private:
    u16 bits_ = 0;
};

} // namespace cheri::cap

#endif // CHERI_CAP_PERMS_HPP
