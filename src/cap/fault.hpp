/**
 * @file
 * Capability fault taxonomy. When a checked access violates the CHERI
 * protection model the simulated hardware raises one of these faults —
 * CheriBSD surfaces them to the process as an "in-address-space
 * security exception" (SIGPROT), the failure mode Table 5/6 of the
 * paper reports for several SPEC benchmarks.
 */

#ifndef CHERI_CAP_FAULT_HPP
#define CHERI_CAP_FAULT_HPP

#include <optional>
#include <string>

#include "support/types.hpp"

namespace cheri::cap {

/** The cause of a capability violation. */
enum class CapFaultKind : u8 {
    None = 0,
    TagViolation,          //!< Untagged (invalid) capability dereference.
    SealViolation,         //!< Sealed capability used without unsealing.
    BoundsViolation,       //!< Access outside [base, top).
    PermitLoadViolation,   //!< Load without Load permission.
    PermitStoreViolation,  //!< Store without Store permission.
    PermitExecuteViolation, //!< Branch to a non-executable capability.
    PermitLoadCapViolation, //!< Capability load without LoadCap.
    PermitStoreCapViolation, //!< Capability store without StoreCap.
    RepresentabilityLoss,  //!< Pointer arithmetic left representable space.
};

/** A concrete fault instance: what went wrong and where. */
struct CapFault
{
    CapFaultKind kind = CapFaultKind::None;
    u64 address = 0;  //!< Faulting effective address.
    u64 size = 0;     //!< Access size in bytes (0 if not an access).

    std::string toString() const;
};

/** Human-readable name of a fault kind. */
const char *capFaultKindName(CapFaultKind kind);

/** Convenience alias used by checked operations. */
using MaybeFault = std::optional<CapFault>;

} // namespace cheri::cap

#endif // CHERI_CAP_FAULT_HPP
