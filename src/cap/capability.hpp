/**
 * @file
 * The 128-bit (plus out-of-band tag) CHERI capability.
 *
 * Layout of the packed representation (our CHERI-Concentrate-style
 * format; field split documented in DESIGN.md):
 *
 *   metadata word (64 bits): perms[16] | otype[14] | e[6] | b[14] | t[14]
 *   address word  (64 bits): full 64-bit address
 *   tag           (1 bit)  : stored out of band (see mem::TagTable)
 *
 * All mutating operations are monotonic: a derived capability never
 * gains bounds or permissions, and any operation that would violate
 * monotonicity or representability clears the tag instead (matching
 * the CHERI ISA's non-faulting pointer arithmetic).
 */

#ifndef CHERI_CAP_CAPABILITY_HPP
#define CHERI_CAP_CAPABILITY_HPP

#include <string>

#include "cap/bounds.hpp"
#include "cap/fault.hpp"
#include "cap/perms.hpp"
#include "support/types.hpp"

namespace cheri::cap {

/** Object-type value meaning "not sealed". */
inline constexpr u16 kOtypeUnsealed = 0;
/** Largest object type encodable in the 14-bit otype field. */
inline constexpr u16 kOtypeMax = (1u << 14) - 1;

/** The packed 128-bit in-memory image of a capability. */
struct PackedCap
{
    u64 metadata = 0;
    u64 address = 0;

    bool operator==(const PackedCap &) const = default;
};

class Capability
{
  public:
    /** The null capability: untagged, zero everything. */
    Capability() = default;

    /**
     * The root capability: tagged, spans the whole address space,
     * carries every permission. All other capabilities derive from it.
     */
    static Capability root();

    /** Root-derived executable capability spanning [base, top). */
    static Capability codeRegion(u64 base, u64 length);

    /** Root-derived data capability spanning [base, top). */
    static Capability dataRegion(u64 base, u64 length);

    // --- Observers -------------------------------------------------
    bool tag() const { return tag_; }
    u64 address() const { return address_; }
    PermSet perms() const { return perms_; }
    u16 otype() const { return otype_; }
    bool sealed() const { return otype_ != kOtypeUnsealed; }

    /** Decoded lower bound. */
    u64 base() const;
    /** Decoded exclusive upper bound (saturated to 2^64-1 at the max). */
    u64 top() const;
    /** top() - base(), saturated. */
    u64 length() const;
    /** address() - base() (may be "negative": wraps, as in hardware). */
    u64 offset() const { return address_ - base(); }

    /** True when [addr, addr+size) lies within the bounds. */
    bool inBounds(u64 addr, u64 size) const;

    // --- Derivation (monotonic, tag-clearing on violation) ----------

    /**
     * CSetAddr: replace the address. Clears the tag if the new address
     * leaves the representable space of the compressed bounds.
     */
    Capability withAddress(u64 addr) const;

    /** CIncOffset-style pointer arithmetic. */
    Capability add(s64 delta) const;

    /**
     * CSetBounds: narrow the bounds to [address, address+length).
     * Clears the tag if the request would widen the bounds. The
     * resulting bounds may be rounded outward to the nearest
     * representable region (but never beyond the parent's bounds when
     * @p exact is requested — in that case the tag is cleared).
     */
    Capability setBounds(u64 length, bool exact = false) const;

    /** CAndPerm: intersect permissions. */
    Capability withPerms(PermSet mask) const;

    /** Clear the validity tag (e.g. on a non-capability overwrite). */
    Capability withoutTag() const;

    /** CSeal: seal with an object type from @p sealer's address. */
    Capability sealWith(const Capability &sealer) const;

    /** CUnseal: unseal using @p unsealer. */
    Capability unsealWith(const Capability &unsealer) const;

    // --- Checked access ---------------------------------------------

    /**
     * The full hardware check sequence for a data access:
     * tag, seal, permission, bounds — in that order, as the Morello
     * pseudocode specifies.
     *
     * @param addr Effective address of the access.
     * @param size Access size in bytes.
     * @param wantStore True for stores, false for loads.
     * @param capWidth True when the access transfers a capability
     *        (requires LoadCap/StoreCap in addition to Load/Store).
     */
    MaybeFault checkAccess(u64 addr, u64 size, bool wantStore,
                           bool capWidth = false) const;

    /** Check use as a branch target (PCC install). */
    MaybeFault checkExecute(u64 addr) const;

    // --- Packing ----------------------------------------------------
    PackedCap pack() const;
    static Capability unpack(const PackedCap &packed, bool tag);

    bool operator==(const Capability &) const = default;

    std::string toString() const;

  private:
    Capability(bool tag, u64 address, BoundsFields fields, PermSet perms,
               u16 otype);

    bool tag_ = false;
    u64 address_ = 0;
    BoundsFields fields_{};
    PermSet perms_{};
    u16 otype_ = kOtypeUnsealed;
};

} // namespace cheri::cap

#endif // CHERI_CAP_CAPABILITY_HPP
