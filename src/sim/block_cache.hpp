/**
 * @file
 * BlockCache — decoded basic blocks for the static-program executor.
 *
 * The pre-redesign Core::step() re-resolved every instruction on
 * every visit: block bounds, the pc, the owning library, and a fresh
 * DynOp built field-by-field for the pipeline. Programs are immutable
 * once laid out, so all of that is loop-invariant. The BlockCache
 * decodes each basic block ONCE into a flat array of DecodedOps —
 * the instruction plus a pre-resolved uarch::DynOp template with
 * every statically-known field (pc, opcode class inputs, size,
 * capability width, uop crack, static branch targets, PCC-change
 * flags) already filled in. At execution time Core::run() walks the
 * flat array and patches only the run-time-dependent fields (memory
 * address, pointer-chase dependence, branch direction, indirect
 * targets) before issue.
 *
 * Lookup is keyed by (pc, program-id): program-id is the Program's
 * address — programs are immutable and must outlive the cache, and
 * nothing is ever invalidated — and within a decoded program the pc
 * index is the per-block address map (shared with indirect-branch
 * resolution). Decoded blocks depend on one ABI property, capability
 * branches, so hybrid and purecap cores decoding the same program get
 * distinct entries.
 *
 * Self-stats (block entries served from the cache, programs decoded,
 * ops replayed from decoded arrays) flush to telemetry as per-run
 * deltas — Core::run() flushes at the end of each run, the destructor
 * flushes the remainder — and surface under --profile.
 */

#ifndef CHERI_SIM_BLOCK_CACHE_HPP
#define CHERI_SIM_BLOCK_CACHE_HPP

#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "isa/program.hpp"
#include "support/types.hpp"
#include "uarch/dynop.hpp"

namespace cheri::sim {

class BlockCache
{
  public:
    /** One pre-decoded instruction slot. */
    struct DecodedOp
    {
        isa::Inst inst;    //!< Copied: no pointer chase per visit.
        uarch::DynOp tmpl; //!< Static fields resolved; see file doc.
    };

    /** One basic block as a flat op array plus static metadata. */
    struct DecodedBlock
    {
        std::vector<DecodedOp> ops;
        Addr address = 0;
        isa::LibId lib = 0;
        /** Next block with instructions (empty-block chains folded). */
        isa::BlockId fallthrough = isa::kNoBlock;
    };

    /** A fully decoded program. */
    struct DecodedProgram
    {
        std::vector<DecodedBlock> blocks;
        std::unordered_map<Addr, isa::BlockId> blockByAddr;
        Addr textLo = 0;
        Addr textHi = 0;
    };

    BlockCache() = default;
    ~BlockCache();

    BlockCache(const BlockCache &) = delete;
    BlockCache &operator=(const BlockCache &) = delete;

    /**
     * Decoded form of @p program under the given branch ABI. Decodes
     * on first sight (a miss per block), then returns the cached form
     * forever. @p program must be laid out, immutable, and outlive
     * this cache.
     */
    const DecodedProgram &decode(const isa::Program &program,
                                 bool cap_branches);

    /** Account one block entry served from the decoded form. */
    void noteBlockEntry() { ++hits_; }

    /** Account @p n ops issued from decoded arrays. */
    void noteOpsReplayed(u64 n) { opsReplayed_ += n; }

    // Self-stats (also flushed to telemetry:: on destruction).
    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }
    u64 opsReplayed() const { return opsReplayed_; }

    /**
     * Flush accumulated self-stats to telemetry:: as deltas since the
     * last flush. Core::run() calls this at the end of every run so
     * per-run telemetry snapshots attribute the stats to the run that
     * generated them even when the cache is shared across runs; the
     * destructor flushes whatever remains.
     */
    void flushTelemetry();

  private:
    std::map<std::pair<const isa::Program *, bool>, DecodedProgram>
        programs_;
    u64 hits_ = 0;
    u64 misses_ = 0;
    u64 opsReplayed_ = 0;
    u64 hitsFlushed_ = 0;
    u64 missesFlushed_ = 0;
    u64 opsFlushed_ = 0;
};

} // namespace cheri::sim

#endif // CHERI_SIM_BLOCK_CACHE_HPP
