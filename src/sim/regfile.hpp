/**
 * @file
 * Architectural register state. Every register is a full capability;
 * integer values are represented as untagged capabilities whose
 * address field carries the value — exactly the merged register file
 * model Morello uses (Xn is the address field of Cn).
 */

#ifndef CHERI_SIM_REGFILE_HPP
#define CHERI_SIM_REGFILE_HPP

#include <array>

#include "cap/capability.hpp"
#include "isa/inst.hpp"
#include "support/types.hpp"

namespace cheri::sim {

class RegFile
{
  public:
    /** Integer view: the address field. X31 reads as zero. */
    u64
    x(u8 index) const
    {
        return index == isa::kRegZero ? 0 : regs_[index].address();
    }

    /** Integer write: clears the tag (an integer is not a pointer). */
    void
    setX(u8 index, u64 value)
    {
        if (index != isa::kRegZero)
            regs_[index] = cap::Capability().withAddress(value);
    }

    /** Capability view. C31 reads as the null capability. */
    const cap::Capability &
    c(u8 index) const
    {
        return index == isa::kRegZero ? null_ : regs_[index];
    }

    void
    setC(u8 index, const cap::Capability &value)
    {
        if (index != isa::kRegZero)
            regs_[index] = value;
    }

    // Condition flags (set by CMP). ------------------------------------
    void
    setFlags(s64 lhs, s64 rhs)
    {
        flagLhs_ = lhs;
        flagRhs_ = rhs;
    }

    bool
    condHolds(isa::Cond cond) const
    {
        switch (cond) {
          case isa::Cond::Eq: return flagLhs_ == flagRhs_;
          case isa::Cond::Ne: return flagLhs_ != flagRhs_;
          case isa::Cond::Lt: return flagLhs_ < flagRhs_;
          case isa::Cond::Ge: return flagLhs_ >= flagRhs_;
          case isa::Cond::Le: return flagLhs_ <= flagRhs_;
          case isa::Cond::Gt: return flagLhs_ > flagRhs_;
        }
        return false;
    }

  private:
    std::array<cap::Capability, isa::kNumRegs> regs_{};
    cap::Capability null_{};
    s64 flagLhs_ = 0;
    s64 flagRhs_ = 0;
};

} // namespace cheri::sim

#endif // CHERI_SIM_REGFILE_HPP
