#include "sim/block_cache.hpp"

#include <algorithm>

#include "support/logging.hpp"
#include "support/telemetry.hpp"

namespace cheri::sim {

using isa::Opcode;
using uarch::BranchKind;
using uarch::DynOp;

BlockCache::~BlockCache()
{
    flushTelemetry();
}

void
BlockCache::flushTelemetry()
{
    telemetry::addBlockCache(hits_ - hitsFlushed_, misses_ - missesFlushed_,
                             opsReplayed_ - opsFlushed_);
    hitsFlushed_ = hits_;
    missesFlushed_ = misses_;
    opsFlushed_ = opsReplayed_;
}

const BlockCache::DecodedProgram &
BlockCache::decode(const isa::Program &program, bool cap_branches)
{
    const auto key = std::make_pair(&program, cap_branches);
    if (const auto it = programs_.find(key); it != programs_.end())
        return it->second;

    program.validate();
    DecodedProgram dp;
    const auto n = static_cast<isa::BlockId>(program.blockCount());
    dp.blocks.resize(n);
    dp.textLo = ~0ULL;
    misses_ += n;

    for (isa::BlockId id = 0; id < n; ++id) {
        const isa::BasicBlock &src = program.block(id);
        CHERI_ASSERT(src.address != 0,
                     "program must be laid out before decode");
        DecodedBlock &blk = dp.blocks[id];
        blk.address = src.address;
        blk.lib = program.libOf(id);
        dp.blockByAddr[src.address] = id;
        dp.textLo = std::min(dp.textLo, src.address);
        dp.textHi = std::max(dp.textHi,
                             src.address + src.insts.size() * 4);

        blk.ops.reserve(src.insts.size());
        for (u32 i = 0; i < src.insts.size(); ++i) {
            const isa::Inst &inst = src.insts[i];
            const Addr pc = src.address + i * 4;
            DecodedOp op;
            op.inst = inst;
            // Pre-resolve everything execution cannot change. The
            // run-time fields left for Core::run() to patch are the
            // memory address + pointer-chase flag, the conditional
            // direction, and indirect/return targets.
            switch (inst.op) {
              case Opcode::Ldr:
                op.tmpl = DynOp::load(pc, 0, inst.size, false);
                break;
              case Opcode::LdrCap:
                op.tmpl = DynOp::load(pc, 0, 16, true);
                break;
              case Opcode::Str:
                op.tmpl = DynOp::store(pc, 0, inst.size, false);
                break;
              case Opcode::StrCap:
                op.tmpl = DynOp::store(pc, 0, 16, true);
                break;
              case Opcode::B:
                op.tmpl = DynOp::branchOp(
                    pc, BranchKind::Immed, true,
                    program.block(inst.target).address);
                break;
              case Opcode::BCond:
                op.tmpl = DynOp::condBranch(
                    pc, false, program.block(inst.target).address);
                break;
              case Opcode::Bl:
                op.tmpl = DynOp::branchOp(
                    pc, BranchKind::Immed, true,
                    program.block(inst.target).address,
                    inst.capBranch && cap_branches &&
                        program.libOf(inst.target) != blk.lib,
                    /*is_call=*/true);
                break;
              case Opcode::Br:
              case Opcode::Blr:
                op.tmpl = DynOp::branchOp(pc, BranchKind::Indirect, true,
                                          0, inst.capBranch && cap_branches,
                                          inst.op == Opcode::Blr);
                break;
              case Opcode::Ret:
                op.tmpl = DynOp::branchOp(pc, BranchKind::Return, true, 0,
                                          inst.capBranch && cap_branches);
                break;
              default:
                op.tmpl = DynOp::alu(pc, inst.op);
                break;
            }
            blk.ops.push_back(op);
        }
    }

    // Fold empty-block chains: fallthrough jumps straight to the next
    // block that has instructions (or ends the run), replacing the
    // old one-block-at-a-time scan in the executor's hot loop.
    for (isa::BlockId id = n; id-- > 0;) {
        if (id + 1 >= n)
            dp.blocks[id].fallthrough = isa::kNoBlock;
        else if (dp.blocks[id + 1].ops.empty())
            dp.blocks[id].fallthrough = dp.blocks[id + 1].fallthrough;
        else
            dp.blocks[id].fallthrough = id + 1;
    }

    return programs_.emplace(key, std::move(dp)).first->second;
}

} // namespace cheri::sim
