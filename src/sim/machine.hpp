/**
 * @file
 * The Machine is the simulated SoC: N Core slices (MachineConfig::
 * cores, default 1) over one shared mem::Uncore, mirroring Morello's
 * quad-core Neoverse-N1 with its shared 1 MiB system-level cache.
 *
 * For the (default) single-core machine the pre-split API is
 * preserved verbatim: run()/pipeline()/counts()/memory()/store()/
 * regs()/finalize() forward to core 0, and results are bit-identical
 * to the pre-split monolith. Multi-core co-runs construct the Machine
 * with per-core ABIs and drive each core from its own lane
 * (workloads::detail::executeCoRun), interleaved deterministically by
 * sim::CorunGate.
 */

#ifndef CHERI_SIM_MACHINE_HPP
#define CHERI_SIM_MACHINE_HPP

#include <memory>
#include <vector>

#include "sim/core.hpp"

namespace cheri::mem {
class Uncore;
}

namespace cheri::sim {

class Machine
{
  public:
    /** An SoC of config.cores identical-ABI core slices. */
    explicit Machine(const MachineConfig &config);

    /**
     * An SoC with per-core ABIs (multi-programmed co-runs): core i
     * runs @p core_abis[i]. @p core_abis must have config.cores
     * entries (or one per core when config.cores is defaulted).
     */
    Machine(const MachineConfig &config,
            const std::vector<abi::Abi> &core_abis);

    ~Machine();

    u32 coreCount() const { return static_cast<u32>(cores_.size()); }
    Core &core(u32 i);
    const Core &core(u32 i) const;
    mem::Uncore &uncore() { return *uncore_; }
    const mem::Uncore &uncore() const { return *uncore_; }

    const MachineConfig &config() const { return config_; }

    // --- Single-core convenience API (forwards to core 0) -------------
    SimResult
    run(const isa::Program &program, isa::FuncId entry = 0)
    {
        return core(0).run(program, entry);
    }
    SimResult
    run(const isa::Program &program, BlockCache &blocks, ExecHooks &hooks,
        isa::FuncId entry = 0)
    {
        return core(0).run(program, blocks, hooks, entry);
    }
    uarch::PipelineModel &pipeline() { return core(0).pipeline(); }
    pmu::EventCounts &counts() { return core(0).counts(); }
    mem::PrivateHierarchy &memory() { return core(0).memory(); }
    mem::BackingStore &store() { return core(0).store(); }
    RegFile &regs() { return core(0).regs(); }
    SimResult finalize() { return core(0).finalize(); }

  private:
    MachineConfig config_;
    std::unique_ptr<mem::Uncore> uncore_;
    std::vector<std::unique_ptr<Core>> cores_;
};

} // namespace cheri::sim

#endif // CHERI_SIM_MACHINE_HPP
