/**
 * @file
 * sim::ExecHooks — the public name of the unified execution observer.
 *
 * The interface itself lives in uarch/exec_hooks.hpp because the
 * pipeline dispatches the events and uarch cannot depend on sim; this
 * header gives the simulation layer's clients (Core::run, the trace
 * collector, the co-run gate, tests) the name the API redesign
 * standardized on. See uarch/exec_hooks.hpp for event semantics.
 */

#ifndef CHERI_SIM_EXEC_HOOKS_HPP
#define CHERI_SIM_EXEC_HOOKS_HPP

#include "uarch/exec_hooks.hpp"

namespace cheri::sim {

using ExecHooks = uarch::ExecHooks;

/** The do-nothing observer Core::run's compatibility shim attaches. */
class NullExecHooks final : public ExecHooks
{
};

} // namespace cheri::sim

#endif // CHERI_SIM_EXEC_HOOKS_HPP
