#include "sim/core.hpp"

#include <algorithm>

#include <bit>

#include "mem/uncore.hpp"
#include "support/logging.hpp"
#include "trace/profile.hpp"

namespace cheri::sim {

using cap::CapFault;
using cap::CapFaultKind;
using cap::Capability;
using isa::Inst;
using isa::Opcode;
using uarch::BranchKind;
using uarch::DynOp;

MachineConfig
MachineConfig::forAbi(abi::Abi abi)
{
    MachineConfig config;
    config.abi = abi;
    return config;
}

Core::Core(const MachineConfig &config, mem::Uncore &uncore, u32 id)
    : config_(config), id_(id),
      memory_(std::make_unique<mem::PrivateHierarchy>(config.mem, counts_,
                                                      uncore, id)),
      pipe_(std::make_unique<uarch::PipelineModel>(config.pipe, *memory_,
                                                   counts_))
{
    // Root capabilities: a DDC covering the address space for hybrid
    // integer addressing — the pure-capability ABIs null it out, so
    // every access must carry a valid capability — an executable PCC
    // installed by run(), and a stack capability.
    ddc_ = abi::capabilityPointers(config.abi)
               ? Capability()
               : Capability::root().withPerms(cap::PermSet::data());
    csp_ = Capability::dataRegion(0x7ff0'0000, 0x10'0000);
    // C0 carries the almighty root (as CheriBSD hands the runtime at
    // startup); programs derive restricted capabilities from it.
    regs_.setC(0, Capability::root());
    regs_.setC(isa::kRegFp, csp_.withAddress(0x7fff'0000));
}

SimResult
Core::finalize()
{
    CHERI_ASSERT(!finalized_, "finalize called twice");
    finalized_ = true;
    pipe_->finish();

    SimResult result;
    result.counts = counts_;
    result.instructions = counts_.get(pmu::Event::InstRetired);
    result.cycles = counts_.get(pmu::Event::CpuCycles);
    result.seconds =
        static_cast<double>(result.cycles) / (config_.clock_ghz * 1e9);
    return result;
}

isa::BlockId
Core::blockAt(Addr addr) const
{
    const auto it = blockByAddr_.find(addr);
    return it == blockByAddr_.end() ? isa::kNoBlock : it->second;
}

Capability
Core::addressingCap(u8 rn) const
{
    const Capability &base = regs_.c(rn);
    if (base.tag())
        return base;
    // Untagged base: hybrid-style DDC-relative addressing.
    return ddc_.withAddress(regs_.x(rn));
}

SimResult
Core::run(const isa::Program &program, isa::FuncId entry)
{
    CHERI_TRACE_SCOPE("sim/core.run");
    CHERI_ASSERT(!finalized_, "Core already used");
    program.validate();
    program_ = &program;

    Addr text_lo = ~0ULL, text_hi = 0;
    blockByAddr_.clear();
    for (isa::BlockId id = 0; id < program.blockCount(); ++id) {
        const auto &block = program.block(id);
        CHERI_ASSERT(block.address != 0,
                     "program must be laid out before run()");
        blockByAddr_[block.address] = id;
        text_lo = std::min(text_lo, block.address);
        text_hi = std::max(text_hi,
                           block.address + block.insts.size() * 4);
    }
    pcc_ = Capability::codeRegion(text_lo, text_hi - text_lo);

    SimResult partial;
    ExecCursor cursor{program.function(entry).entry, 0};
    callStack_.clear();

    u64 executed = 0;
    while (executed < config_.max_insts) {
        if (!step(program, cursor, partial))
            break;
        ++executed;
    }

    SimResult result = finalize();
    result.halted = partial.halted;
    result.fault = partial.fault;
    return result;
}

bool
Core::step(const isa::Program &program, ExecCursor &cursor,
              SimResult &result)
{
    const isa::BasicBlock *block = &program.block(cursor.block);
    // Implicit fallthrough into the next block.
    while (cursor.index >= block->insts.size()) {
        if (cursor.block + 1 >= program.blockCount())
            return false;
        ++cursor.block;
        cursor.index = 0;
        block = &program.block(cursor.block);
    }

    const Inst &inst = block->insts[cursor.index];
    const Addr pc = block->address + cursor.index * 4;
    const isa::LibId lib = program.libOf(cursor.block);

    // Pointer-chase detection: a memory op whose base register was
    // the destination of a recent load is latency-serialized.
    static_assert(isa::kNumRegs == 32);
    const bool dependent =
        isa::isMemory(inst.op) && chaseCredit_ > 0 &&
        inst.rn == lastLoadDest_;
    if (chaseCredit_ > 0)
        --chaseCredit_;

    ExecCursor next{cursor.block, cursor.index + 1};

    auto fault_out = [&](const CapFault &fault) {
        result.fault = fault;
        return false;
    };

    switch (inst.op) {
      case Opcode::Nop:
        pipe_->issue(DynOp::alu(pc, Opcode::Nop));
        break;
      case Opcode::MovImm:
        regs_.setX(inst.rd, static_cast<u64>(inst.imm));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::MovReg:
        regs_.setX(inst.rd, regs_.x(inst.rn));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::Add:
        regs_.setX(inst.rd, regs_.x(inst.rn) + regs_.x(inst.rm));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::AddImm:
        regs_.setX(inst.rd, regs_.x(inst.rn) + static_cast<u64>(inst.imm));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::Sub:
        regs_.setX(inst.rd, regs_.x(inst.rn) - regs_.x(inst.rm));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::SubImm:
        regs_.setX(inst.rd, regs_.x(inst.rn) - static_cast<u64>(inst.imm));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::And:
        regs_.setX(inst.rd, regs_.x(inst.rn) & regs_.x(inst.rm));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::Orr:
        regs_.setX(inst.rd, regs_.x(inst.rn) | regs_.x(inst.rm));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::Eor:
        regs_.setX(inst.rd, regs_.x(inst.rn) ^ regs_.x(inst.rm));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::Lsl:
        regs_.setX(inst.rd, regs_.x(inst.rn) << (inst.imm & 63));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::Lsr:
        regs_.setX(inst.rd, regs_.x(inst.rn) >> (inst.imm & 63));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::Mul:
        regs_.setX(inst.rd, regs_.x(inst.rn) * regs_.x(inst.rm));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::Madd:
        regs_.setX(inst.rd, regs_.x(inst.ra) +
                                regs_.x(inst.rn) * regs_.x(inst.rm));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::Udiv: {
        const u64 div = regs_.x(inst.rm);
        regs_.setX(inst.rd, div ? regs_.x(inst.rn) / div : 0);
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      }
      case Opcode::Cmp:
        regs_.setFlags(static_cast<s64>(regs_.x(inst.rn)),
                       static_cast<s64>(regs_.x(inst.rm)));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::CmpImm:
        regs_.setFlags(static_cast<s64>(regs_.x(inst.rn)), inst.imm);
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;

      case Opcode::FAdd:
      case Opcode::FMul:
      case Opcode::FMadd:
      case Opcode::FDiv: {
        const double a = std::bit_cast<double>(regs_.x(inst.rn));
        const double b = std::bit_cast<double>(regs_.x(inst.rm));
        double value = 0.0;
        switch (inst.op) {
          case Opcode::FAdd: value = a + b; break;
          case Opcode::FMul: value = a * b; break;
          case Opcode::FMadd:
            value = std::bit_cast<double>(regs_.x(inst.ra)) + a * b;
            break;
          default: value = b != 0.0 ? a / b : 0.0; break;
        }
        regs_.setX(inst.rd, std::bit_cast<u64>(value));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      }

      case Opcode::VAdd:
      case Opcode::VMul:
      case Opcode::VFma:
      case Opcode::VDot:
        // SIMD values are abstracted; keep dataflow deterministic.
        regs_.setX(inst.rd, regs_.x(inst.rn) + regs_.x(inst.rm));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;

      case Opcode::Ldr: {
        const Capability base = addressingCap(inst.rn);
        const Addr addr = base.address() + static_cast<u64>(inst.imm);
        if (auto fault = base.checkAccess(addr, inst.size, false))
            return fault_out(*fault);
        regs_.setX(inst.rd, store_.read(addr, inst.size));
        pipe_->issue(DynOp::load(pc, addr, inst.size, false, dependent));
        lastLoadDest_ = inst.rd;
        chaseCredit_ = 4;
        break;
      }
      case Opcode::Str: {
        const Capability base = addressingCap(inst.rn);
        const Addr addr = base.address() + static_cast<u64>(inst.imm);
        if (auto fault = base.checkAccess(addr, inst.size, true))
            return fault_out(*fault);
        store_.write(addr, regs_.x(inst.rd), inst.size);
        pipe_->issue(DynOp::store(pc, addr, inst.size, false));
        break;
      }
      case Opcode::LdrCap: {
        const Capability base = addressingCap(inst.rn);
        const Addr addr = base.address() + static_cast<u64>(inst.imm);
        if (addr % mem::kCapGranule != 0)
            return fault_out(CapFault{CapFaultKind::BoundsViolation, addr,
                                      16});
        if (auto fault = base.checkAccess(addr, 16, false, true))
            return fault_out(*fault);
        regs_.setC(inst.rd, store_.readCap(addr));
        pipe_->issue(DynOp::load(pc, addr, 16, true, dependent));
        lastLoadDest_ = inst.rd;
        chaseCredit_ = 4;
        break;
      }
      case Opcode::StrCap: {
        const Capability base = addressingCap(inst.rn);
        const Addr addr = base.address() + static_cast<u64>(inst.imm);
        if (addr % mem::kCapGranule != 0)
            return fault_out(CapFault{CapFaultKind::BoundsViolation, addr,
                                      16});
        if (auto fault = base.checkAccess(addr, 16, true, true))
            return fault_out(*fault);
        store_.writeCap(addr, regs_.c(inst.rd));
        pipe_->issue(DynOp::store(pc, addr, 16, true));
        break;
      }

      case Opcode::CSetBounds:
        regs_.setC(inst.rd, regs_.c(inst.rn).setBounds(regs_.x(inst.rm)));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::CSetBoundsImm:
        regs_.setC(inst.rd, regs_.c(inst.rn).setBounds(
                                static_cast<u64>(inst.imm)));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::CIncOffset:
        regs_.setC(inst.rd, regs_.c(inst.rn).add(
                                static_cast<s64>(regs_.x(inst.rm))));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::CIncOffsetImm:
        regs_.setC(inst.rd, regs_.c(inst.rn).add(inst.imm));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::CSetAddr:
        regs_.setC(inst.rd,
                   regs_.c(inst.rn).withAddress(regs_.x(inst.rm)));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::CAndPerm:
        regs_.setC(inst.rd, regs_.c(inst.rn).withPerms(cap::PermSet(
                                static_cast<u16>(regs_.x(inst.rm)))));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::CClearTag:
        regs_.setC(inst.rd, regs_.c(inst.rn).withoutTag());
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::CSeal:
        regs_.setC(inst.rd, regs_.c(inst.rn).sealWith(regs_.c(inst.rm)));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::CUnseal:
        regs_.setC(inst.rd, regs_.c(inst.rn).unsealWith(regs_.c(inst.rm)));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::CGetBase:
        regs_.setX(inst.rd, regs_.c(inst.rn).base());
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::CGetLen:
        regs_.setX(inst.rd, regs_.c(inst.rn).length());
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::CGetTag:
        regs_.setX(inst.rd, regs_.c(inst.rn).tag() ? 1 : 0);
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::CGetAddr:
        regs_.setX(inst.rd, regs_.c(inst.rn).address());
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::CMove:
        regs_.setC(inst.rd, regs_.c(inst.rn));
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      case Opcode::LeaFunc: {
        const auto func = static_cast<isa::FuncId>(inst.imm);
        const Addr addr =
            program.block(program.function(func).entry).address;
        if (abi::capabilityPointers(config_.abi))
            regs_.setC(inst.rd, pcc_.withAddress(addr));
        else
            regs_.setX(inst.rd, addr);
        pipe_->issue(DynOp::alu(pc, inst.op));
        break;
      }

      case Opcode::B:
        next = ExecCursor{inst.target, 0};
        pipe_->issue(DynOp::branchOp(
            pc, BranchKind::Immed, true,
            program.block(inst.target).address));
        break;
      case Opcode::BCond: {
        const bool taken = regs_.condHolds(inst.cond);
        if (taken)
            next = ExecCursor{inst.target, 0};
        pipe_->issue(DynOp::condBranch(
            pc, taken, program.block(inst.target).address));
        break;
      }
      case Opcode::Bl: {
        const isa::LibId target_lib = program.libOf(inst.target);
        callStack_.push_back(next);
        regs_.setC(isa::kRegLr, pcc_.withAddress(pc + 4));
        next = ExecCursor{inst.target, 0};
        const bool pcc_change = inst.capBranch &&
                                abi::capabilityBranches(config_.abi) &&
                                target_lib != lib;
        pipe_->issue(DynOp::branchOp(
            pc, BranchKind::Immed, true,
            program.block(inst.target).address, pcc_change, true));
        break;
      }
      case Opcode::Br:
      case Opcode::Blr: {
        const Capability target_cap = regs_.c(inst.rn).tag()
                                          ? regs_.c(inst.rn)
                                          : pcc_.withAddress(
                                                regs_.x(inst.rn));
        if (auto fault = target_cap.checkExecute(target_cap.address()))
            return fault_out(*fault);
        const isa::BlockId target = blockAt(target_cap.address());
        if (target == isa::kNoBlock)
            return fault_out(CapFault{CapFaultKind::BoundsViolation,
                                      target_cap.address(), 4});
        if (inst.op == Opcode::Blr) {
            callStack_.push_back(next);
            regs_.setC(isa::kRegLr, pcc_.withAddress(pc + 4));
        }
        next = ExecCursor{target, 0};
        const bool pcc_change =
            inst.capBranch && abi::capabilityBranches(config_.abi);
        pipe_->issue(DynOp::branchOp(pc, BranchKind::Indirect, true,
                                     target_cap.address(), pcc_change,
                                     inst.op == Opcode::Blr));
        break;
      }
      case Opcode::Ret: {
        const bool pcc_change = inst.capBranch &&
                                abi::capabilityBranches(config_.abi);
        if (callStack_.empty()) {
            pipe_->issue(DynOp::branchOp(pc, BranchKind::Return, true, 0,
                                         pcc_change));
            result.halted = true;
            return false;
        }
        next = callStack_.back();
        callStack_.pop_back();
        const Addr target =
            program.block(next.block).address + next.index * 4;
        pipe_->issue(DynOp::branchOp(pc, BranchKind::Return, true, target,
                                     pcc_change));
        break;
      }

      case Opcode::Halt:
        result.halted = true;
        return false;
      case Opcode::Brk:
        return false;
    }

    cursor = next;
    return true;
}

} // namespace cheri::sim
