#include "sim/core.hpp"

#include <algorithm>

#include <bit>

#include "mem/uncore.hpp"
#include "support/logging.hpp"
#include "support/telemetry.hpp"
#include "trace/profile.hpp"

namespace cheri::sim {

using cap::CapFault;
using cap::CapFaultKind;
using cap::Capability;
using isa::Inst;
using isa::Opcode;
using uarch::BranchKind;
using uarch::DynOp;

MachineConfig
MachineConfig::forAbi(abi::Abi abi)
{
    MachineConfig config;
    config.abi = abi;
    return config;
}

Core::Core(const MachineConfig &config, mem::Uncore &uncore, u32 id)
    : config_(config), id_(id),
      memory_(std::make_unique<mem::PrivateHierarchy>(config.mem, counts_,
                                                      uncore, id)),
      pipe_(std::make_unique<uarch::PipelineModel>(config.pipe, *memory_,
                                                   counts_))
{
    pipe_->setLaneId(id);
    // Root capabilities: a DDC covering the address space for hybrid
    // integer addressing — the pure-capability ABIs null it out, so
    // every access must carry a valid capability — an executable PCC
    // installed by run(), and a stack capability.
    ddc_ = abi::capabilityPointers(config.abi)
               ? Capability()
               : Capability::root().withPerms(cap::PermSet::data());
    csp_ = Capability::dataRegion(0x7ff0'0000, 0x10'0000);
    // C0 carries the almighty root (as CheriBSD hands the runtime at
    // startup); programs derive restricted capabilities from it.
    regs_.setC(0, Capability::root());
    regs_.setC(isa::kRegFp, csp_.withAddress(0x7fff'0000));
}

SimResult
Core::finalize()
{
    CHERI_ASSERT(!finalized_, "finalize called twice");
    finalized_ = true;
    pipe_->finish();
    // Flush this run's memory fast-path deltas so per-run telemetry
    // snapshots see them even when the hierarchy outlives the run.
    memory_->flushTelemetry();

    SimResult result;
    result.counts = counts_;
    result.instructions = counts_.get(pmu::Event::InstRetired);
    result.cycles = counts_.get(pmu::Event::CpuCycles);
    result.seconds =
        static_cast<double>(result.cycles) / (config_.clock_ghz * 1e9);
    return result;
}

Capability
Core::addressingCap(u8 rn) const
{
    const Capability &base = regs_.c(rn);
    if (base.tag())
        return base;
    // Untagged base: hybrid-style DDC-relative addressing.
    return ddc_.withAddress(regs_.x(rn));
}

SimResult
Core::run(const isa::Program &program, isa::FuncId entry)
{
    // Deprecated shim: a throwaway cache decodes the program for this
    // run only, and no observer attaches.
    BlockCache cache;
    NullExecHooks hooks;
    return run(program, cache, hooks, entry);
}

SimResult
Core::run(const isa::Program &program, BlockCache &blocks,
          ExecHooks &hooks, isa::FuncId entry)
{
    CHERI_TRACE_SCOPE("sim/core.run");
    CHERI_ASSERT(!finalized_, "Core already used");
    BlockCache throwaway;
    BlockCache &cache = config_.block_cache ? blocks : throwaway;
    const BlockCache::DecodedProgram &decoded =
        cache.decode(program, abi::capabilityBranches(config_.abi));
    pcc_ = Capability::codeRegion(decoded.textLo,
                                  decoded.textHi - decoded.textLo);

    pipe_->attachHooks(&hooks);

    SimResult partial;
    ExecCursor cursor{program.function(entry).entry, 0};
    callStack_.clear();

    // Chained execution: each block's last indirect target is memoized
    // per run (monomorphic inline cache over BlockIds), so chained
    // traces — fallthrough links, static BlockId branch targets, and
    // validated indirect memos — never probe the pc→block hash map.
    std::vector<isa::BlockId> indirectMemo;
    if (config_.chain_blocks)
        indirectMemo.assign(decoded.blocks.size(), isa::kNoBlock);
    std::vector<isa::BlockId> *memo =
        config_.chain_blocks ? &indirectMemo : nullptr;
    chainHits_ = 0;
    chainMisses_ = 0;

    // DynOps buffer up per decoded block and issue through one
    // issueBlock() call at every block entry; cap the buffer so a
    // pathological single-block program still flushes periodically.
    constexpr std::size_t kIssueBufMax = 256;
    issueBuf_.clear();
    issueBuf_.reserve(kIssueBufMax);

    u64 executed = 0;
    while (executed < config_.max_insts) {
        if (!step(decoded, program, cache, cursor, partial, memo))
            break;
        ++executed;
        if (cursor.index == 0 || issueBuf_.size() >= kIssueBufMax)
            flushIssueBuf();
    }
    flushIssueBuf();
    cache.noteOpsReplayed(executed);

    pipe_->detachHooks(&hooks);

    // Per-run telemetry: this run's chain transitions, block-cache
    // deltas and memory fast-path deltas land inside this run's
    // snapshot window even when the cache/machine outlives it.
    if (config_.chain_blocks)
        telemetry::addBlockChain(chainHits_, chainMisses_);
    cache.flushTelemetry();

    SimResult result = finalize();
    result.halted = partial.halted;
    result.fault = partial.fault;
    return result;
}

bool
Core::step(const BlockCache::DecodedProgram &decoded,
           const isa::Program &program, BlockCache &blocks,
           ExecCursor &cursor, SimResult &result,
           std::vector<isa::BlockId> *indirect_memo)
{
    const BlockCache::DecodedBlock *block = &decoded.blocks[cursor.block];
    // Implicit fallthrough (empty-block chains pre-folded at decode):
    // a chained transition — the successor link is part of the
    // decoded block, no map probe.
    if (cursor.index >= block->ops.size()) {
        if (block->fallthrough == isa::kNoBlock)
            return false;
        cursor.block = block->fallthrough;
        cursor.index = 0;
        block = &decoded.blocks[cursor.block];
        if (indirect_memo != nullptr)
            ++chainHits_;
    }
    if (cursor.index == 0)
        blocks.noteBlockEntry();

    const BlockCache::DecodedOp &dop = block->ops[cursor.index];
    const Inst &inst = dop.inst;
    const Addr pc = dop.tmpl.pc;

    // Pointer-chase detection: a memory op whose base register was
    // the destination of a recent load is latency-serialized.
    static_assert(isa::kNumRegs == 32);
    const bool dependent =
        isa::isMemory(inst.op) && chaseCredit_ > 0 &&
        inst.rn == lastLoadDest_;
    if (chaseCredit_ > 0)
        --chaseCredit_;

    ExecCursor next{cursor.block, cursor.index + 1};

    auto fault_out = [&](const CapFault &fault) {
        // Drain the buffered ops first: observers must see every op
        // issued before the fault, exactly as with per-op issue.
        flushIssueBuf();
        result.fault = fault;
        pipe_->notifyFault(pc);
        return false;
    };

    // Set when a block transition had to probe the pc→block map
    // (indirect-memo miss); chained transitions count as hits below.
    bool probed = false;

    switch (inst.op) {
      case Opcode::Nop:
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::MovImm:
        regs_.setX(inst.rd, static_cast<u64>(inst.imm));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::MovReg:
        regs_.setX(inst.rd, regs_.x(inst.rn));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::Add:
        regs_.setX(inst.rd, regs_.x(inst.rn) + regs_.x(inst.rm));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::AddImm:
        regs_.setX(inst.rd, regs_.x(inst.rn) + static_cast<u64>(inst.imm));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::Sub:
        regs_.setX(inst.rd, regs_.x(inst.rn) - regs_.x(inst.rm));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::SubImm:
        regs_.setX(inst.rd, regs_.x(inst.rn) - static_cast<u64>(inst.imm));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::And:
        regs_.setX(inst.rd, regs_.x(inst.rn) & regs_.x(inst.rm));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::Orr:
        regs_.setX(inst.rd, regs_.x(inst.rn) | regs_.x(inst.rm));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::Eor:
        regs_.setX(inst.rd, regs_.x(inst.rn) ^ regs_.x(inst.rm));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::Lsl:
        regs_.setX(inst.rd, regs_.x(inst.rn) << (inst.imm & 63));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::Lsr:
        regs_.setX(inst.rd, regs_.x(inst.rn) >> (inst.imm & 63));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::Mul:
        regs_.setX(inst.rd, regs_.x(inst.rn) * regs_.x(inst.rm));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::Madd:
        regs_.setX(inst.rd, regs_.x(inst.ra) +
                                regs_.x(inst.rn) * regs_.x(inst.rm));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::Udiv: {
        const u64 div = regs_.x(inst.rm);
        regs_.setX(inst.rd, div ? regs_.x(inst.rn) / div : 0);
        issueBuf_.push_back(dop.tmpl);
        break;
      }
      case Opcode::Cmp:
        regs_.setFlags(static_cast<s64>(regs_.x(inst.rn)),
                       static_cast<s64>(regs_.x(inst.rm)));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::CmpImm:
        regs_.setFlags(static_cast<s64>(regs_.x(inst.rn)), inst.imm);
        issueBuf_.push_back(dop.tmpl);
        break;

      case Opcode::FAdd:
      case Opcode::FMul:
      case Opcode::FMadd:
      case Opcode::FDiv: {
        const double a = std::bit_cast<double>(regs_.x(inst.rn));
        const double b = std::bit_cast<double>(regs_.x(inst.rm));
        double value = 0.0;
        switch (inst.op) {
          case Opcode::FAdd: value = a + b; break;
          case Opcode::FMul: value = a * b; break;
          case Opcode::FMadd:
            value = std::bit_cast<double>(regs_.x(inst.ra)) + a * b;
            break;
          default: value = b != 0.0 ? a / b : 0.0; break;
        }
        regs_.setX(inst.rd, std::bit_cast<u64>(value));
        issueBuf_.push_back(dop.tmpl);
        break;
      }

      case Opcode::VAdd:
      case Opcode::VMul:
      case Opcode::VFma:
      case Opcode::VDot:
        // SIMD values are abstracted; keep dataflow deterministic.
        regs_.setX(inst.rd, regs_.x(inst.rn) + regs_.x(inst.rm));
        issueBuf_.push_back(dop.tmpl);
        break;

      case Opcode::Ldr: {
        const Capability base = addressingCap(inst.rn);
        const Addr addr = base.address() + static_cast<u64>(inst.imm);
        if (auto fault = base.checkAccess(addr, inst.size, false))
            return fault_out(*fault);
        regs_.setX(inst.rd, store_.read(addr, inst.size));
        DynOp d = dop.tmpl;
        d.addr = addr;
        d.dependsOnLoad = dependent;
        issueBuf_.push_back(d);
        lastLoadDest_ = inst.rd;
        chaseCredit_ = 4;
        break;
      }
      case Opcode::Str: {
        const Capability base = addressingCap(inst.rn);
        const Addr addr = base.address() + static_cast<u64>(inst.imm);
        if (auto fault = base.checkAccess(addr, inst.size, true))
            return fault_out(*fault);
        store_.write(addr, regs_.x(inst.rd), inst.size);
        DynOp d = dop.tmpl;
        d.addr = addr;
        issueBuf_.push_back(d);
        break;
      }
      case Opcode::LdrCap: {
        const Capability base = addressingCap(inst.rn);
        const Addr addr = base.address() + static_cast<u64>(inst.imm);
        if (addr % mem::kCapGranule != 0)
            return fault_out(CapFault{CapFaultKind::BoundsViolation, addr,
                                      16});
        if (auto fault = base.checkAccess(addr, 16, false, true))
            return fault_out(*fault);
        regs_.setC(inst.rd, store_.readCap(addr));
        DynOp d = dop.tmpl;
        d.addr = addr;
        d.dependsOnLoad = dependent;
        issueBuf_.push_back(d);
        lastLoadDest_ = inst.rd;
        chaseCredit_ = 4;
        break;
      }
      case Opcode::StrCap: {
        const Capability base = addressingCap(inst.rn);
        const Addr addr = base.address() + static_cast<u64>(inst.imm);
        if (addr % mem::kCapGranule != 0)
            return fault_out(CapFault{CapFaultKind::BoundsViolation, addr,
                                      16});
        if (auto fault = base.checkAccess(addr, 16, true, true))
            return fault_out(*fault);
        store_.writeCap(addr, regs_.c(inst.rd));
        DynOp d = dop.tmpl;
        d.addr = addr;
        issueBuf_.push_back(d);
        break;
      }

      case Opcode::CSetBounds:
        regs_.setC(inst.rd, regs_.c(inst.rn).setBounds(regs_.x(inst.rm)));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::CSetBoundsImm:
        regs_.setC(inst.rd, regs_.c(inst.rn).setBounds(
                                static_cast<u64>(inst.imm)));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::CIncOffset:
        regs_.setC(inst.rd, regs_.c(inst.rn).add(
                                static_cast<s64>(regs_.x(inst.rm))));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::CIncOffsetImm:
        regs_.setC(inst.rd, regs_.c(inst.rn).add(inst.imm));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::CSetAddr:
        regs_.setC(inst.rd,
                   regs_.c(inst.rn).withAddress(regs_.x(inst.rm)));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::CAndPerm:
        regs_.setC(inst.rd, regs_.c(inst.rn).withPerms(cap::PermSet(
                                static_cast<u16>(regs_.x(inst.rm)))));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::CClearTag:
        regs_.setC(inst.rd, regs_.c(inst.rn).withoutTag());
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::CSeal:
        regs_.setC(inst.rd, regs_.c(inst.rn).sealWith(regs_.c(inst.rm)));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::CUnseal:
        regs_.setC(inst.rd, regs_.c(inst.rn).unsealWith(regs_.c(inst.rm)));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::CGetBase:
        regs_.setX(inst.rd, regs_.c(inst.rn).base());
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::CGetLen:
        regs_.setX(inst.rd, regs_.c(inst.rn).length());
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::CGetTag:
        regs_.setX(inst.rd, regs_.c(inst.rn).tag() ? 1 : 0);
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::CGetAddr:
        regs_.setX(inst.rd, regs_.c(inst.rn).address());
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::CMove:
        regs_.setC(inst.rd, regs_.c(inst.rn));
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::LeaFunc: {
        const auto func = static_cast<isa::FuncId>(inst.imm);
        const Addr addr =
            program.block(program.function(func).entry).address;
        if (abi::capabilityPointers(config_.abi))
            regs_.setC(inst.rd, pcc_.withAddress(addr));
        else
            regs_.setX(inst.rd, addr);
        issueBuf_.push_back(dop.tmpl);
        break;
      }

      case Opcode::B:
        next = ExecCursor{inst.target, 0};
        issueBuf_.push_back(dop.tmpl);
        break;
      case Opcode::BCond: {
        const bool taken = regs_.condHolds(inst.cond);
        if (taken)
            next = ExecCursor{inst.target, 0};
        DynOp d = dop.tmpl;
        d.taken = taken;
        issueBuf_.push_back(d);
        break;
      }
      case Opcode::Bl: {
        callStack_.push_back(next);
        regs_.setC(isa::kRegLr, pcc_.withAddress(pc + 4));
        next = ExecCursor{inst.target, 0};
        issueBuf_.push_back(dop.tmpl);
        break;
      }
      case Opcode::Br:
      case Opcode::Blr: {
        const Capability target_cap = regs_.c(inst.rn).tag()
                                          ? regs_.c(inst.rn)
                                          : pcc_.withAddress(
                                                regs_.x(inst.rn));
        if (auto fault = target_cap.checkExecute(target_cap.address()))
            return fault_out(*fault);
        const Addr target_addr = target_cap.address();
        isa::BlockId target = isa::kNoBlock;
        if (indirect_memo != nullptr) {
            // Monomorphic indirect memo: this block's last indirect
            // target, validated against the actual target address, so
            // a stale memo can only fall back to the probe — never
            // change where execution goes.
            isa::BlockId &slot = (*indirect_memo)[cursor.block];
            if (slot != isa::kNoBlock &&
                decoded.blocks[slot].address == target_addr) {
                target = slot;
            } else {
                probed = true;
                ++chainMisses_;
                const auto tgt_it = decoded.blockByAddr.find(target_addr);
                target = tgt_it == decoded.blockByAddr.end()
                             ? isa::kNoBlock
                             : tgt_it->second;
                if (target != isa::kNoBlock)
                    slot = target;
            }
        } else {
            const auto tgt_it = decoded.blockByAddr.find(target_addr);
            target = tgt_it == decoded.blockByAddr.end() ? isa::kNoBlock
                                                         : tgt_it->second;
        }
        if (target == isa::kNoBlock)
            return fault_out(CapFault{CapFaultKind::BoundsViolation,
                                      target_addr, 4});
        if (inst.op == Opcode::Blr) {
            callStack_.push_back(next);
            regs_.setC(isa::kRegLr, pcc_.withAddress(pc + 4));
        }
        next = ExecCursor{target, 0};
        DynOp d = dop.tmpl;
        d.target = target_cap.address();
        issueBuf_.push_back(d);
        break;
      }
      case Opcode::Ret: {
        if (callStack_.empty()) {
            issueBuf_.push_back(dop.tmpl);
            result.halted = true;
            return false;
        }
        next = callStack_.back();
        callStack_.pop_back();
        DynOp d = dop.tmpl;
        d.target = decoded.blocks[next.block].address + next.index * 4;
        issueBuf_.push_back(d);
        break;
      }

      case Opcode::Halt:
        result.halted = true;
        return false;
      case Opcode::Brk:
        return false;
    }

    // Chain accounting: a block-entry transition that did not probe
    // the pc→block map rode a chained link (static BlockId target or
    // validated indirect memo; fallthrough counts at the top of the
    // next step).
    if (indirect_memo != nullptr && next.index == 0 && !probed)
        ++chainHits_;

    cursor = next;
    return true;
}

} // namespace cheri::sim
