#include "sim/corun_gate.hpp"

#include "support/logging.hpp"

namespace cheri::sim {

CorunGate::CorunGate(u32 cores, Cycles quantum)
    : lanes_(cores), quantum_(static_cast<double>(quantum))
{
}

void
CorunGate::activate(u32 core)
{
    std::lock_guard<std::mutex> lock(mutex_);
    CHERI_ASSERT(core < lanes_.size(), "activate(", core, ") of ",
                 lanes_.size());
    lanes_[core].active = true;
    // First grant goes to the lowest activated id (all lanes start at
    // cycle 0, so this matches the lowest-(cycle, id) policy).
    if (holder_ == kNoHolder || core < holder_)
        holder_ = core;
}

int
CorunGate::pickNext(u32 exclude) const
{
    int best = -1;
    for (u32 i = 0; i < lanes_.size(); ++i) {
        if (i == exclude || !lanes_[i].active || lanes_[i].done)
            continue;
        if (best < 0 ||
            lanes_[i].cycle < lanes_[static_cast<u32>(best)].cycle)
            best = static_cast<int>(i);
    }
    return best;
}

void
CorunGate::onLaneSwitch(u32 core, double cycleF)
{
    std::unique_lock<std::mutex> lock(mutex_);
    lanes_[core].cycle = cycleF;
    for (;;) {
        if (holder_ == core) {
            const int next = pickNext(core);
            // Sole surviving lane: run free.
            if (next < 0)
                return;
            // Still within the grant relative to the laggard.
            if (cycleF <= lanes_[static_cast<u32>(next)].cycle + quantum_)
                return;
            holder_ = static_cast<u32>(next);
            cv_.notify_all();
        }
        cv_.wait(lock, [&] { return holder_ == core; });
    }
}

void
CorunGate::finish(u32 core)
{
    std::lock_guard<std::mutex> lock(mutex_);
    lanes_[core].done = true;
    if (holder_ == core) {
        const int next = pickNext(core);
        holder_ = next < 0 ? kNoHolder : static_cast<u32>(next);
        cv_.notify_all();
    }
}

} // namespace cheri::sim
