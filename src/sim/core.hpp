/**
 * @file
 * One core slice of the simulated SoC: architectural register file,
 * pipeline model, private L1I/L1D + L2 + TLBs (PrivateHierarchy),
 * per-core PMU counts and per-core capability roots (PCC/DDC/CSP).
 * Cores share nothing but the Uncore they are constructed over;
 * Machine owns the Uncore and the core slices.
 *
 * A Core supports both execution modes of the pre-split Machine:
 * functional execution with full capability enforcement for static
 * MorelloLite programs (run()), and the dynamic-issue interface the
 * workload generators use (pipeline()/store()/regs() + finalize()).
 */

#ifndef CHERI_SIM_CORE_HPP
#define CHERI_SIM_CORE_HPP

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "abi/abi.hpp"
#include "cap/fault.hpp"
#include "isa/program.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_system.hpp"
#include "pmu/counts.hpp"
#include "sim/block_cache.hpp"
#include "sim/exec_hooks.hpp"
#include "sim/regfile.hpp"
#include "uarch/pipeline.hpp"

namespace cheri::mem {
class Uncore;
}

namespace cheri::sim {

struct MachineConfig
{
    abi::Abi abi = abi::Abi::Hybrid;
    mem::MemConfig mem{};
    uarch::PipelineConfig pipe{};
    u64 max_insts = 500'000'000; //!< Runaway guard for the executor.
    double clock_ghz = 2.5;      //!< Morello clock (§2.2).

    /**
     * Escape hatch (--no-blockcache): when false, Core::run ignores
     * the caller's shared BlockCache and decodes into a throwaway
     * per-run cache instead — no cross-run reuse. Results are
     * bit-identical either way (decoding is deterministic), so like
     * mem::MemConfig::fast_path this is NOT part of the cell
     * fingerprint.
     */
    bool block_cache = true;

    /**
     * Escape hatch (--set machine.chain_blocks=off): when true,
     * Core::run executes chained traces — block→block transitions
     * resolve through the decoded successor links (pre-folded
     * fallthrough, static BlockId branch targets) plus a per-run
     * monomorphic memo for each block's last indirect target, so the
     * hot loop never probes the pc→block hash map on a chained
     * transition. The memo is validated against the actual branch
     * target address before use and the executed op stream is
     * unchanged, so results are bit-identical either way; like
     * block_cache this is NOT part of the cell fingerprint.
     */
    bool chain_blocks = true;

    /**
     * Core slices sharing one uncore (Morello is quad-core; §2.1).
     * 1 = the classic single-core machine, bit-identical to the
     * pre-split model.
     */
    u32 cores = 1;

    /**
     * Co-run interleave grant, in core cycles: how far one core's
     * timeline may run ahead of the laggard before the scheduler
     * hands the token on. Smaller = finer-grained sharing (more
     * handoffs); the interleave is deterministic for any value.
     */
    Cycles corun_quantum = 256;

    /** Apply per-ABI defaults (purecap capability branches, etc.). */
    static MachineConfig forAbi(abi::Abi abi);
};

/** Outcome of a simulation. */
struct SimResult
{
    pmu::EventCounts counts;
    u64 instructions = 0;
    Cycles cycles = 0;
    double seconds = 0.0; //!< cycles / clock.
    bool halted = false;  //!< Clean Halt (vs fault / inst limit).
    std::optional<cap::CapFault> fault;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }
};

class Core
{
  public:
    /**
     * @param config SoC configuration; @c config.abi must already be
     *        this core's ABI (Machine overrides it per lane for
     *        mixed-ABI co-runs).
     * @param uncore The shared uncore; must outlive the core.
     * @param id This core's slice index (uncore arbitration lane).
     */
    Core(const MachineConfig &config, mem::Uncore &uncore, u32 id);

    /**
     * Run a static program from @p entry ("main" = function 0 by
     * default) until Halt, a capability fault, or the instruction
     * limit. The program must already be laid out (Program::layout).
     *
     * Execution walks @p blocks' decoded form of the program (decoded
     * once, reused across runs and cores sharing the cache) and
     * dispatches execution events — fault, plus whatever @p hooks
     * subscribed to at attach — through the unified ExecHooks
     * observer for the duration of the run.
     */
    SimResult run(const isa::Program &program, BlockCache &blocks,
                  ExecHooks &hooks, isa::FuncId entry = 0);

    /**
     * @deprecated Pre-BlockCache entry point: runs with a throwaway
     * block cache and no observer. Kept so single-program callers
     * (tests, examples) stay source-compatible; results are
     * bit-identical to the decoded-block path.
     */
    SimResult run(const isa::Program &program, isa::FuncId entry = 0);

    // --- Dynamic-issue interface (workload generators) ---------------
    uarch::PipelineModel &pipeline() { return *pipe_; }
    pmu::EventCounts &counts() { return counts_; }
    mem::PrivateHierarchy &memory() { return *memory_; }
    mem::BackingStore &store() { return store_; }
    RegFile &regs() { return regs_; }

    const MachineConfig &config() const { return config_; }
    abi::Abi abi() const { return config_.abi; }
    u32 id() const { return id_; }

    /** Finish the pipeline and snapshot results (dynamic-issue mode). */
    SimResult finalize();

  private:
    struct ExecCursor
    {
        isa::BlockId block = 0;
        u32 index = 0;
    };

    /**
     * Execute one instruction from the decoded program; returns false
     * when execution ends. @p program is only consulted for the rare
     * ops that need function metadata (LeaFunc). @p indirect_memo is
     * this run's per-block monomorphic indirect-branch memo (one
     * BlockId per block, lazily patched on first execution), or
     * nullptr when chain_blocks is off — indirect branches then
     * always probe the pc→block map, as the pre-chaining executor
     * did.
     *
     * Timing ops are appended to issueBuf_, not issued directly;
     * run() flushes the buffer through PipelineModel::issueBlock() at
     * every block entry (and step() itself flushes before dispatching
     * a fault), so the pipeline consumes whole decoded blocks per
     * call while the per-op issue order is exactly preserved.
     */
    bool step(const BlockCache::DecodedProgram &decoded,
              const isa::Program &program, BlockCache &blocks,
              ExecCursor &cursor, SimResult &result,
              std::vector<isa::BlockId> *indirect_memo);

    /** Issue all buffered DynOps through the pipeline, in order. */
    void
    flushIssueBuf()
    {
        if (!issueBuf_.empty()) {
            pipe_->issueBlock(issueBuf_.data(), issueBuf_.size());
            issueBuf_.clear();
        }
    }

    /** The capability used for addressing by a memory instruction. */
    cap::Capability addressingCap(u8 rn) const;

    MachineConfig config_;
    u32 id_;
    pmu::EventCounts counts_;
    std::unique_ptr<mem::PrivateHierarchy> memory_;
    std::unique_ptr<uarch::PipelineModel> pipe_;
    mem::BackingStore store_;
    RegFile regs_;

    cap::Capability pcc_;
    cap::Capability ddc_;
    cap::Capability csp_;

    std::vector<ExecCursor> callStack_;
    bool finalized_ = false;

    /** Pointer-chase detection: last load destination + freshness. */
    u8 lastLoadDest_ = isa::kRegZero;
    u32 chaseCredit_ = 0;

    /** Pending DynOps awaiting a batched issueBlock() flush. */
    std::vector<uarch::DynOp> issueBuf_;

    // Per-run chained-execution stats (telemetry; reset by run()).
    u64 chainHits_ = 0;
    u64 chainMisses_ = 0;
};

} // namespace cheri::sim

#endif // CHERI_SIM_CORE_HPP
