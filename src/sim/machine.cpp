#include "sim/machine.hpp"

#include "mem/uncore.hpp"
#include "support/logging.hpp"

namespace cheri::sim {

Machine::Machine(const MachineConfig &config)
    : Machine(config, std::vector<abi::Abi>(
                          config.cores > 0 ? config.cores : 1, config.abi))
{
}

Machine::Machine(const MachineConfig &config,
                 const std::vector<abi::Abi> &core_abis)
    : config_(config)
{
    const u32 n = static_cast<u32>(core_abis.size());
    CHERI_ASSERT(n > 0, "Machine needs at least one core");
    // config.cores defaults to 1; an explicit ABI list overrides it,
    // but a deliberate multi-core config must agree with the list.
    CHERI_ASSERT(config.cores <= 1 || config.cores == n,
                 "config.cores (", config.cores, ") != core ABIs (", n, ")");
    config_.cores = n;
    uncore_ = std::make_unique<mem::Uncore>(config_.mem, n);
    cores_.reserve(n);
    for (u32 i = 0; i < n; ++i) {
        MachineConfig slice = config_;
        slice.abi = core_abis[i];
        cores_.push_back(std::make_unique<Core>(slice, *uncore_, i));
    }
}

Machine::~Machine() = default;

Core &
Machine::core(u32 i)
{
    CHERI_ASSERT(i < cores_.size(), "core(", i, ") of ", cores_.size());
    return *cores_[i];
}

const Core &
Machine::core(u32 i) const
{
    CHERI_ASSERT(i < cores_.size(), "core(", i, ") of ", cores_.size());
    return *cores_[i];
}

} // namespace cheri::sim
