/**
 * @file
 * Deterministic co-run interleaver. Workload generators drive their
 * core's pipeline synchronously, so a co-run needs one host thread
 * per lane — but the *model* interleave must not depend on host
 * scheduling. The CorunGate makes it deterministic with an exclusive
 * token: exactly one lane simulates at a time, and the token moves
 * purely as a function of the cores' model clocks.
 *
 * Policy: the holder runs until its cycle count exceeds the laggard
 * active lane's by more than the configured quantum, then hands the
 * token to the lane with the lowest (cycle, id) — a cycle-ordered
 * round-robin. Token handoffs therefore depend only on simulated
 * cycles, never on wall-clock timing, so every co-run of the same
 * lanes/seed/config reproduces the same interleave, the same uncore
 * contention, and byte-identical results.
 *
 * Lifecycle: activate() every participating lane before any lane
 * thread starts; each lane calls finish() (via executeCoRun) after
 * its generator returns. A lane that ever issued holds the token at
 * that point, so finish-time state changes (e.g. Uncore::
 * coreFinished) land at deterministic points of the interleave too.
 */

#ifndef CHERI_SIM_CORUN_GATE_HPP
#define CHERI_SIM_CORUN_GATE_HPP

#include <condition_variable>
#include <mutex>
#include <vector>

#include "sim/exec_hooks.hpp"
#include "support/types.hpp"

namespace cheri::sim {

class CorunGate final : public ExecHooks
{
  public:
    CorunGate(u32 cores, Cycles quantum);

    /** Register lane @p core; call before any lane thread starts. */
    void activate(u32 core);

    /** ExecHooks: blocks until @p core may simulate its next op. */
    void onLaneSwitch(u32 core, double cycleF) override;

    /** Claim the pipeline's lane-switch dispatch slot. */
    bool wantsLaneSwitch() const override { return true; }

    /**
     * Lane @p core is done issuing; hands the token on. Called from
     * the lane's own thread after its generator returns.
     */
    void finish(u32 core);

  private:
    static constexpr u32 kNoHolder = ~0u;

    /**
     * Lowest-(cycle, id) lane that is active, not done, and not
     * @p exclude; -1 if none.
     */
    int pickNext(u32 exclude) const;

    struct Lane
    {
        double cycle = 0.0;
        bool active = false;
        bool done = false;
    };

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Lane> lanes_;
    double quantum_;
    u32 holder_ = kNoHolder;
};

} // namespace cheri::sim

#endif // CHERI_SIM_CORUN_GATE_HPP
