/**
 * @file
 * The allocator axis: strategy selection and per-cell knobs.
 *
 * "Picking a CHERI Allocator" (Bramley et al.) shows allocator choice
 * swings CHERI overheads as much as ABI choice; this header is the
 * plain-data description of one point on that axis. An
 * AllocatorConfig travels inside runner::RunRequest exactly like the
 * ABI does — hashable, comparable, wire-encodable — and the default
 * value is defined to be byte-for-byte the historical
 * abi::SimAllocator behaviour, so cells that never mention the axis
 * keep their pre-axis identity (fingerprints, goldens, CSV bytes).
 */

#ifndef CHERI_ALLOC_POLICY_HPP
#define CHERI_ALLOC_POLICY_HPP

#include <optional>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace cheri::alloc {

/** Heap management strategy for the simulated user-space malloc. */
enum class Strategy : u8 {
    Freelist,  //!< Segregated exact-size LIFO free lists (the
               //!< historical SimAllocator; the default).
    Bump,      //!< Monotone bump pointer, frees never reuse.
    SizeClass, //!< snmalloc-style size classes: LIFO reuse within a
               //!< class, internal fragmentation between classes.
};

/** The strategy's wire/CLI name ("freelist", "bump", "sizeclass"). */
const char *strategyName(Strategy strategy);

/**
 * One point on the allocator axis. The default-constructed value IS
 * the pre-axis allocator (freelist, no revocation): experiment cells
 * carrying it are defined to be identical to cells that predate the
 * axis, which is what keeps warm caches and goldens valid.
 */
struct AllocatorConfig
{
    Strategy strategy = Strategy::Freelist;

    /**
     * Cornucopia-style temporal safety: frees quarantine instead of
     * reuse, and once quarantine exceeds quarantine_kib a revocation
     * sweep walks the tag table through mem::Revoker — with the
     * traffic issued into the modeled memory system, not estimated.
     */
    bool revoke = false;
    u64 quarantine_kib = 256; //!< Sweep trigger threshold.

    bool operator==(const AllocatorConfig &) const = default;

    bool isDefault() const { return *this == AllocatorConfig{}; }
};

/**
 * Canonical axis-value name: the strategy name, with "+revoke"
 * appended when revocation is on ("sizeclass+revoke"). This is the
 * spelling used by `sweep --allocators`, the serve protocol's
 * "allocators" field and the CSV's allocator column.
 */
std::string allocatorName(const AllocatorConfig &config);

/**
 * Parse one axis-value name (any spelling allocatorName() emits).
 * Unknown names return nullopt — callers print a suggestion from
 * closestAllocatorName() and exit 2 (CLI) or answer 400 (daemon).
 */
std::optional<AllocatorConfig> parseAllocator(const std::string &name);

/** Every parseable axis value, CLI listing order. */
const std::vector<std::string> &knownAllocatorNames();

/** The known name with the smallest edit distance to @p name. */
std::string closestAllocatorName(const std::string &name);

} // namespace cheri::alloc

#endif // CHERI_ALLOC_POLICY_HPP
