#include "alloc/allocator.hpp"

#include <algorithm>
#include <bit>

#include "cap/bounds.hpp"
#include "support/logging.hpp"

namespace cheri::alloc {

Allocator::Allocator(abi::Abi abi, Addr heap_base, u64 heap_size)
    : abi_(abi), heapBase_(heap_base), heapSize_(heap_size),
      cursor_(heap_base)
{
    CHERI_ASSERT(heap_size > 0, "empty heap");
}

u64
Allocator::paddedSize(u64 size) const
{
    if (size == 0)
        size = 1;
    // Every allocator rounds to a minimum granule; 16 bytes matches
    // common size-class floors and the CHERI granule.
    u64 padded = (size + 15) & ~15ULL;
    if (abi::capabilityPointers(abi_))
        padded = cap::representableLength(padded);
    return padded;
}

u64
Allocator::alignmentFor(u64 size, u64 align) const
{
    u64 required = std::max<u64>(align, 16);
    if (abi::capabilityPointers(abi_)) {
        const u64 mask = cap::representableAlignmentMask(size);
        const u64 cheri_align = mask == ~0ULL ? 16 : (~mask + 1);
        required = std::max(required, cheri_align);
    }
    return required;
}

Addr
Allocator::bump(u64 padded, u64 align)
{
    const u64 alignment = alignmentFor(padded, align);
    const Addr addr = (cursor_ + alignment - 1) & ~(alignment - 1);
    CHERI_ASSERT(addr + padded <= heapBase_ + heapSize_,
                 "simulated heap exhausted (", padded, " bytes)");
    cursor_ = addr + padded;
    stats_.heapExtent = std::max(stats_.heapExtent, cursor_ - heapBase_);
    return addr;
}

Addr
Allocator::allocate(u64 size, u64 align)
{
    const u64 padded = paddedSize(size);
    ++stats_.allocations;
    stats_.requestedBytes += size;
    const Addr addr = allocateBlock(padded, align);
    stats_.reservedBytes += padded;
    const bool fresh = live_.emplace(addr, padded).second;
    CHERI_ASSERT(fresh, "allocator handed out a live block at ", addr);
    // Under the revocation policy each block gets a tagged metadata
    // capability in the shadow region: the in-memory capability the
    // sweep must find (and, once the block is freed, revoke). This is
    // what gives sweeps real tag-table work proportional to the live
    // heap, as in Cornucopia.
    if (revoker_ && abi::capabilityPointers(abi_))
        store_->writeCap(shadowSlot(addr),
                         cap::Capability::dataRegion(addr, padded));
    return addr;
}

void
Allocator::free(Addr addr)
{
    auto it = live_.find(addr);
    CHERI_ASSERT(it != live_.end(),
                 "free of address not handed out: ", addr);
    const u64 padded = it->second;
    live_.erase(it);
    ++stats_.frees;
    if (revoker_) {
        // Temporal safety: the block cannot be reused until a sweep
        // has revoked every capability still pointing into it.
        revoker_->quarantine(addr, padded);
        pending_.emplace_back(addr, padded);
        maybeSweep();
    } else {
        freeBlock(addr, padded);
    }
}

void
Allocator::free(Addr addr, u64 size)
{
    const auto it = live_.find(addr);
    CHERI_ASSERT(it != live_.end(),
                 "free of address not handed out: ", addr);
    CHERI_ASSERT(it->second == paddedSize(size),
                 "free size mismatch at ", addr, ": recorded ",
                 it->second, ", caller claims ", paddedSize(size));
    free(addr);
}

void
Allocator::maybeSweep()
{
    if (revoker_->quarantinedBytes() < quarantineLimit_)
        return;
    const mem::SweepStats swept = revoker_->sweep(observer_);
    ++revocation_.sweeps;
    revocation_.granulesVisited += swept.granulesVisited;
    revocation_.capsRevoked += swept.capsRevoked;
    revocation_.bytesReleased += swept.bytesReleased;
    // Quarantine is clear: the deferred frees may reuse memory now.
    for (const auto &[addr, padded] : pending_)
        freeBlock(addr, padded);
    pending_.clear();
}

Addr
Allocator::shadowSlot(Addr addr) const
{
    // One capability-granule slot per heap address, directly above
    // the arena. Block addresses are >= 16-byte aligned, so slots
    // never collide between live blocks.
    return heapBase_ + heapSize_ + (addr - heapBase_);
}

void
Allocator::enableRevocation(mem::BackingStore &store, u64 quarantine_kib,
                            mem::SweepObserver *observer)
{
    CHERI_ASSERT(!revoker_, "revocation enabled twice");
    store_ = &store;
    observer_ = observer;
    quarantineLimit_ = quarantine_kib * 1024;
    revoker_.emplace(store);
}

cap::Capability
Allocator::boundedCap(Addr addr, u64 size) const
{
    return cap::Capability::dataRegion(addr, paddedSize(size));
}

Addr
FreelistAllocator::allocateBlock(u64 padded, u64 align)
{
    auto &list = freeLists_[padded];
    if (!list.empty()) {
        const Addr addr = list.back();
        list.pop_back();
        return addr;
    }
    return bump(padded, align);
}

void
FreelistAllocator::freeBlock(Addr addr, u64 padded)
{
    freeLists_[padded].push_back(addr);
}

Addr
BumpAllocator::allocateBlock(u64 padded, u64 align)
{
    return bump(padded, align);
}

u64
SizeClassAllocator::paddedSize(u64 size) const
{
    if (size == 0)
        size = 1;
    u64 padded = (size + 15) & ~15ULL;
    if (padded > 256) {
        // Four classes per power-of-two doubling (2^k, 1.25·2^k,
        // 1.5·2^k, 1.75·2^k): round up to a quarter of the enclosing
        // power of two. padded > 256 keeps the step >= 64.
        const u64 bit = static_cast<u64>(std::bit_width(padded)) - 1;
        if (padded != (u64(1) << bit)) {
            const u64 step = u64(1) << (bit - 2);
            padded = (padded + step - 1) & ~(step - 1);
        }
    }
    if (abi::capabilityPointers(abi()))
        padded = cap::representableLength(padded);
    return padded;
}

Addr
SizeClassAllocator::allocateBlock(u64 padded, u64 align)
{
    auto &list = freeLists_[padded];
    if (!list.empty()) {
        const Addr addr = list.back();
        list.pop_back();
        return addr;
    }
    return bump(padded, align);
}

void
SizeClassAllocator::freeBlock(Addr addr, u64 padded)
{
    freeLists_[padded].push_back(addr);
}

std::unique_ptr<Allocator>
makeAllocator(const AllocatorConfig &config, abi::Abi abi,
              mem::BackingStore *store, mem::SweepObserver *observer)
{
    std::unique_ptr<Allocator> out;
    switch (config.strategy) {
      case Strategy::Freelist:
        out = std::make_unique<FreelistAllocator>(abi);
        break;
      case Strategy::Bump:
        out = std::make_unique<BumpAllocator>(abi);
        break;
      case Strategy::SizeClass:
        out = std::make_unique<SizeClassAllocator>(abi);
        break;
    }
    if (config.revoke && store)
        out->enableRevocation(*store, config.quarantine_kib, observer);
    return out;
}

} // namespace cheri::alloc
