/**
 * @file
 * Simulated user-space heap allocators behind one interface.
 *
 * Under the capability ABIs, CheriBSD's malloc must return memory
 * whose bounds are exactly representable: allocations are aligned to
 * the capability granule (and, for large sizes, to the CHERI
 * Concentrate representable-alignment mask) and their lengths rounded
 * up with representableLength(). This padding — together with 16-byte
 * pointer fields — is where purecap's extra footprint and cache/TLB
 * pressure come from. How much of it a program pays depends on the
 * allocator's placement policy, which is why the allocator is an
 * experiment axis and not a fixed implementation detail.
 *
 * Three strategies share the Allocator interface:
 *  - FreelistAllocator: segregated exact-size LIFO free lists over a
 *    bump arena — the historical abi::SimAllocator, and the default.
 *  - BumpAllocator: monotone bump pointer; frees never reuse memory.
 *  - SizeClassAllocator: snmalloc-style size classes (exact 16-byte
 *    steps up to 256 B, then four classes per power-of-two doubling),
 *    LIFO reuse within a class.
 *
 * Any strategy can additionally run a Cornucopia-style
 * quarantine+revocation policy (AllocatorConfig::revoke): frees
 * quarantine instead of reusing, and once quarantine crosses the
 * threshold a mem::Revoker sweep walks the tag table. The sweep's
 * per-granule loads and per-revocation tag writes are surfaced
 * through mem::SweepObserver so the owning workload context can issue
 * them as *real* modeled memory traffic (they land in the pipeline
 * and mem::Uncore tag-table counters, not in the side-channel
 * SweepStats::modeledCycles() estimate).
 */

#ifndef CHERI_ALLOC_ALLOCATOR_HPP
#define CHERI_ALLOC_ALLOCATOR_HPP

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "abi/abi.hpp"
#include "alloc/policy.hpp"
#include "cap/capability.hpp"
#include "mem/revoker.hpp"
#include "support/types.hpp"

namespace cheri::alloc {

struct AllocationStats
{
    u64 allocations = 0;
    u64 frees = 0;
    u64 requestedBytes = 0; //!< Sum of requested sizes.
    u64 reservedBytes = 0;  //!< Sum of padded/aligned sizes.
    u64 heapExtent = 0;     //!< High-water mark above the heap base.
};

/** Cumulative cost of the revocation policy (when enabled). */
struct RevocationStats
{
    u64 sweeps = 0;          //!< Threshold-triggered sweep passes.
    u64 granulesVisited = 0; //!< Tagged granules loaded across sweeps.
    u64 capsRevoked = 0;     //!< Dangling capabilities invalidated.
    u64 bytesReleased = 0;   //!< Quarantined bytes returned for reuse.
};

/**
 * The allocator interface the workload generators program against.
 * Placement policy is virtual; CHERI bounds/alignment policy, stats,
 * the live-block size map and the quarantine+revocation machinery are
 * shared here so every strategy accounts identically.
 */
class Allocator
{
  public:
    /**
     * @param abi Determines alignment/padding policy.
     * @param heap_base Simulated address the heap starts at.
     * @param heap_size Size of the heap arena.
     */
    explicit Allocator(abi::Abi abi, Addr heap_base = 0x4000'0000,
                       u64 heap_size = 0x4000'0000);
    virtual ~Allocator() = default;

    /**
     * Allocate @p size bytes with at least @p align alignment.
     * Capability ABIs enforce >= 16-byte alignment and representable
     * padding. Returns the block address.
     */
    Addr allocate(u64 size, u64 align = 0);

    /**
     * Return a block. The allocator tracks every live block's padded
     * size internally, so the address alone identifies it.
     */
    void free(Addr addr);

    /**
     * Transitional two-argument overload: forwards to free(addr)
     * after checking that @p size pads to the recorded block size.
     * Kept for one release so existing call sites keep compiling.
     */
    void free(Addr addr, u64 size);

    /**
     * The capability malloc would return for a block: bounds set to
     * the (padded) allocation, data permissions. Under hybrid the
     * returned capability is a DDC-derived convenience, not stored.
     */
    cap::Capability boundedCap(Addr addr, u64 size) const;

    /** The padded size the allocator reserves for a request. */
    virtual u64 paddedSize(u64 size) const;

    /** Placement policy this allocator implements. */
    virtual Strategy strategy() const = 0;

    /**
     * Arm the Cornucopia-style quarantine+revocation policy. Frees
     * stop reusing memory immediately; instead they quarantine, and
     * once quarantined bytes reach @p quarantine_kib a revocation
     * sweep runs over @p store's tag table. Under capability ABIs
     * each allocation also plants a tagged metadata capability in a
     * shadow region of @p store, so sweeps have real capabilities to
     * visit and revoke. @p observer (optional) receives the sweep's
     * granule loads and tag writes for replay as modeled traffic.
     */
    void enableRevocation(mem::BackingStore &store, u64 quarantine_kib,
                          mem::SweepObserver *observer = nullptr);

    bool revocationEnabled() const { return revoker_.has_value(); }

    const AllocationStats &stats() const { return stats_; }
    const RevocationStats &revocation() const { return revocation_; }
    abi::Abi abi() const { return abi_; }
    Addr heapBase() const { return heapBase_; }

  protected:
    /** Reserve a block of exactly @p padded bytes (policy hook). */
    virtual Addr allocateBlock(u64 padded, u64 align) = 0;

    /** Accept a block back for eventual reuse (policy hook). */
    virtual void freeBlock(Addr addr, u64 padded) = 0;

    /** Alignment for a block, honouring CHERI representability. */
    u64 alignmentFor(u64 size, u64 align) const;

    /** Carve @p padded bytes off the arena cursor (shared helper). */
    Addr bump(u64 padded, u64 align);

  private:
    void maybeSweep();
    Addr shadowSlot(Addr addr) const;

    abi::Abi abi_;
    Addr heapBase_;
    u64 heapSize_;
    Addr cursor_;
    std::map<Addr, u64> live_; //!< Live block -> padded size.
    AllocationStats stats_;

    // Revocation policy state (engaged by enableRevocation).
    std::optional<mem::Revoker> revoker_;
    mem::BackingStore *store_ = nullptr;
    mem::SweepObserver *observer_ = nullptr;
    u64 quarantineLimit_ = 0; //!< Bytes; sweep trigger threshold.
    std::vector<std::pair<Addr, u64>> pending_; //!< Frees awaiting sweep.
    RevocationStats revocation_;
};

/**
 * The historical abi::SimAllocator: segregated exact-padded-size LIFO
 * free lists over a bump arena. Address sequences and stats are
 * byte-identical to the pre-axis allocator — this is what makes the
 * default AllocatorConfig preserve goldens and cached fingerprints.
 */
class FreelistAllocator : public Allocator
{
  public:
    using Allocator::Allocator;
    Strategy strategy() const override { return Strategy::Freelist; }

  protected:
    Addr allocateBlock(u64 padded, u64 align) override;
    void freeBlock(Addr addr, u64 padded) override;

  private:
    std::map<u64, std::vector<Addr>> freeLists_; //!< padded -> blocks.
};

/** Monotone bump pointer: maximal locality, zero reuse. */
class BumpAllocator : public Allocator
{
  public:
    using Allocator::Allocator;
    Strategy strategy() const override { return Strategy::Bump; }

  protected:
    Addr allocateBlock(u64 padded, u64 align) override;
    void freeBlock(Addr /*addr*/, u64 /*padded*/) override {}
};

/**
 * snmalloc-style size classes: requests round up to 16-byte steps up
 * to 256 B, then to one of four classes per power-of-two doubling
 * (2^k, 1.25·2^k, 1.5·2^k, 1.75·2^k). Reuse is LIFO within a class,
 * so distinct request sizes share blocks at the cost of internal
 * fragmentation — the classic size-class trade visible in
 * reservedBytes.
 */
class SizeClassAllocator : public Allocator
{
  public:
    using Allocator::Allocator;
    u64 paddedSize(u64 size) const override;
    Strategy strategy() const override { return Strategy::SizeClass; }

  protected:
    Addr allocateBlock(u64 padded, u64 align) override;
    void freeBlock(Addr addr, u64 padded) override;

  private:
    std::map<u64, std::vector<Addr>> freeLists_; //!< class -> blocks.
};

/**
 * Build the allocator one AllocatorConfig describes. When the config
 * asks for revocation and @p store is provided, the quarantine policy
 * is armed with @p observer bridging sweep traffic into the caller's
 * modeled memory system.
 */
std::unique_ptr<Allocator>
makeAllocator(const AllocatorConfig &config, abi::Abi abi,
              mem::BackingStore *store = nullptr,
              mem::SweepObserver *observer = nullptr);

} // namespace cheri::alloc

#endif // CHERI_ALLOC_ALLOCATOR_HPP
