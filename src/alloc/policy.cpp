#include "alloc/policy.hpp"

#include <algorithm>

namespace cheri::alloc {

const char *
strategyName(Strategy strategy)
{
    switch (strategy) {
      case Strategy::Freelist: return "freelist";
      case Strategy::Bump: return "bump";
      case Strategy::SizeClass: return "sizeclass";
    }
    return "?";
}

std::string
allocatorName(const AllocatorConfig &config)
{
    std::string out = strategyName(config.strategy);
    if (config.revoke)
        out += "+revoke";
    return out;
}

std::optional<AllocatorConfig>
parseAllocator(const std::string &name)
{
    AllocatorConfig config;
    std::string base = name;
    if (const auto plus = name.find('+'); plus != std::string::npos) {
        if (name.substr(plus + 1) != "revoke")
            return std::nullopt;
        config.revoke = true;
        base = name.substr(0, plus);
    }
    for (Strategy s : {Strategy::Freelist, Strategy::Bump,
                       Strategy::SizeClass})
        if (base == strategyName(s)) {
            config.strategy = s;
            return config;
        }
    return std::nullopt;
}

const std::vector<std::string> &
knownAllocatorNames()
{
    static const std::vector<std::string> kNames = {
        "freelist",          "bump",          "sizeclass",
        "freelist+revoke",   "bump+revoke",   "sizeclass+revoke",
    };
    return kNames;
}

namespace {

/** Classic Levenshtein distance; inputs are short axis names. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t prev = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t cur = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               prev + (a[i - 1] == b[j - 1] ? 0 : 1)});
            prev = cur;
        }
    }
    return row[b.size()];
}

} // namespace

std::string
closestAllocatorName(const std::string &name)
{
    std::string best;
    std::size_t best_distance = 0;
    for (const std::string &known : knownAllocatorNames()) {
        const std::size_t d = editDistance(name, known);
        if (best.empty() || d < best_distance) {
            best = known;
            best_distance = d;
        }
    }
    return best;
}

} // namespace cheri::alloc
