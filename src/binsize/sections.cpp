#include "binsize/sections.hpp"

#include "support/logging.hpp"

namespace cheri::binsize {

namespace {

/** ELF64 rela entry size. */
constexpr u64 kRelaEntry = 24;
/** CHERI __cap_relocs entry (base, offset, length, perms, pad). */
constexpr u64 kCapRelocEntry = 40;

} // namespace

u64
SectionSizes::total() const
{
    u64 sum = 0;
    for (const auto &[name, size] : bytes)
        sum += size;
    return sum;
}

u64
SectionSizes::get(const std::string &section) const
{
    const auto it = bytes.find(section);
    return it == bytes.end() ? 0 : it->second;
}

const std::vector<std::string> &
sectionNames()
{
    static const std::vector<std::string> kNames = {
        ".text",        ".rodata",     ".data",   ".bss",
        ".rela.dyn",    ".got",        ".data.rel.ro",
        ".note.cheri",  ".debug",      ".others",
    };
    return kNames;
}

SectionSizes
computeSections(const BinaryProfile &profile, abi::Abi abi)
{
    const bool cap = abi::capabilityPointers(abi);
    const u64 ptr = abi::pointerSize(abi);

    SectionSizes out;

    out.bytes[".text"] = static_cast<u64>(
        static_cast<double>(profile.text_bytes) * abi::textGrowth(abi));

    // Constant pointer tables live in .rodata under hybrid but must
    // move to .data.rel.ro under the capability ABIs.
    const u64 rodata_tables_hybrid = profile.rodata_pointer_entries * 8;
    out.bytes[".rodata"] =
        profile.rodata_scalar_bytes + (cap ? 0 : rodata_tables_hybrid);
    out.bytes[".data.rel.ro"] =
        cap ? profile.rodata_pointer_entries * ptr : 0;

    out.bytes[".data"] =
        profile.data_scalar_bytes + profile.data_pointer_entries * ptr;
    // BSS pointer objects grow with alignment padding too.
    out.bytes[".bss"] = static_cast<u64>(
        static_cast<double>(profile.bss_bytes) * (cap ? 1.10 : 1.0));

    // Every capability stored in the image needs a load-time
    // relocation: GOT entries, initialized data pointers and the
    // relocated constant tables.
    u64 relocs = profile.dyn_relocs_hybrid;
    if (cap) {
        relocs += profile.got_entries + profile.data_pointer_entries +
                  profile.rodata_pointer_entries;
    }
    out.bytes[".rela.dyn"] =
        profile.dyn_relocs_hybrid * kRelaEntry +
        (cap ? (relocs - profile.dyn_relocs_hybrid) * kCapRelocEntry : 0);

    out.bytes[".got"] = profile.got_entries * ptr;
    out.bytes[".note.cheri"] = cap ? 48 : 0;
    out.bytes[".debug"] = static_cast<u64>(
        static_cast<double>(profile.debug_bytes) * (cap ? 1.02 : 1.0));
    out.bytes[".others"] = static_cast<u64>(
        static_cast<double>(profile.other_bytes) * (cap ? 1.08 : 1.0));

    return out;
}

std::map<std::string, double>
normalizedToHybrid(const BinaryProfile &profile, abi::Abi abi)
{
    const SectionSizes hybrid = computeSections(profile, abi::Abi::Hybrid);
    const SectionSizes target = computeSections(profile, abi);

    std::map<std::string, double> out;
    for (const auto &name : sectionNames()) {
        const u64 base = hybrid.get(name);
        const u64 value = target.get(name);
        out[name] = base ? static_cast<double>(value) /
                               static_cast<double>(base)
                         : 0.0;
    }
    out["total"] = static_cast<double>(target.total()) /
                   static_cast<double>(hybrid.total());
    return out;
}

} // namespace cheri::binsize
