/**
 * @file
 * Static binary-layout model behind Figure 2.
 *
 * CHERI changes binary sections through well-understood mechanisms,
 * which this model reproduces from a per-program profile:
 *
 *  - .text grows ~10% (capability manipulation sequences);
 *  - .rodata *shrinks*: constant pointer tables (vtables, string
 *    tables, switch tables) cannot stay in read-only data because
 *    capabilities must be materialized at load time — they move to
 *    the new .data.rel.ro section;
 *  - .rela.dyn explodes (~85x): every stored capability needs a
 *    __CAP_RELOCS / R_MORELLO_RELATIVE entry for the dynamic linker;
 *  - .got doubles (8-byte entries become 16-byte capabilities);
 *  - .note.cheri appears (ABI tag note);
 *  - .data/.bss grow with their pointer share.
 */

#ifndef CHERI_BINSIZE_SECTIONS_HPP
#define CHERI_BINSIZE_SECTIONS_HPP

#include <map>
#include <string>
#include <vector>

#include "abi/abi.hpp"
#include "support/types.hpp"

namespace cheri::binsize {

/** Link-level profile of a program (hybrid-ABI baseline quantities). */
struct BinaryProfile
{
    std::string name;
    u64 text_bytes = 1536 * kKiB;      //!< Hybrid .text size.
    u64 rodata_scalar_bytes = 64 * kKiB; //!< Non-pointer constants.
    u64 rodata_pointer_entries = 2048; //!< Const pointer-table slots.
    u64 data_scalar_bytes = 32 * kKiB;
    u64 data_pointer_entries = 1024;   //!< Initialized pointer objects.
    u64 bss_bytes = 64 * kKiB;
    u64 got_entries = 512;
    u64 dyn_relocs_hybrid = 96;        //!< Ordinary dynamic relocations.
    u64 debug_bytes = 3072 * kKiB;
    u64 other_bytes = 32 * kKiB;
};

/** Per-section sizes for one ABI. */
struct SectionSizes
{
    std::map<std::string, u64> bytes;

    u64 total() const;
    u64 get(const std::string &section) const;
};

/** The section list in Figure 2's order. */
const std::vector<std::string> &sectionNames();

/** Compute the layout of @p profile under @p abi. */
SectionSizes computeSections(const BinaryProfile &profile, abi::Abi abi);

/**
 * Figure 2's normalization: per-section size relative to the hybrid
 * binary. Sections absent under hybrid (.data.rel.ro, .note.cheri)
 * report 0 for hybrid and their absolute size is available via
 * computeSections().
 */
std::map<std::string, double> normalizedToHybrid(
    const BinaryProfile &profile, abi::Abi abi);

} // namespace cheri::binsize

#endif // CHERI_BINSIZE_SECTIONS_HPP
