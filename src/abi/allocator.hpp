/**
 * @file
 * Compatibility shim: the simulated heap allocator moved to
 * src/alloc, where it became one strategy (FreelistAllocator) behind
 * the axis-generic alloc::Allocator interface. The historical names
 * keep resolving so existing includes and call sites work unchanged;
 * new code should include alloc/allocator.hpp directly.
 */

#ifndef CHERI_ABI_ALLOCATOR_HPP
#define CHERI_ABI_ALLOCATOR_HPP

#include "alloc/allocator.hpp"

namespace cheri::abi {

using AllocationStats = alloc::AllocationStats;
using SimAllocator = alloc::FreelistAllocator;

} // namespace cheri::abi

#endif // CHERI_ABI_ALLOCATOR_HPP
