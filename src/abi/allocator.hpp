/**
 * @file
 * A simulated user-space heap allocator with CHERI-aware behaviour.
 *
 * Under the capability ABIs, CheriBSD's malloc must return memory
 * whose bounds are exactly representable: allocations are aligned to
 * the capability granule (and, for large sizes, to the CHERI
 * Concentrate representable-alignment mask) and their lengths rounded
 * up with representableLength(). This padding — together with 16-byte
 * pointer fields — is where purecap's extra footprint and cache/TLB
 * pressure come from.
 *
 * The allocator is a segregated free-list bump allocator: freed
 * blocks of a size class are reused LIFO, which preserves realistic
 * address reuse patterns for the workloads.
 */

#ifndef CHERI_ABI_ALLOCATOR_HPP
#define CHERI_ABI_ALLOCATOR_HPP

#include <map>
#include <vector>

#include "abi/abi.hpp"
#include "cap/capability.hpp"
#include "support/types.hpp"

namespace cheri::abi {

struct AllocationStats
{
    u64 allocations = 0;
    u64 frees = 0;
    u64 requestedBytes = 0; //!< Sum of requested sizes.
    u64 reservedBytes = 0;  //!< Sum of padded/aligned sizes.
    u64 heapExtent = 0;     //!< High-water mark above the heap base.
};

class SimAllocator
{
  public:
    /**
     * @param abi Determines alignment/padding policy.
     * @param heap_base Simulated address the heap starts at.
     * @param heap_size Size of the heap arena.
     */
    SimAllocator(Abi abi, Addr heap_base = 0x4000'0000,
                 u64 heap_size = 0x4000'0000);

    /**
     * Allocate @p size bytes with at least @p align alignment.
     * Capability ABIs enforce >= 16-byte alignment and representable
     * padding. Returns the block address.
     */
    Addr allocate(u64 size, u64 align = 0);

    /** Return a block to its size-class free list. */
    void free(Addr addr, u64 size);

    /**
     * The capability malloc would return for a block: bounds set to
     * the (padded) allocation, data permissions. Under hybrid the
     * returned capability is a DDC-derived convenience, not stored.
     */
    cap::Capability boundedCap(Addr addr, u64 size) const;

    /** The padded size the allocator reserves for a request. */
    u64 paddedSize(u64 size) const;

    const AllocationStats &stats() const { return stats_; }
    Abi abi() const { return abi_; }
    Addr heapBase() const { return heapBase_; }

  private:
    u64 alignmentFor(u64 size, u64 align) const;

    Abi abi_;
    Addr heapBase_;
    u64 heapSize_;
    Addr cursor_;
    std::map<u64, std::vector<Addr>> freeLists_; //!< padded size -> blocks.
    AllocationStats stats_;
};

} // namespace cheri::abi

#endif // CHERI_ABI_ALLOCATOR_HPP
